"""Optimal PLA and hardness metrics."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hardness import (
    Segment,
    global_hardness,
    local_hardness,
    mse_hardness,
    optimal_pla,
    pla_hardness,
    verify_pla,
)


def test_perfectly_linear_data_needs_one_segment():
    keys = [i * 1000 for i in range(5000)]
    segs = optimal_pla(keys, epsilon=4)
    assert len(segs) == 1
    assert verify_pla(keys, segs, 4)


def test_epsilon_zero_on_linear_data():
    keys = [i * 7 for i in range(100)]
    segs = optimal_pla(keys, epsilon=0)
    assert len(segs) == 1
    assert verify_pla(keys, segs, 0)


def test_two_slopes_need_two_segments():
    keys = [i for i in range(1000)] + [1000 + i * 1000 for i in range(1000)]
    segs = optimal_pla(keys, epsilon=2)
    assert len(segs) == 2
    assert verify_pla(keys, segs, 2)


def test_hardness_decreases_with_epsilon():
    """For the same data, H(small ε) >= H(large ε)."""
    rng = random.Random(1)
    keys = sorted({rng.randrange(2**32) for _ in range(3000)})
    h_small = pla_hardness(keys, 8)
    h_large = pla_hardness(keys, 256)
    assert h_small >= h_large >= 1


def test_clustered_data_harder_than_linear():
    """Uniform random keys are nearly linear (the paper's "most real
    datasets are easy"); *clustered* keys genuinely need more segments."""
    rng = random.Random(2)
    clustered = sorted(
        {rng.randrange(c * 2**30, c * 2**30 + 1000) for c in range(50) for _ in range(40)}
    )
    linear_keys = [i * 2**20 for i in range(len(clustered))]
    assert pla_hardness(clustered, 16) > pla_hardness(linear_keys, 16)
    # And uniform random is easier than clustered at the same epsilon.
    uniform = sorted({rng.randrange(2**40) for _ in range(len(clustered))})
    assert pla_hardness(clustered, 16) > pla_hardness(uniform, 16)


def test_empty_and_tiny_inputs():
    assert optimal_pla([], 8) == []
    segs = optimal_pla([42], 8)
    assert len(segs) == 1 and segs[0].length == 1
    segs = optimal_pla([1, 2], 8)
    assert len(segs) == 1 and segs[0].length == 2


def test_segments_partition_the_array():
    rng = random.Random(3)
    keys = sorted({rng.randrange(2**36) for _ in range(1500)})
    segs = optimal_pla(keys, 32)
    covered = 0
    for seg in segs:
        assert seg.first_index == covered
        covered += seg.length
    assert covered == len(keys)


def test_large_keys_no_overflow():
    base = 2**60
    keys = [base + i * i for i in range(2000)]  # quadratic: needs many segs
    segs = optimal_pla(keys, 16)
    assert verify_pla(keys, segs, 16)
    assert len(segs) > 1


def test_default_epsilons_match_paper():
    keys = [i * 3 for i in range(500)]
    assert global_hardness(keys) == pla_hardness(keys, 4096)
    assert local_hardness(keys) == pla_hardness(keys, 32)


def test_mse_hardness_outlier_sensitivity():
    """Appendix D: a few extreme outliers blow up MSE but not PLA."""
    n = 2000
    smooth = [i * 1000 for i in range(n)]
    with_outliers = smooth[:-3] + [2**55, 2**56, 2**57]
    mse_ratio = mse_hardness(with_outliers) / max(mse_hardness(smooth), 1e-12)
    pla_ratio = pla_hardness(with_outliers, 4096) / pla_hardness(smooth, 4096)
    assert mse_ratio > pla_ratio  # MSE overreacts relative to PLA


def test_mse_degenerate():
    assert mse_hardness([]) == 0.0
    assert mse_hardness([5]) == 0.0


def test_segment_last_index():
    seg = Segment(first_key=10, first_index=5, length=3, model=None)
    assert seg.last_index == 7


@given(st.sets(st.integers(min_value=0, max_value=2**48), min_size=2, max_size=400),
       st.sampled_from([0, 1, 4, 16, 64]))
@settings(max_examples=40, deadline=None)
def test_property_pla_guarantee_holds(keys, eps):
    keys = sorted(keys)
    segs = optimal_pla(keys, eps)
    assert verify_pla(keys, segs, eps)
    assert sum(s.length for s in segs) == len(keys)


@given(st.lists(st.integers(min_value=1, max_value=10**6), min_size=2, max_size=200))
@settings(max_examples=30, deadline=None)
def test_property_greedy_is_no_worse_than_epsilon_inf(deltas):
    """With ε larger than n, everything fits one segment."""
    keys = []
    acc = 0
    for d in deltas:
        acc += d
        keys.append(acc)
    segs = optimal_pla(keys, epsilon=len(keys) + 1)
    assert len(segs) == 1
