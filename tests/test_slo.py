"""SLO tracking: targets, windows, burn rates, storms, and the tower.

The tracker is driven two ways here: synthetically (a scripted fake
meter so every percentile and burn rate is exact) and end-to-end
against real runs (ALEX under churn producing genuine SMO traffic).
"""

import random

import pytest

from repro.core.events import (
    KIND_ALERT,
    KIND_SLO_WINDOW,
    EventBus,
)
from repro.core.runner import OpEvent, execute
from repro.core.slo import (
    ALERT_BURN_RATE,
    ALERT_SMO_STORM,
    SEVERITY_CRITICAL,
    SEVERITY_WARNING,
    ControlTower,
    SLOTarget,
    SLOTracker,
)
from repro.core.workloads import LOOKUP, Operation, mixed_workload
from repro.indexes.alex import ALEX

KEYS = sorted(random.Random(13).sample(range(1, 50_000_000), 3000))


# -- a scripted harness --------------------------------------------------------

class FakeMeter:
    def __init__(self):
        self.now = 0.0

    def total_time(self):
        return self.now


class FakeIndex:
    name = "fake"

    def __init__(self):
        self.meter = FakeMeter()


class FakeWorkload:
    name = "scripted"


def _drive(tracker, index, latencies, smo_at=()):
    """Feed scripted per-op latencies (virtual ns) through the tracker."""
    index.meter.now += 100.0  # bulk-load time the window must ignore
    tracker.on_phase("measure", index, FakeWorkload())
    for i, lat in enumerate(latencies):
        index.meter.now += lat
        event = OpEvent(seq=i, op=Operation(LOOKUP, key=i), record=None,
                        ok=True, scanned=0, result=None)
        tracker.on_op(event, None)
        if i in smo_at:
            tracker.on_smo(event)
    tracker.on_phase("done", index, FakeWorkload())


# -- targets -------------------------------------------------------------------

def test_target_validation():
    with pytest.raises(ValueError, match="objective"):
        SLOTarget(LOOKUP, 100.0, objective=1.0)
    with pytest.raises(ValueError, match="threshold"):
        SLOTarget(LOOKUP, 0.0)
    t = SLOTarget(LOOKUP, 500.0)
    assert t.objective == 0.99


def test_tracker_rejects_bad_window():
    with pytest.raises(ValueError):
        SLOTracker(window_ops=0)


# -- explicit targets: budgets and burn ----------------------------------------

def test_within_budget_no_alerts():
    tracker = SLOTracker([SLOTarget(LOOKUP, 100.0, objective=0.8)],
                         window_ops=10)
    _drive(tracker, FakeIndex(), [50.0] * 9 + [200.0])  # 1/10 over, budget 2
    assert tracker.alerts == []
    assert tracker.violations[LOOKUP] == 1
    assert tracker.budget_used(LOOKUP) == pytest.approx(0.5)


def test_burn_rate_warning_then_critical():
    target = SLOTarget(LOOKUP, 100.0, objective=0.9)  # budget: 1 op per 10
    warm = SLOTracker([target], window_ops=10)
    _drive(warm, FakeIndex(), [50.0] * 8 + [200.0] * 2)  # burn 2.0
    assert [a.severity for a in warm.alerts] == [SEVERITY_WARNING]
    assert warm.alerts[0].kind == ALERT_BURN_RATE
    assert warm.alerts[0].details["burn_rate"] == pytest.approx(2.0)

    hot = SLOTracker([target], window_ops=10, burn_critical=4.0)
    _drive(hot, FakeIndex(), [50.0] * 6 + [200.0] * 4)  # burn 4.0
    assert [a.severity for a in hot.alerts] == [SEVERITY_CRITICAL]


def test_budget_accumulates_across_windows():
    tracker = SLOTracker([SLOTarget(LOOKUP, 100.0, objective=0.9)],
                         window_ops=10)
    _drive(tracker, FakeIndex(),
           [50.0] * 10 + [50.0] * 8 + [200.0] * 2)  # 2 violations / 20 judged
    assert tracker.judged_ops[LOOKUP] == 20
    assert tracker.budget_used(LOOKUP) == pytest.approx(1.0)
    assert len(tracker.windows) == 2


def test_latencies_are_meter_deltas_not_sampled():
    tracker = SLOTracker([SLOTarget(LOOKUP, 100.0, objective=0.5)],
                         window_ops=4)
    _drive(tracker, FakeIndex(), [10.0, 20.0, 30.0, 40.0])
    stats = tracker.windows[0]["ops_kinds"][LOOKUP]
    assert stats["count"] == 4
    assert stats["p50"] == pytest.approx(20.0)  # nearest-rank percentile


# -- auto-calibration ----------------------------------------------------------

def test_first_window_calibrates_and_is_never_judged():
    tracker = SLOTracker(window_ops=10, calibration_factor=4.0)
    assert tracker.auto_calibrated
    # A horrendous first window: every op 1000 ns. No alert — it only
    # sets the bar (threshold = 4 x p99).
    _drive(tracker, FakeIndex(), [1000.0] * 10)
    assert tracker.alerts == []
    assert tracker.targets[LOOKUP].threshold_ns == pytest.approx(4000.0)
    assert tracker.judged_ops.get(LOOKUP, 0) == 0


def test_calibrated_target_fires_on_degradation():
    tracker = SLOTracker(window_ops=10)
    index = FakeIndex()
    _drive(tracker, index, [100.0] * 10)  # calibrate: threshold 400 ns
    # Second run on the same tracker: 5x slower ops blow the budget.
    _drive(tracker, index, [2000.0] * 10)
    assert any(a.kind == ALERT_BURN_RATE for a in tracker.alerts)


# -- SMO storms ----------------------------------------------------------------

def _storm_drive(tracker, rates, window_ops=10):
    """One window per rate entry: ``rate*window_ops`` ops carry SMOs."""
    index = FakeIndex()
    for rate in rates:
        n_smo = int(rate * window_ops)
        smo_at = set(range(n_smo))
        _drive(tracker, index, [10.0] * window_ops, smo_at=smo_at)


def test_storm_needs_three_baseline_windows():
    tracker = SLOTracker([SLOTarget(LOOKUP, 1e9)], window_ops=10)
    _storm_drive(tracker, [0.8, 0.8])  # hot, but no baseline yet
    assert not [a for a in tracker.alerts if a.kind == ALERT_SMO_STORM]


def test_storm_warns_then_escalates():
    tracker = SLOTracker([SLOTarget(LOOKUP, 1e9)], window_ops=10,
                         storm_factor=3.0, storm_min_rate=0.05,
                         storm_escalate=3)
    # Three calm baseline windows (10% SMO rate), then a sustained storm.
    _storm_drive(tracker, [0.1, 0.1, 0.1, 0.8, 0.8, 0.8])
    storms = [a for a in tracker.alerts if a.kind == ALERT_SMO_STORM]
    assert [a.severity for a in storms] == [SEVERITY_WARNING, SEVERITY_CRITICAL]
    assert storms[0].details["rate"] == pytest.approx(0.8)
    assert "sustained" in storms[1].message


def test_calm_window_resets_the_escalation_run():
    tracker = SLOTracker([SLOTarget(LOOKUP, 1e9)], window_ops=10,
                         storm_escalate=3)
    _storm_drive(tracker, [0.1, 0.1, 0.1, 0.8, 0.0, 0.8, 0.0, 0.8])
    storms = [a for a in tracker.alerts if a.kind == ALERT_SMO_STORM]
    # Each isolated hot window warns; the run never reaches 3 in a row.
    assert all(a.severity == SEVERITY_WARNING for a in storms)


# -- bus publication -----------------------------------------------------------

def test_windows_and_alerts_publish_to_the_bus():
    bus = EventBus()
    tracker = SLOTracker([SLOTarget(LOOKUP, 100.0, objective=0.9)],
                         window_ops=10, bus=bus)
    _drive(tracker, FakeIndex(), [50.0] * 8 + [200.0] * 2)
    windows = bus.events(kind=KIND_SLO_WINDOW)
    assert len(windows) == 1
    assert windows[0]["op"] == LOOKUP and windows[0]["violations"] == 2
    alerts = bus.events(kind=KIND_ALERT)
    assert len(alerts) == 1
    assert alerts[0]["alert"] == ALERT_BURN_RATE
    assert alerts[0]["severity"] == SEVERITY_WARNING


def test_summary_shape():
    tracker = SLOTracker([SLOTarget(LOOKUP, 100.0, objective=0.9)],
                         window_ops=10)
    _drive(tracker, FakeIndex(), [50.0] * 8 + [200.0] * 2)
    s = tracker.summary()
    assert s["windows"] == 1 and not s["auto_calibrated"]
    assert s["targets"][LOOKUP]["threshold_ns"] == 100.0
    assert s["op_kinds"][LOOKUP]["violations"] == 2
    assert len(s["alerts"]) == 1
    assert s["alerts"][0]["severity"] == SEVERITY_WARNING


# -- end to end against a real index -------------------------------------------

def test_tracker_observes_a_real_run_without_changing_it():
    wl = mixed_workload(KEYS, 0.5, n_ops=2000, seed=1)
    tracker = SLOTracker(window_ops=200)
    result = execute(ALEX(), wl, observers=[tracker])
    assert result.throughput_mops > 0
    assert len(tracker.windows) == 10
    judged = sum(tracker.judged_ops.values())
    assert judged == 2000 - 200  # everything after the calibration window
    assert set(tracker.targets) == {"lookup", "insert"}


# -- the control tower ---------------------------------------------------------

def _event(kind, source="ALEX@0", **payload):
    return {"kind": kind, "source": source, "t_ns": 0.0, "seq": 0, **payload}


def test_tower_folds_a_full_stream():
    tower = ControlTower.from_records([
        _event("phase", phase="measure", workload="churn"),
        _event("op_window", ops=256, ops_per_vsec=2e6),
        _event("op_window", ops=256, ops_per_vsec=3e6),
        _event("slo_window", op="lookup", p99=420.0),
        _event("smo"),
        _event("smo"),
        _event("admission_reject", op="insert", state="draining"),
        _event("backfill_chunk", stage="verify", done=50, total=200),
        _event("alert", severity="critical", message="budget blown"),
        _event("sweep_task", source=""),
        _event("cache_hit", source=""),
    ])
    row = tower.rows["ALEX@0"]
    assert row["state"] == "measure" and row["workload"] == "churn"
    assert row["ops"] == 512
    assert row["ops_per_vsec"] == 3e6  # latest window wins
    assert row["p99_ns"] == 420.0
    assert row["smos"] == 2 and row["rejected"] == 1
    assert row["backfill_stage"] == "verify" and row["backfill_done"] == 50
    assert row["worst_severity"] == "critical"
    assert tower.sweep == {"tasks": 1, "cache_hits": 1}
    assert tower.consumed == 11


def test_lifecycle_state_outranks_engine_phase():
    tower = ControlTower.from_records([
        _event("phase", phase="measure"),
        _event("state", from_state="serving", to="migrating"),
        _event("phase", phase="done"),  # must not clobber the lifecycle
    ])
    assert tower.rows["ALEX@0"]["state"] == "migrating"


def test_cutover_marks_target_serving():
    tower = ControlTower.from_records([
        _event("cutover", source="PGM@1", op_seq=900),
    ])
    assert tower.rows["PGM@1"]["state"] == "serving"
    assert tower.rows["PGM@1"]["cutover_seq"] == 900


def test_render_and_json_surfaces():
    tower = ControlTower.from_records([
        _event("op_window", ops=100, ops_per_vsec=1e6),
        _event("slo_window", op="lookup", p99=350.0),
        _event("backfill_chunk", stage="backfill", done=75, total=100),
        _event("alert", severity="warning", message="slow window"),
        _event("sweep_task", source=""),
    ])
    out = tower.render()
    assert "Instance" in out and "ALEX@0" in out
    assert "backfill 75%" in out
    assert "1 (warning)" in out
    assert "sweep: 1 tasks" in out
    assert "[warning] slow window" in out
    doc = tower.to_json()
    assert doc["instances"]["ALEX@0"]["p99_ns"] == 350.0
    assert doc["sweep"]["tasks"] == 1
    assert doc["consumed"] == 5


def test_live_subscription_matches_post_hoc_fold():
    bus = EventBus()
    live = ControlTower()
    bus.subscribe(live.consume)
    tracker = SLOTracker(window_ops=64, bus=bus)
    wl = mixed_workload(KEYS, 0.3, n_ops=600, seed=2)
    execute(ALEX(), wl, bus=bus, bus_window=64, observers=[tracker])
    replay = ControlTower.from_records(bus.events())
    assert live.to_json() == replay.to_json()
    assert live.rows["ALEX"]["ops"] == 600


# -- cluster view (sharded serving tier) ---------------------------------------

def test_cluster_view_aggregates_per_shard_trackers():
    from repro.core.shard import ShardRouter, ShardedIndex
    from repro.core.slo import cluster_view, render_cluster_view
    from repro.core.workloads import moving_hotspot_workload

    keys = sorted(random.Random(21).sample(range(1, 10_000_000), 2500))
    wl = moving_hotspot_workload(keys, n_ops=2500, seed=1)
    sharded = ShardedIndex("B+tree", n_shards=2)
    router = ShardRouter(sharded, window_ops=512, slo_window=128)
    router.run(wl)

    view = cluster_view(router.all_trackers)
    assert view["op_kind"] == LOOKUP
    assert len(view["shards"]) == len(router.all_trackers) >= 2
    p99s = [row["p99_ns"] for row in view["shards"].values()
            if row["p99_ns"] is not None]
    assert view["worst_p99_ns"] == max(p99s)
    worst = view["worst_shard"]
    assert view["shards"][worst]["p99_ns"] == view["worst_p99_ns"]
    for row in view["shards"].values():
        assert row["windows"] >= 1
        assert row["budget_used"] >= 0.0

    text = render_cluster_view(view)
    assert "worst shard" in text
    for name in view["shards"]:
        assert name in text


def test_cluster_view_empty_trackers():
    from repro.core.slo import cluster_view, render_cluster_view

    view = cluster_view({})
    assert view["worst_shard"] is None and view["shards"] == {}
    assert "worst shard" not in render_cluster_view(view)
