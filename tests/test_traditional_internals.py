"""Structure-specific internals of the traditional indexes."""

import random

from repro.indexes.art import ART, _ArtNode, _tier
from repro.indexes.btree import BPlusTree, _Inner
from repro.indexes.masstree import Masstree
from repro.indexes.wormhole import Wormhole, _LEAF_CAPACITY


# -- B+tree rebalancing paths --------------------------------------------------

def _leaf_keys_in_chain(tree: BPlusTree):
    node = tree._root
    while isinstance(node, _Inner):
        node = node.children[0]
    out = []
    while node is not None:
        out.extend(node.keys)
        node = node.next
    return out


def test_btree_borrow_from_left_sibling():
    t = BPlusTree(fanout=4)
    t.bulk_load([(i, i) for i in range(20)])
    # Delete from the right side until a borrow must occur.
    for k in (19, 18, 17):
        assert t.delete(k)
    assert _leaf_keys_in_chain(t) == sorted(_leaf_keys_in_chain(t))
    for k in range(17):
        assert t.lookup(k) == k


def test_btree_merge_cascades_to_root_collapse():
    t = BPlusTree(fanout=4)
    t.bulk_load([(i, i) for i in range(64)])
    h = t.height
    for i in range(60):
        assert t.delete(i)
    assert t.height < h
    assert [k for k, _ in t.range_scan(0, 10)] == [60, 61, 62, 63]


def test_btree_every_node_within_bounds_after_churn():
    t = BPlusTree(fanout=8)
    t.bulk_load([(i * 2, i) for i in range(500)])
    rng = random.Random(4)
    live = set(range(0, 1000, 2))
    for _ in range(2000):
        k = rng.randrange(1000)
        if k in live and rng.random() < 0.5:
            assert t.delete(k)
            live.discard(k)
        elif k not in live:
            assert t.insert(k, k)
            live.add(k)
    # Walk the whole tree checking occupancy invariants.
    def walk(node, is_root):
        if isinstance(node, _Inner):
            assert len(node.children) == len(node.keys) + 1
            if not is_root:
                assert len(node.children) >= 2
            for c in node.children:
                walk(c, False)
        else:
            assert len(node.keys) == len(node.values)
            assert node.keys == sorted(node.keys)

    walk(t._root, True)
    assert len(t) == len(live)


# -- ART node-tier transitions ---------------------------------------------------

def test_art_grows_through_all_tiers():
    idx = ART()
    idx.bulk_load([])
    # Keys differing in one byte position: a single node grows 4->256.
    for b in range(200):
        idx.insert(b << 8, b)
    node = idx._root
    assert isinstance(node, _ArtNode)
    assert _tier(len(node.bytes_)) == 256
    for b in range(0, 200, 17):
        assert idx.lookup(b << 8) == b


def test_art_prefix_split_mid_path():
    idx = ART()
    idx.bulk_load([(0xAABBCCDD00000000, 1), (0xAABBCCEE00000000, 2)])
    # Diverge inside the shared prefix region.
    assert idx.insert(0xAA00000000000000, 3)
    assert idx.lookup(0xAABBCCDD00000000) == 1
    assert idx.lookup(0xAABBCCEE00000000) == 2
    assert idx.lookup(0xAA00000000000000) == 3
    got = idx.range_scan(0, 5)
    assert [k for k, _ in got] == sorted(
        [0xAABBCCDD00000000, 0xAABBCCEE00000000, 0xAA00000000000000]
    )


def test_art_delete_merges_single_child_chain():
    idx = ART()
    idx.bulk_load([(0x1111, 1), (0x1122, 2), (0x2200, 3)])
    assert idx.delete(0x1122)
    # Path compression restored: lookups and scans intact.
    assert idx.lookup(0x1111) == 1
    assert idx.lookup(0x2200) == 3
    assert idx.range_scan(0, 3) == [(0x1111, 1), (0x2200, 3)]


# -- Masstree border discipline ----------------------------------------------------

def test_masstree_permutation_always_a_permutation():
    idx = Masstree()
    idx.bulk_load([])
    rng = random.Random(7)
    for _ in range(600):
        idx.insert(rng.randrange(10**6), 0)

    def walk(node):
        if hasattr(node, "children"):
            for c in node.children:
                walk(c)
        else:
            assert sorted(node.perm) == list(range(len(node.keys)))

    walk(idx._root)


def test_masstree_interior_split_preserves_order():
    idx = Masstree()
    idx.bulk_load([])
    for i in range(1000):
        idx.insert(i, i)
    got = idx.range_scan(0, 1000)
    assert [k for k, _ in got] == list(range(1000))


# -- Wormhole leaf list -------------------------------------------------------------

def test_wormhole_anchors_strictly_increasing():
    idx = Wormhole()
    idx.bulk_load([])
    rng = random.Random(8)
    for _ in range(_LEAF_CAPACITY * 6):
        idx.insert(rng.randrange(2**40), 0)
    anchors = [leaf.anchor for leaf in idx._leaves]
    assert anchors == sorted(anchors)
    assert len(set(anchors)) == len(anchors)


def test_wormhole_links_match_anchor_array():
    idx = Wormhole()
    idx.bulk_load([(i, i) for i in range(1000)])
    node = idx._leaves[0]
    chained = []
    while node is not None:
        chained.append(node)
        node = node.next
    assert chained == idx._leaves
