"""Hypothesis stateful testing: arbitrary op sequences vs a model.

A RuleBasedStateMachine drives an index through random interleavings of
bulk loads, inserts, updates, deletes, lookups and scans, checking
against a dict model after every step.  Hypothesis shrinks any failure
to a minimal reproducing sequence.

One machine class is generated per updatable registry index (all eleven
— RMI is read-only and excluded), each with a small-node configuration
so 40 steps cross real SMO boundaries.  Two invariants run after every
step: the live count matches the model, and ``debug_validate()`` finds
the structure sound.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro import (
    ALEX,
    ART,
    HOT,
    LIPP,
    BPlusTree,
    FINEdex,
    FITingTree,
    Masstree,
    PGMIndex,
    Wormhole,
    XIndex,
)

_KEY = st.integers(min_value=0, max_value=2**20)


class IndexMachine(RuleBasedStateMachine):
    factory = staticmethod(BPlusTree)

    @initialize(keys=st.sets(_KEY, max_size=60))
    def load(self, keys):
        self.index = self.factory()
        self.model = {k: k ^ 1 for k in keys}
        self.index.bulk_load(sorted(self.model.items()))

    @rule(k=_KEY)
    def insert(self, k):
        expect = k not in self.model
        assert self.index.insert(k, k ^ 1) == expect
        self.model.setdefault(k, k ^ 1)

    @rule(k=_KEY)
    def lookup(self, k):
        assert self.index.lookup(k) == self.model.get(k)

    @rule(k=_KEY, v=st.integers(min_value=0, max_value=2**30))
    def update(self, k, v):
        expect = k in self.model
        assert self.index.update(k, v) == expect
        if expect:
            self.model[k] = v

    @rule(k=_KEY)
    def delete(self, k):
        if not self.index.supports_delete:
            return
        expect = k in self.model
        assert self.index.delete(k) == expect
        self.model.pop(k, None)

    @rule(start=_KEY, count=st.integers(min_value=1, max_value=12))
    def scan(self, start, count):
        got = self.index.range_scan(start, count)
        expect = sorted(
            (k, v) for k, v in self.model.items() if k >= start
        )[:count]
        assert got == expect

    @invariant()
    def size_matches(self):
        if hasattr(self, "index"):
            assert len(self.index) == len(self.model)

    @invariant()
    def structurally_sound(self):
        if hasattr(self, "index"):
            violations = self.index.debug_validate()
            assert violations == [], "\n".join(str(v) for v in violations)


#: Small-node factories so short sequences trigger splits, expands,
#: retrains and compactions — the operations worth state-testing.
_FACTORIES = {
    "BPlusTree": lambda: BPlusTree(fanout=4),
    "ALEX": lambda: ALEX(target_leaf_keys=16, max_data_keys=64),
    "LIPP": lambda: LIPP(min_rebuild_size=16),
    "PGM": lambda: PGMIndex(check_duplicates=True, buffer_size=16),
    "XIndex": lambda: XIndex(delta_size=8, target_group_keys=32),
    "FINEdex": lambda: FINEdex(bin_capacity=4),
    "FITingTree": lambda: FITingTree(buffer_size=4),
    "ART": ART,
    "HOT": HOT,
    "Masstree": Masstree,
    "Wormhole": Wormhole,
}

_settings = settings(max_examples=25, stateful_step_count=40, deadline=None)
#: Indexes whose SMOs retrain models on most steps get a lighter budget
#: (the per-step work, not the step count, is what costs time).
_slow_settings = settings(max_examples=10, stateful_step_count=40, deadline=None)
_SLOW = {"LIPP", "XIndex", "FINEdex"}

for _name, _factory in _FACTORIES.items():
    _machine = type(f"{_name}Machine", (IndexMachine,),
                    {"factory": staticmethod(_factory)})
    _case = _machine.TestCase
    _case.settings = _slow_settings if _name in _SLOW else _settings
    globals()[f"Test{_name}Stateful"] = _case
del _name, _factory, _machine, _case
