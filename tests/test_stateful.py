"""Hypothesis stateful testing: arbitrary op sequences vs a model.

A RuleBasedStateMachine drives an index through random interleavings of
bulk loads, inserts, updates, deletes, lookups and scans, checking
against a dict model after every step.  Hypothesis shrinks any failure
to a minimal reproducing sequence.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro import ALEX, BPlusTree, LIPP

_KEY = st.integers(min_value=0, max_value=2**20)


class IndexMachine(RuleBasedStateMachine):
    factory = staticmethod(BPlusTree)

    @initialize(keys=st.sets(_KEY, max_size=60))
    def load(self, keys):
        self.index = self.factory()
        self.model = {k: k ^ 1 for k in keys}
        self.index.bulk_load(sorted(self.model.items()))

    @rule(k=_KEY)
    def insert(self, k):
        expect = k not in self.model
        assert self.index.insert(k, k ^ 1) == expect
        self.model.setdefault(k, k ^ 1)

    @rule(k=_KEY)
    def lookup(self, k):
        assert self.index.lookup(k) == self.model.get(k)

    @rule(k=_KEY, v=st.integers(min_value=0, max_value=2**30))
    def update(self, k, v):
        expect = k in self.model
        assert self.index.update(k, v) == expect
        if expect:
            self.model[k] = v

    @rule(k=_KEY)
    def delete(self, k):
        if not self.index.supports_delete:
            return
        expect = k in self.model
        assert self.index.delete(k) == expect
        self.model.pop(k, None)

    @rule(start=_KEY, count=st.integers(min_value=1, max_value=12))
    def scan(self, start, count):
        got = self.index.range_scan(start, count)
        expect = sorted(
            (k, v) for k, v in self.model.items() if k >= start
        )[:count]
        assert got == expect

    @invariant()
    def size_matches(self):
        if hasattr(self, "index"):
            assert len(self.index) == len(self.model)


class BPlusTreeMachine(IndexMachine):
    factory = staticmethod(lambda: BPlusTree(fanout=4))


class ALEXMachine(IndexMachine):
    factory = staticmethod(lambda: ALEX(target_leaf_keys=16, max_data_keys=64))


class LIPPMachine(IndexMachine):
    factory = staticmethod(lambda: LIPP(min_rebuild_size=16))


_settings = settings(max_examples=25, stateful_step_count=40, deadline=None)

TestBPlusTreeStateful = BPlusTreeMachine.TestCase
TestBPlusTreeStateful.settings = _settings
TestALEXStateful = ALEXMachine.TestCase
TestALEXStateful.settings = _settings
TestLIPPStateful = LIPPMachine.TestCase
TestLIPPStateful.settings = _settings
