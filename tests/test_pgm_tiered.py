"""PGM size-tiered merge policy (ablation backend)."""

import random

import pytest

from repro.indexes.pgm import PGMIndex


def test_policy_validation():
    with pytest.raises(ValueError):
        PGMIndex(merge_policy="leveled")
    with pytest.raises(ValueError):
        PGMIndex(merge_policy="tiered", tier_fanout=1)


def _fill(policy, n=3000, buffer_size=32, **kw):
    idx = PGMIndex(buffer_size=buffer_size, merge_policy=policy, **kw)
    idx.bulk_load([])
    for i in range(n):
        idx.insert(i * 7, i)
    return idx


def test_tiered_correctness_mixed_ops():
    idx = _fill("tiered")
    for i in range(0, 3000, 97):
        assert idx.lookup(i * 7) == i
    assert idx.lookup(5) is None
    got = idx.range_scan(0, 50)
    assert [k for k, _ in got] == [i * 7 for i in range(50)]


def test_tiered_allows_multiple_similar_runs():
    idx = _fill("tiered", tier_fanout=4)
    live = [s for s in idx.run_sizes() if s]
    assert len(live) >= 2  # several coexisting runs, unlike logarithmic
    total = sum(live) + len(idx._buffer)
    assert total == 3000


def test_tiered_bounds_run_count():
    idx = _fill("tiered", n=6000, tier_fanout=3)
    live = [s for s in idx.run_sizes() if s]
    # Size-tiered with fanout 3: at most ~3 runs per ~4x size band.
    assert len(live) <= 3 * 10


def test_tiered_shadowing_updates():
    idx = PGMIndex(buffer_size=16, merge_policy="tiered", check_duplicates=True)
    idx.bulk_load([(i, "old") for i in range(200)])
    for i in range(200):
        idx.update(i, f"new{i}")
    # Force enough flushes that merges definitely happened.
    for i in range(1000, 1400):
        idx.insert(i, 0)
    for i in range(0, 200, 13):
        assert idx.lookup(i) == f"new{i}"


def test_tiered_tombstones_respected():
    idx = PGMIndex(buffer_size=16, merge_policy="tiered", check_duplicates=True)
    idx.bulk_load([(i, i) for i in range(300)])
    for i in range(0, 300, 2):
        assert idx.delete(i)
    for i in range(1000, 1200):
        idx.insert(i, 0)  # trigger merges with tombstones in flight
    for i in range(0, 300, 26):
        assert idx.lookup(i) is None
        assert idx.lookup(i + 1) == i + 1


def test_tiered_writes_cheaper_than_logarithmic():
    """The classic trade: tiering lowers write amplification."""
    log = _fill("logarithmic", n=4000)
    tier = _fill("tiered", n=4000)
    from repro.core.cost import KEY_SHIFT

    assert tier.meter.total_units(KEY_SHIFT) < log.meter.total_units(KEY_SHIFT)


def test_tiered_lookups_probe_more_runs():
    log = _fill("logarithmic", n=4000)
    tier = _fill("tiered", n=4000)
    rng = random.Random(1)
    for idx in (log, tier):
        idx.meter.reset()
        for _ in range(500):
            idx.lookup(rng.randrange(4000) * 7)
    assert tier.meter.total_time() > log.meter.total_time() * 0.9
