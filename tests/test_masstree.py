"""Masstree: contract conformance plus permutation-node behaviour."""

from repro.indexes.masstree import Masstree, _FANOUT
from tests.index_contract import IndexContract


class TestMasstreeContract(IndexContract):
    def make(self) -> Masstree:
        return Masstree()


def test_border_nodes_append_only():
    """Inserts append physically; the permutation provides order."""
    idx = Masstree()
    idx.bulk_load([])
    for k in (50, 10, 30, 20, 40):
        idx.insert(k, k)
    # All in one border node; physical order is arrival order.
    border = idx._root
    assert border.keys == [50, 10, 30, 20, 40]
    assert border.sorted_items() == [(10, 10), (20, 20), (30, 30), (40, 40), (50, 50)]


def test_insert_shifts_one_key_only():
    """The Masstree write path never shifts data slots."""
    idx = Masstree()
    idx.bulk_load([(i * 2, i) for i in range(10)])
    idx.insert(5, 99)
    assert idx.last_op.keys_shifted == 1


def test_fanout_limit_forces_splits():
    idx = Masstree()
    idx.bulk_load([])
    for k in range(_FANOUT * 4):
        idx.insert(k, k)
    assert idx.range_scan(0, 100) == [(k, k) for k in range(_FANOUT * 4)]


def test_no_delete_support():
    assert not Masstree().supports_delete
