"""Unit and property tests for linear models and last-mile search."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexes.linear_model import (
    LinearModel,
    binary_search_lower,
    exponential_search,
    fmcd_model,
)


def test_train_perfect_line():
    keys = [10, 20, 30, 40, 50]
    m = LinearModel.train(keys)
    for i, k in enumerate(keys):
        assert abs(m.predict(k) - i) < 1e-9


def test_train_single_and_empty():
    assert LinearModel.train([]).predict(5) == 0.0
    m = LinearModel.train([42])
    assert m.predict(42) == 0.0


def test_train_degenerate_equal_keys():
    m = LinearModel.train([7, 7, 7])
    assert m.slope == 0.0


def test_train_large_keys_numerically_stable():
    base = 2**62
    keys = [base + i * 1000 for i in range(100)]
    m = LinearModel.train(keys)
    # float64 loses ~1 ulp at 2**62 magnitude even with an exact slope;
    # the C++ implementations share this limit, so allow error < 2 slots.
    for i, k in enumerate(keys):
        assert abs(m.predict(k) - i) < 2.0


def test_predict_clamped_bounds():
    m = LinearModel(slope=1.0, intercept=0.0)
    assert m.predict_clamped(-5, 10) == 0
    assert m.predict_clamped(100, 10) == 9
    assert m.predict_clamped(3, 10) == 3
    assert m.predict_clamped(3, 0) == 0


def test_endpoints_model_maps_range():
    m = LinearModel.endpoints(100, 200, 11)
    assert m.predict_clamped(100, 11) == 0
    assert m.predict_clamped(200, 11) == 10
    assert m.predict_clamped(150, 11) == 5


def test_scaled_model():
    m = LinearModel.endpoints(0, 100, 10)
    s = m.scaled(2.0)
    assert abs(s.predict(100) - 2 * m.predict(100)) < 1e-9


def test_fmcd_model_low_collisions_on_uniform():
    rng = random.Random(3)
    keys = sorted(rng.sample(range(10**9), 1000))
    n_slots = 2000
    m = fmcd_model(keys, n_slots)
    slots = [m.predict_clamped(k, n_slots) for k in keys]
    collisions = len(slots) - len(set(slots))
    assert collisions < len(keys) * 0.4


def test_fmcd_tiny_inputs():
    assert fmcd_model([], 10).predict(0) == 0.0
    m = fmcd_model([5], 10)
    assert isinstance(m, LinearModel)


@given(st.lists(st.integers(min_value=0, max_value=2**60), min_size=1, unique=True),
       st.integers(min_value=0, max_value=2**60))
@settings(max_examples=60, deadline=None)
def test_exponential_search_matches_binary(keys, key):
    keys = sorted(keys)
    for hint in (0, len(keys) // 2, len(keys) - 1):
        idx, _ = exponential_search(keys, key, hint)
        assert idx == binary_search_lower(keys, key)


def test_exponential_search_empty():
    assert exponential_search([], 5, 0) == (0, 0)


def test_exponential_search_hint_out_of_range():
    keys = [1, 2, 3]
    idx, _ = exponential_search(keys, 2, hint=99)
    assert idx == 1
    idx, _ = exponential_search(keys, 2, hint=-7)
    assert idx == 1


def test_binary_search_lower_bounds():
    keys = [10, 20, 20, 30]
    assert binary_search_lower(keys, 5) == 0
    assert binary_search_lower(keys, 20) == 1
    assert binary_search_lower(keys, 35) == 4
