"""HOT: contract conformance plus trie-specific behaviour."""

from repro.indexes.hot import HOT, _bit
from tests.index_contract import IndexContract


class TestHOTContract(IndexContract):
    def make(self) -> HOT:
        return HOT()


def test_bit_extraction_msb_first():
    assert _bit(1 << 63, 0) == 1
    assert _bit(1, 63) == 1
    assert _bit(1, 0) == 0


def test_compound_height_is_low():
    idx = HOT()
    idx.bulk_load([(i * 1000003 % (2**40), i) for i in range(1)])
    idx = HOT()
    items = sorted({(i * 1000003) % (2**40) for i in range(5000)})
    idx.bulk_load([(k, k) for k in items])
    # ~13 binary levels for 5k keys -> <= 4 compounds.
    assert idx.compound_height <= 5


def test_memory_smaller_than_btree():
    """Figure 8: HOT is the most space-efficient index."""
    from repro.indexes.btree import BPlusTree

    import random

    rng = random.Random(5)
    keys = sorted({rng.randrange(2**48) for _ in range(4000)})
    items = [(k, k) for k in keys]
    hot = HOT()
    hot.bulk_load(items)
    bt = BPlusTree(fanout=32)
    bt.bulk_load(items)
    assert hot.memory_usage().total < bt.memory_usage().total


def test_no_delete_support():
    idx = HOT()
    assert not idx.supports_delete


def test_insert_maintains_crit_bit_order():
    idx = HOT()
    idx.bulk_load([])
    keys = [0b1010, 0b1000, 0b1111, 0b0001, 0b0101]
    for k in keys:
        idx.insert(k, k)
    got = idx.range_scan(0, 10)
    assert [k for k, _ in got] == sorted(keys)
