"""Workload builders: ratios, determinism, validation."""

import pytest

from repro.core.workloads import (
    DELETE,
    INSERT,
    LOOKUP,
    SCAN,
    UPDATE,
    deletion_workload,
    mixed_workload,
    moving_hotspot_workload,
    payload,
    scan_workload,
    shift_workload,
    ycsb_workload,
)

KEYS = list(range(0, 40000, 4))


def _op_counts(wl):
    counts = {}
    for op in wl.operations:
        counts[op.op] = counts.get(op.op, 0) + 1
    return counts


def test_read_only_bulk_loads_everything():
    wl = mixed_workload(KEYS, 0.0, n_ops=1000, seed=1)
    assert len(wl.bulk_items) == len(KEYS)
    assert _op_counts(wl) == {LOOKUP: 1000}


def test_balanced_mix_ratio():
    wl = mixed_workload(KEYS, 0.5, n_ops=4000, seed=2)
    counts = _op_counts(wl)
    assert len(wl.bulk_items) == len(KEYS) // 2
    assert 0.4 < counts[INSERT] / 4000 < 0.6


def test_write_only_inserts_remaining_keys():
    wl = mixed_workload(KEYS, 1.0, seed=3)
    counts = _op_counts(wl)
    assert counts[INSERT] == len(KEYS) - len(KEYS) // 2
    inserted = {op.key for op in wl.operations if op.op == INSERT}
    loaded = {k for k, _ in wl.bulk_items}
    assert not (inserted & loaded)
    assert inserted | loaded == set(KEYS)


def test_mixed_workload_deterministic():
    a = mixed_workload(KEYS, 0.2, n_ops=500, seed=7)
    b = mixed_workload(KEYS, 0.2, n_ops=500, seed=7)
    assert [(o.op, o.key) for o in a.operations] == [(o.op, o.key) for o in b.operations]


def test_mixed_validates_fraction():
    with pytest.raises(ValueError):
        mixed_workload(KEYS, 1.5)


def test_lookups_target_present_keys():
    wl = mixed_workload(KEYS, 0.2, n_ops=2000, seed=4)
    loaded = {k for k, _ in wl.bulk_items}
    for op in wl.operations:
        if op.op == LOOKUP:
            assert op.key in loaded


def test_deletion_workload_deletes_half():
    wl = deletion_workload(KEYS, 1.0, seed=5)
    counts = _op_counts(wl)
    assert counts[DELETE] == len(KEYS) // 2
    deleted = [op.key for op in wl.operations if op.op == DELETE]
    assert len(set(deleted)) == len(deleted)  # each key deleted once


def test_deletion_zero_fraction_is_read_only():
    wl = deletion_workload(KEYS, 0.0, n_ops=300, seed=6)
    assert _op_counts(wl) == {LOOKUP: 300}


def test_shift_workload_scales_domain():
    bulk = list(range(1000, 3000, 2))  # gaps so rescaled keys fit
    incoming = [10**12 + i * 10**9 for i in range(500)]
    wl = shift_workload(bulk, incoming, seed=7)
    inserts = [op.key for op in wl.operations if op.op == INSERT]
    assert inserts
    assert min(inserts) >= 999
    assert max(inserts) <= 3100  # rescaled into bulk's domain (plus nudges)
    assert len(set(inserts)) == len(inserts)
    loaded = {k for k, _ in wl.bulk_items}
    assert not (set(inserts) & loaded)


def test_scan_workload_sizes():
    wl = scan_workload(KEYS, scan_size=50, n_scans=100, seed=8)
    assert all(op.op == SCAN and op.count == 50 for op in wl.operations)
    with pytest.raises(ValueError):
        scan_workload(KEYS, scan_size=0, n_scans=10)


def test_ycsb_variants():
    a = ycsb_workload(KEYS, "A", n_ops=2000, seed=9)
    b = ycsb_workload(KEYS, "B", n_ops=2000, seed=9)
    c = ycsb_workload(KEYS, "C", n_ops=2000, seed=9)
    assert 0.4 < _op_counts(a).get(UPDATE, 0) / 2000 < 0.6
    assert 0.02 < _op_counts(b).get(UPDATE, 0) / 2000 < 0.10
    assert _op_counts(c) == {LOOKUP: 2000}
    with pytest.raises(ValueError):
        ycsb_workload(KEYS, "G", n_ops=10)
    with pytest.raises(ValueError):
        ycsb_workload(KEYS, "AB", n_ops=10)


def test_ycsb_d_read_latest():
    wl = ycsb_workload(KEYS, "D", n_ops=3000, seed=3)
    counts = _op_counts(wl)
    assert 0.02 < counts.get(INSERT, 0) / 3000 < 0.09
    inserts = [op.key for op in wl.operations if op.op == INSERT]
    assert all(k > max(KEYS) for k in inserts)  # new keys append
    # Lookups target the recent window, not the whole keyspace.
    lookups = [op.key for op in wl.operations if op.op == LOOKUP]
    assert min(lookups) >= sorted(KEYS)[-200]


def test_ycsb_e_scan_heavy():
    wl = ycsb_workload(KEYS, "E", n_ops=2000, seed=4)
    counts = _op_counts(wl)
    assert counts.get(SCAN, 0) > 1700
    lengths = [op.count for op in wl.operations if op.op == SCAN]
    assert 1 <= min(lengths) and max(lengths) <= 100
    assert 20 < sum(lengths) / len(lengths) < 80


def test_ycsb_f_read_modify_write():
    wl = ycsb_workload(KEYS, "F", n_ops=2000, seed=5)
    counts = _op_counts(wl)
    assert 0.4 < counts.get(UPDATE, 0) / 2000 < 0.6
    assert counts.get(INSERT, 0) == 0


def test_ycsb_keys_are_zipfian_skewed():
    wl = ycsb_workload(KEYS, "C", n_ops=5000, seed=10)
    from collections import Counter

    counts = Counter(op.key for op in wl.operations)
    top = counts.most_common(1)[0][1]
    assert top > 5000 * 0.02  # hottest key far above uniform (1/10000)


def test_payload_deterministic_nonzero():
    assert payload(42) == payload(42)
    assert payload(42) != payload(43)


def test_workload_rejects_unsorted_bulk():
    from repro.core.workloads import Workload

    with pytest.raises(ValueError):
        Workload("bad", [(5, 1), (3, 1)], [])


def test_workload_save_load_roundtrip(tmp_path):
    from repro.core.workloads import load_workload, save_workload

    wl = mixed_workload(KEYS[:2000], 0.5, n_ops=500, seed=11)
    path = str(tmp_path / "wl.json")
    save_workload(wl, path)
    back = load_workload(path)
    assert back.name == wl.name
    assert back.bulk_items == wl.bulk_items
    assert [(o.op, o.key, o.value, o.count) for o in back.operations] == \
           [(o.op, o.key, o.value, o.count) for o in wl.operations]
    # Replay produces identical results on both copies.
    from repro import BPlusTree, execute

    a = execute(BPlusTree(), wl)
    b = execute(BPlusTree(), back)
    assert a.virtual_ns == b.virtual_ns


def test_load_workload_rejects_foreign_file(tmp_path):
    path = tmp_path / "x.json"
    path.write_text('{"format": "other"}')
    from repro.core.workloads import load_workload

    with pytest.raises(ValueError):
        load_workload(str(path))


# -- moving hotspot (sharded serving tier) -------------------------------------

def test_moving_hotspot_deterministic():
    a = moving_hotspot_workload(KEYS, n_ops=2000, seed=4)
    b = moving_hotspot_workload(KEYS, n_ops=2000, seed=4)
    assert [(op.op, op.key) for op in a.operations] == \
        [(op.op, op.key) for op in b.operations]
    c = moving_hotspot_workload(KEYS, n_ops=2000, seed=5)
    assert [(op.op, op.key) for op in a.operations] != \
        [(op.op, op.key) for op in c.operations]


def test_moving_hotspot_bulk_loads_everything_exactly_n_ops():
    wl = moving_hotspot_workload(KEYS, n_ops=3000, seed=1)
    assert wl.name == "moving-hotspot"
    assert [k for k, _ in wl.bulk_items] == sorted(KEYS)
    assert len(wl.operations) == 3000
    counts = _op_counts(wl)
    assert counts.get(LOOKUP, 0) + counts.get(INSERT, 0) == 3000
    assert 0.0 < wl.write_fraction < 0.5


def test_moving_hotspot_inserts_only_fresh_keys():
    wl = moving_hotspot_workload(KEYS, n_ops=3000, seed=2)
    present = {k for k, _ in wl.bulk_items}
    inserted = set()
    for op in wl.operations:
        if op.op == INSERT:
            assert op.key not in present and op.key not in inserted
            inserted.add(op.key)
    assert inserted  # the hot phases really write


def test_moving_hotspot_hot_range_drifts():
    """Each phase's hot lookups concentrate, and the center moves."""
    phases = 4
    wl = moving_hotspot_workload(KEYS, n_ops=4000, phases=phases,
                                 hot_frac=0.05, seed=3)
    warm = int(4000 * 0.15)
    phase_ops = (4000 - warm) // (phases + 1)
    lo, hi = min(KEYS), max(KEYS)
    span = hi - lo
    centers = []
    for p in range(phases):
        chunk = wl.operations[warm + p * phase_ops:
                              warm + (p + 1) * phase_ops]
        keys = sorted(op.key for op in chunk if op.op == LOOKUP)
        # Hot mass: the interquartile keys sit in a narrow band.
        q1 = keys[len(keys) // 4]
        q3 = keys[3 * len(keys) // 4]
        assert (q3 - q1) < 0.3 * span
        centers.append((q1 + q3) / 2)
    assert centers == sorted(centers)  # the hotspot drifts monotonically
    assert centers[-1] - centers[0] > 0.4 * span
