"""The fuzz pipeline: generate -> oracle -> shrink -> replayable stream.

The central scenario is the acceptance test for the whole subsystem: a
deliberately broken index (a B+tree subclass that corrupts leaf order
on every 7th insert) must be caught by a short fuzz run, shrunk to a
minimal stream, flagged by ``debug_validate()`` with its named rule,
and reproduce the failure after a save/load round trip.
"""

import random

import pytest

from repro import BPlusTree
from repro.core.opstream import (
    STRESS_FACTORIES,
    DifferentialObserver,
    OpStream,
    fuzz_index,
    fuzzable_specs,
    generate_stream,
    replay_file,
    run_oracle,
    shrink_stream,
    stress_factory,
)
from repro.core.registry import REGISTRY
from repro.core.workloads import DELETE, INSERT, SCAN, Operation


class BrokenBPlusTree(BPlusTree):
    """Every 7th insert appends at the current first leaf, unordered."""

    def __init__(self):
        super().__init__(fanout=8)
        self._n = 0

    def insert(self, key, value):
        self._n += 1
        if self._n % 7 == 0:
            node = self._root
            while hasattr(node, "children"):
                node = node.children[0]
            node.keys.append(key)
            node.values.append(value)
            self._size += 1
            return True
        return super().insert(key, value)


class LyingLookupBPlusTree(BPlusTree):
    """Structurally sound, but lookups return a corrupted payload."""

    def __init__(self):
        super().__init__(fanout=8)

    def lookup(self, key):
        value = super().lookup(key)
        return None if value is None else value ^ 1


class CrashingBPlusTree(BPlusTree):
    def __init__(self):
        super().__init__(fanout=8)
        self._n = 0

    def insert(self, key, value):
        self._n += 1
        if self._n == 40:
            raise RuntimeError("synthetic crash")
        return super().insert(key, value)


def _btree_spec():
    return REGISTRY.get("B+tree")


# ---------------------------------------------------------------------------
# Stream generation
# ---------------------------------------------------------------------------

class TestGenerateStream:
    def test_deterministic(self):
        spec = _btree_spec()
        a = generate_stream(spec, seed=3, n_ops=100, n_bulk=32)
        b = generate_stream(spec, seed=3, n_ops=100, n_bulk=32)
        assert a.bulk_keys == b.bulk_keys
        assert [(o.op, o.key, o.value, o.count) for o in a.ops] == \
               [(o.op, o.key, o.value, o.count) for o in b.ops]
        c = generate_stream(spec, seed=4, n_ops=100, n_bulk=32)
        assert [(o.op, o.key) for o in a.ops] != [(o.op, o.key) for o in c.ops]

    def test_respects_capabilities(self):
        no_delete = REGISTRY.get("XIndex")
        stream = generate_stream(no_delete, seed=1, n_ops=400, n_bulk=32)
        assert not any(op.op == DELETE for op in stream.ops)
        full = generate_stream(_btree_spec(), seed=1, n_ops=400, n_bulk=32)
        kinds = {op.op for op in full.ops}
        assert DELETE in kinds and INSERT in kinds and SCAN in kinds

    def test_fuzzable_specs_excludes_read_only(self):
        names = [s.name for s in fuzzable_specs()]
        assert "RMI" not in names
        assert len(names) == 11

    def test_stress_factories_are_registered_names(self):
        for name in STRESS_FACTORIES:
            assert name in REGISTRY


# ---------------------------------------------------------------------------
# Persistence
# ---------------------------------------------------------------------------

class TestPersistence:
    def test_roundtrip_exact(self, tmp_path):
        stream = generate_stream(_btree_spec(), seed=9, n_ops=60, n_bulk=16)
        stream.name = "roundtrip"
        path = str(tmp_path / "s.jsonl")
        stream.save(path)
        loaded = OpStream.load(path)
        assert loaded.index_name == stream.index_name
        assert loaded.seed == stream.seed
        assert loaded.name == "roundtrip"
        assert loaded.bulk_keys == stream.bulk_keys
        assert [(o.op, o.key, o.value, o.count) for o in loaded.ops] == \
               [(o.op, o.key, o.value, o.count) for o in stream.ops]

    def test_load_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text('{"schema_version": 1, "kind": "other"}\n')
        with pytest.raises(ValueError):
            OpStream.load(str(path))

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ValueError):
            OpStream.load(str(tmp_path / "absent.jsonl"))


# ---------------------------------------------------------------------------
# The oracle
# ---------------------------------------------------------------------------

class TestOracle:
    def test_clean_index_passes(self):
        stream = generate_stream(_btree_spec(), seed=2, n_ops=300, n_bulk=64)
        report = run_oracle(stress_factory("B+tree"), stream)
        assert report.ok
        assert report.failure_kind is None

    def test_structural_bug_is_a_violation(self):
        stream = generate_stream(_btree_spec(), seed=2, n_ops=300, n_bulk=64)
        report = run_oracle(BrokenBPlusTree, stream)
        assert not report.ok
        assert report.failure_kind == "violation"

    def test_payload_bug_is_a_mismatch(self):
        """Value-level corruption is invisible to hit/miss flags — the
        differential oracle catches it through OpEvent.result."""
        stream = generate_stream(_btree_spec(), seed=2, n_ops=200, n_bulk=64)
        report = run_oracle(LyingLookupBPlusTree, stream)
        assert not report.ok
        assert report.failure_kind == "mismatch"
        assert any(m.op == "lookup" for m in report.mismatches)

    def test_crash_is_captured_not_raised(self):
        stream = generate_stream(_btree_spec(), seed=2, n_ops=300, n_bulk=64)
        report = run_oracle(CrashingBPlusTree, stream)
        assert report.failure_kind == "crash"
        assert "synthetic crash" in report.crash

    def test_scan_rows_are_differenced(self):
        class ShortScanBPlusTree(BPlusTree):
            def __init__(self):
                super().__init__(fanout=8)

            def range_scan(self, start, count):
                rows = super().range_scan(start, count)
                return rows[:-1] if len(rows) > 1 else rows

        stream = generate_stream(_btree_spec(), seed=2, n_ops=300, n_bulk=64)
        report = run_oracle(ShortScanBPlusTree, stream)
        assert report.failure_kind == "mismatch"
        assert any(m.op == "scan" for m in report.mismatches)

    def test_differential_observer_model_is_ground_truth(self):
        """One wrong outcome yields one mismatch, not a cascade."""
        obs = DifferentialObserver()

        class Ev:
            def __init__(self, seq, op, ok=True, result=None):
                self.seq, self.op, self.ok, self.result = seq, op, ok, result

        class WL:
            bulk_items = [(1, 10), (2, 20)]

        obs.on_phase("measure", None, WL)
        # Index wrongly rejects a fresh insert; model keeps the key.
        obs.on_op(Ev(0, Operation(INSERT, 5, 50), ok=False), None)
        assert len(obs.mismatches) == 1
        # Later ops compare against the model that *includes* key 5.
        obs.on_op(Ev(1, Operation("lookup", 5), ok=True, result=50), None)
        assert len(obs.mismatches) == 1


# ---------------------------------------------------------------------------
# Shrinking + the full pipeline
# ---------------------------------------------------------------------------

class TestShrinkAndFuzz:
    def test_fuzz_finds_shrinks_and_names_the_rule(self, tmp_path):
        spec = _btree_spec()
        failure = fuzz_index(spec, budget=2000, seed=0,
                             factory=BrokenBPlusTree)
        assert failure is not None
        # Shrunk far below the generated stream.
        assert len(failure.stream.ops) < failure.original_ops // 4
        # The shrunk stream still fails, with the named structural rule.
        report = run_oracle(BrokenBPlusTree, failure.stream)
        assert not report.ok
        rules = {tv.violation.rule for tv in report.violations}
        assert "btree.keys-sorted" in rules
        # And it survives a save/load round trip as a repro file.
        path = str(tmp_path / "repro.jsonl")
        failure.stream.save(path)
        replayed = run_oracle(BrokenBPlusTree, OpStream.load(path))
        assert not replayed.ok

    def test_shrink_returns_passing_stream_unchanged(self):
        stream = generate_stream(_btree_spec(), seed=2, n_ops=50, n_bulk=16)
        shrunk = shrink_stream(stress_factory("B+tree"), stream)
        assert shrunk is stream

    def test_fuzz_clean_index_returns_none(self):
        assert fuzz_index(_btree_spec(), budget=500, seed=1) is None

    def test_replay_file_uses_recorded_index(self, tmp_path):
        stream = generate_stream(_btree_spec(), seed=11, n_ops=80, n_bulk=16)
        path = str(tmp_path / "c.jsonl")
        stream.save(path)
        assert replay_file(path).ok
