"""The instance lifecycle layer: state machine, admission, telemetry."""

import random

import pytest

from repro.core.instance import (
    DRAINING,
    LOADING,
    MIGRATING,
    RETIRED,
    SERVING,
    STATES,
    AdmissionError,
    IndexInstance,
    StateError,
)
from repro.core.results import result_record
from repro.core.runner import ExecutionEngine, execute
from repro.core.sweep import result_fingerprint
from repro.core.workloads import (
    DELETE,
    INSERT,
    LOOKUP,
    SCAN,
    UPDATE,
    mixed_workload,
    payload,
)
from repro.indexes.alex import ALEX
from repro.indexes.btree import BPlusTree

KEYS = sorted(random.Random(0).sample(range(1, 50_000_000), 4000))
ITEMS = [(k, payload(k)) for k in KEYS]


# -- state machine -------------------------------------------------------------

def test_healthy_lifecycle_walk():
    inst = IndexInstance(BPlusTree())
    assert inst.state == LOADING
    inst.bulk_load(ITEMS[:100])
    assert inst.state == SERVING
    inst.advance(MIGRATING).advance(DRAINING).advance(RETIRED)
    assert inst.state == RETIRED


def test_rollback_edge_migrating_to_serving():
    inst = IndexInstance(BPlusTree(), state=MIGRATING)
    inst.advance(SERVING, "aborted")
    assert inst.state == SERVING


@pytest.mark.parametrize("start,target", [
    (LOADING, MIGRATING), (LOADING, DRAINING), (SERVING, LOADING),
    (DRAINING, SERVING), (DRAINING, MIGRATING), (RETIRED, SERVING),
    (RETIRED, LOADING),
])
def test_illegal_transitions_raise(start, target):
    inst = IndexInstance(BPlusTree(), state=start)
    with pytest.raises(StateError):
        inst.advance(target)
    assert inst.state == start  # a refused transition changes nothing


def test_unknown_state_rejected():
    with pytest.raises(StateError):
        IndexInstance(BPlusTree(), state="zombie")
    with pytest.raises(StateError):
        IndexInstance(BPlusTree()).advance("zombie")


def test_transitions_are_recorded_with_reasons():
    inst = IndexInstance(BPlusTree(), name="b0")
    inst.bulk_load(ITEMS[:10])
    inst.advance(MIGRATING, "moving to ALEX")
    states = [e for e in inst.events if e["event"] == "state"]
    assert [(e["from"], e["to"]) for e in states] == [
        (LOADING, SERVING), (SERVING, MIGRATING)]
    assert states[1]["reason"] == "moving to ALEX"


# -- admission policy ----------------------------------------------------------

def test_admission_matrix():
    all_ops = (LOOKUP, INSERT, UPDATE, DELETE, SCAN)
    admitted = {
        LOADING: set(),
        SERVING: set(all_ops),
        MIGRATING: set(all_ops),
        DRAINING: {LOOKUP, SCAN},
        RETIRED: set(),
    }
    for state in STATES:
        inst = IndexInstance(BPlusTree(), state=state)
        got = {op for op in all_ops if inst.admits(op)}
        assert got == admitted[state], state


def test_admit_raises_and_counts_rejections():
    inst = IndexInstance(BPlusTree(), state=DRAINING)
    inst.admit(LOOKUP)  # reads pass while draining
    with pytest.raises(AdmissionError) as exc:
        inst.admit(INSERT)
    assert "draining" in str(exc.value)
    with pytest.raises(AdmissionError):
        inst.admit(INSERT)
    assert inst.rejected == {INSERT: 2}
    assert inst.status()["rejected"] == {INSERT: 2}


def test_bulk_load_requires_loading_state():
    inst = IndexInstance(BPlusTree())
    inst.bulk_load(ITEMS[:10])
    with pytest.raises(StateError):
        inst.bulk_load(ITEMS[:10])


# -- telemetry-fed status ------------------------------------------------------

def test_engine_run_feeds_instance_status():
    inst = IndexInstance.wrap(ALEX())
    wl = mixed_workload(KEYS, 0.5, n_ops=2000, seed=1)
    execute(inst, wl)
    status = inst.status()
    assert inst.state == SERVING
    assert status["ops"] == 2000
    assert status["op_counts"][INSERT] > 0
    assert status["op_counts"][LOOKUP] > 0
    # ALEX under a 50% insert mix does structural work; the observer
    # hook attributes the most recent SMO's stream position.
    assert status["smo_count"] > 0
    assert 0 <= status["last_smo_seq"] < 2000
    assert status["size"] == len(inst.index)


def test_backfill_progress_events_feed_status():
    inst = IndexInstance(BPlusTree())
    seen = []
    inst.listeners.append(seen.append)
    inst.note_backfill(10, 100)
    inst.note_backfill(100, 100, stage="verify")
    assert inst.status()["progress"] == {
        "event": "progress", "stage": "verify", "done": 100, "total": 100}
    assert [e["done"] for e in seen] == [10, 100]


def test_wrap_is_idempotent():
    inst = IndexInstance.wrap(BPlusTree())
    assert IndexInstance.wrap(inst) is inst


# -- engine routing ------------------------------------------------------------

def test_engine_accepts_instance_and_bare_index():
    wl = mixed_workload(KEYS, 0.2, n_ops=1500, seed=2)
    bare = ExecutionEngine().run(BPlusTree(), wl)
    wrapped = ExecutionEngine().run(IndexInstance.wrap(BPlusTree()), wl)
    assert (result_fingerprint(result_record(bare))
            == result_fingerprint(result_record(wrapped)))


def test_engine_refuses_bulk_load_into_serving_instance():
    inst = IndexInstance(BPlusTree())
    inst.bulk_load(ITEMS[:50])
    wl = mixed_workload(KEYS[:100], 0.0, n_ops=50, seed=3)
    with pytest.raises(RuntimeError, match="serving"):
        ExecutionEngine().run(inst, wl)


def test_execute_collapsed_forwards_engine_options():
    # The module-level wrapper is now a pure delegation: every engine
    # option must still arrive (sample_every changes sampling counts).
    wl = mixed_workload(KEYS, 0.0, n_ops=1000, seed=4)
    dense = execute(BPlusTree(), wl, sample_every=1)
    sparse = execute(BPlusTree(), wl, sample_every=101)
    assert dense.lookup_latency.count == 1000
    assert sparse.lookup_latency.count == 10
    with pytest.raises(TypeError):
        execute(BPlusTree(), wl, no_such_option=1)


def test_fingerprint_parity_with_pre_instance_records():
    """The sweep-cache contract: routing runs through the instance
    layer must leave result fingerprints bit-identical."""
    wl = mixed_workload(KEYS, 0.5, n_ops=3000, seed=5)
    fp_bare = result_fingerprint(result_record(execute(ALEX(), wl)))
    fp_inst = result_fingerprint(result_record(
        execute(IndexInstance.wrap(ALEX()), wl)))
    assert fp_bare == fp_inst
