"""Bench history: provenance, trajectories, and the regression gate."""

import json

import pytest

from repro.core.bench_history import (
    HISTORY_KIND,
    BenchRegression,
    append_history,
    check_history,
    git_rev,
    history_fingerprint,
    history_record,
    load_history,
    lower_is_better,
    provenance,
)
from repro.core.results import SCHEMA_VERSION, load_jsonl

CTX = {"dataset": "covid", "n": 1000, "seed": 0}


# -- provenance ----------------------------------------------------------------

def test_provenance_fields():
    p = provenance()
    assert p["schema_version"] == SCHEMA_VERSION
    assert p["git_rev"] and isinstance(p["git_rev"], str)
    assert p["timestamp"].endswith("Z") and "T" in p["timestamp"]


def test_git_rev_in_a_repo_is_short_hex():
    rev = git_rev()
    assert rev == "unknown" or (4 <= len(rev) <= 16
                                and all(c in "0123456789abcdef" for c in rev))


# -- records and fingerprints --------------------------------------------------

def test_record_shape_and_fingerprint_determinism():
    a = history_record("bench", {"mops": 2.0}, info={"wall": 1.23}, context=CTX)
    b = history_record("bench", {"mops": 2.0}, info={"wall": 9.99}, context=CTX)
    assert a["kind"] == HISTORY_KIND
    assert a["fingerprint"] == b["fingerprint"]  # info never fingerprints
    assert a["schema_version"] == SCHEMA_VERSION
    c = history_record("bench", {"mops": 2.1}, context=CTX)
    assert c["fingerprint"] != a["fingerprint"]
    assert history_fingerprint("bench", CTX, {"mops": 2.0}) == a["fingerprint"]


def test_append_and_load_filter_by_suite_and_context(tmp_path):
    path = str(tmp_path / "hist.jsonl")
    append_history(path, "bench", {"mops": 2.0}, context=CTX)
    append_history(path, "sweep", {"mops": 5.0}, context=CTX)
    append_history(path, "bench", {"mops": 3.0}, context={**CTX, "n": 2000})
    assert len(load_history(path)) == 3
    assert len(load_history(path, suite="bench")) == 2
    assert len(load_history(path, suite="bench", context=CTX)) == 1
    assert load_history(str(tmp_path / "missing.jsonl")) == []


def test_records_are_versioned_results_artifacts(tmp_path):
    path = str(tmp_path / "hist.jsonl")
    append_history(path, "bench", {"mops": 2.0}, context=CTX)
    raw = load_jsonl(path)
    assert raw[0]["schema_version"] == SCHEMA_VERSION
    # Foreign records in the same stream are ignored, not crashed on.
    with open(path, "a") as f:
        f.write(json.dumps({"kind": "run", "schema_version": 1}) + "\n")
    assert len(load_history(path)) == 1


# -- direction inference -------------------------------------------------------

@pytest.mark.parametrize("metric,lower", [
    ("virtual_lookup_p99_ns", True),
    ("overhead_ns", True),
    ("client_latency", True),
    ("wall_seconds", True),
    ("virtual_lookup_mops", False),
    ("ops_per_vsec", False),
    ("speedup", False),
    ("backfill_keys_per_vsec", False),
])
def test_lower_is_better_inference(metric, lower):
    assert lower_is_better(metric) is lower


# -- the gate ------------------------------------------------------------------

def test_empty_baseline_passes(tmp_path):
    path = str(tmp_path / "hist.jsonl")
    assert check_history(path, "bench", {"mops": 2.0}, context=CTX) == []


def test_throughput_regression_fails_and_improvement_passes(tmp_path):
    path = str(tmp_path / "hist.jsonl")
    append_history(path, "bench", {"mops": 2.0}, context=CTX)
    # 20% drop against a 15% tolerance: gate trips.
    bad = check_history(path, "bench", {"mops": 1.6}, context=CTX)
    assert len(bad) == 1
    reg = bad[0]
    assert reg.metric == "mops" and reg.baseline == 2.0
    assert reg.change == pytest.approx(-0.2)
    assert "dropped" in str(reg) and "-20.0%" in str(reg)
    # Within tolerance and improvements both pass.
    assert check_history(path, "bench", {"mops": 1.8}, context=CTX) == []
    assert check_history(path, "bench", {"mops": 9.0}, context=CTX) == []


def test_latency_regresses_upward(tmp_path):
    path = str(tmp_path / "hist.jsonl")
    append_history(path, "bench", {"p99_ns": 100.0}, context=CTX)
    bad = check_history(path, "bench", {"p99_ns": 130.0}, context=CTX)
    assert len(bad) == 1 and "rose" in str(bad[0])
    assert check_history(path, "bench", {"p99_ns": 50.0}, context=CTX) == []


def test_baseline_is_the_median_not_the_latest(tmp_path):
    path = str(tmp_path / "hist.jsonl")
    for mops in (2.0, 2.1, 50.0):  # one absurd outlier record
        append_history(path, "bench", {"mops": mops}, context=CTX)
    # Median 2.1 is the baseline: 1.9 is within 15%, despite the outlier.
    assert check_history(path, "bench", {"mops": 1.9}, context=CTX) == []
    assert len(check_history(path, "bench", {"mops": 1.5}, context=CTX)) == 1


def test_different_context_starts_a_fresh_trajectory(tmp_path):
    path = str(tmp_path / "hist.jsonl")
    append_history(path, "bench", {"mops": 10.0}, context=CTX)
    # Same suite, different params: prior record is not a baseline.
    assert check_history(path, "bench", {"mops": 1.0},
                         context={**CTX, "n": 9999}) == []


def test_regressions_sorted_worst_first_and_tolerance_validated(tmp_path):
    path = str(tmp_path / "hist.jsonl")
    append_history(path, "bench", {"a_mops": 10.0, "b_mops": 10.0}, context=CTX)
    bad = check_history(path, "bench", {"a_mops": 8.0, "b_mops": 2.0},
                        context=CTX)
    assert [r.metric for r in bad] == ["b_mops", "a_mops"]
    with pytest.raises(ValueError):
        check_history(path, "bench", {"a_mops": 8.0}, tolerance=-0.1)


def test_unseen_metric_and_zero_baseline_are_skipped(tmp_path):
    path = str(tmp_path / "hist.jsonl")
    append_history(path, "bench", {"mops": 0.0}, context=CTX)
    assert check_history(path, "bench",
                         {"mops": 0.0, "brand_new": 1.0}, context=CTX) == []


def test_regression_str_mentions_tolerance():
    reg = BenchRegression(suite="bench", metric="mops", baseline=2.0,
                          current=1.0, tolerance=0.15)
    assert "tolerance 15%" in str(reg)
    assert reg.change == pytest.approx(-0.5)
