"""Batch-operation parity: batched execution must be observationally
identical to scalar execution.

The contract under test (see ``docs/performance.md``): for every index
in the registry, running the same workload with ``batch_ops`` enabled
must produce the same values, the same ``RunResult`` fingerprint, the
same virtual time, the *identical* cost-meter state (content and
counter insertion order — the virtual clock sums floats in insertion
order), and the same per-op records and oracle verdicts as the scalar
loop.
"""

from __future__ import annotations

import random

import pytest

from repro.core.opstream import DifferentialObserver
from repro.core.registry import REGISTRY
from repro.core.results import result_record
from repro.core.runner import ExecutionEngine, execute
from repro.core.sweep import result_fingerprint
from repro.core.workloads import mixed_workload
from repro.indexes import batching

ALL_NAMES = [spec.name for spec in REGISTRY]
BATCH_NAMES = [spec.name for spec in REGISTRY if spec.supports_batch]


def _keys(n=3000, seed=5, hi=30_000_000):
    rng = random.Random(seed)
    return sorted(rng.sample(range(1, hi), n))


def _pair(name):
    spec = REGISTRY.get(name)
    return spec, spec.factory(), spec.factory()


def _assert_meters_identical(a, b, label=""):
    assert list(a.meter._counts.items()) == list(b.meter._counts.items()), (
        f"{label}: cost counters diverge")
    assert a.meter.total_time() == b.meter.total_time(), (
        f"{label}: virtual clocks diverge")


# ---------------------------------------------------------------------------
# Engine-level parity over the whole registry
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", ALL_NAMES)
def test_engine_batch_fingerprint_parity(name):
    """Same workload, batch vs scalar engine: identical fingerprint,
    virtual time, and meter state for every registered index."""
    spec, a, b = _pair(name)
    keys = _keys()
    wf = 0.2 if spec.supports_insert else 0.0
    wl = mixed_workload(keys, wf, n_ops=2500, seed=3)
    ra = execute(a, wl, batch_ops=256)
    rb = execute(b, wl)
    assert result_fingerprint(result_record(ra)) == \
        result_fingerprint(result_record(rb))
    assert ra.virtual_ns == rb.virtual_ns
    _assert_meters_identical(a, b, name)


@pytest.mark.parametrize("name", BATCH_NAMES)
def test_engine_batch_oracle_and_events(name):
    """The differential oracle and a per-op event recorder see the
    identical stream under batched execution."""
    spec, a, b = _pair(name)
    keys = _keys(2000, seed=9)
    wf = 0.3 if spec.supports_insert else 0.0
    wl = mixed_workload(keys, wf, n_ops=2000, seed=7)

    class Recorder:
        def __init__(self):
            self.events = []

        def on_phase(self, phase, index, workload):
            pass

        def on_op(self, event, latency):
            self.events.append((event.seq, event.op.op, event.op.key,
                                event.ok, event.result, event.record,
                                latency))

        def on_smo(self, event):
            self.events.append(("smo", event.seq))

    oa, ob = DifferentialObserver(), DifferentialObserver()
    rec_a, rec_b = Recorder(), Recorder()
    ExecutionEngine(batch_ops=64, observers=[oa, rec_a]).run(a, wl)
    ExecutionEngine(observers=[ob, rec_b]).run(b, wl)
    assert oa.ok and ob.ok
    assert rec_a.events == rec_b.events
    _assert_meters_identical(a, b, name)


# ---------------------------------------------------------------------------
# Direct lookup_many parity
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", ALL_NAMES)
def test_lookup_many_parity(name):
    spec, a, b = _pair(name)
    keys = _keys(2500, seed=13)
    items = [(k, k * 3) for k in keys]
    a.bulk_load(items)
    b.bulk_load(items)
    rng = random.Random(1)
    qs = rng.sample(keys, 400) + [k + 1 for k in rng.sample(keys, 400)]
    rng.shuffle(qs)
    recs = []
    va = a.lookup_many(qs, records=recs)
    vb, rb = [], []
    for k in qs:
        vb.append(b.lookup(k))
        rb.append(b.last_op)
    assert va == vb
    assert recs == rb
    assert a.last_op == b.last_op
    _assert_meters_identical(a, b, name)


@pytest.mark.parametrize("name", BATCH_NAMES)
def test_lookup_many_parity_after_mutations(name):
    """Interleave inserts (cache invalidation, SMOs) with batches."""
    spec, a, b = _pair(name)
    keys = _keys(2000, seed=17)
    items = [(k, k * 3) for k in keys]
    a.bulk_load(items)
    b.bulk_load(items)
    if not spec.supports_insert:
        pytest.skip(f"{name} is read-only")
    for rnd in range(3):
        rng = random.Random(100 + rnd)
        new = rng.sample(range(30_000_001, 60_000_000), 300)
        for k in new:
            assert a.insert(k, k) == b.insert(k, k)
        qs = rng.sample(keys, 150) + rng.sample(new, 100) + \
            [k + 7 for k in rng.sample(new, 50)]
        rng.shuffle(qs)
        assert a.lookup_many(qs) == [b.lookup(k) for k in qs]
        _assert_meters_identical(a, b, f"{name} round {rnd}")


# ---------------------------------------------------------------------------
# Edge cases
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", BATCH_NAMES)
def test_empty_batch_and_batch_of_one(name):
    spec, a, b = _pair(name)
    keys = _keys(600, seed=23)
    a.bulk_load([(k, k) for k in keys])
    b.bulk_load([(k, k) for k in keys])
    assert a.lookup_many([]) == []
    assert a.lookup_many([keys[5]]) == [b.lookup(keys[5])]
    assert a.lookup_many([keys[0] - 1]) == [b.lookup(keys[0] - 1)]
    _assert_meters_identical(a, b, name)


def test_insert_many_duplicate_keys_in_one_batch():
    """Duplicate keys inside one insert_many behave like the scalar
    sequence: first wins, later duplicates are rejected."""
    for name in BATCH_NAMES:
        spec = REGISTRY.get(name)
        if not spec.supports_insert:
            continue
        a, b = spec.factory(), spec.factory()
        keys = _keys(400, seed=29)
        a.bulk_load([(k, k) for k in keys])
        b.bulk_load([(k, k) for k in keys])
        pairs = [(10_000_001, 1), (10_000_002, 2), (10_000_001, 3),
                 (keys[0], 4), (10_000_002, 5)]
        got = a.insert_many(pairs)
        want = [b.insert(k, v) for k, v in pairs]
        # Duplicate semantics differ per index (PGM appends, others
        # reject) — the contract is only that batch == scalar sequence.
        assert got == want, name
        assert a.lookup_many([p[0] for p in pairs]) == \
            [b.lookup(p[0]) for p in pairs], name
        _assert_meters_identical(a, b, name)


def test_batch_straddling_an_smo():
    """A lookup batch issued immediately after an insert that triggered
    a structural modification must see the post-SMO structure."""
    for name in BATCH_NAMES:
        spec = REGISTRY.get(name)
        if not spec.supports_insert:
            continue
        a, b = spec.factory(), spec.factory()
        keys = _keys(1200, seed=31)
        a.bulk_load([(k, k) for k in keys])
        b.bulk_load([(k, k) for k in keys])
        rng = random.Random(3)
        qs = rng.sample(keys, 64)
        smo_seen = False
        for k in range(30_000_001, 30_002_000, 3):
            ra = a.insert(k, k)
            assert ra == b.insert(k, k)
            if a.last_op is not None and a.last_op.smo:
                smo_seen = True
                probe = qs + [k, k + 1]
                assert a.lookup_many(probe) == [b.lookup(q) for q in probe]
        assert smo_seen, f"{name}: workload never triggered an SMO"
        _assert_meters_identical(a, b, name)


def test_scan_many_matches_scalar_scans():
    spec = REGISTRY.get("B+tree")
    a, b = spec.factory(), spec.factory()
    keys = _keys(800, seed=37)
    a.bulk_load([(k, k) for k in keys])
    b.bulk_load([(k, k) for k in keys])
    starts = keys[::97]
    assert a.scan_many(starts, 10) == [b.range_scan(s, 10) for s in starts]
    _assert_meters_identical(a, b, "B+tree scan_many")


# ---------------------------------------------------------------------------
# Fallback paths
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", BATCH_NAMES)
def test_no_numpy_fallback(name, monkeypatch):
    """With numpy unavailable the batch APIs silently loop scalar and
    stay correct."""
    monkeypatch.setattr(batching, "_np", None)
    spec = REGISTRY.get(name)
    a, b = spec.factory(), spec.factory()
    keys = _keys(500, seed=41)
    a.bulk_load([(k, k) for k in keys])
    b.bulk_load([(k, k) for k in keys])
    qs = keys[::7] + [keys[3] + 1]
    assert a._lookup_batch(qs) is None
    assert a.lookup_many(qs) == [b.lookup(k) for k in qs]
    _assert_meters_identical(a, b, name)


@pytest.mark.parametrize("name", BATCH_NAMES)
def test_small_batches_below_min_batch_still_match(name, monkeypatch):
    """Shrinking MIN_BATCH forces the vectorized path onto tiny batches
    — coverage for the fast path at sizes the heuristic would skip."""
    if batching._np is None:
        pytest.skip("numpy unavailable")
    monkeypatch.setattr(batching, "MIN_BATCH", 1)
    spec = REGISTRY.get(name)
    a, b = spec.factory(), spec.factory()
    keys = _keys(700, seed=43)
    a.bulk_load([(k, k) for k in keys])
    b.bulk_load([(k, k) for k in keys])
    for qs in ([keys[0]], keys[:2], keys[10:13] + [keys[4] + 1]):
        assert a.lookup_many(qs) == [b.lookup(k) for k in qs]
    _assert_meters_identical(a, b, name)


def test_huge_keys_fall_back_to_scalar_loop():
    """Keys beyond int64 bail out of the numpy path but still answer."""
    spec = REGISTRY.get("PGM")
    a, b = spec.factory(), spec.factory()
    base = 2**70
    keys = [base + i * 5 for i in range(300)]
    a.bulk_load([(k, k) for k in keys])
    b.bulk_load([(k, k) for k in keys])
    qs = keys[::3] + [keys[0] + 1]
    assert a._lookup_batch(qs) is None
    assert a.lookup_many(qs) == [b.lookup(k) for k in qs]
    _assert_meters_identical(a, b, "huge keys")


def test_registry_supports_batch_flags():
    flagged = {s.name for s in REGISTRY if s.supports_batch}
    assert flagged == {"ALEX", "LIPP", "PGM", "XIndex", "FINEdex",
                       "FITing-Tree", "RMI"}
    # The flag is honest: each flagged index actually vectorizes.
    for name in sorted(flagged):
        ix = REGISTRY.get(name).factory()
        keys = _keys(400, seed=47)
        ix.bulk_load([(k, k) for k in keys])
        assert ix._lookup_batch(keys[:100]) is not None, name
