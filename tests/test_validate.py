"""The invariant-checking layer: helpers, observer, and per-index rules.

Two directions are tested.  *Soundness*: after heavy mixed churn every
index validates clean (no false positives — a validator that cries wolf
is worse than none).  *Sensitivity*: for each index family a targeted
structural corruption is injected through internals and the walk must
flag it with the documented rule name.  The corruption tests double as
documentation of what each rule means.
"""

import random

import pytest

from repro import (
    ALEX,
    ART,
    HOT,
    LIPP,
    RMI,
    BPlusTree,
    FINEdex,
    FITingTree,
    Masstree,
    PGMIndex,
    Wormhole,
    XIndex,
    debug_validate,
)
from repro.core.opstream import fuzzable_specs, generate_stream, stress_factory
from repro.core.runner import ExecutionEngine
from repro.core.validate import (
    ValidationObserver,
    Violation,
    first_inversion,
    range_violation,
    sorted_violations,
)


def _rules(index) -> set:
    return {v.rule for v in index.debug_validate()}


def _items(n, seed=0, lo=0, hi=2**40):
    rng = random.Random(seed)
    keys = set()
    while len(keys) < n:
        keys.add(rng.randrange(lo, hi))
    return [(k, k ^ 0xBEEF) for k in sorted(keys)]


# ---------------------------------------------------------------------------
# Helpers and framework
# ---------------------------------------------------------------------------

class TestHelpers:
    def test_first_inversion(self):
        assert first_inversion([1, 2, 3]) == -1
        assert first_inversion([1, 3, 2]) == 1
        assert first_inversion([2, 2], strict=True) == 0
        assert first_inversion([2, 2], strict=False) == -1
        assert first_inversion([]) == -1

    def test_sorted_violations_reports_position(self):
        out = sorted_violations([1, 5, 3], node_id=7, rule="x.sorted")
        assert len(out) == 1
        assert out[0].node_id == 7
        assert out[0].rule == "x.sorted"
        assert "keys[1]" in out[0].detail

    def test_range_violation_bounds(self):
        assert range_violation([5, 6], 5, 7, 0, "x.range") == []
        assert range_violation([4], 5, None, 0, "x.range")[0].rule == "x.range"
        assert range_violation([7], None, 7, 0, "x.range") != []

    def test_violation_str(self):
        v = Violation(3, "fam.rule", "broken")
        assert "fam.rule" in str(v) and "node 3" in str(v)

    def test_debug_validate_rejects_non_list(self):
        class Bad:
            def debug_validate(self):
                return "oops"

        with pytest.raises(TypeError):
            debug_validate(Bad())


class TestValidationObserver:
    def test_clean_run_records_nothing(self):
        spec = next(s for s in fuzzable_specs() if s.name == "B+tree")
        stream = generate_stream(spec, seed=5, n_ops=200, n_bulk=64)
        obs = ValidationObserver()
        ExecutionEngine(observers=[obs]).run(
            stress_factory("B+tree")(), stream.to_workload())
        assert obs.ok
        assert obs.violations == []

    def test_corruption_attributed_to_smo(self):
        """A bug injected on the Nth insert is pinned near op N."""

        class Broken(BPlusTree):
            def __init__(self):
                super().__init__(fanout=4)
                self._count = 0
                self._corrupted = False

            def insert(self, key, value):
                ok = super().insert(key, value)
                self._count += ok
                if self._count >= 10 and not self._corrupted:
                    # Silently corrupt leaf order right after an insert.
                    node = self._root
                    while hasattr(node, "children"):
                        node = node.children[0]
                    if len(node.keys) >= 2:
                        self._corrupted = True
                        node.keys.reverse()
                        node.values.reverse()
                return ok

        spec = next(s for s in fuzzable_specs() if s.name == "B+tree")
        stream = generate_stream(spec, seed=6, n_ops=300, n_bulk=16)
        obs = ValidationObserver()
        ExecutionEngine(observers=[obs]).run(Broken(), stream.to_workload())
        assert not obs.ok
        rules = {tv.violation.rule for tv in obs.violations}
        assert "btree.keys-sorted" in rules
        # Dedup: the same frozen violation is reported exactly once.
        seen = [tv.violation for tv in obs.violations]
        assert len(seen) == len(set(seen))


# ---------------------------------------------------------------------------
# Soundness: every index validates clean after mixed churn
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("spec", fuzzable_specs(), ids=lambda s: s.name)
def test_clean_after_churn(spec):
    idx = stress_factory(spec.name)()
    items = _items(400, seed=21)
    idx.bulk_load(items[:200])
    rng = random.Random(22)
    pending = items[200:]
    rng.shuffle(pending)
    for k, v in pending:
        idx.insert(k, v)
        if spec.supports_delete and rng.random() < 0.3:
            idx.delete(rng.choice(items)[0])
    assert debug_validate(idx) == []


# ---------------------------------------------------------------------------
# Sensitivity: injected corruption fires the documented rule
# ---------------------------------------------------------------------------

class TestCorruptionDetection:
    def test_btree_unsorted_leaf(self):
        idx = BPlusTree(fanout=8)
        idx.bulk_load(_items(200, seed=1))
        node = idx._root
        while hasattr(node, "children"):
            node = node.children[0]
        node.keys[0], node.keys[1] = node.keys[1], node.keys[0]
        assert "btree.keys-sorted" in _rules(idx)

    def test_btree_size_drift(self):
        idx = BPlusTree(fanout=8)
        idx.bulk_load(_items(100, seed=2))
        idx._size += 1
        assert "btree.size" in _rules(idx)

    def test_btree_broken_leaf_chain(self):
        idx = BPlusTree(fanout=4)
        idx.bulk_load(_items(200, seed=3))
        node = idx._root
        while hasattr(node, "children"):
            node = node.children[0]
        node.next = None  # sever the chain after the first leaf
        assert "btree.leaf-chain" in _rules(idx)

    def test_alex_gap_copy_drift(self):
        from repro.indexes.alex import _InnerNode

        idx = ALEX(target_leaf_keys=64, max_data_keys=512)
        idx.bulk_load(_items(400, seed=4))
        node = idx._root
        while isinstance(node, _InnerNode):
            node = node.children[0]
        gap = next(i for i in range(node.capacity) if not node.present[i])
        node.keys[gap] += 1  # no longer the right-neighbour copy
        assert "alex.gap-copy" in _rules(idx)

    def test_alex_present_count_drift(self):
        from repro.indexes.alex import _InnerNode

        idx = ALEX(target_leaf_keys=64, max_data_keys=512)
        idx.bulk_load(_items(400, seed=5))
        node = idx._root
        while isinstance(node, _InnerNode):
            node = node.children[0]
        node.num_keys += 1
        assert "alex.present-count" in _rules(idx)

    def test_lipp_subtree_size_drift(self):
        idx = LIPP()
        idx.bulk_load(_items(300, seed=6))
        idx._root.size += 1
        rules = _rules(idx)
        assert "lipp.subtree-size" in rules or "lipp.size" in rules

    def test_lipp_imprecise_position(self):
        from repro.indexes.lipp import _DATA

        idx = LIPP()
        idx.bulk_load(_items(300, seed=7))
        node = idx._root
        slots = [i for i, t in enumerate(node.tags) if t == _DATA]
        # Move a key to an empty slot its model cannot predict.
        src = slots[0]
        empty = next(i for i, t in enumerate(node.tags)
                     if t not in (_DATA,) and not isinstance(node.keys[i], list)
                     and i != src and node.tags[i] == 0)
        node.tags[empty] = _DATA
        node.keys[empty] = node.keys[src]
        node.values[empty] = node.values[src]
        node.tags[src] = 0
        rules = _rules(idx)
        assert "lipp.precise-position" in rules or "lipp.order" in rules

    def test_pgm_run_order(self):
        idx = PGMIndex(check_duplicates=True)
        idx.bulk_load(_items(300, seed=8))
        run = next(r for r in idx._runs if r is not None and len(r.keys) > 2)
        run.keys[10], run.keys[11] = run.keys[11], run.keys[10]
        assert "pgm.run-sorted" in _rules(idx)

    def test_pgm_size_drift(self):
        idx = PGMIndex(check_duplicates=True)
        idx.bulk_load(_items(100, seed=9))
        idx._size -= 1
        assert "pgm.size" in _rules(idx)

    def test_art_prefix_path(self):
        from repro.indexes.art import _ArtNode

        idx = ART()
        idx.bulk_load(_items(200, seed=10, hi=2**48))
        node = idx._root
        assert isinstance(node, _ArtNode)
        while isinstance(node, _ArtNode):
            node = node.children[0]
        node.key ^= 0xFF << 40  # moves the key out of its radix subtree
        assert "art.prefix-path" in _rules(idx)

    def test_hot_min_key_cache(self):
        from repro.indexes.hot import _HotInner

        idx = HOT()
        idx.bulk_load(_items(200, seed=11))
        assert isinstance(idx._root, _HotInner)
        idx._root.min_key += 1
        assert "hot.min-key" in _rules(idx)

    def test_xindex_delta_shadow(self):
        import bisect

        idx = XIndex(delta_size=16, target_group_keys=64)
        idx.bulk_load(_items(300, seed=12))
        g = next(g for g in idx._groups if g.keys)
        k = g.keys[len(g.keys) // 2]
        pos = bisect.bisect_left(g.delta_keys, k)
        g.delta_keys.insert(pos, k)
        g.delta_values.insert(pos, 0)
        rules = _rules(idx)
        assert "xindex.delta-shadow" in rules

    def test_finedex_bin_overflow(self):
        idx = FINEdex(bin_capacity=4)
        idx.bulk_load(_items(300, seed=13))
        seg = idx._segments[0]
        k0 = seg.keys[0]
        seg.bins[0] = [(k0 + 1 + i, i) for i in range(idx.bin_capacity + 1)]
        assert "finedex.bin-capacity" in _rules(idx)

    def test_fiting_buffer_shadow(self):
        import bisect

        idx = FITingTree(buffer_size=4)
        idx.bulk_load(_items(300, seed=14))
        seg = next(s for s in idx._segments if s.keys)
        k = seg.keys[0]
        pos = bisect.bisect_left(seg.buf_keys, k)
        seg.buf_keys.insert(pos, k)
        seg.buf_values.insert(pos, 0)
        assert "fiting.buffer-shadow" in _rules(idx)

    def test_masstree_permutation(self):
        from repro.indexes.masstree import _Interior

        idx = Masstree()
        idx.bulk_load(_items(300, seed=15))
        node = idx._root
        while isinstance(node, _Interior):
            node = node.children[0]
        assert len(node.perm) >= 2
        node.perm.reverse()
        assert "mass.logical-order" in _rules(idx)

    def test_wormhole_anchor_order(self):
        idx = Wormhole()
        idx.bulk_load(_items(400, seed=16))
        assert len(idx._leaves) >= 2
        idx._leaves[1].anchor = idx._leaves[0].anchor
        assert "worm.anchor-order" in _rules(idx)

    def test_rmi_key_order(self):
        idx = RMI()
        idx.bulk_load(_items(200, seed=17))
        idx._keys[5], idx._keys[6] = idx._keys[6], idx._keys[5]
        assert "rmi.keys-sorted" in _rules(idx)
