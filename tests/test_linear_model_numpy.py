"""The numpy fast path must match the pure-Python fit exactly enough."""

import random

import pytest

import repro.indexes.linear_model as lm
from repro.indexes.linear_model import LinearModel


def _python_train(keys, positions=None):
    """Force the pure-Python path by lowering the threshold."""
    old = lm._NUMPY_MIN_N
    lm._NUMPY_MIN_N = 10**12
    try:
        return LinearModel.train(keys, positions)
    finally:
        lm._NUMPY_MIN_N = old


@pytest.mark.skipif(lm._np is None, reason="numpy unavailable")
def test_fast_path_matches_python_path():
    rng = random.Random(1)
    keys = sorted(rng.sample(range(2**40), 2000))
    fast = LinearModel.train(keys)
    slow = _python_train(keys)
    assert fast.anchor == slow.anchor
    assert fast.slope == pytest.approx(slow.slope, rel=1e-9)
    assert fast.intercept == pytest.approx(slow.intercept, rel=1e-6, abs=1e-6)


@pytest.mark.skipif(lm._np is None, reason="numpy unavailable")
def test_fast_path_with_custom_positions():
    rng = random.Random(2)
    keys = sorted(rng.sample(range(10**9), 1500))
    positions = [i * 2.0 for i in range(len(keys))]
    fast = LinearModel.train(keys, positions)
    slow = _python_train(keys, positions)
    assert fast.slope == pytest.approx(slow.slope, rel=1e-9)


@pytest.mark.skipif(lm._np is None, reason="numpy unavailable")
def test_huge_span_falls_back_to_python():
    """Key spans beyond float64's exact-integer range use pure Python."""
    base = 2**60
    keys = sorted(base + i * 2**53 for i in range(400))  # span >> 2^52
    m = LinearModel.train(keys)
    for i in (0, 200, 399):
        assert abs(m.predict(keys[i]) - i) < 2.0


def test_small_fits_stay_python():
    # No numpy requirement: n < threshold always works.
    m = LinearModel.train(list(range(10)))
    assert m.slope == pytest.approx(1.0)
