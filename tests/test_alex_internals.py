"""ALEX internals: SMO machinery, placement, cost-model decisions."""

import random

from repro.indexes.alex import ALEX, _DataNode, _GAP_HIGH, _InnerNode
from repro.indexes.linear_model import LinearModel


def _leaf_of(idx, key):
    node, _ = idx._descend(key)
    return node


def test_model_place_keeps_order_and_fits():
    node = _DataNode(1)
    cap = 20
    node.keys = [_GAP_HIGH] * cap
    node.values = [None] * cap
    node.present = [False] * cap
    # A model that predicts everything at slot 18: tail compaction must
    # still place all 10 items at distinct, ordered slots.
    node.model = LinearModel(0.0, 18.0)
    items = [(i * 5, i) for i in range(10)]
    ALEX._model_place(node, items)
    placed = [i for i in range(cap) if node.present[i]]
    assert len(placed) == 10
    assert [node.keys[i] for i in placed] == [k for k, _ in items]
    assert placed[-1] == cap - 1  # compacted against the tail


def test_fill_gaps_right_copy_invariant():
    node = _DataNode(1)
    node.keys = [_GAP_HIGH] * 8
    node.values = [None] * 8
    node.present = [False] * 8
    for slot, key in ((1, 10), (4, 40), (6, 60)):
        node.keys[slot] = key
        node.present[slot] = True
    ALEX._fill_gaps(node)
    assert node.keys == [10, 10, 40, 40, 40, 60, 60, _GAP_HIGH]
    assert node.keys == sorted(node.keys)


def test_expand_triggered_before_split_on_accurate_model():
    """Uniform data keeps the model accurate: density SMOs should
    expand, not split."""
    idx = ALEX(target_leaf_keys=4096, max_data_keys=1 << 20)
    idx.bulk_load([(i * 100, i) for i in range(256)])
    for i in range(256):
        idx.insert(i * 100 + 50, i)
    assert idx.expand_count > 0
    assert idx.split_count == 0


def test_split_triggered_by_node_size_cap():
    idx = ALEX(target_leaf_keys=64, max_data_keys=128)
    idx.bulk_load([(i * 10, i) for i in range(100)])
    for i in range(400):
        idx.insert(i * 10 + 3, i)
    assert idx.split_count > 0
    for node in idx.data_nodes():
        assert node.num_keys <= 256


def test_fanout_doubling_preserves_routing():
    idx = ALEX(target_leaf_keys=32, max_data_keys=64, max_fanout=1 << 10)
    idx.bulk_load([(i, i) for i in range(0, 2000, 10)])
    rng = random.Random(2)
    for _ in range(1500):
        idx.insert(rng.randrange(2000), 0)
    # Whatever restructuring happened, routing must still be exact.
    for k in range(0, 2000, 10):
        assert idx.lookup(k) is not None


def test_leaf_chain_consistent_after_splits():
    idx = ALEX(target_leaf_keys=32, max_data_keys=64)
    idx.bulk_load([])
    rng = random.Random(4)
    keys = rng.sample(range(100000), 2000)
    for k in keys:
        idx.insert(k, k)
    # Walk the leaf chain: strictly ascending, covers everything.
    leaves = idx.data_nodes()
    head = [n for n in leaves if n.prev is None]
    assert len(head) == 1
    node = head[0]
    seen = []
    while node is not None:
        seen.extend(k for i, k in enumerate(node.keys) if node.present[i])
        node = node.next
    assert seen == sorted(keys)


def test_slot_boundary_key_inverse():
    idx = ALEX()
    model = LinearModel(0.5, 0.0, 1000)  # slot = 0.5*(k-1000)
    inner = _InnerNode(1, model, [None] * 8)
    b = idx._slot_boundary_key(inner, 4)
    assert model.predict_clamped(b, 8) == 4
    assert model.predict_clamped(b - 1, 8) == 3


def test_density_stats_reset_after_expand():
    idx = ALEX(target_leaf_keys=4096, max_data_keys=1 << 20)
    idx.bulk_load([(i * 7, i) for i in range(300)])
    node = idx.data_nodes()[0]
    node.shifts_since_build = 999
    idx._expand(node)
    assert node.inserts_since_build == 0
    assert node.shifts_since_build == 0


def test_smo_counter_accounting():
    idx = ALEX(target_leaf_keys=64, max_data_keys=256)
    idx.bulk_load([(i * 3, i) for i in range(200)])
    for i in range(1000):
        idx.insert(i * 3 + 1, i)
    assert idx.smo_count == idx.expand_count + idx.split_count + (
        idx.smo_count - idx.expand_count - idx.split_count
    )
    assert idx.smo_count > 0


def test_lookup_hint_accuracy_on_uniform_data():
    """Uniform data + model placement: tiny last-mile distances."""
    idx = ALEX()
    rng = random.Random(6)
    keys = sorted(rng.sample(range(2**32), 3000))
    idx.bulk_load([(k, k) for k in keys])
    total_probes = 0
    for k in keys[::29]:
        idx.lookup(k)
        total_probes += idx.last_op.search_distance
    assert total_probes / len(keys[::29]) < 10
