"""The event bus: mechanics, emitters, and the zero-cost contract.

The acceptance bar for the observability layer is the last test here:
attaching an :class:`EventBus` + :class:`SLOTracker` + live tower to a
run leaves the result fingerprint bit-identical to a bare run, for
every index in the registry.
"""

import random
import threading

import pytest

from repro.core.events import (
    KIND_ADMISSION_REJECT,
    KIND_BACKFILL_CHUNK,
    KIND_CACHE_HIT,
    KIND_CUTOVER,
    KIND_OP_WINDOW,
    KIND_PHASE,
    KIND_SMO,
    KIND_STATE,
    KIND_SWEEP_TASK,
    EventBus,
    validate_bus_events,
)
from repro.core.instance import DRAINING, MIGRATING, AdmissionError, IndexInstance
from repro.core.migrate import run_migration
from repro.core.registry import REGISTRY
from repro.core.results import load_jsonl, result_record
from repro.core.runner import execute
from repro.core.slo import ControlTower, SLOTracker
from repro.core.sweep import (
    DatasetSpec,
    SweepCache,
    WorkloadSpec,
    plan_grid,
    result_fingerprint,
    run_sweep,
)
from repro.core.workloads import mixed_workload, payload
from repro.indexes.alex import ALEX
from repro.indexes.btree import BPlusTree

KEYS = sorted(random.Random(11).sample(range(1, 50_000_000), 3000))
ITEMS = [(k, payload(k)) for k in KEYS]


# -- bus mechanics -------------------------------------------------------------

def test_publish_assigns_monotonic_seq():
    bus = EventBus()
    a = bus.publish(KIND_PHASE, source="x", t_ns=1.0, phase="measure")
    b = bus.publish(KIND_SMO, source="x", t_ns=2.0)
    assert (a["seq"], b["seq"]) == (0, 1)
    assert a["kind"] == KIND_PHASE and a["phase"] == "measure"
    assert len(bus) == 2 and bus.published == 2 and bus.dropped == 0


def test_unknown_kind_rejected():
    bus = EventBus()
    with pytest.raises(ValueError, match="unknown event kind"):
        bus.publish("reticulate", source="x")
    assert len(bus) == 0 and bus.published == 0


def test_ring_overflow_drops_oldest_never_silently():
    bus = EventBus(capacity=4)
    for i in range(10):
        bus.publish(KIND_SMO, source="x", t_ns=float(i), i=i)
    assert len(bus) == 4
    assert bus.published == 10
    assert bus.dropped == 6
    assert [e["i"] for e in bus.events()] == [6, 7, 8, 9]
    with pytest.raises(ValueError):
        EventBus(capacity=0)


def test_subscribe_filtering_and_unsubscribe():
    bus = EventBus()
    everything, smos_only = [], []
    bus.subscribe(everything.append)
    cb = bus.subscribe(smos_only.append, kinds={KIND_SMO})
    bus.publish(KIND_SMO, source="x")
    bus.publish(KIND_PHASE, source="x", phase="measure")
    assert len(everything) == 2 and len(smos_only) == 1
    bus.unsubscribe(cb)
    bus.publish(KIND_SMO, source="x")
    assert len(smos_only) == 1 and len(everything) == 3
    with pytest.raises(ValueError, match="unknown event kinds"):
        bus.subscribe(lambda e: None, kinds={"nope"})


def test_events_filtered_by_kind_and_source():
    bus = EventBus()
    bus.publish(KIND_SMO, source="a")
    bus.publish(KIND_SMO, source="b")
    bus.publish(KIND_PHASE, source="a", phase="done")
    assert len(bus.events(kind=KIND_SMO)) == 2
    assert len(bus.events(source="a")) == 2
    assert len(bus.events(kind=KIND_SMO, source="b")) == 1


def test_concurrent_publish_keeps_exact_counts():
    bus = EventBus(capacity=128)

    def hammer():
        for _ in range(200):
            bus.publish(KIND_SMO, source="t")

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert bus.published == 800
    assert len(bus) == 128 and bus.dropped == 672
    seqs = [e["seq"] for e in bus.events()]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)


def test_save_load_validate_roundtrip(tmp_path):
    bus = EventBus()
    bus.publish(KIND_PHASE, source="x", t_ns=1.0, phase="measure")
    bus.publish(KIND_OP_WINDOW, source="x", t_ns=9.0, ops=5)
    path = str(tmp_path / "events.jsonl")
    assert bus.save(path) == 2
    records = load_jsonl(path)
    assert validate_bus_events(records) == 2
    assert all(r["schema_version"] == 1 for r in records)
    assert all(r["tags"] == {"artifact": "events"} for r in records)


def test_validate_rejects_malformed_streams():
    ok = {"kind": KIND_SMO, "source": "x", "t_ns": 0.0, "seq": 0}
    with pytest.raises(ValueError, match="missing field"):
        validate_bus_events([{"kind": KIND_SMO, "source": "x", "t_ns": 0.0}])
    with pytest.raises(ValueError, match="unknown kind"):
        validate_bus_events([dict(ok, kind="mystery")])
    with pytest.raises(ValueError, match="strictly increasing"):
        validate_bus_events([ok, dict(ok, seq=0)])
    assert validate_bus_events([ok, dict(ok, seq=7)]) == 2


# -- the engine emitter --------------------------------------------------------

def test_engine_windows_cover_every_measured_op():
    bus = EventBus()
    wl = mixed_workload(KEYS, 0.0, n_ops=1000, seed=1)
    execute(BPlusTree(), wl, bus=bus, bus_window=100)
    phases = [e["phase"] for e in bus.events(kind=KIND_PHASE)]
    assert phases == ["bulk_load", "measure", "done"]
    windows = bus.events(kind=KIND_OP_WINDOW)
    assert len(windows) == 10
    assert sum(w["ops"] for w in windows) == 1000
    assert all(w["source"] == "B+tree" for w in windows)
    assert all(w["op_counts"] == {"lookup": 100} for w in windows)
    assert all(w["ops_per_vsec"] > 0 for w in windows)
    # Virtual timestamps tile: each window starts where the last ended.
    for prev, cur in zip(windows, windows[1:]):
        assert cur["window_start_ns"] == prev["t_ns"]
    assert validate_bus_events(bus.events()) == len(bus)


def test_partial_last_window_flushes_at_done():
    bus = EventBus()
    wl = mixed_workload(KEYS, 0.0, n_ops=250, seed=2)
    execute(BPlusTree(), wl, bus=bus, bus_window=100)
    windows = bus.events(kind=KIND_OP_WINDOW)
    assert [w["ops"] for w in windows] == [100, 100, 50]


def test_smo_events_carry_structural_payload():
    bus = EventBus()
    wl = mixed_workload(KEYS, 0.6, n_ops=2500, seed=3)
    result = execute(ALEX(), wl, bus=bus)
    smos = bus.events(kind=KIND_SMO)
    assert len(smos) == result.insert_stats.smo_count
    assert all(s["source"] == "ALEX" for s in smos)
    assert any(s["nodes_created"] or s["keys_shifted"] for s in smos)
    assert all(s["op_seq"] >= 0 for s in smos)


# -- the instance relay --------------------------------------------------------

def test_instance_lifecycle_relays_state_events():
    bus = EventBus()
    inst = bus.attach_instance(IndexInstance(BPlusTree(), name="bt@0"))
    inst.bulk_load(ITEMS[:100])
    inst.advance(MIGRATING, "handing off")
    states = bus.events(kind=KIND_STATE)
    assert [(e["from_state"], e["to"]) for e in states] == [
        ("loading", "serving"), ("serving", "migrating")]
    assert states[1]["reason"] == "handing off"
    assert all(e["source"] == "bt@0" for e in states)


def test_backfill_progress_relays_with_fraction():
    bus = EventBus()
    inst = bus.attach_instance(IndexInstance(BPlusTree(), name="bt@1"))
    inst.note_backfill(25, 100)
    inst.note_backfill(100, 100, stage="verify")
    chunks = bus.events(kind=KIND_BACKFILL_CHUNK)
    assert [c["fraction"] for c in chunks] == [0.25, 1.0]
    assert chunks[1]["stage"] == "verify"


def test_admission_rejects_relay():
    bus = EventBus()
    inst = IndexInstance(BPlusTree())
    inst.bulk_load(ITEMS[:50])
    bus.attach_instance(inst)
    inst.advance(MIGRATING).advance(DRAINING)
    with pytest.raises(AdmissionError):
        inst.admit("insert")
    rejects = bus.events(kind=KIND_ADMISSION_REJECT)
    assert len(rejects) == 1
    assert rejects[0]["op"] == "insert" and rejects[0]["state"] == DRAINING


# -- migration and sweep emitters ----------------------------------------------

def test_migration_publishes_full_stream_without_changing_report():
    wl = mixed_workload(KEYS[:1200], 0.3, n_ops=1500, seed=4)
    bare = run_migration("btree", "alex", wl, chunk=64)
    bus = EventBus()
    observed = run_migration("btree", "alex", wl, chunk=64,
                             bus=bus, bus_window=200)
    # Zero-cost: the bus changes nothing measurable.
    for field in ("completed", "rejected_ops", "cutover_seq",
                  "backfill_keys", "verify_keys", "dual_writes"):
        assert getattr(observed, field) == getattr(bare, field)

    assert validate_bus_events(bus.events()) == len(bus)
    cuts = bus.events(kind=KIND_CUTOVER)
    assert len(cuts) == 1
    assert cuts[0]["op_seq"] == observed.cutover_seq
    assert cuts[0]["src"] == "B+tree@0" and cuts[0]["dst"] == "ALEX@1"
    chunks = bus.events(kind=KIND_BACKFILL_CHUNK)
    assert chunks and chunks[-1]["fraction"] > 0.9
    assert {c["stage"] for c in chunks} >= {"backfill", "verify"}
    states = bus.events(kind=KIND_STATE)
    assert ("ALEX@1", "serving") in {(e["source"], e["to"]) for e in states}
    assert ("B+tree@0", "retired") in {(e["source"], e["to"]) for e in states}
    windows = bus.events(kind=KIND_OP_WINDOW)
    assert windows and all(w["ops_per_vsec"] > 0 for w in windows)


def test_sweep_publishes_tasks_then_cache_hits(tmp_path):
    tasks = plan_grid([DatasetSpec("covid", 800, 0)],
                      [WorkloadSpec.mixed(0.0, n_ops=300, seed=1)],
                      ["ALEX", "B+tree"])
    cache = SweepCache(str(tmp_path / "cache"))
    bus = EventBus()
    run_sweep(tasks, jobs=1, cache=cache, bus=bus)
    assert len(bus.events(kind=KIND_SWEEP_TASK)) == 2
    assert len(bus.events(kind=KIND_CACHE_HIT)) == 0
    rerun = EventBus()
    run_sweep(tasks, jobs=1, cache=cache, bus=rerun)
    assert len(rerun.events(kind=KIND_CACHE_HIT)) == 2
    assert len(rerun.events(kind=KIND_SWEEP_TASK)) == 0
    hit = rerun.events(kind=KIND_CACHE_HIT)[0]
    assert hit["dataset"] == "covid" and hit["throughput_mops"] > 0


# -- the acceptance bar: zero cost across the whole registry -------------------

@pytest.mark.parametrize("name", REGISTRY.names())
def test_fingerprint_parity_with_full_observability(name):
    """Bus + SLO tracker + live tower attached == bare run, bit for bit."""
    spec = REGISTRY.get(name)
    write_frac = 0.3 if spec.supports_insert else 0.0
    keys = KEYS[:800]
    wl = mixed_workload(keys, write_frac, n_ops=400, seed=6)

    fp_bare = result_fingerprint(result_record(execute(spec.factory(), wl)))

    bus = EventBus()
    tower = ControlTower()
    bus.subscribe(tower.consume)
    slo = SLOTracker(window_ops=64, bus=bus)
    observed = execute(spec.factory(), wl, bus=bus, bus_window=64,
                       observers=[slo])
    assert result_fingerprint(result_record(observed)) == fp_bare
    assert len(bus) > 0 and bus.dropped == 0
    assert tower.rows  # the tower really saw the run


# -- multi-shard emitter stress (sharded serving tier) -------------------------

def test_multi_shard_emitters_preserve_per_publisher_order():
    """N shard threads publish interleaved typed events; the ring keeps
    every publisher's own sequence intact and the subscriber sees all."""
    bus = EventBus()
    n_threads, n_events = 8, 300
    seen = []
    lock = threading.Lock()

    def consume(event):
        with lock:
            seen.append(event)

    bus.subscribe(consume)
    barrier = threading.Barrier(n_threads)

    def emitter(sid):
        src = f"shard/s{sid}"
        barrier.wait()
        for i in range(n_events):
            if i % 3 == 0:
                bus.publish(KIND_STATE, source=src, t_ns=float(i),
                            state="serving", i=i)
            else:
                bus.publish(KIND_BACKFILL_CHUNK, source=src, t_ns=float(i),
                            done=i, total=n_events, i=i)

    threads = [threading.Thread(target=emitter, args=(s,))
               for s in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert bus.published == n_threads * n_events
    assert bus.dropped == 0 and len(bus) == n_threads * n_events
    assert len(seen) == n_threads * n_events
    events = bus.events()
    seqs = [e["seq"] for e in events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    for sid in range(n_threads):
        src = f"shard/s{sid}"
        mine = [e for e in events if e["source"] == src]
        assert [e["i"] for e in mine] == list(range(n_events))
        # Typed ordering: each publisher's kind schedule survives the
        # interleaving bit for bit.
        assert [e["kind"] for e in mine] == [
            KIND_STATE if i % 3 == 0 else KIND_BACKFILL_CHUNK
            for i in range(n_events)]


def test_multi_shard_emitters_overflow_keeps_order_never_silent():
    """Under a tiny ring, overflow drops oldest-first with exact counts,
    and what survives is still in publisher order per source."""
    bus = EventBus(capacity=64)
    n_threads, n_events = 4, 200

    def emitter(sid):
        for i in range(n_events):
            bus.publish(KIND_SMO, source=f"shard/s{sid}", t_ns=float(i), i=i)

    threads = [threading.Thread(target=emitter, args=(s,))
               for s in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert bus.published == n_threads * n_events
    assert len(bus) == 64
    assert bus.dropped == n_threads * n_events - 64
    events = bus.events()
    seqs = [e["seq"] for e in events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    for sid in range(n_threads):
        mine = [e["i"] for e in events if e["source"] == f"shard/s{sid}"]
        assert mine == sorted(mine)  # a suffix-respecting subsequence
        assert len(set(mine)) == len(mine)
