"""LIPP internals: FMCD placement, rebuild triggers, node accounting."""

import random

from repro.indexes.lipp import LIPP, _CHILD, _DATA


def test_bulk_build_groups_collisions_into_children():
    idx = LIPP()
    # Three tight clusters force multi-key slots at the root.
    keys = sorted(set(
        [c * 2**40 + o for c in (1, 2, 3) for o in range(0, 600, 3)]
    ))
    idx.bulk_load([(k, k) for k in keys])
    root = idx._root
    assert root.size == len(keys)
    # Subtree sizes bookkeeping: children sizes + root data = total.
    total = 0
    for s in range(root.capacity):
        if root.tags[s] == _DATA:
            total += 1
        elif root.tags[s] == _CHILD:
            total += root.values[s].size
    assert total == len(keys)


def test_insert_updates_subtree_sizes_consistently():
    idx = LIPP(min_rebuild_size=10**9)
    idx.bulk_load([(i * 1000, i) for i in range(200)])
    rng = random.Random(1)
    for _ in range(400):
        idx.insert(rng.randrange(200_000), 0)
    assert idx._root.size == len(idx)


def test_rebuild_resets_counters():
    idx = LIPP(min_rebuild_size=32)
    idx.bulk_load([(i * 100, i) for i in range(64)])
    before = idx.rebuild_count
    for i in range(500):
        idx.insert(i * 100 + 7, i)
    assert idx.rebuild_count > before
    # After the latest rebuild, the root's counters restart from its
    # build snapshot.
    root = idx._root
    assert root.num_inserts <= root.size


def test_grown_trigger_rebuilds_at_double_size():
    idx = LIPP(min_rebuild_size=64, conflict_ratio=10.0)  # disable conflict path
    idx.bulk_load([(i * 50, i) for i in range(100)])
    for i in range(300):
        idx.insert(i * 50 + 13, i)
    # 300 inserts >= 2 x 100 build size: the grown trigger must fire.
    assert idx.rebuild_count >= 1


def test_delete_leaves_models_untouched():
    idx = LIPP()
    keys = [i * 37 for i in range(1000)]
    idx.bulk_load([(k, k) for k in keys])
    slope_before = idx._root.model.slope
    for k in keys[::2]:
        assert idx.delete(k)
    assert idx._root.model.slope == slope_before  # no pollution (M8)
    for k in keys[1::2][:20]:
        assert idx.lookup(k) == k


def test_empty_slots_after_delete_are_reusable():
    idx = LIPP()
    idx.bulk_load([(i * 10, i) for i in range(500)])
    for i in range(0, 500, 2):
        idx.delete(i * 10)
    inserted = 0
    for i in range(0, 500, 2):
        assert idx.insert(i * 10 + 1, i)
        inserted += 1
    assert len(idx) == 250 + inserted


def test_node_count_matches_walk():
    idx = LIPP()
    rng = random.Random(9)
    keys = sorted(rng.sample(range(2**32), 1500))
    idx.bulk_load([(k, k) for k in keys])
    for _ in range(800):
        idx.insert(rng.randrange(2**32), 0)
    # node_count walks the structure; cross-check with a manual walk.
    count = 0
    stack = [idx._root]
    while stack:
        n = stack.pop()
        count += 1
        for s in range(n.capacity):
            if n.tags[s] == _CHILD:
                stack.append(n.values[s])
    assert count == idx.node_count()


def test_update_touches_no_stats():
    idx = LIPP()
    idx.bulk_load([(i * 5, i) for i in range(300)])
    inserts_before = idx._root.num_inserts
    for i in range(100):
        assert idx.update(i * 5, i + 1000)
    assert idx._root.num_inserts == inserts_before  # YCSB scaling basis
