"""Heatmap computation and rendering."""

import pytest

from repro import ALEX, BPlusTree
from repro.core.heatmap import Heatmap, HeatmapCell, compute_heatmap
from repro.core.workloads import mixed_workload


def _cell(l_mops, t_mops):
    return HeatmapCell("ds", "wl", "L1", "T1", l_mops, t_mops)


def test_cell_ratio_signs():
    assert _cell(2.0, 1.0).ratio == -2.0          # learned wins
    assert _cell(1.0, 2.0).ratio == 2.0           # traditional wins
    assert _cell(1.0, 1.0).ratio == -1.0          # tie goes to learned


def test_cell_ratio_degenerate():
    assert _cell(1.0, 0.0).ratio == -float("inf")
    assert _cell(0.0, 1.0).ratio == float("inf")


def test_win_fraction():
    hm = Heatmap(datasets=["a", "b"], workloads=["w"])
    hm.cells[("a", "w")] = _cell(2.0, 1.0)
    hm.cells[("b", "w")] = _cell(1.0, 2.0)
    assert hm.learned_win_fraction() == 0.5


def test_render_contains_all_cells():
    hm = Heatmap(datasets=["alpha"], workloads=["read", "write"])
    hm.cells[("alpha", "read")] = _cell(3.0, 1.0)
    hm.cells[("alpha", "write")] = _cell(1.0, 3.0)
    text = hm.render()
    assert "alpha" in text
    assert "L" in text and "T" in text
    assert "3.00" in text


def test_render_handles_missing_cells():
    hm = Heatmap(datasets=["alpha"], workloads=["read"])
    assert "-" in hm.render()


def test_render_handles_empty_workloads():
    # max() over an empty workload list used to raise ValueError.
    hm = Heatmap(datasets=["alpha"], workloads=[])
    text = hm.render()
    assert "alpha" in text
    assert Heatmap(datasets=[], workloads=[]).render()


def test_compute_heatmap_end_to_end():
    keys = list(range(0, 8000, 4))

    def build(ks, wl_name):
        frac = {"ro": 0.0, "bal": 0.5}[wl_name]
        return mixed_workload(list(ks), frac, n_ops=800, seed=1)

    seen = []
    hm = compute_heatmap(
        {"seq": keys},
        build,
        ["ro", "bal"],
        learned={"ALEX": ALEX},
        traditional={"B+tree": BPlusTree},
        on_cell=seen.append,
    )
    assert len(hm.cells) == 2
    assert len(seen) == 2
    cell = hm.cell("seq", "ro")
    assert cell.best_learned == "ALEX"
    assert cell.best_traditional == "B+tree"
    assert cell.learned_mops > 0 and cell.traditional_mops > 0


def test_cell_lookup_keyerror():
    hm = Heatmap(datasets=[], workloads=[])
    with pytest.raises(KeyError):
        hm.cell("x", "y")
