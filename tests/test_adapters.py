"""Per-protocol trace shapes emitted by the concurrency adapters."""


from repro.concurrency.adapters import (
    ALEXPlus,
    ARTOLC,
    BTreeOLC,
    FINEdexAdapter,
    LIPPPlus,
    MasstreeAdapter,
    PGMAdapter,
    WormholeAdapter,
    XIndexAdapter,
)
from repro.core.workloads import Operation, payload


def _loaded(adapter, n=2000):
    adapter.bulk_load([(i * 10, payload(i * 10)) for i in range(n)])
    return adapter


def test_lookups_are_lock_free_everywhere():
    for factory in (ALEXPlus, LIPPPlus, ARTOLC, BTreeOLC, MasstreeAdapter,
                    WormholeAdapter, XIndexAdapter, FINEdexAdapter):
        ad = _loaded(factory())
        trace = ad.run_op(Operation("lookup", 500))
        assert trace.sections == [], ad.name
        assert trace.free_ns > 0, ad.name


def test_alexplus_insert_locks_one_leaf():
    ad = _loaded(ALEXPlus())
    trace = ad.run_op(Operation("insert", 505, 1))
    assert len(trace.sections) == 1
    resource, hold = trace.sections[0]
    assert hold > 0
    assert resource[0] == "ALEX+"


def test_alexplus_record_mode_adds_restart_overhead():
    node = _loaded(ALEXPlus(lock_granularity="node"))
    record = _loaded(ALEXPlus(lock_granularity="record"))
    t_node = node.run_op(Operation("insert", 505, 1))
    t_rec = record.run_op(Operation("insert", 505, 1))
    assert t_rec.sections[0][1] > t_node.sections[0][1]


def test_lippplus_insert_atomics_match_path_length():
    ad = _loaded(LIPPPlus())
    trace = ad.run_op(Operation("insert", 507, 1))
    assert len(trace.atomics) == ad.index.last_op.nodes_traversed
    assert all(a[1] == "stats" for a in trace.atomics)


def test_lippplus_update_has_no_atomics():
    ad = _loaded(LIPPPlus())
    trace = ad.run_op(Operation("update", 500, 9))
    assert trace.atomics == []
    assert len(trace.sections) == 1


def test_wormhole_meta_lock_only_on_split():
    ad = _loaded(WormholeAdapter())
    meta_holds = 0
    plain_inserts = 0
    for i in range(300):
        trace = ad.run_op(Operation("insert", i * 10 + 3, 1))
        metas = [s for s in trace.sections if s[0] == ("Wormhole", "META")]
        if metas:
            meta_holds += 1
        else:
            plain_inserts += 1
    assert meta_holds > 0            # splits happened
    assert plain_inserts > meta_holds * 3  # but most inserts skip META


def test_masstree_writes_cost_extra_bytes_and_version_atomic():
    ad = _loaded(MasstreeAdapter())
    look = ad.run_op(Operation("lookup", 500))
    ins = ad.run_op(Operation("insert", 505, 1))
    assert ins.bytes > look.bytes + 300
    assert any(a[1] == "version" for a in ins.atomics)
    assert look.atomics == []


def test_xindex_merge_cost_moves_to_next_op():
    ad = _loaded(XIndexAdapter(delta_size=8))
    # Fill a delta to force a merge; the merging op itself stays cheap,
    # the NEXT op absorbs the stall.
    stall_seen = False
    baseline = ad.run_op(Operation("lookup", 500)).free_ns
    for i in range(200):
        ad.run_op(Operation("insert", i * 10 + 7, 1))
        probe = ad.run_op(Operation("lookup", 500))
        if probe.free_ns > baseline * 5:
            stall_seen = True
            break
    assert stall_seen


def test_finedex_retrain_locks_segment():
    ad = _loaded(FINEdexAdapter(bin_capacity=2))
    seg_locks = 0
    # Pile keys into ONE record's bin (all fall between keys 500 and 510)
    # so the bin overflows its capacity and forces a local retrain.
    for j in range(1, 10):
        trace = ad.run_op(Operation("insert", 500 + j, 1))
        if any(len(s[0]) == 3 and s[0][1] == "seg" for s in trace.sections):
            seg_locks += 1
    assert seg_locks > 0


def test_btreeolc_split_locks_parent_too():
    ad = _loaded(BTreeOLC(fanout=8), n=500)
    double_locks = 0
    for i in range(400):
        trace = ad.run_op(Operation("insert", i * 10 + 2, 1))
        if len(trace.sections) == 2:
            double_locks += 1
    assert double_locks > 0


def test_pgm_adapter_merge_lock():
    ad = PGMAdapter(buffer_size=8)
    ad.bulk_load([(i, i) for i in range(100)])
    merge_locks = 0
    for i in range(100):
        trace = ad.run_op(Operation("insert", 1000 + i, 1))
        if any(s[0] == ("PGM", "MERGE") for s in trace.sections):
            merge_locks += 1
    assert merge_locks > 0


def test_trace_bytes_and_mem_fraction_sane():
    for factory in (ALEXPlus, LIPPPlus, ARTOLC):
        ad = _loaded(factory())
        trace = ad.run_op(Operation("insert", 123, 1))
        assert trace.bytes > 0, ad.name
        assert 0.0 <= trace.mem_fraction <= 1.0, ad.name


def test_scan_supported_through_adapters():
    for factory in (ALEXPlus, ARTOLC, BTreeOLC, WormholeAdapter):
        ad = _loaded(factory())
        trace = ad.run_op(Operation("scan", 100, count=20))
        assert trace.free_ns > 0, ad.name
        assert trace.sections == [], ad.name


def test_delete_through_supporting_adapters():
    for factory in (ALEXPlus, LIPPPlus, ARTOLC):
        ad = _loaded(factory())
        trace = ad.run_op(Operation("delete", 500))
        assert ad.index.lookup(500) is None, ad.name
        assert trace.free_ns >= 0, ad.name
