"""FINEdex: contract conformance plus per-record bin behaviour."""

import random

from repro.indexes.finedex import FINEdex
from tests.index_contract import IndexContract


class TestFINEdexContract(IndexContract):
    def make(self) -> FINEdex:
        return FINEdex(bin_capacity=8)


def _uniform_items(n, seed=0):
    rng = random.Random(seed)
    keys = sorted({rng.randrange(2**40) for _ in range(n)})
    return [(k, k) for k in keys]


def test_inserts_land_in_record_bins():
    idx = FINEdex(bin_capacity=64)
    idx.bulk_load([(i * 100, i) for i in range(100)])
    idx.insert(55, 0)
    idx.insert(57, 1)
    seg = idx._segments[0]
    assert seg.bin_entries == 2
    assert idx.lookup(55) == 0 and idx.lookup(57) == 1


def test_bin_overflow_triggers_local_retrain():
    idx = FINEdex(bin_capacity=4)
    idx.bulk_load(_uniform_items(1000, seed=1))
    rng = random.Random(2)
    for _ in range(2000):
        idx.insert(rng.randrange(2**40), 0)
    assert idx.retrain_count > 0
    # After retrains, everything is still findable in order.
    got = idx.range_scan(0, 10**6)
    keys = [k for k, _ in got]
    assert keys == sorted(keys)
    assert len(keys) == len(idx)


def test_keys_below_first_key_insertable():
    idx = FINEdex()
    idx.bulk_load([(1000, 1), (2000, 2)])
    assert idx.insert(5, 50)
    assert idx.lookup(5) == 50
    assert idx.range_scan(0, 3)[0] == (5, 50)


def test_retrain_preserves_routing_pivot():
    idx = FINEdex(bin_capacity=2)
    idx.bulk_load([(i * 1000, i) for i in range(100)])
    # Overflow a bin mid-structure to force a local retrain.
    for j in range(10):
        idx.insert(50000 + j, j)
    assert idx.retrain_count > 0
    # Keys on both sides of the retrained region still resolve.
    assert idx.lookup(49000) == 49
    assert idx.lookup(51000) == 51
    assert idx.lookup(50003) == 3


def test_no_delete_support():
    assert not FINEdex().supports_delete


def test_segment_count_tracks_hardness():
    easy = FINEdex()
    easy.bulk_load([(i * 50, i) for i in range(2000)])
    rng = random.Random(3)
    # Clusters big enough (~250 keys) that in-cluster rank deviation from
    # any single global line far exceeds epsilon=32.
    clustered_keys = sorted({c * 2**30 + rng.randrange(3000) for c in range(8) for _ in range(300)})
    hard = FINEdex()
    hard.bulk_load([(k, k) for k in clustered_keys])
    assert hard.segment_count() > easy.segment_count()
