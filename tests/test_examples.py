"""The examples must keep running end-to-end (subprocess smoke tests)."""

import os
import subprocess
import sys


_EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def _run(script, *args, timeout=300):
    return subprocess.run(
        [sys.executable, os.path.join(_EXAMPLES, script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_quickstart_runs():
    r = _run("quickstart.py")
    assert r.returncode == 0, r.stderr
    assert "Balanced workload" in r.stdout
    assert "ALEX" in r.stdout and "B+tree" in r.stdout


def test_index_advisor_runs_and_validates():
    r = _run("index_advisor.py", "covid")
    assert r.returncode == 0, r.stderr
    assert "shortlist" in r.stdout
    assert "empirical best" in r.stdout


def test_evolving_workload_runs():
    r = _run("evolving_workload.py")
    assert r.returncode == 0, r.stderr
    assert "Distribution shift" in r.stdout
    assert "PGM" in r.stdout


def test_capacity_planning_runs():
    r = _run("capacity_planning.py")
    assert r.returncode == 0, r.stderr
    assert "B/key" in r.stdout
    assert "LIPP" in r.stdout


def test_session_store_runs():
    r = _run("session_store.py")
    assert r.returncode == 0, r.stderr
    assert "advisor:" in r.stdout
    assert "OK" in r.stdout
