"""RMI: the read-only baseline."""

import random

import pytest

from repro.indexes.rmi import RMI


def _items(n, seed=0):
    rng = random.Random(seed)
    keys = sorted({rng.randrange(2**40) for _ in range(n)})
    return [(k, k ^ 0xFF) for k in keys]


def test_bulk_load_and_lookup():
    items = _items(5000, seed=1)
    idx = RMI()
    idx.bulk_load(items)
    for k, v in items[::113]:
        assert idx.lookup(k) == v
    assert idx.lookup(items[0][0] - 1) is None


def test_error_bounds_recorded():
    idx = RMI(fanout=32)
    idx.bulk_load(_items(5000, seed=2))
    assert idx.max_error < 5000
    # Uniform data: stage-2 models should be tight.
    assert idx.max_error < 200


def test_insert_raises_with_pointer_to_the_paper():
    idx = RMI()
    idx.bulk_load(_items(100, seed=3))
    with pytest.raises(NotImplementedError, match="read-only"):
        idx.insert(1, 1)


def test_update_in_place_works():
    items = _items(500, seed=4)
    idx = RMI()
    idx.bulk_load(items)
    k = items[250][0]
    assert idx.update(k, 999)
    assert idx.lookup(k) == 999
    assert not idx.update(k + 1 if (k + 1) not in dict(items) else k + 3, 1)


def test_range_scan():
    idx = RMI()
    idx.bulk_load([(i * 10, i) for i in range(1000)])
    assert idx.range_scan(105, 3) == [(110, 11), (120, 12), (130, 13)]


def test_empty_and_tiny():
    idx = RMI()
    idx.bulk_load([])
    assert idx.lookup(5) is None
    idx2 = RMI()
    idx2.bulk_load([(7, 70)])
    assert idx2.lookup(7) == 70


def test_fanout_validation():
    with pytest.raises(ValueError):
        RMI(fanout=0)


def test_memory_is_packed_plus_models():
    idx = RMI(fanout=16)
    items = _items(2000, seed=5)
    idx.bulk_load(items)
    mem = idx.memory_usage()
    assert mem.leaf == len(items) * 16
    assert mem.inner < 2000  # just the models


def test_rmi_lookup_beats_updatable_learned_on_static_data():
    """The original pitch: nothing beats a packed read-only RMI."""
    from repro import ALEX, execute, mixed_workload

    keys = [k for k, _ in _items(4000, seed=6)]
    wl = mixed_workload(keys, 0.0, n_ops=3000, seed=7)
    rmi = execute(RMI(), wl).throughput_mops
    alex = execute(ALEX(), wl).throughput_mops
    assert rmi > 0.8 * alex  # at worst competitive; typically ahead
