"""Diagnostics probes and the result store."""

import json
import random

import pytest

from repro import ALEX, BPlusTree, LIPP, PGMIndex, execute, mixed_workload
from repro.core.diagnostics import diagnose
from repro.core.results import (
    SCHEMA_VERSION,
    ResultStore,
    compare,
    load_jsonl,
    result_record,
    save_jsonl,
)

KEYS = sorted(random.Random(0).sample(range(2**40), 4000))


def _loaded(factory, frac=0.5):
    idx = factory()
    execute(idx, mixed_workload(KEYS, frac, n_ops=3000, seed=1))
    return idx


# -- diagnostics --------------------------------------------------------------

def test_diagnose_alex_metrics():
    idx = _loaded(ALEX)
    rep = diagnose(idx, KEYS[:200])
    assert rep.index_name == "ALEX"
    assert rep.metrics["data_nodes"] >= 1
    assert 0 < rep.metrics["avg_density"] <= 1
    assert "bytes_per_key" in rep.metrics
    assert rep.metrics["sample_hit_rate"] > 0.3
    assert "Diagnosis" in rep.render()


def test_diagnose_alex_flags_write_amplification():
    # Clustered data: huge shifts per insert.
    keys = sorted({c * 2**40 + o for c in range(10) for o in range(400)})
    idx = ALEX()
    idx.bulk_load([(k, k) for k in list(keys)[::2]])
    for k in list(keys)[1::2]:
        idx.insert(k, k)
    rep = diagnose(idx)
    assert any("write amplification" in f for f in rep.findings)


def test_diagnose_lipp_metrics():
    idx = _loaded(LIPP)
    rep = diagnose(idx, KEYS[:100])
    assert rep.metrics["nodes"] >= 1
    assert rep.metrics["max_depth"] >= 1
    assert "root_child_fraction" in rep.metrics
    assert any("B/key" in f or True for f in rep.findings)  # render works
    rep.render()


def test_diagnose_pgm_flags_many_runs():
    idx = PGMIndex(buffer_size=16, merge_policy="tiered", tier_fanout=8)
    idx.bulk_load([])
    for i in range(3000):
        idx.insert(i * 3, i)
    rep = diagnose(idx)
    assert rep.metrics["live_runs"] >= 1
    if rep.metrics["live_runs"] > 6:
        assert any("live runs" in f for f in rep.findings)


def test_diagnose_generic_index():
    idx = _loaded(BPlusTree)
    rep = diagnose(idx, KEYS[:50])
    assert rep.metrics["avg_path_nodes"] >= 1
    assert rep.n_keys == len(idx)


# -- result store --------------------------------------------------------------

def _result(factory=BPlusTree, frac=0.0):
    return execute(factory(), mixed_workload(KEYS, frac, n_ops=800, seed=2))


def test_store_append_and_load(tmp_path):
    store = ResultStore(str(tmp_path / "r.jsonl"))
    r = _result()
    store.append(r, tags={"run": "1"})
    store.append(r)
    records = store.load()
    assert len(records) == 2
    assert records[0]["tags"] == {"run": "1"}
    assert records[1]["index"] == "B+tree"


def test_store_missing_file_is_empty(tmp_path):
    assert ResultStore(str(tmp_path / "absent.jsonl")).load() == []


def test_store_corrupt_line_raises(tmp_path):
    path = tmp_path / "r.jsonl"
    path.write_text('{"ok": 1}\nnot json\n')
    with pytest.raises(ValueError, match="corrupt"):
        ResultStore(str(path)).load()


def test_store_latest(tmp_path):
    store = ResultStore(str(tmp_path / "r.jsonl"))
    r = _result()
    store.append(r, tags={"v": "old"})
    store.append(r, tags={"v": "new"})
    latest = store.latest(r.index_name, r.workload_name)
    assert latest["tags"] == {"v": "new"}
    assert store.latest("nope", "x") is None


# -- versioned artifacts -------------------------------------------------------

def test_result_record_stamps_schema_version():
    record = result_record(_result(), tags={"commit": "abc"})
    assert record["schema_version"] == SCHEMA_VERSION
    assert record["tags"] == {"commit": "abc"}
    assert record["index"] == "B+tree"


def test_save_load_jsonl_round_trip(tmp_path):
    path = str(tmp_path / "runs.jsonl")
    r = _result()
    assert save_jsonl([r, r], path, tags={"run": "a"}) == 2
    assert save_jsonl([r], path, append=True) == 1
    records = load_jsonl(path)
    assert len(records) == 3
    assert all(rec["schema_version"] == SCHEMA_VERSION for rec in records)
    assert records[0]["tags"] == {"run": "a"}
    assert "tags" not in records[2]
    # Without append=True the file is rewritten, not extended.
    assert save_jsonl([r], path) == 1
    assert len(load_jsonl(path)) == 1


def test_load_jsonl_accepts_legacy_unversioned_records(tmp_path):
    path = tmp_path / "legacy.jsonl"
    path.write_text('{"index": "X", "workload": "w", "throughput_mops": 1.0}\n')
    records = load_jsonl(str(path))
    assert len(records) == 1
    assert "schema_version" not in records[0]  # version 0, passed through


def test_load_jsonl_rejects_newer_schema(tmp_path):
    path = tmp_path / "future.jsonl"
    path.write_text(json.dumps({"index": "X", "schema_version": SCHEMA_VERSION + 1}) + "\n")
    with pytest.raises(ValueError, match="newer than supported"):
        load_jsonl(str(path))
    path.write_text('{"schema_version": "two"}\n')
    with pytest.raises(ValueError, match="newer than supported"):
        load_jsonl(str(path))


def test_store_records_are_versioned(tmp_path):
    store = ResultStore(str(tmp_path / "r.jsonl"))
    store.append(_result())
    assert store.load()[0]["schema_version"] == SCHEMA_VERSION


def test_compare_flags_throughput_regression():
    base = [{"index": "X", "workload": "w", "throughput_mops": 10.0}]
    cur = [{"index": "X", "workload": "w", "throughput_mops": 8.0}]
    regs = compare(base, cur, threshold=0.10)
    assert len(regs) == 1
    assert regs[0].metric == "throughput_mops"
    assert regs[0].change == pytest.approx(-0.2)
    assert "-20" in str(regs[0]) or "-20.0%" in str(regs[0])


def test_compare_flags_latency_regression():
    base = [{"index": "X", "workload": "w", "throughput_mops": 10.0,
             "lookup_latency": {"p999": 100.0}}]
    cur = [{"index": "X", "workload": "w", "throughput_mops": 10.0,
            "lookup_latency": {"p999": 180.0}}]
    regs = compare(base, cur)
    assert len(regs) == 1
    assert regs[0].metric == "lookup_latency.p999"


def test_compare_ignores_improvements_and_new_pairs():
    base = [{"index": "X", "workload": "w", "throughput_mops": 10.0}]
    cur = [
        {"index": "X", "workload": "w", "throughput_mops": 15.0},
        {"index": "Y", "workload": "w", "throughput_mops": 0.1},
    ]
    assert compare(base, cur) == []


def test_compare_roundtrip_through_store(tmp_path):
    store_a = ResultStore(str(tmp_path / "a.jsonl"))
    store_b = ResultStore(str(tmp_path / "b.jsonl"))
    store_a.append(_result(BPlusTree))
    store_b.append(_result(BPlusTree))
    # Identical runs: no regressions.
    assert compare(store_a.load(), store_b.load()) == []
