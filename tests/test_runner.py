"""Benchmark runner and report helpers."""

import pytest

from repro.core.report import bar, format_bytes, format_number, series, table
from repro.core.runner import LatencyStats, best_throughput, execute
from repro.core.workloads import deletion_workload, mixed_workload, scan_workload
from repro.indexes.alex import ALEX
from repro.indexes.btree import BPlusTree

KEYS = list(range(0, 20000, 4))


def test_execute_read_only():
    r = execute(BPlusTree(), mixed_workload(KEYS, 0.0, n_ops=500, seed=1))
    assert r.n_ops == 500
    assert r.virtual_ns > 0
    assert r.throughput_mops > 0
    assert r.lookup_latency.count > 0
    assert r.write_latency.count == 0
    assert r.memory.total > 0


def test_execute_counts_insert_stats():
    r = execute(ALEX(), mixed_workload(KEYS, 1.0, seed=2))
    assert r.insert_stats.inserts == len(KEYS) - len(KEYS) // 2
    avgs = r.insert_stats.averages()
    assert avgs["nodes_traversed"] >= 1


def test_execute_excludes_bulk_load_cost():
    wl = mixed_workload(KEYS, 0.0, n_ops=10, seed=3)
    r = execute(BPlusTree(), wl)
    # 10 lookups should cost microseconds, not the bulk-load millions.
    assert r.virtual_ns < 100_000


def test_execute_scan_workload():
    r = execute(BPlusTree(), scan_workload(KEYS, scan_size=20, n_scans=50, seed=4))
    assert r.scanned_entries == 20 * 50
    assert r.scan_keys_per_second > 0


def test_execute_delete_workload():
    r = execute(BPlusTree(), deletion_workload(KEYS, 0.5, n_ops=1000, seed=5))
    assert r.n_ops == 1000
    assert r.write_latency.count > 0


def test_latency_stats_percentiles():
    s = LatencyStats.from_samples(list(map(float, range(1, 1001))))
    assert s.p50 == pytest.approx(501, abs=2)
    assert s.p99 == pytest.approx(991, abs=2)
    assert s.p999 >= s.p99 >= s.p50
    assert s.max == 1000


def test_latency_stats_empty():
    s = LatencyStats.from_samples([])
    assert s.count == 0 and s.p999 == 0


def test_best_throughput():
    wl = mixed_workload(KEYS, 0.0, n_ops=200, seed=6)
    results = [execute(BPlusTree(fanout=8), wl), execute(ALEX(), wl)]
    winner = best_throughput(results)
    assert winner.throughput_mops == max(r.throughput_mops for r in results)
    with pytest.raises(ValueError):
        best_throughput([])


def test_report_table_and_series():
    t = table(["a", "bb"], [[1, 2.5], ["x", 0.001]], title="T")
    assert "a" in t and "bb" in t and "0.001" in t
    s = series("thr", [1, 2], [3.0, 4.0])
    assert s.startswith("thr:") and "(1, 3.00)" in s


def test_format_bytes():
    assert format_bytes(512) == "512.0B"
    assert format_bytes(2048) == "2.0KB"
    assert "MB" in format_bytes(5 * 1024 * 1024)


def test_bar_rendering():
    assert bar(5, 10, width=10).count("#") == 5
    assert bar(20, 10, width=10).count("#") == 10
    assert bar(1, 0) == ""


def test_format_number():
    assert format_number(3.14159) == "3.14"
    assert format_number(12345.6) == "1.23e+04"
    assert format_number(7) == "7"
