"""Benchmark runner and report helpers."""

import pytest

from repro.core.report import bar, format_bytes, format_number, series, table
from repro.core.runner import (
    ExecutionEngine,
    ExecutionObserver,
    LatencyStats,
    best_throughput,
    execute,
)
from repro.core.workloads import (
    INSERT,
    Operation,
    Workload,
    deletion_workload,
    mixed_workload,
    scan_workload,
)
from repro.indexes.alex import ALEX
from repro.indexes.btree import BPlusTree

KEYS = list(range(0, 20000, 4))


def test_execute_read_only():
    r = execute(BPlusTree(), mixed_workload(KEYS, 0.0, n_ops=500, seed=1))
    assert r.n_ops == 500
    assert r.virtual_ns > 0
    assert r.throughput_mops > 0
    assert r.lookup_latency.count > 0
    assert r.write_latency.count == 0
    assert r.memory.total > 0


def test_execute_counts_insert_stats():
    r = execute(ALEX(), mixed_workload(KEYS, 1.0, seed=2))
    assert r.insert_stats.inserts == len(KEYS) - len(KEYS) // 2
    avgs = r.insert_stats.averages()
    assert avgs["nodes_traversed"] >= 1


def test_execute_excludes_bulk_load_cost():
    wl = mixed_workload(KEYS, 0.0, n_ops=10, seed=3)
    r = execute(BPlusTree(), wl)
    # 10 lookups should cost microseconds, not the bulk-load millions.
    assert r.virtual_ns < 100_000


def test_execute_scan_workload():
    r = execute(BPlusTree(), scan_workload(KEYS, scan_size=20, n_scans=50, seed=4))
    assert r.scanned_entries == 20 * 50
    assert r.scan_keys_per_second > 0


def test_execute_delete_workload():
    r = execute(BPlusTree(), deletion_workload(KEYS, 0.5, n_ops=1000, seed=5))
    assert r.n_ops == 1000
    assert r.write_latency.count > 0


def test_latency_stats_percentiles():
    s = LatencyStats.from_samples(list(map(float, range(1, 1001))))
    assert s.p50 == pytest.approx(501, abs=2)
    assert s.p99 == pytest.approx(991, abs=2)
    assert s.p999 >= s.p99 >= s.p50
    assert s.max == 1000


def test_latency_stats_nearest_rank_pinned():
    # Nearest-rank method: rank = ceil(p * n), 1-based.
    assert LatencyStats.from_samples([1.0, 2.0]).p50 == 1.0
    assert LatencyStats.from_samples([1.0, 2.0]).p99 == 2.0
    hundred = LatencyStats.from_samples(list(map(float, range(1, 101))))
    assert hundred.p50 == 50.0  # ceil(0.5 * 100) = 50, not 51
    assert hundred.p99 == 99.0  # ceil(0.99 * 100) = 99, not max
    assert hundred.p999 == 100.0
    ten = LatencyStats.from_samples(list(map(float, range(1, 11))))
    assert ten.p50 == 5.0
    assert ten.p99 == 10.0


def test_latency_stats_empty():
    s = LatencyStats.from_samples([])
    assert s.count == 0 and s.p999 == 0


def test_latency_stats_single_sample():
    s = LatencyStats.from_samples([7.0])
    assert s.p50 == s.p99 == s.p999 == s.max == 7.0


def test_latency_stats_single_pass_moments_pinned():
    # from_samples computes mean/variance in one pass (shifted sums);
    # this pins the percentile values and checks both moments against
    # the two-pass textbook definition on an outlier-heavy sample.
    samples = [5.0, 1.0, 9.0, 3.0, 3.0, 7.0, 2.0, 8.0, 100.0, 4.0]
    s = LatencyStats.from_samples(samples)
    assert s.p50 == 4.0     # nearest rank: ceil(0.5 * 10) = 5 -> sorted[4]
    assert s.p99 == 100.0
    assert s.p999 == 100.0
    assert s.max == 100.0
    n = len(samples)
    mean = sum(samples) / n
    var = sum((x - mean) ** 2 for x in samples) / n
    assert s.mean == pytest.approx(mean, rel=1e-12)
    assert s.variance == pytest.approx(var, rel=1e-12)
    # Constant samples: exactly zero variance, no negative rounding.
    flat = LatencyStats.from_samples([42.0] * 32)
    assert flat.variance == 0.0 and flat.mean == 42.0


def _strip_wall(result):
    d = result.to_dict()
    d.pop("wall_seconds")
    return d


def test_engine_matches_execute_exactly():
    wl = mixed_workload(KEYS, 0.5, n_ops=2000, seed=11)
    via_execute = execute(ALEX(), wl)
    via_engine = ExecutionEngine().run(ALEX(), wl)
    # Virtual-clock identical; only interpreter wall time may differ.
    assert _strip_wall(via_engine) == _strip_wall(via_execute)


class _Recorder(ExecutionObserver):
    def __init__(self):
        self.phases = []
        self.events = []
        self.latencies = []
        self.smos = 0

    def on_phase(self, phase, index, workload):
        self.phases.append(phase)

    def on_op(self, event, latency):
        self.events.append(event)
        if latency is not None:
            self.latencies.append(latency)

    def on_smo(self, event):
        self.smos += 1


def test_engine_observer_sees_every_operation():
    wl = mixed_workload(KEYS, 1.0, n_ops=3000, seed=12)
    rec = _Recorder()
    r = ExecutionEngine(observers=[rec]).run(ALEX(), wl)
    assert len(rec.events) == wl.n_ops == r.n_ops
    assert [e.seq for e in rec.events] == list(range(wl.n_ops))
    assert rec.phases == ["bulk_load", "measure", "done"]
    # ~1% sampling: one latency per sample_every ops, first op included.
    assert len(rec.latencies) == (wl.n_ops + 100) // 101
    assert all(lat > 0 for lat in rec.latencies)
    # A write-only stream on ALEX must trigger structural modifications.
    assert rec.smos > 0
    assert rec.smos == r.insert_stats.smo_count


def test_engine_add_observer_persists_across_runs():
    rec = _Recorder()
    engine = ExecutionEngine()
    assert engine.add_observer(rec) is rec
    wl = mixed_workload(KEYS[:2000], 0.0, n_ops=100, seed=13)
    engine.run(BPlusTree(), wl)
    engine.run(BPlusTree(), wl)
    assert len(rec.events) == 200


def test_insert_stats_skip_failed_duplicate_inserts():
    """Duplicate-heavy stream: failed inserts must not skew Table 3."""
    keys = list(range(0, 2000, 2))
    bulk = [(k, k + 1) for k in keys]
    ops = []
    for k in keys[:500]:
        ops.append(Operation(INSERT, k, 0))        # duplicate: fails
        ops.append(Operation(INSERT, k + 1, 0))    # fresh: succeeds
    wl = Workload(name="dup-heavy", bulk_items=bulk, operations=ops,
                  write_fraction=1.0)
    r = execute(BPlusTree(), wl)
    assert r.n_ops == 1000
    assert r.insert_stats.inserts == 500  # only the successful half
    # Averages are per *successful* insert: traversals are real work.
    assert r.insert_stats.averages()["nodes_traversed"] >= 1
    assert 0.0 <= r.insert_stats.averages()["smo_rate"] <= 1.0


def test_engine_rejects_unknown_op():
    wl = Workload(name="bad", bulk_items=[(1, 1)],
                  operations=[Operation("frobnicate", 1)])
    with pytest.raises(ValueError, match="unknown op"):
        execute(BPlusTree(), wl)


def test_best_throughput():
    wl = mixed_workload(KEYS, 0.0, n_ops=200, seed=6)
    results = [execute(BPlusTree(fanout=8), wl), execute(ALEX(), wl)]
    winner = best_throughput(results)
    assert winner.throughput_mops == max(r.throughput_mops for r in results)
    with pytest.raises(ValueError):
        best_throughput([])


def test_report_table_and_series():
    t = table(["a", "bb"], [[1, 2.5], ["x", 0.001]], title="T")
    assert "a" in t and "bb" in t and "0.001" in t
    s = series("thr", [1, 2], [3.0, 4.0])
    assert s.startswith("thr:") and "(1, 3.00)" in s


def test_format_bytes():
    assert format_bytes(512) == "512.0B"
    assert format_bytes(2048) == "2.0KB"
    assert "MB" in format_bytes(5 * 1024 * 1024)


def test_bar_rendering():
    assert bar(5, 10, width=10).count("#") == 5
    assert bar(20, 10, width=10).count("#") == 10
    assert bar(1, 0) == ""


def test_format_number():
    assert format_number(3.14159) == "3.14"
    assert format_number(12345.6) == "1.23e+04"
    assert format_number(7) == "7"
