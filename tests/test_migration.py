"""Zero-downtime live migration: the multiplexer and the controller.

Unit tests drive :class:`MultiplexIndex` pump-by-pump; integration
tests run :func:`run_migration` end to end, including the edge cases
from the issue: cutover racing a concurrent SMO, a lying secondary
(divergence -> abort -> shrunk repro), abort-and-rollback leaving the
primary serving, and empty-index / duplicate-key backfill.
"""

import random

import pytest

from repro.core.instance import RETIRED, SERVING
from repro.core.migrate import resolve_index_name, run_migration
from repro.core.workloads import (
    INSERT,
    LOOKUP,
    Operation,
    Workload,
    churn_workload,
    mixed_workload,
    payload,
)
from repro.indexes.alex import ALEX
from repro.indexes.btree import BPlusTree
from repro.indexes.finedex import FINEdex
from repro.indexes.multiplex import (
    BACKFILL,
    DETACHED,
    DONE,
    FAILED,
    READY,
    VERIFY,
    MultiplexIndex,
)

KEYS = sorted(random.Random(7).sample(range(1, 50_000_000), 2000))
ITEMS = [(k, payload(k)) for k in KEYS]


def _mux(n=300, chunk=50, **kw):
    p, s = BPlusTree(), BPlusTree()
    p.bulk_load(ITEMS[:n])
    return MultiplexIndex(p, s, chunk=chunk, **kw), p, s


def _pump_until(mux, phase, limit=10_000):
    for _ in range(limit):
        if mux.phase == phase:
            return
        mux.pump()
    raise AssertionError(f"never reached {phase}; stuck at {mux.phase}")


# -- multiplexer unit tests ----------------------------------------------------

def test_pump_walks_backfill_verify_ready_done():
    mux, p, s = _mux(n=300, chunk=50)
    assert mux.phase == BACKFILL
    _pump_until(mux, VERIFY)
    assert mux.backfill_keys == 300
    assert mux.backfill_chunks == 7  # six full chunks + the short tail
    assert len(s) == 300
    _pump_until(mux, READY)
    assert mux.verify_keys == 300
    mux.cutover()
    assert mux.phase == DONE
    assert mux.primary is s and mux.secondary is None
    assert mux.lookup(KEYS[0]) == payload(KEYS[0])


def test_cutover_requires_verified_secondary():
    mux, _, _ = _mux()
    with pytest.raises(RuntimeError, match="fully verified"):
        mux.cutover()


def test_reads_cost_exactly_the_bare_primary():
    """The zero-downtime core: client lookups charge the primary meter
    exactly as if no migration were running; all pump work lands on the
    secondary's meter."""
    mux, p, s = _mux(n=200, chunk=20)
    bare = BPlusTree()
    bare.bulk_load(ITEMS[:200])
    for k in KEYS[:100]:
        assert mux.lookup(k) == bare.lookup(k)
    assert p.meter.total_time() == bare.meter.total_time()
    assert s.meter.total_time() > 0  # backfill really was charged somewhere


def test_dual_written_insert_survives_cutover():
    mux, _, s = _mux(n=100, chunk=30, auto_cutover=True)
    new = max(KEYS) + 17
    assert mux.insert(new, payload(new))
    _pump_until(mux, DONE)
    assert mux.primary is s
    assert mux.lookup(new) == payload(new)
    assert mux.lookup(KEYS[0]) == payload(KEYS[0])


def test_duplicate_key_backfill_compares_instead_of_copying():
    mux, _, _ = _mux(n=400, chunk=50)
    mux.pump()  # cursor now past the first chunk
    ahead = max(KEYS) + 5  # dual-written, then reached by the cursor
    assert mux.insert(ahead, payload(ahead))
    _pump_until(mux, READY)
    assert mux.backfill_duplicates >= 1
    assert not mux.divergences
    mux.cutover()
    assert mux.lookup(ahead) == payload(ahead)


def test_backfill_divergence_on_conflicting_secondary_value():
    mux, _, s = _mux(n=100, chunk=30)
    s.insert(KEYS[3], payload(KEYS[3]) ^ 1)  # poisoned before the pump
    _pump_until(mux, FAILED)
    assert mux.divergences[0].stage == "backfill"
    assert mux.divergences[0].key == KEYS[3]


def test_size_divergence_on_rogue_secondary_key():
    mux, _, s = _mux(n=100, chunk=40)
    rogue = max(KEYS) + 99  # never in the primary, so only the
    s.insert(rogue, 1)      # cardinality check can catch it
    _pump_until(mux, FAILED)
    assert mux.divergences[0].stage == "size"


def test_lying_update_in_ready_window_diverges():
    class DeafUpdateBTree(BPlusTree):
        def update(self, key, value):
            super().update(key, value)
            return False  # claims the key is missing

    p = BPlusTree()
    p.bulk_load(ITEMS[:100])
    mux = MultiplexIndex(p, DeafUpdateBTree(), chunk=50)
    _pump_until(mux, READY)
    mux.update(KEYS[0], 123)
    assert mux.phase == FAILED
    assert mux.divergences[0].stage == "write"


def test_dirty_keys_reverified_at_cutover():
    mux, _, s = _mux(n=200, chunk=50)
    _pump_until(mux, READY)
    mux.update(KEYS[5], 4242)  # churn lands in the READY window
    mux.cutover()
    assert mux.phase == DONE
    assert mux.reverify_keys >= 1
    assert mux.lookup(KEYS[5]) == 4242


def test_abort_detaches_secondary_and_primary_keeps_serving():
    mux, p, s = _mux(n=100, chunk=30)
    s.insert(KEYS[0], 999)  # force divergence
    _pump_until(mux, FAILED)
    mux.abort()
    assert mux.phase == DETACHED
    assert mux.secondary is None and mux.retired is s
    new = max(KEYS) + 3
    assert mux.insert(new, payload(new))  # single-sided, no crash
    assert mux.lookup(new) == payload(new)
    assert mux.lookup(KEYS[0]) == payload(KEYS[0])
    assert len(p) == 101


def test_memory_usage_sums_both_sides_while_attached():
    mux, p, s = _mux(n=200, chunk=50, auto_cutover=True)
    _pump_until(mux, VERIFY)
    both = mux.memory_usage().total
    assert both == p.memory_usage().total + s.memory_usage().total
    _pump_until(mux, DONE)
    assert mux.memory_usage().total == s.memory_usage().total


def test_status_snapshot_tracks_the_pump():
    mux, _, _ = _mux(n=120, chunk=40, auto_cutover=True)
    assert mux.status()["phase"] == BACKFILL
    _pump_until(mux, DONE)
    st = mux.status()
    assert st["phase"] == DONE
    assert st["backfill_keys"] == 120
    assert st["verify_keys"] == 120
    assert st["secondary"] is None


def test_primary_without_range_scan_is_rejected():
    class NoRange(BPlusTree):
        supports_range = False

    with pytest.raises(ValueError, match="range_scan"):
        MultiplexIndex(NoRange(), BPlusTree())


# -- the scan_many stale-batch-cache regression (satellite) --------------------

def test_scan_many_gen_guard_drops_cache_bound_mid_batch():
    """A wrapper that mutates from inside ``range_scan`` (the mux pump
    does exactly this) can leave batch state bound mid-batch; the
    generation guard in ``scan_many`` must drop it at batch end."""

    class MutatingScanBTree(BPlusTree):
        def range_scan(self, start, count):
            rows = super().range_scan(start, count)
            self._mutation_gen += 1          # a mutation happened...
            self._batch_cache = object()     # ...with batch state bound
            return rows

    idx = MutatingScanBTree()
    idx.bulk_load(ITEMS[:50])
    idx.scan_many([KEYS[0], KEYS[10]], 5)
    assert idx._batch_cache is None  # stale binding was dropped


def test_batch_binding_cannot_survive_a_mid_batch_cutover():
    """Warm the vectorized-lookup binding, then drive scan_many until
    the pump cuts over mid-batch: the next lookup_many must be served
    by the *new* primary, never the retired one."""
    p, s = FINEdex(), BPlusTree()
    p.bulk_load(ITEMS[:400])
    mux = MultiplexIndex(p, s, chunk=64, auto_cutover=True)
    warm = mux.lookup_many(KEYS[:32])  # binds _batch_cache to FINEdex
    assert warm == [payload(k) for k in KEYS[:32]]
    mux.scan_many([KEYS[0]] * 30, 4)  # each scan pumps one chunk
    assert mux.phase == DONE
    assert mux.primary is s
    assert mux._batch_cache is not p  # the old binding is gone
    new = max(KEYS) + 1
    mux.insert(new, payload(new))  # lands only in the new primary
    got = mux.lookup_many([new] + KEYS[:31])
    assert got[0] == payload(new)
    assert got[1:] == [payload(k) for k in KEYS[:31]]


# -- controller integration ----------------------------------------------------

def test_resolve_index_name_tolerates_loose_spellings():
    assert resolve_index_name("btree") == "B+tree"
    assert resolve_index_name("B+tree") == "B+tree"
    assert resolve_index_name("alex") == "ALEX"
    assert resolve_index_name("fitingtree") == "FITing-Tree"
    with pytest.raises(KeyError, match="unknown index"):
        resolve_index_name("splay")


def test_rmi_is_not_migratable():
    wl = churn_workload(KEYS[:100], n_ops=50, seed=1)
    with pytest.raises(ValueError, match="cannot be a migration"):
        run_migration("btree", "rmi", wl)


def test_happy_path_btree_to_alex_zero_downtime():
    wl = churn_workload(KEYS[:1200], write_frac=0.5, n_ops=900, seed=3)
    report = run_migration("btree", "alex", wl, chunk=64)
    assert report.completed and not report.aborted
    assert report.ok
    assert report.zero_downtime
    assert report.rejected_ops == 0 and report.cutover_stall_ops == 0
    assert report.verified_fraction == 1.0
    assert report.oracle_mismatches == []
    assert report.divergences == []
    assert report.cutover_seq is not None
    assert report.src_state == RETIRED and report.dst_state == SERVING
    assert report.reads > 0 and report.writes > 0
    assert report.overhead_ns > 0  # migration work was metered, not free
    assert report.backfill_keys_per_vsec > 0
    d = report.to_dict()
    assert d["ok"] is True and d["cutover_seq"] == report.cutover_seq
    assert "migrated after op" in report.describe()


def test_cutover_races_concurrent_smos():
    """Small nodes on both sides so structural modifications fire
    throughout backfill, verification, and right at the cutover
    boundary; the oracle proves client semantics never wobbled."""
    wl = mixed_workload(KEYS[:800], 0.8, n_ops=1000, seed=11)
    report = run_migration(
        "btree", "alex", wl, chunk=32,
        src_factory=lambda: BPlusTree(fanout=8),
        dst_factory=lambda: ALEX(target_leaf_keys=64, max_data_keys=256),
    )
    assert report.ok, report.describe()
    assert report.dual_writes > 0  # writes really did race the pump
    assert report.oracle_mismatches == []


def test_blind_insert_lsm_destination_backfills_cleanly():
    """PGM appends blindly on insert (returns True for keys it already
    holds), so the backfill cursor must value-compare dual-written keys
    via the shadow-written set instead of insert-returned-False — or
    the duplicate copies inflate the LSM's size past the primary's."""
    wl = churn_workload(KEYS[:1000], write_frac=0.6, n_ops=800, seed=13)
    report = run_migration("btree", "pgm", wl, chunk=64)
    assert report.ok, report.describe()
    assert report.divergences == []
    assert report.verified_fraction == 1.0


def test_short_stream_drains_pump_and_still_cuts_over():
    wl = churn_workload(KEYS[:1500], n_ops=5, seed=5)  # traffic ends early
    report = run_migration("btree", "alex", wl, chunk=64)
    assert report.completed
    assert report.cutover_seq == len(wl.operations)
    assert report.verified_fraction == 1.0


def test_empty_index_migration_completes():
    ops = [Operation(INSERT, k, payload(k)) for k in KEYS[:20]]
    ops += [Operation(LOOKUP, k) for k in KEYS[:20]]
    wl = Workload("empty-start", [], ops, write_fraction=0.5)
    report = run_migration("btree", "alex", wl)
    assert report.completed and report.ok
    assert report.backfill_keys == 0 or report.backfill_keys <= 20
    assert report.oracle_mismatches == []


def test_lying_secondary_aborts_rolls_back_and_shrinks_a_repro():
    class LyingLookupBTree(BPlusTree):
        """Returns corrupted payloads — caught by the verify sweep."""

        def lookup(self, key):
            value = super().lookup(key)
            return value ^ 1 if isinstance(value, int) else value

    wl = churn_workload(KEYS[:600], write_frac=0.3, n_ops=800, seed=9)
    report = run_migration(
        "btree", "btree", wl, chunk=32,
        dst_factory=lambda: LyingLookupBTree(fanout=8),
    )
    assert report.aborted and not report.completed
    assert not report.ok
    assert report.divergence_count >= 1
    # Caught at the first value comparison that touches the liar: the
    # backfill duplicate check or the verify sweep, whichever is first.
    assert report.divergences[0].startswith(("[backfill]", "[verify]"))
    # Rollback proof: the source served the rest of the stream...
    assert report.src_state == SERVING and report.dst_state == RETIRED
    assert report.post_abort_ops > 0
    # ...and the client stream never saw a wrong answer.
    assert report.oracle_mismatches == []
    assert report.rejected_ops == 0
    # The applied prefix replayed on a fresh lying destination and
    # ddmin shrank it to a minimal repro.
    assert report.repro is not None
    assert 1 <= len(report.repro.ops) <= 5
    assert "ABORTED" in report.describe()


def test_aborted_run_reports_partial_verification():
    class LyingLookupBTree(BPlusTree):
        def lookup(self, key):
            value = super().lookup(key)
            return value ^ 1 if isinstance(value, int) else value

    wl = churn_workload(KEYS[:600], write_frac=0.3, n_ops=400, seed=2)
    report = run_migration("btree", "btree", wl, chunk=32, shrink=False,
                           dst_factory=LyingLookupBTree)
    assert report.aborted
    assert report.repro is None  # shrink=False skips the replay
    assert 0.0 <= report.verified_fraction < 1.0


# -- churn workload (the migration driver) -------------------------------------

def test_churn_workload_is_deterministic():
    a = churn_workload(KEYS[:500], write_frac=0.4, n_ops=300, seed=6)
    b = churn_workload(KEYS[:500], write_frac=0.4, n_ops=300, seed=6)
    assert a.operations == b.operations
    assert a.bulk_items == b.bulk_items
    c = churn_workload(KEYS[:500], write_frac=0.4, n_ops=300, seed=7)
    assert c.operations != a.operations


def test_churn_workload_shape():
    wl = churn_workload(KEYS[:400], write_frac=0.5, n_ops=200, seed=0)
    kinds = {op.op for op in wl.operations}
    assert kinds == {LOOKUP, INSERT}
    n_ins = sum(1 for op in wl.operations if op.op == INSERT)
    assert 0 < n_ins < wl.n_ops
    loaded = {k for k, _ in wl.bulk_items}
    for op in wl.operations:
        if op.op == INSERT:
            assert op.key not in loaded
    with pytest.raises(ValueError):
        churn_workload(KEYS[:10], write_frac=1.5)


# -- live status during an in-flight migration (observability satellite) -------

def _wired_instances(n=200, chunk=50):
    """Instances wired to one mux exactly the way run_migration does it."""
    from repro.core.instance import IndexInstance

    source = IndexInstance(BPlusTree(), name="src@0")
    source.bulk_load(ITEMS[:n])
    target = IndexInstance(BPlusTree(), name="dst@1")
    mux = MultiplexIndex(source.index, target.index, chunk=chunk)
    mux.progress_sink = lambda stage, done, total: target.note_backfill(
        done, total, stage=stage)
    source.status_probe = mux.status
    target.status_probe = mux.status
    return source, target, mux


def test_instance_status_snapshots_the_backfill_cursor():
    source, target, mux = _wired_instances(n=200, chunk=50)
    mux.pump()  # one chunk copied
    st = source.status()
    assert st["migration"]["phase"] == BACKFILL
    assert st["migration"]["backfill_keys"] == 50
    assert st["migration"]["cursor"] == KEYS[49] + 1  # exclusive resume bound
    assert st["migration"]["secondary"] == "B+tree"
    assert target.status()["backfill_fraction"] == 0.25
    assert target.status()["progress"]["stage"] == "backfill"
    mux.pump()
    assert source.status()["migration"]["backfill_keys"] == 100
    assert target.status()["backfill_fraction"] == 0.5


def test_instance_status_reports_dirty_set_in_ready_window():
    source, target, mux = _wired_instances(n=200, chunk=50)
    _pump_until(mux, READY)
    assert source.status()["migration"]["dirty"] == 0
    mux.update(KEYS[0], 4242)
    mux.update(KEYS[1], 4343)
    st = source.status()["migration"]
    assert st["phase"] == READY
    assert st["dirty"] == 2
    assert st["dual_writes"] == 2
    mux.cutover()
    st = source.status()["migration"]
    assert st["phase"] == DONE and st["dirty"] == 0
    assert st["reverify_keys"] >= 2


def test_instance_status_counts_rejections_while_draining():
    from repro.core.instance import DRAINING, MIGRATING, AdmissionError

    source, target, mux = _wired_instances(n=100, chunk=50)
    source.advance(MIGRATING).advance(DRAINING)
    for _ in range(3):
        with pytest.raises(AdmissionError):
            source.admit(INSERT)
    with pytest.raises(AdmissionError):
        source.admit("delete")
    st = source.status()
    assert st["state"] == DRAINING
    assert st["rejected"] == {INSERT: 3, "delete": 1}
    source.admit(LOOKUP)  # reads drain through untouched
    assert source.status()["rejected"] == {INSERT: 3, "delete": 1}
