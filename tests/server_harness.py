"""Deterministic concurrency checker for the index server.

The server's correctness claim is operational: *N clients keep getting
right answers, without drops or stalls, while a background job rebuilds
the index under them*.  This harness turns that claim into a checkable
fact in two steps:

1. run a serve session — either the seeded deterministic interleave
   (``threaded=False``, byte-reproducible) or real client threads
   against the worker thread (``threaded=True``) — with every admitted
   op recorded in the server's lock-ordered journal, then
2. replay the journal *serially* through the PR-5 differential oracle
   and assert it matches every recorded result bit-for-bit.  Because
   journal entries are appended while the per-instance lock is held,
   journal order is a serialization of the concurrent history: an
   empty mismatch list proves linearizable-per-key results.

``check_session`` additionally asserts the operational SLOs (zero
dropped lookups, zero stalled lookups, background job finished DONE)
and returns human-readable failure strings instead of raising, so a
parametrized test over every shardable registry index reports all
broken indexes at once.
"""

from typing import List, Optional, Tuple

from repro.core.registry import REGISTRY
from repro.core.server import ServeReport, run_serve_session, session_streams

#: Small session shape: enough churn to cross SMO boundaries on the
#: stress-sized indexes while keeping the whole registry sweep fast.
SMALL_SESSION = {"n_clients": 3, "ops_per_client": 80, "n_bulk": 200}


def shardable_specs():
    """Registry specs the server can host (insert + range_scan)."""
    return [spec for spec in REGISTRY if spec.supports_sharding]


def build_session(index_name: str, seed: int = 0, profile: str = "churn",
                  **shape) -> Tuple[list, List[list]]:
    """Bulk items + per-client streams for ``index_name``."""
    params = {**SMALL_SESSION, **shape}
    return session_streams(index_name, seed=seed, profile=profile, **params)


def check_session(
    index_name: str,
    threaded: bool = False,
    seed: int = 0,
    profile: str = "churn",
    rebuild_to: str = "",
    chunk: int = 64,
    rebuild_after: float = 0.25,
    bus=None,
    shape: Optional[dict] = None,
) -> Tuple[ServeReport, List[str]]:
    """Run one session and collect every violated proof obligation."""
    bulk, streams = build_session(index_name, seed=seed, profile=profile,
                                  **(shape or {}))
    report = run_serve_session(
        index_name, bulk, streams, rebuild_to=rebuild_to,
        rebuild_after=rebuild_after, threaded=threaded, seed=seed,
        chunk=chunk, bus=bus)
    failures: List[str] = []
    prefix = f"{index_name} ({report.mode})"
    if report.mismatches:
        first = report.mismatches[0]
        failures.append(
            f"{prefix}: journal replay diverged from the oracle "
            f"({len(report.mismatches)} mismatches; first: seq={first.seq} "
            f"{first.op} key={first.key} expected {first.expected} "
            f"got {first.got})")
    if report.dropped_lookups:
        failures.append(
            f"{prefix}: {report.dropped_lookups} dropped lookups during "
            "the background rebuild")
    if report.stalled_lookups:
        failures.append(
            f"{prefix}: {report.stalled_lookups} stalled lookups "
            f"(max wait {report.max_wait_s:.3f}s)")
    if report.job is None:
        failures.append(f"{prefix}: background job never ran")
    elif report.job["state"] != "done":
        failures.append(
            f"{prefix}: background job ended {report.job['state']!r} "
            f"({report.job['error'] or 'no error recorded'})")
    if report.journal_len != report.ops_total:
        failures.append(
            f"{prefix}: journal has {report.journal_len} entries for "
            f"{report.ops_total} admitted ops")
    return report, failures
