"""Unit tests for the abstract cost meter."""

from repro.core.cost import (
    KEY_COMPARE,
    NODE_HOP,
    PHASE_SMO,
    PHASE_TRAVERSE,
    CostMeter,
    NullMeter,
)


def test_charge_accumulates_units():
    m = CostMeter()
    m.charge(NODE_HOP)
    m.charge(NODE_HOP, 2)
    assert m.total_units(NODE_HOP) == 3


def test_total_time_uses_weights():
    m = CostMeter(weights={NODE_HOP: 10.0, KEY_COMPARE: 1.0})
    m.charge(NODE_HOP, 2)
    m.charge(KEY_COMPARE, 5)
    assert m.total_time() == 25.0


def test_phase_attribution_nested():
    m = CostMeter(weights={NODE_HOP: 1.0})
    with m.phase(PHASE_TRAVERSE):
        m.charge(NODE_HOP)
        with m.phase(PHASE_SMO):
            m.charge(NODE_HOP, 4)
        m.charge(NODE_HOP)
    by_phase = m.time_by_phase()
    assert by_phase[PHASE_TRAVERSE] == 2.0
    assert by_phase[PHASE_SMO] == 4.0


def test_snapshot_diff_isolates_one_op():
    m = CostMeter(weights={NODE_HOP: 1.0})
    m.charge(NODE_HOP, 10)
    before = m.snapshot()
    with m.phase(PHASE_TRAVERSE):
        m.charge(NODE_HOP, 3)
    delta = m.diff(before)
    assert delta.total_time() == 3.0
    assert delta.units(NODE_HOP) == 3


def test_reset_clears_counts_and_phases():
    m = CostMeter()
    with m.phase(PHASE_TRAVERSE):
        m.charge(NODE_HOP)
        m.reset()
    assert m.total_time() == 0.0


def test_null_meter_drops_charges():
    m = NullMeter()
    m.charge(NODE_HOP, 100)
    assert m.total_time() == 0.0


def test_unknown_kind_has_zero_weight():
    m = CostMeter(weights={})
    m.charge("exotic", 5)
    assert m.total_time() == 0.0
    assert m.total_units("exotic") == 5
