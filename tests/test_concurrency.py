"""Multicore simulator and concurrency adapters."""

import pytest

from repro.concurrency.adapters import (
    MT_LEARNED,
    MT_TRADITIONAL,
    ALEXPlus,
    ARTOLC,
    LIPPPlus,
    WormholeAdapter,
    XIndexAdapter,
)
from repro.concurrency.simcore import MulticoreSimulator, Topology
from repro.concurrency.trace import bytes_from_counts
from repro.core.cost import KEY_SHIFT, NODE_HOP
from repro.core.workloads import mixed_workload
from repro.datasets import registry

KEYS = registry.get("covid").generate(4000, seed=0)


def _run(factory, write_frac, threads, n_ops=3000, sockets=1, dataset_keys=None):
    keys = dataset_keys if dataset_keys is not None else KEYS
    wl = mixed_workload(keys, write_frac, n_ops=n_ops, seed=1)
    ad = factory()
    ad.bulk_load(wl.bulk_items)
    sim = MulticoreSimulator(Topology(sockets=sockets))
    return sim.run(ad, wl.operations, threads=threads)


# -- topology --------------------------------------------------------------

def test_topology_limits():
    topo = Topology(sockets=1)
    assert topo.physical_threads() == 24
    assert topo.max_threads() == 48
    assert topo.thread_speed(0) == 1.0
    assert topo.thread_speed(30) == topo.smt_speed


def test_topology_remote_fraction():
    assert Topology(sockets=1).remote_fraction() == 0.0
    assert Topology(sockets=4).remote_fraction() == 0.75


def test_simulator_rejects_too_many_threads():
    sim = MulticoreSimulator(Topology(sockets=1))
    ad = ALEXPlus()
    ad.bulk_load([(1, 1)])
    with pytest.raises(ValueError):
        sim.run(ad, [], threads=999)


# -- basic correctness --------------------------------------------------------

def test_all_adapters_execute_read_only():
    for name, factory in {**MT_LEARNED, **MT_TRADITIONAL}.items():
        r = _run(factory, 0.0, threads=4, n_ops=500)
        assert r.n_ops == 500, name
        assert r.throughput_mops > 0, name


def test_all_adapters_execute_writes():
    for name, factory in {**MT_LEARNED, **MT_TRADITIONAL}.items():
        r = _run(factory, 0.5, threads=4, n_ops=500)
        assert r.n_ops == 500, name


def test_adapter_underlying_index_stays_correct():
    wl = mixed_workload(KEYS, 0.5, n_ops=2000, seed=2)
    ad = ALEXPlus()
    ad.bulk_load(wl.bulk_items)
    sim = MulticoreSimulator(Topology())
    sim.run(ad, wl.operations, threads=8)
    inserted = [op.key for op in wl.operations if op.op == "insert"]
    for k in inserted[::50]:
        assert ad.index.lookup(k) is not None


# -- scalability shapes (the paper's Figure 5) ---------------------------------

def test_read_only_scales_for_everyone():
    for name, factory in {**MT_LEARNED, **MT_TRADITIONAL}.items():
        r1 = _run(factory, 0.0, threads=1)
        r24 = _run(factory, 0.0, threads=24)
        assert r24.throughput_mops > 10 * r1.throughput_mops, name


def test_lipp_plus_writes_do_not_scale():
    """Message 6: per-path atomic stats flatten LIPP+ under writes."""
    r8 = _run(LIPPPlus, 1.0, threads=8)
    r24 = _run(LIPPPlus, 1.0, threads=24)
    assert r24.throughput_mops < 2.0 * r8.throughput_mops
    # ...while ALEX+ keeps scaling over the same range.
    a8 = _run(ALEXPlus, 1.0, threads=8)
    a24 = _run(ALEXPlus, 1.0, threads=24)
    assert a24.throughput_mops > 2.0 * a8.throughput_mops


def test_lipp_plus_atomic_contention_recorded():
    r = _run(LIPPPlus, 1.0, threads=24)
    assert r.atomic_ns > 0


def test_wormhole_meta_lock_limits_writes():
    r24 = _run(WormholeAdapter, 1.0, threads=24)
    r48 = _run(WormholeAdapter, 1.0, threads=48)
    # Serialised splits: adding hyper-threads must not help much.
    assert r48.throughput_mops < 1.3 * r24.throughput_mops


def test_hyperthreading_hurts_lipp_plus():
    r24 = _run(LIPPPlus, 1.0, threads=24)
    r48 = _run(LIPPPlus, 1.0, threads=48)
    assert r48.throughput_mops < r24.throughput_mops


def test_alex_plus_bandwidth_saturation():
    """Section 4.3: ALEX+ saturates memory bandwidth around 24 threads."""
    r = _run(ALEXPlus, 1.0, threads=24)
    r48 = _run(ALEXPlus, 1.0, threads=48)
    assert r.bandwidth_limited or r48.bandwidth_limited or (
        r48.throughput_mops < 1.3 * r.throughput_mops
    )


def test_numa_two_socket_dip_for_alex_plus():
    """Figure 6: ALEX+ gains little (or loses) moving to 2 sockets."""
    s1 = _run(ALEXPlus, 0.5, threads=24, sockets=1)
    s2 = _run(ALEXPlus, 0.5, threads=48, sockets=2)
    s4 = _run(ALEXPlus, 0.5, threads=96, sockets=4)
    assert s2.throughput_mops < 1.5 * s1.throughput_mops  # weak 2-socket gain
    assert s4.throughput_mops > s2.throughput_mops        # recovers with links


def test_xindex_merge_stalls_surface_in_latency():
    """Figures 10-11: the co-scheduled merge thread spikes tails."""
    wl = mixed_workload(KEYS, 0.8, n_ops=4000, seed=1)
    ad = XIndexAdapter()
    ad.bulk_load(wl.bulk_items)
    sim = MulticoreSimulator(Topology())
    r = sim.run(ad, wl.operations, threads=4, sample_every=1)
    lat = sorted(r.write_latencies + r.lookup_latencies)
    assert lat[-1] > 10 * lat[len(lat) // 2]  # max >> median


def test_lock_wait_recorded_under_contention():
    """Skewed writes all hit the same leaf: waits must appear."""
    keys = list(range(0, 40000, 4))
    wl = mixed_workload(keys, 1.0, seed=3)
    ad = ARTOLC()
    ad.bulk_load(wl.bulk_items)
    sim = MulticoreSimulator(Topology())
    r = sim.run(ad, wl.operations[:3000], threads=24)
    assert r.lock_wait_ns >= 0  # present (dense data may contend)


# -- trace helpers ---------------------------------------------------------------

def test_bytes_from_counts():
    counts = {("traverse", NODE_HOP): 2.0, ("collision", KEY_SHIFT): 4.0}
    assert bytes_from_counts(counts) == 2 * 64 + 4 * 32


def test_alexplus_lock_granularity_validation():
    with pytest.raises(ValueError):
        ALEXPlus(lock_granularity="page")


def test_per_record_locking_slower_than_per_node():
    """Appendix A: per-record locks cost more despite more concurrency."""
    node = _run(lambda: ALEXPlus(lock_granularity="node"), 0.5, threads=24)
    record = _run(lambda: ALEXPlus(lock_granularity="record"), 0.5, threads=24)
    assert node.throughput_mops > record.throughput_mops


def test_unsupported_op_raises():
    ad = WormholeAdapter()
    ad.bulk_load([(1, 1)])
    from repro.core.workloads import Operation

    with pytest.raises(NotImplementedError):
        ad.run_op(Operation("delete", 1))
