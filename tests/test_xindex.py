"""XIndex: contract conformance plus delta/compaction behaviour."""

import random

from repro.indexes.xindex import XIndex
from tests.index_contract import IndexContract


class TestXIndexContract(IndexContract):
    def make(self) -> XIndex:
        return XIndex(delta_size=32, target_group_keys=128)


def _uniform_items(n, seed=0):
    rng = random.Random(seed)
    keys = sorted({rng.randrange(2**40) for _ in range(n)})
    return [(k, k) for k in keys]


def test_inserts_go_to_delta_first():
    idx = XIndex(delta_size=64)
    idx.bulk_load(_uniform_items(500, seed=1))
    g = idx._groups[0]
    main_before = len(g.keys)
    rng = random.Random(2)
    for _ in range(10):
        idx.insert(rng.randrange(2**30), 0)
    assert len(idx._groups[0].keys) == main_before  # main untouched
    assert sum(len(g.delta_keys) for g in idx._groups) == 10


def test_compaction_merges_delta():
    idx = XIndex(delta_size=16, target_group_keys=256)
    idx.bulk_load(_uniform_items(200, seed=3))
    rng = random.Random(4)
    for _ in range(200):
        idx.insert(rng.randrange(2**40), 0)
    assert idx.compaction_count > 0
    assert idx.last_compaction_cost > 0


def test_group_splits_when_models_exceed_limit():
    idx = XIndex(delta_size=32, target_group_keys=4096, max_models_per_group=2)
    # Clustered keys: high local hardness forces many PLA segments.
    keys = sorted({c * 2**30 + o for c in range(20) for o in range(0, 2000, 7)})
    idx.bulk_load([(k, k) for k in keys[:100]])
    for k in keys[100:3000]:
        idx.insert(k, k)
    assert idx.group_count() > 1


def test_no_delete_support():
    assert not XIndex().supports_delete


def test_scan_merges_main_and_delta():
    idx = XIndex(delta_size=1000)
    idx.bulk_load([(i * 4, i) for i in range(500)])
    for i in range(500):
        idx.insert(i * 4 + 1, i + 1000)
    got = idx.range_scan(0, 20)
    keys = [k for k, _ in got]
    assert keys == sorted(keys) and keys[:4] == [0, 1, 4, 5]
