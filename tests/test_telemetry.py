"""Telemetry subsystem: traces, metric time-series, cost profiling."""

import json

import pytest

from repro.core.results import load_jsonl, save_jsonl
from repro.core.runner import ExecutionEngine, ExecutionObserver, execute
from repro.core.telemetry import (
    CostProfiler,
    Histogram,
    MetricsCollector,
    MetricsRegistry,
    Telemetry,
    TraceRecorder,
    chrome_trace_from_spans,
    validate_chrome_trace,
    validate_event_records,
    validate_metric_records,
)
from repro.core.workloads import (
    DELETE,
    INSERT,
    mixed_workload,
    scan_workload,
    ycsb_workload,
)
from repro.concurrency.simcore import MulticoreSimulator, Topology
from repro.concurrency.trace import OpTrace
from repro.indexes.alex import ALEX
from repro.indexes.btree import BPlusTree

KEYS = list(range(0, 16000, 4))


def _run_traced(index=None, write_frac=1.0, n_ops=2000, **kwargs):
    tel = Telemetry.full(**kwargs)
    wl = mixed_workload(KEYS, write_frac, n_ops=n_ops, seed=7)
    r = execute(index if index is not None else ALEX(), wl, telemetry=tel)
    return r, tel


# ---------------------------------------------------------------------------
# TraceRecorder
# ---------------------------------------------------------------------------

def test_trace_spans_cover_every_op_on_virtual_clock():
    r, tel = _run_traced()
    spans = tel.trace.spans()
    assert len(spans) == r.n_ops
    assert [s["seq"] for s in spans] == list(range(r.n_ops))
    # Spans tile the virtual timeline: monotonic, non-negative, and
    # their total duration is exactly the run's virtual time.
    for prev, cur in zip(spans, spans[1:]):
        assert cur["ts_ns"] == pytest.approx(prev["ts_ns"] + prev["dur_ns"])
        assert cur["dur_ns"] >= 0
    assert sum(s["dur_ns"] for s in spans) == pytest.approx(r.virtual_ns)


def test_trace_records_smo_instants():
    r, tel = _run_traced()
    instants = [e for e in tel.trace.events if e["kind"] == "instant"]
    assert len(instants) == r.insert_stats.smo_count > 0
    assert all(e["name"] == "smo" for e in instants)


def test_trace_chrome_export_validates():
    _, tel = _run_traced(n_ops=500)
    chrome = tel.trace.to_chrome()
    n = validate_chrome_trace(chrome)
    assert n == len(chrome["traceEvents"]) > 500
    # Perfetto essentials: complete events with µs timestamps.
    xs = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
    assert len(xs) == 500
    assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in xs)
    assert json.dumps(chrome)  # serializable


def test_trace_chrome_save_roundtrip(tmp_path):
    _, tel = _run_traced(n_ops=300)
    path = tmp_path / "trace.json"
    tel.trace.save_chrome(str(path))
    assert validate_chrome_trace(json.loads(path.read_text())) > 0


def test_trace_event_log_roundtrip_through_results(tmp_path):
    _, tel = _run_traced(n_ops=400)
    path = tmp_path / "events.jsonl"
    n = save_jsonl(tel.trace.events, str(path), tags={"artifact": "trace"})
    records = load_jsonl(str(path))
    assert len(records) == n == len(tel.trace.events)
    assert validate_event_records(records) == n
    for orig, loaded in zip(tel.trace.events, records):
        assert loaded["schema_version"] == 1
        assert loaded["tags"] == {"artifact": "trace"}
        for k, v in orig.items():
            assert loaded[k] == v


def test_trace_max_events_cap():
    tel = Telemetry(trace=TraceRecorder(max_events=50))
    wl = mixed_workload(KEYS, 0.0, n_ops=200, seed=3)
    execute(BPlusTree(), wl, telemetry=tel)
    assert len(tel.trace.events) == 50
    assert tel.trace.dropped > 0
    assert tel.trace.to_chrome()["otherData"]["dropped_events"] == tel.trace.dropped


def test_validators_reject_malformed():
    with pytest.raises(ValueError):
        validate_chrome_trace({"events": []})
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": [{"ph": "X", "name": "op"}]})
    with pytest.raises(ValueError):
        validate_event_records([{"kind": "span", "ts_ns": 1.0}])  # no dur
    with pytest.raises(ValueError):
        validate_metric_records([{"kind": "metric", "metric": "bogus",
                                  "t_ns": 0, "value": 1}])


# ---------------------------------------------------------------------------
# Per-thread lanes from the multicore simulator
# ---------------------------------------------------------------------------

def test_simulator_span_sink_renders_thread_lanes():
    sim = MulticoreSimulator(Topology())
    traces = [OpTrace(op="lookup", free_ns=100.0) for _ in range(400)]
    sink = []
    result = sim.replay("x", traces, threads=8, span_sink=sink)
    assert len(sink) == 400
    tids = {tid for tid, _, _, _ in sink}
    assert tids == set(range(8))
    assert all(0 <= s <= e <= result.makespan_ns + 1e-9
               for _, s, e, _ in sink)
    chrome = chrome_trace_from_spans(sink, "sim")
    assert validate_chrome_trace(chrome) == len(sink) + 1 + len(tids)
    lane_tids = {e["tid"] for e in chrome["traceEvents"] if e["ph"] == "X"}
    assert lane_tids == tids


def test_simulator_span_sink_stretched_with_bandwidth_limit():
    # Enormous traffic on a tiny-bandwidth topology forces the stretch.
    topo = Topology(socket_bandwidth=1e3)
    sim = MulticoreSimulator(topo)
    traces = [OpTrace(op="insert", free_ns=100.0, bytes=1e6) for _ in range(64)]
    sink = []
    result = sim.replay("x", traces, threads=4, span_sink=sink)
    assert result.bandwidth_limited
    assert max(e for _, _, e, _ in sink) == pytest.approx(result.makespan_ns)


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

def test_metrics_series_shapes():
    r, tel = _run_traced(n_ops=2048, window_ops=256)
    m = tel.metrics
    thr = m.samples("throughput_mops")
    smo = m.samples("smo_rate")
    mem = m.samples("memory_bytes")
    assert len(thr) == len(smo) == len(mem) == 2048 // 256
    assert all(s["value"] > 0 for s in thr)
    assert all(0.0 <= s["value"] <= 1.0 for s in smo)
    ts = [s["t_ns"] for s in thr]
    assert ts == sorted(ts)
    assert ts[-1] == pytest.approx(r.virtual_ns)
    # Write-only run: memory grows as structure is built.
    assert mem[-1]["value"] > mem[0]["value"]
    assert m.memory_growth() > 1.0


def test_metrics_partial_window_flushes_on_done():
    _, tel = _run_traced(n_ops=300, window_ops=256)
    # 256-op window + 44-op remainder flushed at "done".
    thr = tel.metrics.samples("throughput_mops")
    assert len(thr) == 2
    assert thr[0]["window_ops"] == 256
    assert thr[1]["window_ops"] == 44


def test_metrics_registry_counters_and_snapshot():
    _, tel = _run_traced(n_ops=1000, write_frac=0.5)
    snap = tel.metrics.registry.snapshot()
    assert snap["ops_total"]["value"] == 1000
    assert snap["ops.insert"]["value"] + snap["ops.lookup"]["value"] == 1000
    assert snap["smo_total"]["value"] > 0
    hist = snap["op_latency_ns"]
    assert hist["type"] == "histogram"
    assert hist["count"] == sum(hist["buckets"].values()) > 0


def test_metrics_roundtrip_through_results(tmp_path):
    _, tel = _run_traced(n_ops=1024)
    path = tmp_path / "metrics.jsonl"
    save_jsonl(tel.metrics.series, str(path), tags={"artifact": "metrics"})
    records = load_jsonl(str(path))
    assert validate_metric_records(records) == len(tel.metrics.series)


def test_histogram_log2_buckets():
    h = Histogram()
    for x in (0.0, 1.0, 2.0, 3.0, 1024.0, -5.0):
        h.observe(x)
    # Bucket e holds (2^(e-1), 2^e]; zero/negatives land in bucket 0.
    assert h.buckets == {0: 3, 1: 1, 2: 1, 10: 1}
    assert h.count == 6


def test_registry_get_or_create_is_stable():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    assert reg.gauge("y") is reg.gauge("y")
    assert reg.histogram("z") is reg.histogram("z")


def test_smo_storm_detection_merges_consecutive_windows():
    m = MetricsCollector(window_ops=10)
    # Hand-built rate series: calm, calm, burst, burst, calm.
    rates = [0.0, 0.02, 0.9, 0.8, 0.0]
    t = 0.0
    for rate in rates:
        m.series.append({"kind": "metric", "metric": "smo_rate",
                         "t_ns": t + 100.0, "window_start_ns": t,
                         "value": rate, "window_ops": 10})
        t += 100.0
    storms = m.smo_storms(factor=3.0, min_rate=0.05)
    assert len(storms) == 1
    storm = storms[0]
    assert storm.start_ns == 200.0 and storm.end_ns == 400.0
    assert storm.ops == 20
    assert storm.rate == pytest.approx(0.85)


def test_no_storms_on_uniform_rate():
    m = MetricsCollector(window_ops=10)
    for i in range(5):
        m.series.append({"kind": "metric", "metric": "smo_rate",
                         "t_ns": (i + 1) * 100.0, "window_start_ns": i * 100.0,
                         "value": 0.3, "window_ops": 10})
    assert m.smo_storms() == []


# ---------------------------------------------------------------------------
# CostProfiler
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("factory", [ALEX, BPlusTree])
def test_profiler_reconciles_with_meter(factory):
    prof = CostProfiler()
    idx = factory()
    wl = mixed_workload(KEYS, 0.5, n_ops=3000, seed=9)
    r = execute(idx, wl, telemetry=Telemetry(profiler=prof))
    by_phase = prof.time_by_phase()
    meter_phase = idx.meter.time_by_phase()
    for phase in set(by_phase) | set(meter_phase):
        assert by_phase.get(phase, 0.0) == pytest.approx(
            meter_phase.get(phase, 0.0), rel=1e-9, abs=1e-6)
    assert prof.total_ns() == pytest.approx(r.virtual_ns, rel=1e-9)
    assert sum(prof.time_by_op().values()) == pytest.approx(prof.total_ns())
    assert sum(prof.time_by_kind().values()) == pytest.approx(prof.total_ns())


def test_profiler_attributes_by_op_kind():
    prof = CostProfiler()
    wl = mixed_workload(KEYS, 0.5, n_ops=2000, seed=10)
    execute(ALEX(), wl, telemetry=Telemetry(profiler=prof))
    by_op = prof.time_by_op()
    assert by_op["insert"] > 0 and by_op["lookup"] > 0
    ops_seen = {op for op, _, _ in prof.cells}
    assert ops_seen == {"insert", "lookup"}


def test_profiler_render_flame_table():
    prof = CostProfiler()
    execute(ALEX(), mixed_workload(KEYS, 1.0, n_ops=1500, seed=11),
            telemetry=Telemetry(profiler=prof))
    out = prof.render(top=5)
    assert "Cost profile" in out and "Per-phase totals" in out
    assert "insert" in out


# ---------------------------------------------------------------------------
# Engine integration / observer semantics
# ---------------------------------------------------------------------------

def _strip_wall(result):
    d = result.to_dict()
    d.pop("wall_seconds")
    return d


def test_run_result_unchanged_with_telemetry_attached():
    wl = mixed_workload(KEYS, 0.5, n_ops=2000, seed=12)
    plain = execute(ALEX(), wl)
    traced = execute(ALEX(), wl, telemetry=Telemetry.full())
    assert _strip_wall(plain) == _strip_wall(traced)


def test_execute_forwards_observers():
    seen = []

    class Collector(ExecutionObserver):
        def on_op(self, event, latency):
            seen.append(event.seq)

    wl = mixed_workload(KEYS, 0.0, n_ops=150, seed=13)
    execute(BPlusTree(), wl, observers=[Collector()])
    assert seen == list(range(150))


def test_observers_called_in_registration_order():
    calls = []

    class Tagged(ExecutionObserver):
        def __init__(self, tag):
            self.tag = tag

        def on_op(self, event, latency):
            calls.append(self.tag)

    wl = mixed_workload(KEYS, 0.0, n_ops=10, seed=14)
    execute(BPlusTree(), wl, observers=[Tagged("a"), Tagged("b")])
    assert calls == ["a", "b"] * 10


def test_on_smo_only_for_smo_flagged_writes():
    smo_events = []

    class SmoWatcher(ExecutionObserver):
        def on_smo(self, event):
            smo_events.append(event)

    wl = mixed_workload(KEYS, 1.0, n_ops=2500, seed=15)
    execute(ALEX(), wl, observers=[SmoWatcher()])
    assert smo_events
    for e in smo_events:
        assert e.op.op in (INSERT, DELETE)
        assert e.record is not None and e.record.smo


def test_stock_collectors_fresh_per_run_constructor_observers_persist():
    counted = []

    class Counter(ExecutionObserver):
        def on_op(self, event, latency):
            counted.append(event.seq)

    engine = ExecutionEngine(observers=[Counter()])
    wl = mixed_workload(KEYS[:2000], 1.0, n_ops=500, seed=16)
    r1 = engine.run(ALEX(), wl)
    r2 = engine.run(ALEX(), wl)
    # Stock collectors are fresh per run: identical runs, identical stats.
    assert r1.insert_stats.inserts == r2.insert_stats.inserts
    assert r1.lookup_latency.count == r2.lookup_latency.count
    # The constructor-passed observer saw both runs.
    assert len(counted) == 1000


def test_update_and_scan_events_have_no_stale_record():
    events = []

    class Recorder(ExecutionObserver):
        def on_op(self, event, latency):
            events.append(event)

    # YCSB-A is lookup+update: BPlusTree.update never writes last_op.
    wl = ycsb_workload(KEYS, "A", n_ops=800, seed=17)
    execute(BPlusTree(), wl, observers=[Recorder()])
    kinds = {e.op.op for e in events}
    assert "update" in kinds
    for e in events:
        if e.op.op == "update":
            assert e.record is None
        elif e.record is not None:
            # A fresh record always describes this op kind.
            assert e.record.op == e.op.op

    events.clear()
    execute(BPlusTree(), scan_workload(KEYS, 10, 50, seed=18),
            observers=[Recorder()])
    assert all(e.record is None for e in events if e.op.op == "scan")


def test_telemetry_bundle_observers():
    tel = Telemetry.full()
    assert len(tel.observers()) == 3
    assert Telemetry().observers() == []
    only_prof = Telemetry(profiler=CostProfiler())
    assert only_prof.observers() == [only_prof.profiler]
