"""Reusable behavioural contract every index implementation must satisfy.

Per-index test modules subclass :class:`IndexContract` and provide
``make()``.  This keeps hundreds of behavioural checks uniform across the
eleven index implementations without copy-pasting test bodies.
"""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro.indexes.base import OrderedIndex


def _mk_items(n: int, seed: int) -> List[Tuple[int, int]]:
    rng = random.Random(seed)
    keys = set()
    while len(keys) < n:
        keys.add(rng.randrange(0, 2**48))
    return [(k, k ^ 0xABCD) for k in sorted(keys)]


class IndexContract:
    """Common behaviour tests; subclass and implement :meth:`make`."""

    #: Number of keys used in the larger scenarios; subclasses may lower it.
    N = 2000

    def make(self) -> OrderedIndex:
        raise NotImplementedError

    # -- bulk load + lookup ---------------------------------------------------

    def test_bulk_load_then_lookup_all(self):
        idx = self.make()
        items = _mk_items(self.N, seed=1)
        idx.bulk_load(items)
        assert len(idx) == len(items)
        for k, v in items[:: max(1, self.N // 200)]:
            assert idx.lookup(k) == v

    def test_lookup_absent_returns_none(self):
        idx = self.make()
        items = _mk_items(200, seed=2)
        idx.bulk_load(items)
        present = {k for k, _ in items}
        rng = random.Random(3)
        for _ in range(100):
            k = rng.randrange(0, 2**48)
            if k not in present:
                assert idx.lookup(k) is None

    def test_bulk_load_empty(self):
        idx = self.make()
        idx.bulk_load([])
        assert len(idx) == 0
        assert idx.lookup(42) is None

    def test_bulk_load_rejects_unsorted(self):
        idx = self.make()
        with pytest.raises(ValueError):
            idx.bulk_load([(5, 1), (3, 2)])

    def test_bulk_load_single_item(self):
        idx = self.make()
        idx.bulk_load([(7, 70)])
        assert idx.lookup(7) == 70
        assert idx.lookup(8) is None

    def test_boundary_keys(self):
        idx = self.make()
        items = [(0, 100), (1, 101), (2**48 - 1, 102)]
        idx.bulk_load(items)
        for k, v in items:
            assert idx.lookup(k) == v

    # -- insert ----------------------------------------------------------------

    def test_insert_into_empty(self):
        idx = self.make()
        idx.bulk_load([])
        assert idx.insert(10, 1)
        assert idx.lookup(10) == 1
        assert len(idx) == 1

    def test_insert_then_lookup_interleaved(self):
        idx = self.make()
        items = _mk_items(self.N, seed=4)
        half = len(items) // 2
        idx.bulk_load(items[:half])
        rng = random.Random(5)
        pending = items[half:]
        rng.shuffle(pending)
        for k, v in pending:
            assert idx.insert(k, v), f"insert of {k} failed"
            assert idx.lookup(k) == v
        for k, v in items[:: max(1, self.N // 100)]:
            assert idx.lookup(k) == v
        assert len(idx) == len(items)

    def test_insert_duplicate_returns_false(self):
        idx = self.make()
        if idx.supports_duplicates:
            pytest.skip("index allows duplicates")
        idx.bulk_load([(10, 1), (20, 2)])
        assert not idx.insert(10, 99)
        assert idx.lookup(10) == 1
        assert len(idx) == 2

    def test_insert_ascending_sequence(self):
        idx = self.make()
        idx.bulk_load([])
        for k in range(500):
            assert idx.insert(k, k)
        for k in range(0, 500, 7):
            assert idx.lookup(k) == k

    def test_insert_descending_sequence(self):
        idx = self.make()
        idx.bulk_load([])
        for k in range(500, 0, -1):
            assert idx.insert(k, k)
        for k in range(1, 501, 7):
            assert idx.lookup(k) == k

    def test_insert_clustered_keys(self):
        """Dense cluster amid a sparse space (hard for models)."""
        idx = self.make()
        idx.bulk_load([(0, 0), (2**40, 1)])
        base = 2**30
        for i in range(300):
            assert idx.insert(base + i, i)
        for i in range(0, 300, 11):
            assert idx.lookup(base + i) == i

    # -- update ------------------------------------------------------------------

    def test_update_existing(self):
        idx = self.make()
        idx.bulk_load([(10, 1), (20, 2), (30, 3)])
        assert idx.update(20, 99)
        assert idx.lookup(20) == 99

    def test_update_absent_returns_false(self):
        idx = self.make()
        idx.bulk_load([(10, 1)])
        assert not idx.update(11, 5)

    # -- delete ------------------------------------------------------------------

    def test_delete_roundtrip(self):
        idx = self.make()
        if not idx.supports_delete:
            pytest.skip("no delete support")
        items = _mk_items(self.N, seed=6)
        idx.bulk_load(items)
        rng = random.Random(7)
        doomed = rng.sample(items, len(items) // 2)
        for k, _ in doomed:
            assert idx.delete(k), f"delete of {k} failed"
        doomed_keys = {k for k, _ in doomed}
        assert len(idx) == len(items) - len(doomed)
        for k, v in items[:: max(1, self.N // 200)]:
            if k in doomed_keys:
                assert idx.lookup(k) is None
            else:
                assert idx.lookup(k) == v

    def test_delete_absent_returns_false(self):
        idx = self.make()
        if not idx.supports_delete:
            pytest.skip("no delete support")
        idx.bulk_load([(10, 1), (20, 2)])
        assert not idx.delete(15)
        assert len(idx) == 2

    def test_delete_then_reinsert(self):
        idx = self.make()
        if not idx.supports_delete:
            pytest.skip("no delete support")
        idx.bulk_load([(i * 10, i) for i in range(100)])
        for i in range(0, 100, 2):
            assert idx.delete(i * 10)
        for i in range(0, 100, 2):
            assert idx.insert(i * 10, i + 1000)
        for i in range(100):
            expect = i + 1000 if i % 2 == 0 else i
            assert idx.lookup(i * 10) == expect

    def test_delete_all(self):
        idx = self.make()
        if not idx.supports_delete:
            pytest.skip("no delete support")
        items = _mk_items(300, seed=8)
        idx.bulk_load(items)
        for k, _ in items:
            assert idx.delete(k)
        assert len(idx) == 0
        assert idx.lookup(items[0][0]) is None
        assert idx.insert(12345, 1)
        assert idx.lookup(12345) == 1

    # -- range scans ----------------------------------------------------------------

    def test_range_scan_basic(self):
        idx = self.make()
        if not idx.supports_range:
            pytest.skip("no range support")
        items = [(i * 10, i) for i in range(200)]
        idx.bulk_load(items)
        got = idx.range_scan(500, 10)
        assert got == [(i * 10, i) for i in range(50, 60)]

    def test_range_scan_from_between_keys(self):
        idx = self.make()
        if not idx.supports_range:
            pytest.skip("no range support")
        idx.bulk_load([(i * 10, i) for i in range(100)])
        got = idx.range_scan(55, 3)
        assert got == [(60, 6), (70, 7), (80, 8)]

    def test_range_scan_past_end(self):
        idx = self.make()
        if not idx.supports_range:
            pytest.skip("no range support")
        idx.bulk_load([(i, i) for i in range(50)])
        got = idx.range_scan(45, 100)
        assert got == [(i, i) for i in range(45, 50)]
        assert idx.range_scan(1000, 5) == []

    def test_range_scan_after_inserts(self):
        idx = self.make()
        if not idx.supports_range:
            pytest.skip("no range support")
        idx.bulk_load([(i * 4, i) for i in range(100)])
        for i in range(100):
            idx.insert(i * 4 + 2, i + 1000)
        got = idx.range_scan(0, 20)
        keys = [k for k, _ in got]
        assert keys == sorted(keys)
        assert len(got) == 20
        assert keys[0] == 0 and keys[1] == 2

    def test_range_scan_matches_sorted_reference(self):
        idx = self.make()
        if not idx.supports_range:
            pytest.skip("no range support")
        items = _mk_items(1000, seed=9)
        idx.bulk_load(items)
        start = items[321][0]
        got = idx.range_scan(start, 37)
        assert got == items[321 : 321 + 37]

    # -- empty-index behaviour ------------------------------------------------------

    def test_empty_index_every_op(self):
        """Every op degrades gracefully on a freshly-emptied index."""
        idx = self.make()
        idx.bulk_load([])
        assert idx.lookup(5) is None
        assert not idx.update(5, 1)
        if idx.supports_delete:
            assert not idx.delete(5)
        if idx.supports_range:
            assert idx.range_scan(0, 10) == []
        assert len(idx) == 0
        assert 5 not in idx

    def test_empty_index_recovers(self):
        """Ops on an empty index leave it able to accept inserts."""
        idx = self.make()
        idx.bulk_load([])
        idx.lookup(5)
        idx.update(5, 1)
        if idx.supports_delete:
            idx.delete(5)
        assert idx.insert(9, 90)
        assert idx.lookup(9) == 90
        assert len(idx) == 1

    # -- structural invariants -------------------------------------------------------

    def test_debug_validate_clean_when_empty(self):
        idx = self.make()
        idx.bulk_load([])
        assert idx.debug_validate() == []

    def test_debug_validate_clean_after_churn(self):
        """The invariant walk finds nothing after a mixed workload."""
        idx = self.make()
        items = _mk_items(600, seed=13)
        idx.bulk_load(items[:300])
        rng = random.Random(14)
        pending = items[300:]
        rng.shuffle(pending)
        for k, v in pending:
            idx.insert(k, v)
        if idx.supports_delete:
            for k, _ in rng.sample(items, 150):
                idx.delete(k)
        for k, _ in rng.sample(items, 50):
            idx.update(k, 0)
        violations = idx.debug_validate()
        assert violations == [], "\n".join(str(v) for v in violations)

    # -- memory / introspection ----------------------------------------------------

    def test_memory_usage_positive_and_grows(self):
        idx = self.make()
        items = _mk_items(1000, seed=10)
        idx.bulk_load(items[:100])
        small = idx.memory_usage().total
        assert small > 0
        idx2 = self.make()
        idx2.bulk_load(items)
        assert idx2.memory_usage().total > small

    def test_last_op_records_path(self):
        idx = self.make()
        items = _mk_items(500, seed=11)
        idx.bulk_load(items)
        idx.lookup(items[123][0])
        rec = idx.last_op
        assert rec.op == "lookup"
        assert rec.found
        assert rec.nodes_traversed >= 1

    def test_meter_charges_on_ops(self):
        idx = self.make()
        items = _mk_items(500, seed=12)
        idx.bulk_load(items)
        before = idx.meter.total_time()
        idx.lookup(items[0][0])
        assert idx.meter.total_time() > before
