"""The GRE command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.core.report import ascii_chart


def _run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_datasets_command(capsys):
    code, out = _run(capsys, "datasets")
    assert code == 0
    for name in ("covid", "osm", "genome", "wiki_dup"):
        assert name in out


def test_hardness_command(capsys):
    code, out = _run(capsys, "hardness", "planet", "--n", "3000")
    assert code == 0
    assert "global hardness" in out and "local  hardness" in out
    assert "CDF deciles" in out


def test_run_command(capsys):
    code, out = _run(capsys, "run", "--index", "ALEX", "--dataset", "covid",
                     "--n", "2000", "--ops", "1000")
    assert code == 0
    assert "throughput" in out and "Mops" in out
    assert "memory" in out


def test_run_command_json_and_out(tmp_path, capsys):
    import json

    from repro.core.results import SCHEMA_VERSION, load_jsonl

    out_path = str(tmp_path / "runs.jsonl")
    code, out = _run(capsys, "run", "--index", "B+tree", "--dataset", "covid",
                     "--n", "1000", "--ops", "500", "--json", "--out", out_path)
    assert code == 0
    record = json.loads(out)
    assert record["index"] == "B+tree"
    assert record["schema_version"] == SCHEMA_VERSION
    saved = load_jsonl(out_path)
    assert len(saved) == 1
    assert saved[0]["throughput_mops"] == record["throughput_mops"]
    # --out appends, so a second run grows the artifact file.
    code, _ = _run(capsys, "run", "--index", "B+tree", "--dataset", "covid",
                   "--n", "1000", "--ops", "500", "--out", out_path)
    assert code == 0
    assert len(load_jsonl(out_path)) == 2


def test_run_command_scan_workload(capsys):
    code, out = _run(capsys, "run", "--index", "B+tree", "--dataset", "stack",
                     "--workload", "scan:50", "--n", "2000", "--ops", "1000")
    assert code == 0


def test_run_unknown_index_errors():
    with pytest.raises(SystemExit):
        main(["run", "--index", "SPLAY", "--n", "100", "--ops", "10"])


def test_unknown_workload_errors():
    with pytest.raises(SystemExit):
        main(["run", "--index", "ALEX", "--workload", "chaos",
              "--n", "100", "--ops", "10"])


def test_compare_command(capsys):
    code, out = _run(capsys, "compare", "--dataset", "covid",
                     "--workload", "read-only", "--n", "2000", "--ops", "800")
    assert code == 0
    for name in ("ALEX", "LIPP", "ART", "B+tree"):
        assert name in out


def test_heatmap_command_subset(capsys):
    code, out = _run(capsys, "heatmap", "--datasets", "covid,stack",
                     "--n", "1500", "--ops", "800")
    assert code == 0
    assert "win fraction" in out
    assert "read-only" in out


def test_sweep_command_cache_and_json(capsys, tmp_path):
    import json

    argv = ("sweep", "--datasets", "covid,stack",
            "--workloads", "read-only,balanced", "--indexes", "ALEX,B+tree",
            "--n", "1200", "--ops", "500", "--jobs", "1",
            "--cache-dir", str(tmp_path / "cache"))
    code, out = _run(capsys, *argv)
    assert code == 0
    assert "8 cells" in out and "0 cache hits" in out

    bench = tmp_path / "bench.json"
    results = tmp_path / "cells.jsonl"
    code, out = _run(capsys, *argv, "--json",
                     "--bench", str(bench), "--out", str(results))
    assert code == 0
    report = json.loads(out)
    assert report["cache_hits"] == 8 and report["executed"] == 0
    assert len(report["cells"]) == 8
    assert all(c["fingerprint"] for c in report["cells"])
    stats = json.loads(bench.read_text())
    assert stats["cache_hit_rate"] == 1.0

    from repro.core.results import load_jsonl

    records = load_jsonl(str(results))
    assert len(records) == 8
    assert {r["index"] for r in records} == {"ALEX", "B+tree"}


def test_sweep_command_rejects_unknowns(capsys):
    with pytest.raises(SystemExit):
        main(["sweep", "--datasets", "not-a-dataset", "--no-cache"])
    with pytest.raises(SystemExit):
        main(["sweep", "--datasets", "covid", "--workloads", "bogus",
              "--no-cache"])
    with pytest.raises(SystemExit):
        main(["sweep", "--datasets", "covid", "--indexes", "NopeIndex",
              "--no-cache"])


def test_heatmap_command_with_jobs_flag(capsys, tmp_path):
    code, out = _run(capsys, "heatmap", "--datasets", "covid",
                     "--n", "1200", "--ops", "500", "--jobs", "1",
                     "--cache-dir", str(tmp_path))
    assert code == 0
    assert "win fraction" in out
    code, out = _run(capsys, "heatmap", "--datasets", "covid",
                     "--n", "1200", "--ops", "500", "--jobs", "1",
                     "--cache-dir", str(tmp_path))
    assert "cache hits" in out  # second run reuses every cell


def test_scalability_command(capsys):
    code, out = _run(capsys, "scalability", "--dataset", "covid",
                     "--workload", "balanced", "--threads", "2,8",
                     "--n", "1500", "--ops", "800")
    assert code == 0
    assert "LIPP+" in out and "ART-OLC" in out


def test_memory_command(capsys):
    code, out = _run(capsys, "memory", "--dataset", "covid",
                     "--n", "2000", "--ops", "500")
    assert code == 0
    assert "Bytes/key" in out


def test_ycsb_workload_via_cli(capsys):
    code, out = _run(capsys, "run", "--index", "LIPP", "--dataset", "covid",
                     "--workload", "ycsb-a", "--n", "2000", "--ops", "1000")
    assert code == 0


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_ascii_chart_renders():
    chart = ascii_chart({"A": [1, 2, 3], "B": [3, 2, 1]}, [10, 20, 30],
                        height=5, title="demo")
    assert "demo" in chart
    assert "A=A" in chart and "B=B" in chart
    assert "10" in chart and "30" in chart


def test_ascii_chart_empty():
    assert ascii_chart({}, []) == "(no data)"


def test_diagnose_command(capsys):
    code, out = _run(capsys, "diagnose", "--index", "LIPP", "--dataset", "covid",
                     "--n", "1500", "--ops", "800")
    assert code == 0
    assert "Diagnosis: LIPP" in out


def test_run_command_trace_and_metrics_artifacts(tmp_path, capsys):
    import json

    from repro.core.results import load_jsonl
    from repro.core.telemetry import (
        validate_chrome_trace,
        validate_event_records,
        validate_metric_records,
    )

    trace = tmp_path / "trace.json"
    events = tmp_path / "events.jsonl"
    metrics = tmp_path / "metrics.jsonl"
    code, out = _run(capsys, "run", "--index", "ALEX", "--dataset", "covid",
                     "--workload", "write-heavy", "--n", "2000", "--ops",
                     "1500", "--trace", str(trace), "--trace-log", str(events),
                     "--metrics", str(metrics), "--window", "128")
    assert code == 0
    assert "Perfetto" in out and "SMO storm" in out
    assert validate_chrome_trace(json.loads(trace.read_text())) > 1500
    assert validate_event_records(load_jsonl(str(events))) > 1500
    metric_records = load_jsonl(str(metrics))
    assert validate_metric_records(metric_records) == len(metric_records) > 0
    assert all(r["tags"] == {"artifact": "metrics"} for r in metric_records)


def test_profile_command(capsys):
    code, out = _run(capsys, "profile", "--index", "LIPP", "--dataset", "covid",
                     "--workload", "write-heavy", "--n", "1500", "--ops", "1000",
                     "--top", "8")
    assert code == 0
    assert "Cost profile" in out and "Per-phase totals" in out
    # The flame-table reconciles with the meter exactly.
    assert "drift vs CostMeter.time_by_phase(): 0 ns" in out


def test_diagnose_command_cites_recorded_run(capsys):
    code, out = _run(capsys, "diagnose", "--index", "ALEX", "--dataset", "osm",
                     "--workload", "write-only", "--n", "3000", "--ops", "3000")
    assert code == 0
    assert "smo_storms" in out
    assert "smo_phase_share" in out


def test_compare_runs_command(tmp_path, capsys):
    import json

    base = tmp_path / "base.jsonl"
    cur = tmp_path / "cur.jsonl"
    base.write_text(json.dumps({"index": "X", "workload": "w",
                                "throughput_mops": 10.0}) + "\n")
    cur.write_text(json.dumps({"index": "X", "workload": "w",
                               "throughput_mops": 5.0}) + "\n")
    code, out = _run(capsys, "compare-runs", str(base), str(cur))
    assert code == 1
    assert "throughput_mops" in out
    cur.write_text(json.dumps({"index": "X", "workload": "w",
                               "throughput_mops": 11.0}) + "\n")
    code, out = _run(capsys, "compare-runs", str(base), str(cur))
    assert code == 0
    assert "no regressions" in out


def test_fuzz_command_single_index(capsys):
    code, out = _run(capsys, "fuzz", "--index", "B+tree", "--budget", "400",
                     "--out", "")
    assert code == 0
    assert "B+tree" in out and "ok (400 ops)" in out
    assert "0 failure(s)" in out


def test_fuzz_command_rejects_read_only_index():
    with pytest.raises(SystemExit):
        main(["fuzz", "--index", "RMI", "--budget", "100"])


def test_fuzz_command_replays_corpus(capsys):
    import os

    corpus = os.path.join(os.path.dirname(__file__), "corpus")
    code, out = _run(capsys, "fuzz", "--replay", corpus)
    assert code == 0
    assert "0 failing" in out


def test_fuzz_command_replay_single_file(tmp_path, capsys):
    from repro.core.opstream import generate_stream
    from repro.core.registry import REGISTRY

    stream = generate_stream(REGISTRY.get("ART"), seed=1, n_ops=60, n_bulk=16)
    path = str(tmp_path / "art.jsonl")
    stream.save(path)
    code, out = _run(capsys, "fuzz", "--replay", path)
    assert code == 0
    assert "replayed 1 stream(s)" in out


def test_fuzz_command_replay_missing_path_is_a_clear_error():
    with pytest.raises(SystemExit, match="does not exist"):
        main(["fuzz", "--replay", "/no/such/stream.jsonl"])


def test_migrate_command_smoke(capsys):
    code, out = _run(capsys, "migrate", "btree", "alex", "--dataset", "covid",
                     "--n", "800", "--ops", "600", "--workload", "churn",
                     "--min-verified", "1.0")
    assert code == 0
    assert "migrated after op" in out
    assert "0 rejected, 0 stalled" in out


def test_migrate_command_json_and_bench(tmp_path, capsys):
    import json

    bench = str(tmp_path / "BENCH_migration.json")
    code, out = _run(capsys, "migrate", "btree", "alex", "--dataset", "covid",
                     "--n", "600", "--ops", "400", "--workload", "churn:0.3",
                     "--json", "--bench", bench)
    assert code == 0
    with open(bench) as f:
        d = json.load(f)
    assert d["ok"] is True and d["completed"] is True
    assert d["src"] == "B+tree" and d["dst"] == "ALEX"
    assert d["rejected_ops"] == 0 and d["cutover_stall_ops"] == 0
    assert d["verified_fraction"] == 1.0
    assert d["backfill_keys_per_vsec"] > 0
    assert json.loads(out[out.index("{"):])["ok"] is True


def test_migrate_command_rejects_unknown_and_same_index():
    with pytest.raises(SystemExit, match="unknown index"):
        main(["migrate", "splay", "alex", "--n", "100"])
    with pytest.raises(SystemExit, match="both"):
        main(["migrate", "btree", "B+tree", "--n", "100"])


def test_migrate_command_refuses_non_migratable_destination():
    with pytest.raises(SystemExit, match="cannot be a migration"):
        main(["migrate", "btree", "rmi", "--n", "100"])


def test_list_command_shows_migrate_capability(capsys):
    code, out = _run(capsys, "list")
    assert code == 0
    assert "migrate" in out


# -- observability: run --events, top, and the bench-history gate --------------

def test_run_events_writes_validated_log(tmp_path, capsys):
    from repro.core.events import validate_bus_events
    from repro.core.results import load_jsonl

    path = str(tmp_path / "events.jsonl")
    code, out = _run(capsys, "run", "--index", "ALEX", "--dataset", "covid",
                     "--n", "2000", "--ops", "1000", "--events", path)
    assert code == 0
    assert f"events: {path}" in out and "SLO alert" in out
    records = load_jsonl(path)
    assert validate_bus_events(records) > 0
    kinds = {r["kind"] for r in records}
    assert {"phase", "op_window", "state", "slo_window"} <= kinds


def test_top_replays_a_saved_event_log(tmp_path, capsys):
    import json

    path = str(tmp_path / "events.jsonl")
    code, _ = _run(capsys, "run", "--index", "B+tree", "--dataset", "covid",
                   "--n", "1500", "--ops", "800", "--events", path)
    assert code == 0
    code, out = _run(capsys, "top", "--events", path, "--once", "--json")
    assert code == 0
    doc = json.loads(out)
    row = doc["instances"]["B+tree"]
    assert row["state"] == "serving"
    assert row["ops"] == 800
    assert row["p99_ns"] is not None


def test_top_live_single_index(capsys):
    import json

    code, out = _run(capsys, "top", "--index", "ALEX", "--dataset", "covid",
                     "--n", "1500", "--ops", "600", "--once", "--json")
    assert code == 0
    doc = json.loads(out)
    assert doc["instances"]["ALEX"]["ops"] == 600
    # Plain --once renders the ASCII table instead.
    code, out = _run(capsys, "top", "--index", "ALEX", "--dataset", "covid",
                     "--n", "1500", "--ops", "600", "--once")
    assert code == 0
    assert "Instance" in out and "ALEX" in out


def test_top_watches_a_live_migration(capsys):
    code, out = _run(capsys, "top", "--migrate", "btree", "alex",
                     "--dataset", "covid", "--n", "2000", "--ops", "1500",
                     "--workload", "churn", "--once")
    assert code == 0
    assert "ALEX@1" in out and "B+tree@0" in out
    assert "serving" in out and "retired" in out


def test_bench_history_gate_passes_then_fails_on_regression(tmp_path, capsys):
    import json

    from repro.core.results import load_jsonl

    hist = str(tmp_path / "history.jsonl")
    argv = ["bench", "--indexes", "ALEX", "--dataset", "covid",
            "--n", "1500", "--lookups", "600", "--out", "",
            "--history", hist]
    # First run seeds the trajectory; --check passes on an empty baseline.
    assert main(argv + ["--check"]) == 0
    out = capsys.readouterr().out
    assert "no regressions" in out and "appended" in out
    # Identical rerun: virtual metrics are deterministic, gate passes.
    assert main(argv + ["--check"]) == 0
    assert "no regressions" in capsys.readouterr().out

    # Doctor the history: claim throughput used to be 2x. The real rerun
    # is now a 50% regression and the gate must trip.
    records = load_jsonl(hist)
    forged = dict(records[0])
    forged["metrics"] = dict(forged["metrics"])
    for key in forged["metrics"]:
        if "mops" in key:
            forged["metrics"][key] *= 2.0
    with open(hist, "a") as f:
        f.write(json.dumps(forged) + "\n")
        f.write(json.dumps(forged) + "\n")
    assert main(argv + ["--check"]) == 1
    captured = capsys.readouterr()
    assert "FAIL" in captured.err and "dropped" in captured.err
    assert "regression(s)" in captured.err


# -- sharded serving tier ------------------------------------------------------

def test_list_command_shows_shard_capability(capsys):
    code, out = _run(capsys, "list")
    assert code == 0
    assert "shard" in out
    rmi_row = next(line for line in out.splitlines()
                   if line.startswith("RMI"))
    alex_row = next(line for line in out.splitlines()
                    if line.startswith("ALEX "))
    assert alex_row.count("x") > rmi_row.count("x")


def test_shard_command_writes_bench_and_gates(tmp_path, capsys):
    import json

    out_path = str(tmp_path / "BENCH_shard.json")
    code, out = _run(capsys, "shard", "--index", "B+tree",
                     "--dataset", "covid", "--n", "5000",
                     "--lookups", "2500", "--ops", "5000",
                     "--shard-counts", "1,2,4",
                     "--min-scaling", "1.5", "--out", out_path)
    assert code == 0
    assert "scaling" in out and "moving-hotspot replay" in out
    with open(out_path) as f:
        doc = json.load(f)
    assert doc["scaling"]["scaling_virtual"] >= 1.5
    assert doc["rebalance"]["converged"] is True
    assert doc["rebalance"]["cutover_stall_ops"] == 0
    assert [lv["shards"] for lv in doc["scaling"]["levels"]] == [1, 2, 4]
    assert "git_rev" in doc and "schema_version" in doc  # provenance


def test_shard_command_history_check(tmp_path, capsys):
    hist = str(tmp_path / "hist.jsonl")
    args = ["shard", "--index", "B+tree", "--dataset", "covid",
            "--n", "4000", "--lookups", "2000", "--ops", "4000",
            "--shard-counts", "1,2", "--out", "", "--history", hist]
    code, _ = _run(capsys, *args)
    assert code == 0
    code, out = _run(capsys, *args, "--check")
    assert code == 0
    assert "no regressions" in out


def test_shard_command_refuses_unshardable_index():
    with pytest.raises(SystemExit, match="does not support sharding"):
        main(["shard", "--index", "RMI", "--n", "500", "--ops", "100"])


def test_top_shards_cluster_view(capsys):
    code, out = _run(capsys, "top", "--shards", "2", "--index", "B+tree",
                     "--workload", "hotspot", "--dataset", "covid",
                     "--n", "3000", "--ops", "2500", "--once")
    assert code == 0
    assert "shard cluster" in out
    assert "worst shard" in out
    assert "B+tree/s1" in out


def test_top_shards_json(capsys):
    import json

    code, out = _run(capsys, "top", "--shards", "2", "--index", "B+tree",
                     "--workload", "hotspot", "--dataset", "covid",
                     "--n", "3000", "--ops", "2500", "--json")
    assert code == 0
    doc = json.loads(out)
    assert "tower" in doc and "cluster" in doc
    assert len(doc["cluster"]["shards"]) >= 2
