"""FITing-Tree: contract conformance plus buffer/merge behaviour."""

import random

import pytest

from repro.indexes.fiting_tree import FITingTree
from tests.index_contract import IndexContract


class TestFITingTreeContract(IndexContract):
    def make(self) -> FITingTree:
        return FITingTree(buffer_size=8)


def test_inserts_buffer_then_merge():
    idx = FITingTree(buffer_size=4)
    idx.bulk_load([(i * 100, i) for i in range(200)])
    before = idx.merge_count
    for j in range(1, 20):
        idx.insert(550 + j, j)
    assert idx.merge_count > before
    for j in range(1, 20):
        assert idx.lookup(550 + j) == j


def test_segments_respect_epsilon():
    rng = random.Random(1)
    keys = sorted(rng.sample(range(2**36), 3000))
    idx = FITingTree(epsilon=16)
    idx.bulk_load([(k, k) for k in keys])
    for seg in idx._segments:
        for pos in range(0, len(seg.keys), 37):
            pred = seg.model.predict(seg.keys[pos])
            assert abs(pred - pos) <= 16 + 1e-6


def test_merge_resegments_locally():
    idx = FITingTree(buffer_size=2, epsilon=8)
    # Two very different slopes: at least two segments.
    keys = list(range(1000)) + [10**6 + i * 10**4 for i in range(1000)]
    idx.bulk_load([(k, k) for k in keys])
    segs_before = idx.segment_count()
    rng = random.Random(2)
    for _ in range(200):
        k = 10**6 + rng.randrange(10**7)
        idx.insert(k, 0)
    assert idx.segment_count() >= segs_before
    assert idx.lookup(500) == 500  # untouched region intact


def test_buffer_size_validation():
    with pytest.raises(ValueError):
        FITingTree(buffer_size=0)


def test_no_delete_support():
    assert not FITingTree().supports_delete
