"""ART: contract conformance plus radix-specific behaviour."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexes.art import ART, _tier, _tier_bytes
from tests.index_contract import IndexContract


class TestARTContract(IndexContract):
    def make(self) -> ART:
        return ART()


def test_tier_thresholds():
    assert _tier(1) == 4
    assert _tier(4) == 4
    assert _tier(5) == 16
    assert _tier(17) == 48
    assert _tier(49) == 256


def test_tier_bytes_monotone():
    sizes = [_tier_bytes(t) for t in (4, 16, 48, 256)]
    assert sizes == sorted(sizes)


def test_path_compression_keeps_tree_shallow():
    """Keys sharing a long prefix should not produce one node per byte."""
    idx = ART()
    base = 0xDEADBEEF00000000
    idx.bulk_load([(base + i, i) for i in range(100)])
    assert idx.height <= 3


def test_dense_keys_use_wide_nodes():
    """Dense low bytes drive nodes into the Node256 tier (memory model)."""
    idx = ART()
    idx.bulk_load([(i, i) for i in range(1000)])
    mem = idx.memory_usage()
    # 1000 dense keys pack into few, wide nodes: inner layer per key should
    # be far below one Node4 per key.
    assert mem.inner < 1000 * _tier_bytes(4)


def test_delete_restores_path_compression():
    idx = ART()
    idx.bulk_load([(0x1000, 1), (0x1001, 2), (0x2000, 3)])
    assert idx.delete(0x1001)
    assert idx.lookup(0x1000) == 1
    assert idx.lookup(0x2000) == 3
    assert idx.lookup(0x1001) is None


def test_scan_crosses_prefix_boundaries():
    idx = ART()
    keys = [0x0100, 0x0101, 0x0200, 0x020001, 0xFF00000000000000]
    idx.bulk_load(sorted((k, k) for k in keys))
    got = idx.range_scan(0x0101, 4)
    assert [k for k, _ in got] == sorted(keys)[1:5]


def test_byte_order_matches_integer_order():
    rng = random.Random(9)
    keys = sorted({rng.randrange(2**63) for _ in range(500)})
    idx = ART()
    idx.bulk_load([(k, k) for k in keys])
    got = idx.range_scan(0, 500)
    assert [k for k, _ in got] == keys


@given(st.sets(st.integers(min_value=0, max_value=2**64 - 1), min_size=1, max_size=200))
@settings(max_examples=40, deadline=None)
def test_property_full_u64_range(keys):
    idx = ART()
    items = sorted((k, k % 97) for k in keys)
    idx.bulk_load(items)
    for k, v in items:
        assert idx.lookup(k) == v
    assert idx.range_scan(0, len(items)) == items
