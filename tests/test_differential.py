"""Differential testing: every index must agree with a model dict.

The strongest correctness net in the suite: one random operation
stream, replayed on *all* index implementations and on a sorted-dict
reference model; any divergence in results is a bug in that index.
"""

from __future__ import annotations

import random
from typing import Dict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ALEX,
    FITingTree,
    ART,
    BPlusTree,
    FINEdex,
    HOT,
    LIPP,
    Masstree,
    PGMIndex,
    Wormhole,
    XIndex,
)

ALL_FACTORIES = {
    "ALEX": lambda: ALEX(target_leaf_keys=64, max_data_keys=512),
    "LIPP": LIPP,
    "PGM": lambda: PGMIndex(check_duplicates=True, buffer_size=32),
    "XIndex": lambda: XIndex(delta_size=16, target_group_keys=64),
    "FINEdex": lambda: FINEdex(bin_capacity=4),
    "FITing-Tree": lambda: FITingTree(buffer_size=4),
    "B+tree": lambda: BPlusTree(fanout=8),
    "ART": ART,
    "HOT": HOT,
    "Masstree": Masstree,
    "Wormhole": Wormhole,
}


def _op_stream(seed: int, n_ops: int, key_space: int):
    rng = random.Random(seed)
    ops = []
    for _ in range(n_ops):
        r = rng.random()
        k = rng.randrange(key_space)
        if r < 0.35:
            ops.append(("insert", k))
        elif r < 0.70:
            ops.append(("lookup", k))
        elif r < 0.80:
            ops.append(("update", k))
        elif r < 0.90:
            ops.append(("delete", k))
        else:
            ops.append(("scan", k))
    return ops


def _replay(index, ops, model: Dict[int, int]):
    """Replay ops on index and model simultaneously, asserting agreement."""
    for i, (op, k) in enumerate(ops):
        if op == "insert":
            expect = k not in model
            got = index.insert(k, k + 1)
            assert got == expect, f"op#{i} insert({k}): {got} != {expect}"
            model.setdefault(k, k + 1)
        elif op == "lookup":
            got = index.lookup(k)
            assert got == model.get(k), f"op#{i} lookup({k})"
        elif op == "update":
            expect = k in model
            got = index.update(k, k + 2)
            assert got == expect, f"op#{i} update({k})"
            if expect:
                model[k] = k + 2
        elif op == "delete":
            if not index.supports_delete:
                continue
            expect = k in model
            got = index.delete(k)
            assert got == expect, f"op#{i} delete({k})"
            model.pop(k, None)
        elif op == "scan":
            if not index.supports_range:
                continue
            got = index.range_scan(k, 10)
            expect = sorted((kk, vv) for kk, vv in model.items() if kk >= k)[:10]
            assert got == expect, f"op#{i} scan({k})"
    assert len(index) == len(model)


@pytest.mark.parametrize("name", sorted(ALL_FACTORIES))
def test_differential_vs_dict_model(name):
    factory = ALL_FACTORIES[name]
    for seed in (1, 2, 3):
        index = factory()
        rng = random.Random(seed * 100)
        base = sorted(rng.sample(range(0, 4000, 2), 300))
        model = {k: k + 1 for k in base}
        index.bulk_load(sorted(model.items()))
        ops = _op_stream(seed, n_ops=600, key_space=4000)
        _replay(index, ops, model)


@pytest.mark.parametrize("name", sorted(ALL_FACTORIES))
def test_differential_dense_keyspace(name):
    """Dense sequential key space: stresses node splits/chains heavily."""
    factory = ALL_FACTORIES[name]
    index = factory()
    model = {k: k + 1 for k in range(0, 600, 3)}
    index.bulk_load(sorted(model.items()))
    ops = _op_stream(seed=9, n_ops=800, key_space=700)
    _replay(index, ops, model)


@pytest.mark.parametrize("name", sorted(ALL_FACTORIES))
def test_differential_huge_keys(name):
    """Keys near 2^63: numeric-precision regressions show up here."""
    factory = ALL_FACTORIES[name]
    index = factory()
    base = 2**62
    rng = random.Random(17)
    model = {base + rng.randrange(2**20): 7 for _ in range(200)}
    index.bulk_load(sorted((k, 7) for k in model))
    for i in range(300):
        k = base + rng.randrange(2**20)
        expect = k not in model
        assert index.insert(k, i) == expect, k
        model.setdefault(k, i)
    for k in list(model)[::11]:
        assert index.lookup(k) == model[k]


@given(st.integers(min_value=0, max_value=2**32))
@settings(max_examples=25, deadline=None)
def test_property_all_indexes_agree_on_lookup(seed):
    """Same bulk data, same probe key: all indexes answer identically."""
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(10**6), 120))
    items = [(k, k * 3) for k in keys]
    probe = rng.randrange(10**6)
    answers = set()
    for name, factory in ALL_FACTORIES.items():
        idx = factory()
        idx.bulk_load(items)
        answers.add(idx.lookup(probe))
    assert len(answers) == 1, f"divergent lookup({probe}): {answers}"
