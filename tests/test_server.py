"""The async multi-tenant index server and its concurrency proof.

The headline tests run the ``tests.server_harness`` checker — N clients
plus a background rebuild against one server, journal replayed serially
through the differential oracle — across **every** shardable registry
index, in both the deterministic interleave and with real threads.  The
rest pins the serving machinery piece by piece: block-vs-reject job
admission with exact counts, backpressure saturation, abort and
divergence rollback to SERVING, admission during background loads,
job-event ordering on the bus, the PR-6 batch paths, and the
SyncedMeter thread-safety contract.
"""

import threading
import time

import pytest

from repro.core.cost import CostMeter, SyncedMeter
from repro.core.events import KIND_JOB, EventBus
from repro.core.instance import LOADING, MIGRATING, SERVING, AdmissionError
from repro.core.registry import REGISTRY
from repro.core.server import (
    BLOCK,
    JOB_ABORTED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    REJECT,
    IndexServer,
    RWLock,
    run_serve_session,
)
from repro.core.workloads import LOOKUP, payload
from tests.server_harness import (
    build_session,
    check_session,
    shardable_specs,
)

SHARDABLE = [spec.name for spec in shardable_specs()]


def _items(n=200, seed=3):
    import random
    keys = sorted(random.Random(seed).sample(range(1, 10_000_000), n))
    return [(k, payload(k)) for k in keys]


def _manual_server(**kw):
    kw.setdefault("workers", 0)
    return IndexServer(**kw)


def _pump_until(server, pred, limit=10_000):
    for _ in range(limit):
        if pred():
            return
        if not server.pump_jobs(1):
            break
    assert pred(), "server never reached the expected condition"


# -- the proof: every shardable index, rebuild under churn ---------------------

@pytest.mark.parametrize("index_name", SHARDABLE)
def test_deterministic_rebuild_under_churn(index_name):
    report, failures = check_session(index_name, threaded=False)
    assert not failures, "\n".join(failures)
    assert report.ok
    assert report.job["kind"] == "rebuild"
    assert report.job["verified_fraction"] == 1.0


@pytest.mark.parametrize("index_name", SHARDABLE)
def test_threaded_rebuild_under_churn(index_name):
    report, failures = check_session(index_name, threaded=True)
    assert not failures, "\n".join(failures)
    assert report.ok


def test_burst_profile_session():
    report, failures = check_session("B+tree", profile="burst")
    assert not failures, "\n".join(failures)
    # A burst profile actually bursts: inserts dominate the stream.
    assert report.op_counts["insert"] > report.op_counts.get("lookup", 0)


def test_deterministic_session_is_reproducible():
    bulk, streams = build_session("ALEX", seed=11)
    first = run_serve_session("ALEX", bulk, streams, seed=11, chunk=64)
    second = run_serve_session("ALEX", bulk, streams, seed=11, chunk=64)
    assert first.ok and second.ok
    assert first.client_ns == second.client_ns
    assert first.overhead_ns == second.overhead_ns
    assert first.op_counts == second.op_counts
    assert [
        (o.op, o.key, o.value, o.count) for o in first.interleaved_ops
    ] == [(o.op, o.key, o.value, o.count) for o in second.interleaved_ops]


def test_migrate_session_changes_index_type():
    bulk, streams = build_session("ALEX", seed=5)
    report = run_serve_session("ALEX", bulk, streams, rebuild_to="B+tree",
                               seed=5, chunk=64)
    assert report.ok
    assert report.job["kind"] == "migrate"
    assert report.job["dst"] == "B+tree"
    assert report.index_name == "B+tree"


# -- job admission: block vs reject -------------------------------------------

def test_block_admission_waits_for_a_slot():
    with _manual_server(queue_depth=1, admission=BLOCK, chunk=64) as server:
        server.create_instance("t", "B+tree", items=_items())
        first = server.rebuild("t")        # fills the 1-deep queue

        submitted = []

        def submitter():
            submitted.append(server.rebuild("t"))  # blocks until a slot

        thread = threading.Thread(target=submitter, daemon=True)
        thread.start()
        deadline = time.monotonic() + 5.0
        while server.blocked_submits < 1 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert server.blocked_submits == 1
        assert not submitted          # still parked in put()
        server.drain()                # pumping frees the slot, then runs both
        thread.join(timeout=5.0)
        server.drain()
        assert server.rejected_jobs == 0
        assert first.state == JOB_DONE
        assert submitted and submitted[0].state == JOB_DONE
        assert server.instance("t").state == SERVING
        assert not server.replay_check("t")


def test_reject_admission_counts_saturation_exactly():
    with _manual_server(queue_depth=2, admission=REJECT, chunk=64) as server:
        server.create_instance("t", "B+tree", items=_items())
        accepted = [server.rebuild("t"), server.rebuild("t")]
        rejections = 0
        for _ in range(2):
            with pytest.raises(AdmissionError) as err:
                server.rebuild("t")
            rejections += 1
            assert "queue full" in str(err.value)
        assert rejections == 2
        assert server.rejected_jobs == 2
        assert server.submitted_jobs == 2
        assert server.max_queue_depth == 2
        assert len(server.jobs()) == 2    # rejected jobs leave no ghost
        server.drain()
        assert [j.state for j in accepted] == [JOB_DONE, JOB_DONE]
        assert server.instance("t").state == SERVING


def test_abort_in_queue_never_touches_the_instance():
    with _manual_server(queue_depth=4, chunk=64) as server:
        server.create_instance("t", "B+tree", items=_items())
        job = server.rebuild("t")
        job.abort()
        server.drain()
        assert job.state == JOB_ABORTED
        assert server.instance("t").state == SERVING


# -- rollback: abort and divergence -------------------------------------------

def test_rebuild_abort_rolls_back_to_serving():
    with _manual_server(chunk=32) as server:
        inst = server.create_instance("t", "B+tree", items=_items())
        original = inst.index
        job = server.rebuild("t")
        _pump_until(server, lambda: inst.state == MIGRATING)
        server.pump_jobs(2)               # a couple of backfill chunks
        assert not job.finished
        job.abort()
        server.drain()
        assert job.state == JOB_ABORTED
        assert inst.state == SERVING
        assert inst.index is original     # secondary detached, no cutover
        assert server.lookup("t", _items()[0][0]) == payload(_items()[0][0])
        assert not server.replay_check("t")


def test_divergence_fails_job_and_rolls_back():
    items = _items()
    with _manual_server(chunk=32) as server:
        inst = server.create_instance("t", "B+tree", items=items)
        original = inst.index
        job = server.rebuild("t")
        _pump_until(server, lambda: inst.state == MIGRATING)
        server.pump_jobs(1)               # first backfill chunk lands
        # Poison the secondary: a backfilled key now disagrees with the
        # primary, so verification must fail the job, not cut over.
        poisoned = items[0][0]
        assert job.runner.mux.secondary.update(poisoned, 0xBAD)
        server.drain()
        assert job.state == JOB_FAILED
        assert job.error
        assert inst.state == SERVING
        assert inst.index is original
        assert server.lookup("t", poisoned) == payload(poisoned)
        assert not server.replay_check("t")


# -- admission during a background bulk load -----------------------------------

def test_loading_instance_counts_rejections_then_serves():
    items = _items(n=150)
    with _manual_server(chunk=50) as server:
        inst = server.create_instance("t", "B+tree")
        assert inst.state == LOADING
        server.bulk_load("t", items)
        with pytest.raises(AdmissionError):
            server.lookup("t", items[0][0])
        assert inst.rejected[LOOKUP] == 1
        assert server.status("t")["server"]["dropped"][LOOKUP] == 1
        server.drain()
        assert inst.state == SERVING
        assert server.lookup("t", items[0][0]) == payload(items[0][0])
        assert not server.replay_check("t")


def test_bulk_load_requires_loading_state():
    with _manual_server() as server:
        server.create_instance("t", "B+tree", items=_items(n=50))
        with pytest.raises(ValueError, match="LOADING"):
            server.bulk_load("t", _items(n=50))


# -- job events on the bus ------------------------------------------------------

def test_job_events_are_ordered_and_monotone():
    bus = EventBus()
    bulk, streams = build_session("ALEX", seed=2)
    report = run_serve_session("ALEX", bulk, streams, seed=2, chunk=64,
                               bus=bus)
    assert report.ok
    events = bus.events(kind=KIND_JOB, source="tenant")
    assert events, "the rebuild published no job events"
    statuses = [e["status"] for e in events]
    assert statuses[0] == JOB_QUEUED
    assert statuses[-1] == JOB_DONE
    seqs = [e["seq"] for e in events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    chunks = [e["chunks"] for e in events]
    assert chunks == sorted(chunks)
    dones = [e["done"] for e in events]
    assert dones == sorted(dones)
    # Queue-depth gauge rides on every job event.
    assert all("queue_depth" in e for e in events)
    terminal = events[-1]
    assert terminal["verified_fraction"] == 1.0
    assert terminal["eta_ns"] == 0.0


# -- batch paths through the server --------------------------------------------

def test_batch_ops_are_journaled_and_replayable():
    items = _items(n=120)
    with _manual_server() as server:
        server.create_instance("t", "ALEX", items=items)
        fresh = [(10**12 + i * 7, payload(10**12 + i * 7)) for i in range(40)]
        oks = server.insert_many("t", fresh)
        assert all(oks)
        keys = [k for k, _ in items[:20]] + [k for k, _ in fresh[:20]] + [42]
        values = server.lookup_many("t", keys)
        assert values[:40] == [payload(k) for k in keys[:40]]
        assert values[-1] is None
        journal = server.journal("t")
        assert len(journal) == len(fresh) + len(keys)
        assert not server.replay_check("t")
        counts = server.instance("t").op_counts
        assert counts["insert"] == len(fresh)
        assert counts["lookup"] == len(keys)


# -- status surface -------------------------------------------------------------

def test_status_merges_instance_server_and_jobs():
    with _manual_server() as server:
        server.create_instance("t", "B+tree", items=_items(n=80))
        server.lookup("t", _items(n=80)[0][0])
        job = server.rebuild("t")
        status = server.status("t")
        assert status["state"] == SERVING
        assert status["server"]["ops"] == 1
        assert status["server"]["dropped"] == {}
        assert status["jobs"][0]["job_id"] == job.job_id
        assert status["jobs"][0]["state"] == JOB_QUEUED
        assert status["queue_depth"] == 1
        server.drain()
        assert server.status("t")["jobs"][0]["state"] == JOB_DONE
        assert server.status("t")["queue_depth"] == 0


def test_create_instance_validations():
    with _manual_server() as server:
        server.create_instance("t", "B+tree")
        with pytest.raises(ValueError, match="already exists"):
            server.create_instance("t", "ALEX")
        with pytest.raises(KeyError, match="no instance"):
            server.status("nope")


# -- thread-safety: SyncedMeter and the RW lock ---------------------------------

def test_synced_meter_adopt_preserves_counts():
    meter = CostMeter()
    meter.charge("model_eval", 3)
    meter.charge_phased("smo", "search_step", 2)
    synced = SyncedMeter.adopt(meter)
    assert isinstance(synced, SyncedMeter)
    assert synced.total_units("model_eval") == meter.total_units("model_eval")
    assert synced.total_units("search_step") == \
        meter.total_units("search_step")
    assert synced.total_time() == meter.total_time()
    assert synced.time_by_phase() == meter.time_by_phase()
    assert SyncedMeter.adopt(synced) is synced


def test_two_thread_hammer_keeps_meter_clock_monotone():
    items = _items(n=200)
    with IndexServer(workers=1) as server:
        server.create_instance("t", "B+tree", items=items)
        meter = server.instance("t").index.meter
        assert isinstance(meter, SyncedMeter)
        stop = threading.Event()
        errors = []

        def hammer(base):
            try:
                for i in range(300):
                    server.insert("t", base + i * 7, payload(base + i * 7))
                    server.lookup("t", items[i % len(items)][0])
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def watch():
            last = meter.total_time()
            while not stop.is_set():
                now = meter.total_time()
                if now < last:
                    errors.append(AssertionError(
                        f"virtual clock went backwards: {last} -> {now}"))
                    return
                last = now

        threads = [threading.Thread(target=hammer, args=(10**13 * (i + 1),),
                                    daemon=True) for i in range(2)]
        watcher = threading.Thread(target=watch, daemon=True)
        watcher.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        stop.set()
        watcher.join(timeout=5.0)
        assert not errors, errors[0]
        # No lost updates: every op charged something, none vanished.
        counts = server.instance("t").op_counts
        assert counts["insert"] == 600
        assert counts["lookup"] == 600
        assert not server.replay_check("t")


def test_rwlock_readers_share_writers_exclude():
    lock = RWLock()
    lock.acquire_read()
    lock.acquire_read()          # readers share
    state = {"w": False}

    def writer():
        lock.acquire_write()
        state["w"] = True
        lock.release_write()

    thread = threading.Thread(target=writer, daemon=True)
    thread.start()
    time.sleep(0.05)
    assert not state["w"]        # writer parked behind the readers
    # Writer preference: a new reader must now wait too.
    blocked = {"r": False}

    def late_reader():
        lock.acquire_read()
        blocked["r"] = True
        lock.release_read()

    reader = threading.Thread(target=late_reader, daemon=True)
    reader.start()
    time.sleep(0.05)
    assert not blocked["r"]
    lock.release_read()
    lock.release_read()
    thread.join(timeout=5.0)
    reader.join(timeout=5.0)
    assert state["w"] and blocked["r"]


def test_server_validates_configuration():
    with pytest.raises(ValueError, match="admission"):
        IndexServer(admission="maybe")
    with pytest.raises(ValueError, match="queue_depth"):
        IndexServer(queue_depth=0)
    with pytest.raises(ValueError, match="workers"):
        IndexServer(workers=3)
    with _manual_server() as server:
        server.create_instance("t", "B+tree", items=_items(n=40))
        with pytest.raises(ValueError, match="destination"):
            server.migrate("t", "RMI")   # RMI is read-only, no backfill
    with IndexServer(workers=1) as threaded:
        with pytest.raises(RuntimeError, match="workers=0"):
            threaded.pump_jobs()


def test_all_registry_specs_have_shardable_flag_consistency():
    # The harness sweep is only a proof if it covers what it claims:
    # every spec with insert+range is in the shardable sweep.
    for spec in REGISTRY:
        expected = spec.supports_insert and spec.supports_range
        assert spec.supports_sharding == expected
