"""Discrete-event simulator mechanics (beyond the shape tests)."""

import pytest

from repro.concurrency.simcore import MulticoreSimulator, Topology
from repro.concurrency.trace import ATOMIC_BASE_NS, ATOMIC_PINGPONG_NS, OpTrace


def _traces(n, **kwargs):
    return [OpTrace(op="lookup", **kwargs) for _ in range(n)]


def test_replay_deterministic():
    sim = MulticoreSimulator(Topology())
    traces = _traces(500, free_ns=100.0)
    a = sim.replay("x", traces, threads=8)
    b = sim.replay("x", traces, threads=8)
    assert a.makespan_ns == b.makespan_ns


def test_independent_work_scales_linearly():
    sim = MulticoreSimulator(Topology())
    traces = _traces(2400, free_ns=100.0)
    t1 = sim.replay("x", traces, threads=1)
    t24 = sim.replay("x", traces, threads=24)
    assert t24.throughput_mops == pytest.approx(24 * t1.throughput_mops, rel=0.01)


def test_exclusive_resource_serializes():
    sim = MulticoreSimulator(Topology())
    traces = [OpTrace(op="insert", sections=[("L", 100.0)]) for _ in range(1000)]
    t1 = sim.replay("x", traces, threads=1)
    t24 = sim.replay("x", traces, threads=24)
    # All ops hold the same lock: no speedup possible.
    assert t24.makespan_ns >= 0.95 * t1.makespan_ns
    assert t24.lock_wait_ns > 0


def test_disjoint_locks_do_not_serialize():
    sim = MulticoreSimulator(Topology())
    traces = [OpTrace(op="insert", sections=[(i % 64, 100.0)]) for i in range(1024)]
    t16 = sim.replay("x", traces, threads=16)
    t1 = sim.replay("x", traces, threads=1)
    assert t16.throughput_mops > 8 * t1.throughput_mops


def test_atomic_pingpong_grows_with_sharers():
    sim = MulticoreSimulator(Topology())
    traces = [OpTrace(op="insert", free_ns=10.0, atomics=["root"]) for _ in range(960)]
    r1 = sim.replay("x", traces, threads=1)
    r24 = sim.replay("x", traces, threads=24)
    per_op_1 = r1.atomic_ns / 960
    per_op_24 = r24.atomic_ns / 960
    assert per_op_1 == pytest.approx(ATOMIC_BASE_NS)
    assert per_op_24 > ATOMIC_BASE_NS + 20 * ATOMIC_PINGPONG_NS * 0.8


def test_hyperthreads_slower_than_cores():
    topo = Topology()
    sim = MulticoreSimulator(topo)
    traces = _traces(4800, free_ns=100.0)
    t24 = sim.replay("x", traces, threads=24)
    t48 = sim.replay("x", traces, threads=48)
    gain = t48.throughput_mops / t24.throughput_mops
    # 24 HT threads at smt_speed=0.4 add ~40%, far from 2x.
    assert 1.1 < gain < 1.6


def test_bandwidth_ceiling_stretches_run():
    topo = Topology(socket_bandwidth=1e9)  # tiny capacity
    sim = MulticoreSimulator(topo)
    traces = [OpTrace(op="lookup", free_ns=10.0, bytes=1000.0) for _ in range(2000)]
    r = sim.replay("x", traces, threads=24)
    assert r.bandwidth_limited
    demand_gb = r.bytes_total / r.makespan_ns  # bytes per ns = GB/s
    assert demand_gb * 1e9 <= topo.bandwidth_capacity() * 1.01


def test_remote_latency_inflates_mem_bound_work():
    traces = [OpTrace(op="lookup", free_ns=100.0, mem_fraction=1.0)
              for _ in range(1000)]
    local = MulticoreSimulator(Topology(sockets=1)).replay("x", traces, 8)
    numa = MulticoreSimulator(Topology(sockets=4)).replay("x", traces, 8)
    assert numa.makespan_ns > 1.2 * local.makespan_ns


def test_cpu_bound_work_ignores_numa_latency():
    traces = [OpTrace(op="lookup", free_ns=100.0, mem_fraction=0.0)
              for _ in range(1000)]
    local = MulticoreSimulator(Topology(sockets=1)).replay("x", traces, 8)
    numa = MulticoreSimulator(Topology(sockets=4)).replay("x", traces, 8)
    assert numa.makespan_ns == pytest.approx(local.makespan_ns, rel=0.01)


def test_latency_sampling_respects_op_kind():
    sim = MulticoreSimulator(Topology())
    traces = [OpTrace(op="lookup", free_ns=50.0),
              OpTrace(op="insert", free_ns=70.0)] * 50
    r = sim.replay("x", traces, threads=2, sample_every=1)
    assert len(r.lookup_latencies) == 50
    assert len(r.write_latencies) == 50
    assert max(r.lookup_latencies) < max(r.write_latencies)


def test_sections_acquired_in_order():
    """Two sections on one op: total time covers both holds."""
    sim = MulticoreSimulator(Topology())
    traces = [OpTrace(op="insert", sections=[("a", 40.0), ("b", 60.0)])]
    r = sim.replay("x", traces, threads=1, sample_every=1)
    assert r.write_latencies[0] == pytest.approx(100.0)


def test_empty_trace_list():
    sim = MulticoreSimulator(Topology())
    r = sim.replay("x", [], threads=4)
    assert r.n_ops == 0
    assert r.throughput_mops == 0.0
