"""Wormhole: contract conformance plus leaf-list behaviour."""

from repro.core.cost import HASH
from repro.indexes.wormhole import Wormhole, _LEAF_CAPACITY
from tests.index_contract import IndexContract


class TestWormholeContract(IndexContract):
    def make(self) -> Wormhole:
        return Wormhole()


def test_lookup_cost_independent_of_size():
    """MetaTrieHT: O(log L) hash probes regardless of N."""
    small = Wormhole()
    small.bulk_load([(i, i) for i in range(100)])
    big = Wormhole()
    big.bulk_load([(i, i) for i in range(10000)])
    small.lookup(50)
    big.lookup(5000)
    h_small = small.meter.total_units(HASH)
    h_big = big.meter.total_units(HASH)
    # Same probes per lookup (bulk load charges none per-op here).
    assert h_big - h_small <= 3


def test_leaf_splits_register_new_anchor():
    idx = Wormhole()
    idx.bulk_load([])
    before = idx.leaf_count
    for k in range(_LEAF_CAPACITY * 3):
        idx.insert(k, k)
    assert idx.leaf_count > before
    # Every leaf's anchor bounds its keys.
    for leaf in idx._leaves:
        assert all(k >= leaf.anchor for k in leaf.keys)


def test_scan_follows_leaf_links():
    idx = Wormhole()
    idx.bulk_load([(i, i) for i in range(1000)])
    got = idx.range_scan(497, 10)
    assert [k for k, _ in got] == list(range(497, 507))


def test_no_delete_support():
    assert not Wormhole().supports_delete
