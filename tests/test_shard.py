"""The sharded serving tier: routing, rebalance, and determinism.

The acceptance bar is the parity test near the end: for every registry
index that supports sharding, running a mixed stream through a
:class:`ShardedIndex` produces a value fingerprint bit-identical to the
same stream against one unsharded instance, with the differential
oracle clean over the routed stream.
"""

import random

import pytest

from repro.core.cost import CostMeter
from repro.core.instance import MIGRATING, RETIRED, SERVING
from repro.core.opstream import DifferentialObserver
from repro.core.registry import REGISTRY
from repro.core.runner import execute
from repro.core.shard import (
    ClusterMeter,
    ShardBatchTask,
    ShardMap,
    ShardRouter,
    ShardedIndex,
    rebalance_benchmark,
    routed_fingerprint,
    run_shard_batches,
)
from repro.core.sweep import DatasetSpec
from repro.core.workloads import (
    mixed_workload,
    moving_hotspot_workload,
    payload,
)
from repro.indexes.btree import BPlusTree
from repro.indexes.multiplex import DONE, READY

KEYS = sorted(random.Random(7).sample(range(1, 30_000_000), 4000))
ITEMS = [(k, payload(k)) for k in KEYS]

SHARDABLE = [s.name for s in REGISTRY if s.supports_sharding]


def _pump_to_ready(mux):
    for _ in range(10_000):
        if mux.phase in (READY, DONE):
            return
        mux.pump()
    raise AssertionError(f"rebalance never became ready ({mux.phase})")


# -- ShardMap -----------------------------------------------------------------

def test_shard_map_routing_matches_linear_scan():
    m = ShardMap([100, 500, 1000])
    assert m.n_shards == 4

    def linear(key):
        sid = 0
        for b in m.boundaries:
            if key >= b:
                sid += 1
        return sid

    for key in [0, 99, 100, 101, 499, 500, 999, 1000, 10**9]:
        assert m.route(key) == linear(key)
    assert m.range_of(0) == (None, 100)
    assert m.range_of(1) == (100, 500)
    assert m.range_of(3) == (1000, None)


def test_shard_map_rejects_unsorted_boundaries():
    with pytest.raises(ValueError):
        ShardMap([5, 5])
    with pytest.raises(ValueError):
        ShardMap([9, 3])


def test_shard_map_split_merge_roundtrip():
    m = ShardMap([100, 500])
    m.split(1, 300)
    assert m.boundaries == [100, 300, 500]
    assert m.merge(1) == 300
    assert m.boundaries == [100, 500]
    with pytest.raises(ValueError):
        m.split(0, 100)  # split key must fall strictly inside the range
    with pytest.raises(IndexError):
        m.merge(2)  # no right neighbor


def test_shard_map_from_items_equal_population():
    m = ShardMap.from_items(ITEMS, 4)
    assert m.n_shards == 4
    counts = [0] * 4
    for k, _ in ITEMS:
        counts[m.route(k)] += 1
    assert max(counts) - min(counts) <= 1


# -- ClusterMeter -------------------------------------------------------------

def test_cluster_meter_sums_adopted_parts():
    cm = ClusterMeter()
    a = cm.adopt(CostMeter(cm.weights))
    b = cm.adopt(CostMeter(cm.weights))
    a.charge("key_compare", 2)
    b.charge("node_hop", 1)
    cm.charge("key_compare", 1)
    expected = (3 * cm.weights["key_compare"]
                + cm.weights["node_hop"])
    assert cm.total_time() == pytest.approx(expected)
    assert cm.routing_ns() == pytest.approx(cm.weights["key_compare"])
    assert cm.total_units("key_compare") == 3
    before = cm.snapshot()
    a.charge("key_compare", 5)
    assert cm.diff(before).total_time() == pytest.approx(
        5 * cm.weights["key_compare"])
    cm.reset()
    assert cm.total_time() == 0.0
    assert a.total_time() == 0.0


def test_cluster_clock_is_monotonic_across_rebalance():
    s = ShardedIndex(BPlusTree, n_shards=2)
    s.bulk_load(ITEMS[:1000])
    t0 = s.meter.total_time()
    rb = s.begin_split(0)
    _pump_to_ready(rb.mux)
    t1 = s.meter.total_time()
    assert t1 >= t0
    s.finish_rebalance(rb)
    assert s.meter.total_time() >= t1  # retired parts keep their charges


# -- ShardedIndex contract ----------------------------------------------------

def test_bulk_load_partitions_and_items_roundtrip():
    s = ShardedIndex("B+tree", n_shards=4)
    s.bulk_load(ITEMS)
    assert len(s) == len(ITEMS)
    assert s.map.n_shards == 4
    assert s.items() == ITEMS
    assert all(len(inst.index) > 0 for inst in s.shards)
    assert s.debug_validate() == []


def test_scalar_ops_route_across_boundaries():
    s = ShardedIndex("B+tree", n_shards=3)
    s.bulk_load(ITEMS[:900])
    for k, v in ITEMS[100:110]:
        assert s.lookup(k) == v
    absent = KEYS[950]
    assert s.lookup(absent) is None
    assert s.insert(absent, 42)
    assert s.lookup(absent) == 42
    assert s.update(absent, 43)
    assert s.lookup(absent) == 43
    assert s.delete(absent)
    assert s.last_op.op == "delete"
    assert s.lookup(absent) is None


def test_range_scan_stitches_across_shards():
    s = ShardedIndex("B+tree", n_shards=4)
    s.bulk_load(ITEMS)
    flat = BPlusTree()
    flat.bulk_load(ITEMS)
    # Straddle every boundary: start just before it, span well past.
    for b in s.map.boundaries:
        start = b - 1
        assert s.range_scan(start, 50) == flat.range_scan(start, 50)
    assert s.range_scan(KEYS[0], 10) == ITEMS[:10]
    assert s.range_scan(KEYS[-1] + 1, 10) == []


def test_batch_ops_match_scalar_loop():
    s = ShardedIndex("ALEX", n_shards=4)
    s.bulk_load(ITEMS[:2000])
    rng = random.Random(3)
    queries = [KEYS[rng.randrange(2500)] for _ in range(300)]
    got = s.lookup_many(queries)
    assert got == [s.lookup(k) for k in queries]
    fresh = [(k, payload(k)) for k in KEYS[2500:2600]]
    rng.shuffle(fresh)
    oks = s.insert_many(fresh)
    assert all(oks)
    assert s.lookup_many([k for k, _ in fresh]) == [v for _, v in fresh]
    # Batch records mirror the scalar contract: one record per key,
    # last_op is the final key's record.
    records = []
    s.lookup_many(queries[:10], records=records)
    assert len(records) == 10
    assert s.last_op is records[-1]


def test_single_shard_degenerates_to_plain_index():
    s = ShardedIndex("B+tree", n_shards=1)
    s.bulk_load(ITEMS[:500])
    assert s.map.n_shards == 1 and s.map.boundaries == []
    assert len(s.shards) == 1
    assert s.items() == ITEMS[:500]


def test_unshardable_index_refused():
    class NoRange(BPlusTree):
        supports_range = False

    with pytest.raises(ValueError, match="cannot be sharded"):
        ShardedIndex(NoRange, n_shards=2)


# -- split / merge as live migrations -----------------------------------------

def test_split_preserves_items_with_zero_stall():
    s = ShardedIndex("B+tree", n_shards=2)
    s.bulk_load(ITEMS[:1500])
    rb = s.begin_split(0)
    assert rb.kind == "split"
    assert rb.instance.state == MIGRATING
    # The slot keeps serving reads and writes mid-split.
    k, v = ITEMS[10]
    assert s.lookup(k) == v
    extra = KEYS[1600]
    assert s.insert(extra, 7)
    _pump_to_ready(rb.mux)
    new = s.finish_rebalance(rb)
    assert len(new) == 2 and all(i.state == SERVING for i in new)
    assert rb.instance.state == RETIRED
    assert s.map.n_shards == 3 and len(s.shards) == 3
    assert s.cutover_stall_ops == 0
    expected = sorted(ITEMS[:1500] + [(extra, 7)])
    assert s.items() == expected
    assert s.debug_validate() == []


def test_merge_preserves_items_with_zero_stall():
    s = ShardedIndex("B+tree", n_shards=3)
    s.bulk_load(ITEMS[:1500])
    rb = s.begin_merge(0)
    assert rb.kind == "merge"
    assert s.map.n_shards == 2  # neighbors fused immediately
    k, v = ITEMS[20]
    assert s.lookup(k) == v  # reads keep flowing through the view
    _pump_to_ready(rb.mux)
    s.finish_rebalance(rb)
    assert s.map.n_shards == 2 and len(s.shards) == 2
    assert s.cutover_stall_ops == 0
    assert all(i.state == RETIRED for i in rb.retired_instances)
    assert s.items() == ITEMS[:1500]
    assert s.debug_validate() == []


def test_abort_split_restores_original_shard():
    s = ShardedIndex("B+tree", n_shards=2)
    s.bulk_load(ITEMS[:1000])
    before = s.items()
    rb = s.begin_split(1)
    rb.mux.pump()
    s.abort_rebalance(rb)
    assert rb.aborted and rb.instance.state == SERVING
    assert s.map.n_shards == 2
    assert s.items() == before
    assert s.debug_validate() == []


def test_abort_merge_restores_neighbors():
    s = ShardedIndex("B+tree", n_shards=3)
    s.bulk_load(ITEMS[:1200])
    before = s.items()
    boundaries = list(s.map.boundaries)
    rb = s.begin_merge(1)
    rb.mux.pump()
    s.abort_rebalance(rb)
    assert s.map.boundaries == boundaries
    assert len(s.shards) == 3
    assert all(i.state == SERVING for i in rb.retired_instances)
    assert s.items() == before
    assert s.debug_validate() == []


# -- determinism contract (the acceptance bar) --------------------------------

@pytest.mark.parametrize("name", SHARDABLE)
def test_fingerprint_parity_and_oracle_clean(name):
    """Sharded == unsharded, bit for bit, oracle clean — every index."""
    spec = REGISTRY.get(name)
    keys = KEYS[:1200]
    wl = mixed_workload(keys, 0.3, n_ops=800, seed=6)
    plain = routed_fingerprint(spec.factory(), wl)
    sharded = ShardedIndex(name, n_shards=3)
    oracle = DifferentialObserver()
    routed = routed_fingerprint(sharded, wl, observers=[oracle])
    assert routed == plain
    assert oracle.ok, oracle.mismatches[:3]
    assert sharded.map.n_shards == 3


def test_parity_survives_a_mid_stream_split():
    keys = KEYS[:1200]
    wl = mixed_workload(keys, 0.3, n_ops=600, seed=9)
    plain = routed_fingerprint(BPlusTree(), wl)

    class SplitAt200:
        def __init__(self, sharded):
            self.sharded = sharded
            self.rb = None
            self.n = 0

        def on_phase(self, phase, index, workload):
            pass

        def on_op(self, event, latency):
            self.n += 1
            if self.n == 200:
                self.rb = self.sharded.begin_split(0)
            elif self.rb is not None and not self.rb.done:
                if self.rb.mux.phase in (READY, DONE):
                    self.sharded.finish_rebalance(self.rb)

        def on_smo(self, record):
            pass

    sharded = ShardedIndex("B+tree", n_shards=2)
    splitter = SplitAt200(sharded)
    oracle = DifferentialObserver()
    routed = routed_fingerprint(sharded, wl, observers=[splitter, oracle])
    assert splitter.rb is not None and splitter.rb.done
    assert routed == plain
    assert oracle.ok
    assert sharded.cutover_stall_ops == 0


# -- router convergence -------------------------------------------------------

def test_router_splits_hot_shard_and_converges():
    wl = moving_hotspot_workload(KEYS[:3000], n_ops=6000, phases=3,
                                 seed=5)
    sharded = ShardedIndex("B+tree", n_shards=4)
    router = ShardRouter(sharded, window_ops=512, slo_window=256,
                         min_split_keys=256)
    oracle = DifferentialObserver()
    report = router.run(wl, oracle=oracle)
    assert report.n_ops == 6000
    assert report.rejected == 0
    assert report.splits >= 1
    assert report.cutover_stall_ops == 0
    assert report.oracle_ok and oracle.ok
    assert sharded.debug_validate() == []
    assert {e["decision"] for e in report.events} >= {"split_started"}
    # The retained trackers cover every shard that ever served.
    assert len(router.all_trackers) == len(router.retired_summaries)
    assert len(router.all_trackers) >= report.shards_final


def test_rebalance_benchmark_converges_small():
    doc = rebalance_benchmark(index="B+tree", dataset="covid", n=6000,
                              ops=6000, shards=4, window_ops=512, seed=0)
    assert doc["converged"] is True
    assert doc["cutover_stall_ops"] == 0
    assert doc["rejected_ops"] == 0
    assert doc["oracle_ok"] is True
    assert doc["splits"] >= 1
    assert doc["p99_recovery_ratio"] <= 2.0


# -- parallel shard execution -------------------------------------------------

def test_run_shard_batches_serial_pool_parity():
    ds = DatasetSpec("covid", 4000, 0)
    keys = ds.keys()
    mid = keys[len(keys) // 2]
    rng = random.Random(1)
    qs = tuple(keys[rng.randrange(len(keys))] for _ in range(600))
    tasks = [
        ShardBatchTask(index="B+tree", dataset=ds, lo=None, hi=mid,
                       lookups=tuple(k for k in qs if k < mid)),
        ShardBatchTask(index="B+tree", dataset=ds, lo=mid, hi=None,
                       lookups=tuple(k for k in qs if k >= mid)),
    ]
    serial = run_shard_batches(tasks, jobs=1)
    assert not serial.used_processes and serial.pool_error == ""
    assert sum(r["hits"] for r in serial.results) == len(qs)
    pool = run_shard_batches(tasks, jobs=2)
    # A pool may be unavailable (sandboxes); the fallback must still
    # produce identical results — that IS the determinism contract.
    assert pool.fingerprints() == serial.fingerprints()
    assert [r["busy_ns"] for r in pool.results] == \
        [r["busy_ns"] for r in serial.results]


def test_sharded_status_surface():
    s = ShardedIndex("B+tree", n_shards=2)
    s.bulk_load(ITEMS[:600])
    doc = s.status()
    assert doc["name"] == "Sharded[B+tree]"
    assert doc["map"]["n_shards"] == 2
    assert doc["splits"] == 0 and doc["merges"] == 0
    assert doc["cutover_stall_ops"] == 0
    assert len(doc["shards"]) == 2


def test_registry_sharding_flags_are_honest():
    assert len(SHARDABLE) >= 6  # the acceptance floor
    assert "RMI" not in SHARDABLE  # read-only: migration targets insert
    for name in SHARDABLE:
        s = ShardedIndex(name, n_shards=2)
        s.bulk_load(ITEMS[:400])
        assert s.items() == ITEMS[:400]


def test_routed_stream_engine_parity():
    """`execute` over a ShardedIndex reports the same op outcomes."""
    keys = KEYS[:800]
    wl = mixed_workload(keys, 0.2, n_ops=400, seed=2)
    plain = execute(BPlusTree(), wl)
    shard = execute(ShardedIndex("B+tree", n_shards=3), wl)
    assert shard.n_ops == plain.n_ops
    assert shard.index_name == "Sharded[B+tree]"
    assert shard.memory.total >= plain.memory.total  # N structures


# -- property-based: ShardMap split/merge vs a brute-force model ---------------

from hypothesis import settings as _hyp_settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402
from hypothesis.stateful import (  # noqa: E402
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

_MAP_KEY = st.integers(min_value=0, max_value=2**20)


class ShardMapMachine(RuleBasedStateMachine):
    """Random split/merge sequences vs a plain sorted-list model.

    The model is just the boundary list itself kept by brute force;
    the invariants re-derive everything a router relies on — strictly
    sorted boundaries, contiguous half-open ranges covering the whole
    keyspace, and ``route`` agreeing with a linear scan — after every
    step, so hypothesis shrinks any violation to a minimal edit script.
    """

    @initialize(keys=st.sets(_MAP_KEY, max_size=12))
    def start(self, keys):
        self.model = sorted(keys)
        self.map = ShardMap(self.model)

    @rule(sid=st.integers(min_value=0, max_value=2**30), at=_MAP_KEY)
    def split(self, sid, at):
        sid %= self.map.n_shards
        lo, hi = self.map.range_of(sid)
        inside = ((lo is None or at > lo) and (hi is None or at < hi))
        if inside:
            self.map.split(sid, at)
            self.model.insert(sid, at)
        else:
            with pytest.raises(ValueError):
                self.map.split(sid, at)

    @rule(sid=st.integers(min_value=0, max_value=2**30))
    def merge(self, sid):
        if not self.model:
            with pytest.raises(IndexError):
                self.map.merge(0)
            return
        sid %= len(self.model)
        removed = self.map.merge(sid)
        assert removed == self.model.pop(sid)

    @rule(key=_MAP_KEY)
    def route_agrees_with_linear_scan(self, key):
        got = self.map.route(key)
        assert got == sum(1 for b in self.model if b <= key)
        lo, hi = self.map.range_of(got)
        assert lo is None or lo <= key
        assert hi is None or key < hi

    @invariant()
    def boundaries_strictly_sorted(self):
        if not hasattr(self, "map"):
            return
        bl = self.map.boundaries
        assert bl == self.model
        assert all(a < b for a, b in zip(bl, bl[1:]))

    @invariant()
    def ranges_cover_keyspace_contiguously(self):
        if not hasattr(self, "map"):
            return
        n = self.map.n_shards
        assert n == len(self.model) + 1
        ranges = [self.map.range_of(sid) for sid in range(n)]
        assert ranges[0][0] is None
        assert ranges[-1][1] is None
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo  # no gap, no overlap
        with pytest.raises(IndexError):
            self.map.range_of(n)


TestShardMapStateful = ShardMapMachine.TestCase
TestShardMapStateful.settings = _hyp_settings(
    max_examples=50, stateful_step_count=50, deadline=None)
