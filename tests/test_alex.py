"""ALEX: contract conformance plus gapped-array / SMO behaviour."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexes.alex import ALEX, _GAP_HIGH
from tests.index_contract import IndexContract


class TestALEXContract(IndexContract):
    def make(self) -> ALEX:
        return ALEX(target_leaf_keys=128, max_data_keys=2048)


class TestALEXDefaultsContract(IndexContract):
    """Contract at the paper's (scaled) default configuration."""

    N = 1500

    def make(self) -> ALEX:
        return ALEX()


def _uniform_items(n, seed=0):
    rng = random.Random(seed)
    keys = sorted({rng.randrange(2**40) for _ in range(n)})
    return [(k, k) for k in keys]


def test_gapped_array_stays_sorted_under_inserts():
    idx = ALEX(target_leaf_keys=64)
    idx.bulk_load(_uniform_items(200, seed=1))
    rng = random.Random(2)
    for _ in range(500):
        idx.insert(rng.randrange(2**40), 0)
    for node in idx.data_nodes():
        assert node.keys == sorted(node.keys)
        assert node.num_keys == sum(node.present)


def test_density_bounds_respected_after_workload():
    idx = ALEX(target_leaf_keys=64)
    idx.bulk_load(_uniform_items(100, seed=3))
    rng = random.Random(4)
    for _ in range(2000):
        idx.insert(rng.randrange(2**40), 0)
    for node in idx.data_nodes():
        if node.num_keys > 8:
            assert node.density() <= 0.85


def test_smo_triggered_by_density():
    idx = ALEX(target_leaf_keys=32)
    idx.bulk_load(_uniform_items(64, seed=5))
    for i in range(500):
        idx.insert(i * 7 + 3, 0)
    assert idx.smo_count > 0


def test_sequential_inserts_split_not_explode():
    """Appending monotonically must not degrade into O(n) shifting."""
    idx = ALEX(target_leaf_keys=64, max_data_keys=512)
    idx.bulk_load([(i, i) for i in range(100)])
    for i in range(100, 3000):
        idx.insert(i, i)
    assert idx.lookup(2999) == 2999
    assert len(idx) == 3000
    got = idx.range_scan(0, 3000)
    assert [k for k, _ in got] == list(range(3000))


def test_duplicate_mode_rejects_bad_value():
    with pytest.raises(ValueError):
        ALEX(duplicate_mode="bogus")


def test_inline_duplicates():
    idx = ALEX(duplicate_mode="inline", target_leaf_keys=32)
    idx.bulk_load([(10, "a"), (10, "b"), (20, "c")])
    assert len(idx) == 3
    for i in range(30):
        assert idx.insert(10, f"x{i}")
    scan = idx.range_scan(10, 40)
    tens = [v for k, v in scan if k == 10]
    assert len(tens) == 32


def test_linked_list_duplicates():
    idx = ALEX(duplicate_mode="linked_list", target_leaf_keys=32)
    idx.bulk_load([(10, "a"), (20, "b")])
    for i in range(30):
        assert idx.insert(10, f"x{i}")
    assert len(idx) == 32
    assert idx.lookup(10) == "a"
    scan = idx.range_scan(10, 40)
    tens = [v for k, v in scan if k == 10]
    assert len(tens) == 31


def test_keys_shifted_recorded():
    idx = ALEX(target_leaf_keys=512)
    # Fully packed region forces shifting.
    idx.bulk_load([(i * 10, i) for i in range(400)])
    total_shifts = 0
    for i in range(200):
        idx.insert(i * 10 + 5, 0)
        total_shifts += idx.last_op.keys_shifted
    assert total_shifts > 0


def test_delete_never_retrains_model():
    """Message 8: deletes do not pollute models."""
    idx = ALEX(target_leaf_keys=128)
    items = _uniform_items(1000, seed=6)
    idx.bulk_load(items)
    models_before = [(n.model.slope, n.model.intercept) for n in idx.data_nodes()]
    # Delete a third of the keys: no contraction expected at this density.
    for k, _ in items[::3]:
        assert idx.delete(k)
    models_after = [(n.model.slope, n.model.intercept) for n in idx.data_nodes()]
    assert models_before == models_after


def test_contraction_on_heavy_deletion():
    idx = ALEX(target_leaf_keys=512)
    items = _uniform_items(2000, seed=7)
    idx.bulk_load(items)
    cap_before = sum(n.capacity for n in idx.data_nodes())
    for k, _ in items[:1900]:
        idx.delete(k)
    cap_after = sum(n.capacity for n in idx.data_nodes())
    assert cap_after < cap_before


def test_gap_sentinel_is_above_u64():
    assert _GAP_HIGH > 2**64 - 1


def test_alex_plus_config_smaller_nodes():
    """ALEX+ caps data nodes at 512KB (scaled smaller here)."""
    idx = ALEX(max_data_keys=256, target_leaf_keys=64)
    idx.bulk_load(_uniform_items(100, seed=8))
    for i in range(5000):
        idx.insert(i * 13 + 1, 0)
    for node in idx.data_nodes():
        assert node.num_keys <= 256 * 2  # split must keep nodes bounded


@given(st.sets(st.integers(min_value=0, max_value=2**32), min_size=2, max_size=250),
       st.sets(st.integers(min_value=0, max_value=2**32), max_size=150))
@settings(max_examples=30, deadline=None)
def test_property_matches_dict_model(loaded, inserted):
    idx = ALEX(target_leaf_keys=32, max_data_keys=256)
    model = {k: k + 1 for k in loaded}
    idx.bulk_load(sorted(model.items()))
    for k in inserted:
        expect = k not in model
        assert idx.insert(k, k + 1) == expect
        model.setdefault(k, k + 1)
    doomed = sorted(model)[::4]
    for k in doomed:
        assert idx.delete(k)
        del model[k]
    assert len(idx) == len(model)
    assert idx.range_scan(0, len(model) + 5) == sorted(model.items())
