"""B+-tree: contract conformance plus structure-specific tests."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexes.btree import BPlusTree
from tests.index_contract import IndexContract


class TestBPlusTreeContract(IndexContract):
    def make(self) -> BPlusTree:
        return BPlusTree(fanout=16)


class TestBPlusTreeWideContract(IndexContract):
    """Same contract at STX-like fanout to exercise different splits."""

    def make(self) -> BPlusTree:
        return BPlusTree(fanout=64)


def test_height_grows_logarithmically():
    idx = BPlusTree(fanout=8)
    idx.bulk_load([(i, i) for i in range(4096)])
    assert 3 <= idx.height <= 6


def test_split_keeps_leaf_chain_intact():
    idx = BPlusTree(fanout=8)
    idx.bulk_load([])
    keys = list(range(0, 2000, 2))
    random.Random(1).shuffle(keys)
    for k in keys:
        idx.insert(k, k)
    scan = idx.range_scan(0, 1000)
    assert [k for k, _ in scan] == list(range(0, 2000, 2))


def test_delete_shrinks_tree_height():
    idx = BPlusTree(fanout=8)
    idx.bulk_load([(i, i) for i in range(2000)])
    h = idx.height
    for i in range(1990):
        assert idx.delete(i)
    assert idx.height < h
    for i in range(1990, 2000):
        assert idx.lookup(i) == i


def test_insert_records_shift_counts():
    idx = BPlusTree(fanout=32)
    idx.bulk_load([(i * 2, i) for i in range(100)])
    idx.insert(1, 0)  # lands at front of first leaf -> shifts
    assert idx.last_op.keys_shifted > 0


def test_min_fanout_rejected():
    import pytest

    with pytest.raises(ValueError):
        BPlusTree(fanout=2)


@given(st.sets(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=300),
       st.sets(st.integers(min_value=0, max_value=10**6), max_size=150))
@settings(max_examples=40, deadline=None)
def test_property_matches_dict_model(loaded, inserted):
    """The tree behaves exactly like a sorted dict under mixed ops."""
    idx = BPlusTree(fanout=8)
    model = {k: k + 1 for k in loaded}
    idx.bulk_load(sorted(model.items()))
    for k in inserted:
        expect = k not in model
        assert idx.insert(k, k + 1) == expect
        model.setdefault(k, k + 1)
    doomed = sorted(model)[::3]
    for k in doomed:
        assert idx.delete(k)
        del model[k]
    assert len(idx) == len(model)
    remaining = sorted(model.items())
    assert idx.range_scan(0, len(model) + 5) == remaining
