"""Extensions: string keys, persistence snapshots, adaptive selection."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ALEX, ART, BPlusTree, LIPP
from repro.extensions.adaptive import AdaptiveIndex, WorkloadProfile, recommend
from repro.extensions.persistence import SnapshotError, load_snapshot, save_snapshot
from repro.extensions.string_keys import StringKeyIndex, encode_prefix
from repro.datasets import registry


# -- string keys ------------------------------------------------------------

def test_encode_prefix_order_preserving():
    words = [b"", b"a", b"aa", b"ab", b"b", b"zebra", b"zebras!"]
    codes = [encode_prefix(w) for w in words]
    assert codes == sorted(codes)


def test_string_index_roundtrip():
    idx = StringKeyIndex(ALEX)
    words = sorted({f"word{i:04d}".encode() for i in range(500)})
    idx.bulk_load([(w, i) for i, w in enumerate(words)])
    assert len(idx) == 500
    for i, w in enumerate(words[::37]):
        assert idx.lookup(w) == words.index(w)
    assert idx.lookup("missing") is None


def test_string_index_prefix_collisions():
    """Keys sharing an 8-byte prefix must coexist in one bucket."""
    idx = StringKeyIndex(BPlusTree)
    idx.bulk_load([])
    long_keys = [f"sameprefix-{i}" for i in range(50)]  # all share 8 bytes
    for i, k in enumerate(long_keys):
        assert idx.insert(k, i)
    for i, k in enumerate(long_keys):
        assert idx.lookup(k) == i
    assert not idx.insert(long_keys[0], 99)  # duplicate rejected
    assert len(idx) == 50


def test_string_index_update_delete():
    idx = StringKeyIndex(BPlusTree)
    idx.bulk_load([(b"alpha", 1), (b"beta", 2)])
    assert idx.update("alpha", 10)
    assert idx.lookup("alpha") == 10
    assert idx.delete("alpha")
    assert idx.lookup("alpha") is None
    assert not idx.delete("alpha")
    assert len(idx) == 1


def test_string_index_range_scan():
    idx = StringKeyIndex(ALEX)
    words = sorted({f"{c}{i}".encode() for c in "abc" for i in range(20)})
    idx.bulk_load([(w, w) for w in words])
    got = idx.range_scan(b"b", 10)
    assert [k for k, _ in got] == [w for w in words if w >= b"b"][:10]


def test_string_index_scan_within_bucket():
    idx = StringKeyIndex(BPlusTree)
    keys = [f"prefix99-{i:02d}".encode() for i in range(30)]
    idx.bulk_load([(k, i) for i, k in enumerate(sorted(keys))])
    got = idx.range_scan(b"prefix99-10", 5)
    assert [k for k, _ in got] == sorted(keys)[10:15]


def test_string_index_rejects_unsorted_bulk():
    idx = StringKeyIndex(BPlusTree)
    with pytest.raises(ValueError):
        idx.bulk_load([(b"b", 1), (b"a", 2)])


@given(st.sets(st.binary(min_size=1, max_size=16), min_size=1, max_size=80))
@settings(max_examples=30, deadline=None)
def test_property_string_index_matches_dict(keys):
    idx = StringKeyIndex(BPlusTree)
    model = {k: len(k) for k in keys}
    idx.bulk_load(sorted(model.items()))
    for k in keys:
        assert idx.lookup(k) == model[k]
    scan = idx.range_scan(b"", len(model))
    assert scan == sorted(model.items())


# -- persistence ------------------------------------------------------------

def test_snapshot_roundtrip(tmp_path):
    rng = random.Random(1)
    items = sorted((rng.randrange(2**48), rng.randrange(2**32)) for _ in range(800))
    items = [(k, v) for (k, v) in dict(items).items()]
    items.sort()
    idx = ALEX()
    idx.bulk_load(items)
    path = str(tmp_path / "snap.gre")
    n = save_snapshot(idx, path)
    assert n > 800 * 16
    # Reload into a *different* index type: snapshots are portable.
    restored = load_snapshot(BPlusTree, path)
    assert len(restored) == len(items)
    for k, v in items[::53]:
        assert restored.lookup(k) == v


def test_snapshot_detects_corruption(tmp_path):
    idx = BPlusTree()
    idx.bulk_load([(i, i) for i in range(100)])
    path = str(tmp_path / "snap.gre")
    save_snapshot(idx, path)
    raw = bytearray(open(path, "rb").read())
    raw[-3] ^= 0xFF
    open(path, "wb").write(bytes(raw))
    with pytest.raises(SnapshotError, match="checksum"):
        load_snapshot(BPlusTree, path)


def test_snapshot_detects_truncation(tmp_path):
    idx = BPlusTree()
    idx.bulk_load([(i, i) for i in range(100)])
    path = str(tmp_path / "snap.gre")
    save_snapshot(idx, path)
    raw = open(path, "rb").read()
    open(path, "wb").write(raw[: len(raw) // 2])
    with pytest.raises(SnapshotError, match="truncated"):
        load_snapshot(BPlusTree, path)


def test_snapshot_missing_file(tmp_path):
    with pytest.raises(SnapshotError, match="cannot read"):
        load_snapshot(BPlusTree, str(tmp_path / "absent.gre"))


def test_snapshot_rejects_non_integer_payloads(tmp_path):
    idx = BPlusTree()
    idx.bulk_load([(1, "not-an-int")])
    with pytest.raises(SnapshotError, match="u64"):
        save_snapshot(idx, str(tmp_path / "bad.gre"))


def test_snapshot_atomic_replace(tmp_path):
    path = str(tmp_path / "snap.gre")
    idx = BPlusTree()
    idx.bulk_load([(i, i) for i in range(50)])
    save_snapshot(idx, path)
    idx2 = BPlusTree()
    idx2.bulk_load([(i, i * 2) for i in range(75)])
    save_snapshot(idx2, path)  # replaces, never corrupts
    restored = load_snapshot(BPlusTree, path)
    assert len(restored) == 75 and restored.lookup(10) == 20


# -- adaptive selection ------------------------------------------------------

def test_profile_validation():
    with pytest.raises(ValueError):
        WorkloadProfile(write_fraction=1.5)


def test_recommendation_read_mostly_easy():
    keys = registry.get("covid").generate(4000, seed=1)
    rec = recommend(keys, WorkloadProfile(write_fraction=0.05))
    assert rec.index_name == "LIPP"


def test_recommendation_hard_write_heavy():
    keys = registry.get("osm").generate(4000, seed=1)
    rec = recommend(keys, WorkloadProfile(write_fraction=0.8))
    assert rec.index_name == "ART"
    assert any("Message 3" in r for r in rec.reasons)


def test_recommendation_scans_avoid_lipp():
    keys = registry.get("covid").generate(4000, seed=1)
    rec = recommend(keys, WorkloadProfile(write_fraction=0.1, needs_range_scans=True))
    assert rec.index_name != "LIPP"


def test_recommendation_memory_budget_blocks_lipp():
    keys = registry.get("covid").generate(4000, seed=1)
    rec = recommend(keys, WorkloadProfile(write_fraction=0.05,
                                          memory_budget_bytes_per_key=24))
    assert rec.index_name != "LIPP"


def test_recommendation_lsm_for_tight_write_heavy():
    keys = registry.get("covid").generate(4000, seed=1)
    rec = recommend(keys, WorkloadProfile(write_fraction=0.95,
                                          memory_budget_bytes_per_key=20))
    assert rec.index_name == "PGM"


def test_adaptive_index_delegates_correctly():
    keys = registry.get("genome").generate(3000, seed=2)
    idx = AdaptiveIndex(WorkloadProfile(write_fraction=0.8))
    items = [(k, k) for k in keys]
    idx.bulk_load(items)
    assert idx.recommendation is not None
    assert idx.backend_name == idx.recommendation.index_name
    assert idx.lookup(keys[100]) == keys[100]
    new_key = keys[-1] + 12345
    assert idx.insert(new_key, 7)
    assert idx.lookup(new_key) == 7
    assert idx.range_scan(keys[0], 5) == items[:5]
    assert idx.memory_usage().total > 0
    assert len(idx) == len(items) + 1


def test_adaptive_index_meter_is_shared():
    idx = AdaptiveIndex(WorkloadProfile(write_fraction=0.0))
    idx.bulk_load([(i * 10, i) for i in range(500)])
    before = idx.meter.total_time()
    idx.lookup(100)
    assert idx.meter.total_time() > before


def test_string_index_snapshot_roundtrip(tmp_path):
    idx = StringKeyIndex(BPlusTree)
    words = sorted({f"key-{i:05d}".encode() for i in range(400)})
    idx.bulk_load([(w, i) for i, w in enumerate(words)])
    path = str(tmp_path / "s.gre")
    n = idx.save(path)
    assert n > 400 * 12
    back = StringKeyIndex.load(BPlusTree, path)
    assert len(back) == 400
    for i, w in enumerate(words[::37]):
        assert back.lookup(w) == idx.lookup(w)


def test_string_index_snapshot_corruption_detected(tmp_path):
    idx = StringKeyIndex(BPlusTree)
    idx.bulk_load([(b"a", 1), (b"b", 2)])
    path = str(tmp_path / "s.gre")
    idx.save(path)
    raw = bytearray(open(path, "rb").read())
    raw[-1] ^= 0x01
    open(path, "wb").write(bytes(raw))
    with pytest.raises(ValueError, match="checksum"):
        StringKeyIndex.load(BPlusTree, path)


def test_string_index_snapshot_rejects_non_u64(tmp_path):
    idx = StringKeyIndex(BPlusTree)
    idx.bulk_load([(b"a", "text")])
    with pytest.raises(ValueError, match="u64"):
        idx.save(str(tmp_path / "x.gre"))
