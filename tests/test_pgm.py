"""PGM-Index: contract conformance plus LSM-run behaviour."""

import random

from repro.indexes.pgm import PGMIndex, _StaticPGM
from repro.core.cost import CostMeter
from tests.index_contract import IndexContract


class TestPGMContract(IndexContract):
    def make(self) -> PGMIndex:
        # Strict duplicate rejection for the generic behavioural contract.
        return PGMIndex(check_duplicates=True, buffer_size=64)


def _uniform_items(n, seed=0):
    rng = random.Random(seed)
    keys = sorted({rng.randrange(2**40) for _ in range(n)})
    return [(k, k) for k in keys]


def test_static_pgm_epsilon_guarantee():
    items = _uniform_items(5000, seed=1)
    meter = CostMeter()
    run = _StaticPGM(items, epsilon=16, meter=meter)
    keys = [k for k, _ in items]
    for i in range(0, len(keys), 37):
        assert run.lower_bound(keys[i], meter) == i


def test_static_pgm_absent_keys_lower_bound():
    items = [(i * 10, i) for i in range(1000)]
    meter = CostMeter()
    run = _StaticPGM(items, epsilon=8, meter=meter)
    assert run.lower_bound(55, meter) == 6
    assert run.lower_bound(0, meter) == 0
    assert run.lower_bound(10**9, meter) == 1000


def test_static_pgm_recursive_levels():
    items = _uniform_items(20000, seed=2)
    meter = CostMeter()
    run = _StaticPGM(items, epsilon=4, meter=meter)
    assert len(run.levels) >= 2
    assert len(run.levels[-1]) == 1


def test_runs_grow_geometrically():
    idx = PGMIndex(buffer_size=32)
    idx.bulk_load([])
    for i in range(1000):
        idx.insert(i * 3, i)
    sizes = idx.run_sizes()
    assert idx.merge_count > 0
    total = sum(sizes) + len(idx._buffer)
    assert total == 1000


def test_tombstone_delete_then_scan():
    idx = PGMIndex(buffer_size=16, check_duplicates=True)
    idx.bulk_load([(i, i) for i in range(100)])
    for i in range(0, 100, 2):
        assert idx.delete(i)
    got = idx.range_scan(0, 100)
    assert [k for k, _ in got] == list(range(1, 100, 2))


def test_newer_run_shadows_older():
    idx = PGMIndex(buffer_size=8, check_duplicates=True)
    idx.bulk_load([(i, "old") for i in range(50)])
    for i in range(50):
        idx.update(i, f"new{i}")
    for i in range(0, 50, 7):
        assert idx.lookup(i) == f"new{i}"


def test_upsert_semantics_without_check():
    idx = PGMIndex(buffer_size=8)
    idx.bulk_load([(10, "a")])
    assert idx.insert(10, "b")  # upstream-faithful blind append
    assert idx.lookup(10) == "b"


def test_insert_cheaper_than_lookup_amortised():
    """The paper: PGM has the best inserts and the worst lookups."""
    idx = PGMIndex(buffer_size=128)
    items = _uniform_items(2000, seed=3)
    idx.bulk_load(items[:1000])
    before = idx.meter.total_time()
    for k, _ in items[1000:]:
        idx.insert(k, 0)
    insert_time = (idx.meter.total_time() - before) / 1000
    before = idx.meter.total_time()
    rng = random.Random(4)
    for _ in range(1000):
        idx.lookup(items[rng.randrange(1000)][0])
    lookup_time = (idx.meter.total_time() - before) / 1000
    assert insert_time < lookup_time * 3


def test_memory_is_packed():
    """Figure 8: PGM is the most space-efficient learned index."""
    from repro.indexes.alex import ALEX

    items = _uniform_items(3000, seed=5)
    pgm = PGMIndex()
    pgm.bulk_load(items)
    alex = ALEX()
    alex.bulk_load(items)
    assert pgm.memory_usage().total < alex.memory_usage().total


def test_epsilon_validation():
    import pytest

    with pytest.raises(ValueError):
        PGMIndex(epsilon=0)
