"""Replay every committed fuzz-corpus stream as a permanent regression.

Each ``tests/corpus/*.jsonl`` file is a recorded operation stream that
must run clean under the full oracle: structural invariants after every
SMO, plus differential comparison of every op against the reference
model.  Streams land here in two ways — shrunk reproductions of fixed
bugs (``repro fuzz`` writes them), and sentinel SMO-churn streams that
pin each index's split/retrain/compact paths.  Either way, a failure
here means a previously-verified behaviour regressed.
"""

import glob
import os

import pytest

from repro.core.opstream import OpStream, fuzzable_specs, replay_file

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.jsonl")))


def test_corpus_exists():
    assert CORPUS_FILES, f"no corpus streams under {CORPUS_DIR}"


def test_corpus_covers_every_fuzzable_index():
    covered = {OpStream.load(p).index_name for p in CORPUS_FILES}
    expected = {spec.name for spec in fuzzable_specs()}
    assert expected <= covered, f"missing streams for {expected - covered}"


@pytest.mark.parametrize("path", CORPUS_FILES, ids=os.path.basename)
def test_replay_corpus_stream(path):
    report = replay_file(path)
    assert report.ok, report.describe()
