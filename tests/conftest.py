"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest


def random_unique_keys(n: int, seed: int = 0, lo: int = 0, hi: int = 2**48) -> List[int]:
    """Deterministic sample of ``n`` unique keys in ``[lo, hi)``."""
    rng = random.Random(seed)
    keys = set()
    while len(keys) < n:
        keys.add(rng.randrange(lo, hi))
    return sorted(keys)


def make_items(keys: List[int]) -> List[Tuple[int, int]]:
    """Pair each key with a payload derived from it (checkable later)."""
    return [(k, k * 2 + 1) for k in keys]


@pytest.fixture
def small_items() -> List[Tuple[int, int]]:
    return make_items(random_unique_keys(500, seed=7))


@pytest.fixture
def medium_items() -> List[Tuple[int, int]]:
    return make_items(random_unique_keys(5000, seed=11))
