"""The capability registry and its derived catalogs.

Every legacy index catalog (``repro.LEARNED_INDEXES``,
``cli._ALL_INDEXES``, ``benchmarks.common.ST_*``, ``adapters.MT_*``)
must be a view over ``repro.core.registry.REGISTRY`` — these tests pin
that, plus the registry's own invariants.
"""

import importlib
import inspect
import os
import pkgutil
import sys

import pytest

import repro
import repro.indexes
from repro.cli import _ALL_INDEXES
from repro.concurrency.adapters import MT_LEARNED, MT_TRADITIONAL, ConcurrencyAdapter
from repro.core.registry import REGISTRY, IndexRegistry, IndexSpec
from repro.indexes.base import OrderedIndex


def _concrete_index_classes():
    """Every concrete OrderedIndex subclass defined under repro.indexes."""
    classes = set()
    for info in pkgutil.iter_modules(repro.indexes.__path__):
        module = importlib.import_module(f"repro.indexes.{info.name}")
        for _, obj in inspect.getmembers(module, inspect.isclass):
            if (
                issubclass(obj, OrderedIndex)
                and obj is not OrderedIndex
                and not inspect.isabstract(obj)
                and not obj.is_adapter  # wrappers compose registered indexes
                and obj.__module__ == module.__name__
            ):
                classes.add(obj)
    return classes


# -- registry invariants ------------------------------------------------------

def test_every_index_class_registered_exactly_once():
    classes = _concrete_index_classes()
    registered = [spec.factory for spec in REGISTRY]
    assert set(registered) == classes
    assert len(registered) == len(classes)  # no class under two names


def test_spec_capabilities_match_class_attributes():
    for spec in REGISTRY:
        cls = spec.factory
        assert spec.name == cls.name
        assert spec.is_learned == cls.is_learned
        assert spec.supports_delete == cls.supports_delete
        assert spec.supports_range == cls.supports_range


def test_register_rejects_duplicate_names():
    reg = IndexRegistry()
    spec = IndexSpec(name="X", factory=dict, is_learned=False)
    reg.register(spec)
    with pytest.raises(ValueError, match="already registered"):
        reg.register(spec)


def test_get_unknown_name_raises_with_catalog():
    with pytest.raises(KeyError, match="unknown index"):
        REGISTRY.get("SPLAY")


def test_create_builds_instances():
    idx = REGISTRY.create("B+tree", fanout=8)
    idx.bulk_load([(1, 2), (3, 4)])
    assert idx.lookup(3) == 4


def test_bind_concurrent_rejects_rebinding():
    reg = IndexRegistry()
    reg.register(IndexSpec(name="X", factory=dict, is_learned=False))
    reg.bind_concurrent("X", "X+", list)
    with pytest.raises(ValueError, match="already has concurrent"):
        reg.bind_concurrent("X", "X++", tuple)


# -- derived catalogs ---------------------------------------------------------

def test_core_families_derive_from_registry():
    assert repro.LEARNED_INDEXES == REGISTRY.factories(tag="core", learned=True)
    assert repro.TRADITIONAL_INDEXES == REGISTRY.factories(tag="core", learned=False)
    assert list(repro.LEARNED_INDEXES) == ["ALEX", "LIPP", "PGM", "XIndex", "FINEdex"]
    assert list(repro.TRADITIONAL_INDEXES) == ["B+tree", "ART", "HOT"]


def test_cli_catalog_derives_from_registry():
    assert _ALL_INDEXES == REGISTRY.factories(tag="cli")
    # The historical composition: families plus FITing-Tree.
    assert _ALL_INDEXES == {
        **repro.LEARNED_INDEXES, "FITing-Tree": repro.FITingTree,
        **repro.TRADITIONAL_INDEXES,
    }


def test_benchmark_catalog_derives_from_registry():
    benchmarks_dir = os.path.join(os.path.dirname(__file__), "..", "benchmarks")
    sys.path.insert(0, os.path.abspath(benchmarks_dir))
    try:
        common = importlib.import_module("common")
    finally:
        sys.path.pop(0)
    assert common.ST_LEARNED == REGISTRY.factories(tag="heatmap", learned=True)
    assert common.ST_TRADITIONAL == REGISTRY.factories(tag="heatmap", learned=False)
    assert common.ST_ALL == {
        **common.ST_LEARNED,
        "PGM": REGISTRY.get("PGM").factory,
        **common.ST_TRADITIONAL,
    }
    assert "PGM" not in common.ST_LEARNED  # heatmap exclusion (paper §4.1)


def test_concurrent_catalogs_derive_from_registry():
    assert MT_LEARNED == REGISTRY.concurrent_factories(learned=True)
    assert MT_TRADITIONAL == REGISTRY.concurrent_factories(learned=False)
    assert set(MT_LEARNED) == {"ALEX+", "LIPP+", "XIndex", "FINEdex"}
    assert set(MT_TRADITIONAL) == {
        "ART-OLC", "B+TreeOLC", "HOT-ROWEX", "Masstree", "Wormhole",
    }
    for factory in {**MT_LEARNED, **MT_TRADITIONAL}.values():
        assert issubclass(factory, ConcurrencyAdapter) or callable(factory)


def test_pgm_adapter_bound_but_not_evaluated():
    spec = REGISTRY.get("PGM")
    assert spec.concurrent_factory is not None
    assert not spec.concurrent_evaluated
    assert "PGM" not in REGISTRY.concurrent_factories()
    assert "PGM" in REGISTRY.concurrent_factories(evaluated=False)


def test_capability_flags_cover_paper_notes():
    # The paper's Section 4.4 delete scoping, as encoded per index.
    assert REGISTRY.get("ALEX").supports_delete
    assert REGISTRY.get("LIPP").supports_delete
    assert not REGISTRY.get("Wormhole").supports_delete
    assert not REGISTRY.get("Masstree").supports_delete
    assert REGISTRY.get("ALEX").supports_duplicates  # via duplicate_mode
    assert not REGISTRY.get("LIPP").supports_duplicates


def test_filtered_views_compose():
    learned = REGISTRY.names(learned=True)
    traditional = REGISTRY.names(learned=False)
    assert set(learned) & set(traditional) == set()
    assert set(learned) | set(traditional) == set(REGISTRY.names())
    assert len(REGISTRY) == len(REGISTRY.names())
