"""LIPP: contract conformance plus collision-chaining behaviour."""

import random

from repro.indexes.lipp import LIPP, _CHILD, _DATA
from tests.index_contract import IndexContract


class TestLIPPContract(IndexContract):
    def make(self) -> LIPP:
        return LIPP()


def _uniform_items(n, seed=0):
    rng = random.Random(seed)
    keys = sorted({rng.randrange(2**40) for _ in range(n)})
    return [(k, k) for k in keys]


def test_collision_creates_at_most_one_node():
    """Message 5: write amplification bounded at one node per collision."""
    idx = LIPP()
    idx.bulk_load(_uniform_items(1000, seed=1))
    rng = random.Random(2)
    for _ in range(500):
        idx.insert(rng.randrange(2**40), 0)
        assert idx.last_op.keys_shifted == 0  # LIPP never shifts keys
        assert idx.last_op.nodes_created <= 1


def test_stats_updated_on_every_path_node():
    """The per-path stats writes that ruin LIPP+ scaling."""
    idx = LIPP(min_rebuild_size=10**9)  # disable rebuilds for this test
    idx.bulk_load(_uniform_items(2000, seed=3))
    root_inserts_before = idx._root.num_inserts
    rng = random.Random(4)
    for _ in range(100):
        idx.insert(rng.randrange(2**40), 0)
    assert idx._root.num_inserts == root_inserts_before + 100


def test_rebuild_bounds_depth():
    idx = LIPP()
    # Adversarial: clustered inserts that collide repeatedly.
    idx.bulk_load([(i * 2**20, i) for i in range(64)])
    for i in range(4000):
        idx.insert(i * 3 + 1, i)
    assert idx.rebuild_count > 0
    assert idx.max_depth() <= 12
    for i in range(0, 4000, 97):
        assert idx.lookup(i * 3 + 1) == i


def test_no_last_mile_search():
    """Lookups compute positions: no search distance, ever."""
    idx = LIPP()
    items = _uniform_items(3000, seed=5)
    idx.bulk_load(items)
    for k, v in items[::100]:
        assert idx.lookup(k) == v
        assert idx.last_op.search_distance == 0


def test_delete_collapses_single_entry_chains():
    idx = LIPP()
    idx.bulk_load([(10, 1), (20, 2)])
    # Force a collision chain.
    base_nodes = idx.node_count()
    rng = random.Random(6)
    inserted = []
    while idx.node_count() == base_nodes:
        k = rng.randrange(2**40)
        if idx.insert(k, 0):
            inserted.append(k)
    # Delete inserted keys; chains should collapse away eventually.
    for k in inserted:
        idx.delete(k)
    assert idx.lookup(10) == 1 and idx.lookup(20) == 2


def test_memory_larger_than_alex():
    """Figure 8: LIPP trades space for speed."""
    from repro.indexes.alex import ALEX

    items = _uniform_items(2000, seed=7)
    more = _uniform_items(4500, seed=8)[2000:4000]
    lipp = LIPP()
    lipp.bulk_load(items)
    alex = ALEX()
    alex.bulk_load(items)
    for k, _ in more:
        lipp.insert(k, 0)
        alex.insert(k, 0)
    assert lipp.memory_usage().total > alex.memory_usage().total


def test_unified_node_holds_data_and_children():
    idx = LIPP()
    idx.bulk_load(_uniform_items(500, seed=9))
    rng = random.Random(10)
    for _ in range(500):
        idx.insert(rng.randrange(2**40), 0)
    root = idx._root
    tags = set(root.tags)
    assert _DATA in tags and _CHILD in tags


def test_scan_interleaves_chains_in_order():
    idx = LIPP()
    idx.bulk_load(_uniform_items(300, seed=11))
    rng = random.Random(12)
    extra = sorted({rng.randrange(2**40) for _ in range(300)})
    for k in extra:
        idx.insert(k, k)
    got = idx.range_scan(0, 10**6)
    keys = [k for k, _ in got]
    assert keys == sorted(keys)
    assert len(keys) == len(idx)
