"""Dataset stand-ins: determinism, hardness plane, registry, zipfian."""

import collections

import pytest

from repro.core.hardness import pla_hardness
from repro.datasets import registry
from repro.datasets.registry import scaled_epsilons
from repro.datasets.synthetic import corner_datasets, generate_hardness_controlled, measure
from repro.datasets.zipfian import ScrambledZipfian, ZipfianGenerator

_N = 8000


def test_all_generators_deterministic():
    for name in registry.names(include_duplicates=True):
        ds = registry.get(name)
        a = ds.generate(2000, seed=3)
        b = ds.generate(2000, seed=3)
        assert a == b, name
        c = ds.generate(2000, seed=4)
        assert a != c, name


def test_generation_memoized_but_copies_isolated():
    registry.generation_cache_clear()
    before = registry.generation_cache_info()
    a = registry.get("genome").generate(1500, seed=9)
    mid = registry.generation_cache_info()
    assert mid.misses == before.misses + 1
    b = registry.get("genome").generate(1500, seed=9)
    after = registry.generation_cache_info()
    assert after.hits == mid.hits + 1       # second call served from cache
    assert a == b and a is not b            # equal keys, caller-owned lists
    b[0] = -1                               # mutating a copy...
    assert registry.get("genome").generate(1500, seed=9)[0] == a[0]  # ...is safe


def test_unregistered_dataset_bypasses_cache():
    ds = registry.get("covid")
    rogue = registry.Dataset(
        name="covid", description="ad-hoc", source="test",
        hardness_class="easy", has_duplicates=False,
        generator=lambda n, seed: list(range(n)),
    )
    assert rogue.generate(10, seed=0) == list(range(10))
    assert ds.generate(10, seed=0) != list(range(10))


def test_all_generators_sorted_and_sized():
    for name in registry.names(include_duplicates=True):
        ds = registry.get(name)
        keys = ds.generate(_N, seed=0)
        assert len(keys) == _N, name
        assert all(a <= b for a, b in zip(keys, keys[1:])), name
        if not ds.has_duplicates:
            assert len(set(keys)) == _N, name


def test_wiki_dup_has_duplicates():
    keys = registry.get("wiki_dup").generate(_N, seed=0)
    assert len(set(keys)) < _N


def test_keys_fit_in_u64():
    for name in registry.names():
        keys = registry.get(name).generate(2000, seed=0)
        assert keys[0] >= 0 and keys[-1] < 2**64, name


def test_hardness_plane_matches_paper():
    """Relative hardness ordering must match Table 2 / Figures C-D."""
    g_eps, l_eps = scaled_epsilons(_N)
    H = {}
    for name in registry.heatmap_names():
        keys = registry.get(name).generate(_N, seed=0)
        H[name] = (pla_hardness(keys, g_eps), pla_hardness(keys, l_eps))
    # osm and planet are the globally hardest datasets.
    easy_global = max(H[n][0] for n in ("covid", "libio", "stack", "wiki"))
    assert H["osm"][0] > easy_global
    assert H["planet"][0] > easy_global
    # fb and genome are the locally hardest; they beat planet locally.
    assert H["fb"][1] > H["planet"][1]
    assert H["genome"][1] > H["planet"][1]
    easy_local = max(H[n][1] for n in ("stack", "wiki"))
    assert H["fb"][1] > 3 * easy_local
    assert H["osm"][1] > 3 * easy_local
    # genome is globally smooth despite local bumps (Figure 1b).
    assert H["genome"][0] <= easy_global + 2


def test_registry_unknown_name():
    with pytest.raises(KeyError):
        registry.get("nope")


def test_registry_rejects_bad_n():
    with pytest.raises(ValueError):
        registry.get("covid").generate(0)


def test_scaled_epsilons_ratio():
    g, l = scaled_epsilons(200_000)
    assert g > l
    assert g >= 64 and l >= 4


def test_synthetic_generator_validates():
    with pytest.raises(ValueError):
        generate_hardness_controlled(100, 5, 2)
    with pytest.raises(ValueError):
        generate_hardness_controlled(100, 0, 2)


def test_synthetic_hardness_knobs_work():
    n = 10000
    easy = generate_hardness_controlled(n, 1, 2, seed=1)
    ghard = generate_hardness_controlled(n, 20, 20, seed=1)
    lhard = generate_hardness_controlled(n, 1, 150, seed=1)
    g_e, l_e = measure(easy)
    g_g, l_g = measure(ghard)
    g_l, l_l = measure(lhard)
    assert g_g > g_e          # global knob raises global hardness
    assert l_l > l_e          # local knob raises local hardness
    assert g_l <= g_g         # local-only stays globally easier


def test_synthetic_sorted_unique():
    keys = generate_hardness_controlled(5000, 4, 40, seed=2)
    assert len(keys) == 5000
    assert all(a < b for a, b in zip(keys, keys[1:]))


def test_corner_datasets_cover_plane():
    corners = corner_datasets(8000, seed=0)
    assert set(corners) == {"easy-easy", "global-hard", "local-hard", "hard-hard"}
    g_easy, l_easy = measure(corners["easy-easy"])
    g_hard, l_hard = measure(corners["hard-hard"])
    assert g_hard > g_easy and l_hard > l_easy


def test_zipfian_skew():
    gen = ZipfianGenerator(1000, theta=0.99, seed=1)
    counts = collections.Counter(gen.next_rank() for _ in range(20000))
    # Rank 0 must be by far the hottest.
    assert counts[0] > 0.05 * 20000
    assert counts[0] > counts.get(500, 0) * 10


def test_zipfian_validation():
    with pytest.raises(ValueError):
        ZipfianGenerator(0)
    with pytest.raises(ValueError):
        ZipfianGenerator(10, theta=1.5)


def test_scrambled_zipfian_spreads_hot_keys():
    keys = list(range(0, 10000, 10))
    gen = ScrambledZipfian(keys, seed=2)
    sample = [gen.next_key() for _ in range(5000)]
    assert all(k in set(keys) for k in set(sample))
    hot = collections.Counter(sample).most_common(3)
    # Hot keys are hashed, not the numerically-smallest keys.
    assert any(k > 1000 for k, _ in hot)


def test_zipfian_deterministic():
    a = ZipfianGenerator(100, seed=5)
    b = ZipfianGenerator(100, seed=5)
    assert [a.next_rank() for _ in range(50)] == [b.next_rank() for _ in range(50)]
