"""End-to-end memory measurement helpers (Section 5)."""


from repro import ALEX, ART, BPlusTree, HOT, LIPP
from repro.core.memory import MemoryReport, measure_after_write_only, space_saving_ratio
from repro.indexes.base import MemoryBreakdown

KEYS = list(range(0, 30000, 6))


def test_measure_protocol_inserts_all_keys():
    report = measure_after_write_only(BPlusTree, KEYS)
    assert report.n_keys == len(KEYS)
    assert report.breakdown.total > 0


def test_bytes_per_key_positive():
    report = measure_after_write_only(ALEX, KEYS)
    assert 8 < report.bytes_per_key < 500


def test_inner_fraction_bounds():
    for factory in (ALEX, ART, BPlusTree):
        report = measure_after_write_only(factory, KEYS)
        assert 0.0 <= report.inner_fraction <= 1.0, factory


def test_space_saving_ratio_matches_definition():
    reports = {
        "L1": MemoryReport("L1", 10, MemoryBreakdown(leaf=100)),
        "L2": MemoryReport("L2", 10, MemoryBreakdown(leaf=400)),
        "T1": MemoryReport("T1", 10, MemoryBreakdown(leaf=250)),
        "T2": MemoryReport("T2", 10, MemoryBreakdown(leaf=320)),
    }
    # largest traditional (320) / smallest learned (100)
    assert space_saving_ratio(reports, ["L1", "L2"], ["T1", "T2"]) == 3.2


def test_memory_breakdown_total():
    b = MemoryBreakdown(inner=10, leaf=20, metadata=5)
    assert b.total == 35


def test_report_zero_keys_safe():
    r = MemoryReport("x", 0, MemoryBreakdown())
    assert r.bytes_per_key == 0.0
    assert r.inner_fraction == 0.0


def test_lipp_memory_grows_with_conflict_chains():
    """Chained nodes must show up in the end-to-end number."""
    import random

    keys = sorted(random.Random(5).sample(range(2**32), 3000))
    idx = LIPP()
    idx.bulk_load([(k, k) for k in keys[:1500]])
    before = idx.memory_usage().total
    for k in keys[1500:]:
        idx.insert(k, k)
    after = idx.memory_usage().total
    assert after > before


def test_hot_memory_excludes_external_records():
    """HOT indexes tuple pointers: far below key+payload storage."""
    idx = HOT()
    idx.bulk_load([(i * 7, i) for i in range(5000)])
    assert idx.memory_usage().total < 5000 * 16
