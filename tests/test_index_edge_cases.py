"""Adversarial and failure-injection scenarios for the index roster.

The contract suite covers common behaviour; these tests throw the
pathological data and operation patterns that have historically broken
learned indexes (and did break early versions of these implementations:
precision livelocks, placement overflow, chain blowups).
"""

import random

import pytest

from repro import (
    ALEX,
    ART,
    BPlusTree,
    FINEdex,
    HOT,
    LIPP,
    Masstree,
    PGMIndex,
    Wormhole,
    XIndex,
)

ALL = [ALEX, LIPP, PGMIndex, XIndex, FINEdex, BPlusTree, ART, HOT, Masstree, Wormhole]


@pytest.mark.parametrize("factory", ALL, ids=lambda f: f.name)
def test_dense_cluster_of_huge_keys(factory):
    """Keys 2 apart near 2^63: float64-precision regression guard
    (this exact pattern livelocked LIPP before model anchoring)."""
    base = 2**62 + 3
    items = [(base + 2 * i, i) for i in range(400)]
    idx = factory()
    idx.bulk_load(items)
    for k, v in items[::17]:
        assert idx.lookup(k) == v
    for i in range(200):
        assert idx.insert(base + 2 * 400 + 2 * i, i)
    assert idx.lookup(base + 2 * 400) == 0


@pytest.mark.parametrize("factory", ALL, ids=lambda f: f.name)
def test_extreme_outlier_keys(factory):
    """fb-style: a tight cluster plus keys at the far end of u64."""
    items = sorted(
        {k: 1 for k in list(range(1000, 1500)) + [2**63 - 1, 2**63 - 2, 2**62]}.items()
    )
    idx = factory()
    idx.bulk_load(items)
    assert idx.lookup(2**63 - 1) == 1
    assert idx.lookup(1250) == 1
    assert idx.insert(2**61, 7)
    assert idx.lookup(2**61) == 7


@pytest.mark.parametrize("factory", ALL, ids=lambda f: f.name)
def test_sawtooth_insert_pattern(factory):
    """Alternating low/high inserts: worst case for append heuristics."""
    idx = factory()
    idx.bulk_load([(500_000, 0)])
    lo, hi = 0, 1_000_000
    for i in range(400):
        assert idx.insert(lo, i)
        assert idx.insert(hi, i)
        lo += 7
        hi -= 7
    assert len(idx) == 801
    assert idx.lookup(0) == 0
    assert idx.lookup(1_000_000) == 0


@pytest.mark.parametrize("factory", ALL, ids=lambda f: f.name)
def test_repeated_duplicate_insert_attempts(factory):
    """Hammering the same key must neither grow the index nor crash."""
    if factory is PGMIndex:
        # Upstream PGM upserts blindly; use the strict variant here.
        idx = PGMIndex(check_duplicates=True)
    else:
        idx = factory()
    idx.bulk_load([(42, 1), (99, 2)])
    for _ in range(200):
        assert not idx.insert(42, 999)
    assert len(idx) == 2
    assert idx.lookup(42) == 1


@pytest.mark.parametrize("factory", [ALEX, LIPP, BPlusTree, ART],
                         ids=lambda f: f.name)
def test_delete_insert_churn_same_keyspace(factory):
    """Churn: delete and re-insert the same keys many times (SMO storm)."""
    keys = list(range(0, 2000, 2))
    idx = factory()
    idx.bulk_load([(k, 0) for k in keys])
    rng = random.Random(3)
    live = set(keys)
    for round_ in range(6):
        doomed = rng.sample(sorted(live), 300)
        for k in doomed:
            assert idx.delete(k)
            live.discard(k)
        for k in doomed:
            assert idx.insert(k, round_)
            live.add(k)
    assert len(idx) == len(live)
    for k in rng.sample(sorted(live), 50):
        assert idx.lookup(k) is not None


@pytest.mark.parametrize("factory", ALL, ids=lambda f: f.name)
def test_bulk_reload_replaces_contents(factory):
    """bulk_load on a used index must fully reset it."""
    idx = factory()
    idx.bulk_load([(i, i) for i in range(100)])
    idx.insert(1_000_001, 1)
    idx.bulk_load([(i * 10 + 5, i) for i in range(50)])
    assert len(idx) == 50
    assert idx.lookup(1_000_001) is None
    assert idx.lookup(5) == 0


@pytest.mark.parametrize("factory", ALL, ids=lambda f: f.name)
def test_interleaved_mixed_ops_never_corrupt_order(factory):
    """Scans must stay sorted through arbitrary op interleavings."""
    idx = factory()
    rng = random.Random(11)
    model = {}
    idx.bulk_load([])
    for i in range(800):
        k = rng.randrange(100_000)
        if rng.random() < 0.7:
            if idx.insert(k, i):
                model[k] = i
        else:
            idx.lookup(k)
        if i % 97 == 0 and idx.supports_range:
            scan = idx.range_scan(0, len(model) + 10)
            keys = [kk for kk, _ in scan]
            assert keys == sorted(keys)
            assert len(keys) == len(model)


def test_alex_survives_all_keys_in_one_slot():
    """All keys identical modulo the model's resolution."""
    idx = ALEX(target_leaf_keys=32, max_data_keys=128)
    idx.bulk_load([])
    base = 2**55
    for i in range(600):
        assert idx.insert(base + i, i)
    assert idx.lookup(base + 599) == 599


def test_lipp_depth_bounded_under_adversarial_chaining():
    idx = LIPP()
    idx.bulk_load([(0, 0), (2**62, 1)])
    # Binary-search-like insert order maximizes chain depth pressure.
    def bisect_insert(lo, hi, depth):
        if depth == 0 or hi - lo < 2:
            return
        mid = (lo + hi) // 2
        idx.insert(mid, depth)
        bisect_insert(lo, mid, depth - 1)
        bisect_insert(mid, hi, depth - 1)

    bisect_insert(0, 2**62, 10)
    assert idx.max_depth() <= idx._depth_limit() + 2


def test_pgm_many_merge_cascades():
    idx = PGMIndex(buffer_size=8)
    idx.bulk_load([])
    for i in range(2000):
        idx.insert(i * 3, i)
    assert idx.merge_count > 100
    assert idx.lookup(3 * 1999) == 1999
    # Runs stay geometric: no more than log2(n/buffer)+2 live runs.
    live = [s for s in idx.run_sizes() if s]
    assert len(live) <= 11


def test_xindex_group_split_cascade():
    idx = XIndex(delta_size=8, target_group_keys=64, max_models_per_group=2)
    rng = random.Random(13)
    keys = sorted(rng.sample(range(2**40), 500))
    idx.bulk_load([(k, k) for k in keys[:100]])
    for k in keys[100:]:
        idx.insert(k, k)
    assert idx.group_count() >= 1
    for k in keys[::29]:
        assert idx.lookup(k) == k
