"""Sweep engine: parallel-vs-serial parity, caching, resumption."""

from __future__ import annotations

import json
import os

import pytest

from repro import execute
from repro.core.heatmap import compute_heatmap, sweep_heatmap
from repro.core.runner import ExecutionObserver
from repro.core.sweep import (
    DatasetSpec,
    SweepCache,
    SweepTask,
    WorkloadSpec,
    cache_key,
    plan_grid,
    resolve_jobs,
    result_fingerprint,
    run_sweep,
)
from repro.indexes.alex import ALEX
from repro.indexes.btree import BPlusTree

DATASETS = [DatasetSpec("covid", 1200, 0), DatasetSpec("stack", 1200, 0)]
WORKLOADS = [WorkloadSpec.mixed(0.0, n_ops=500, seed=1),
             WorkloadSpec.mixed(0.5, n_ops=500, seed=1)]
INDEXES = ["ALEX", "B+tree"]


def _grid():
    return plan_grid(DATASETS, WORKLOADS, INDEXES)


def _stripped(record: dict) -> dict:
    return {k: v for k, v in record.items() if k != "wall_seconds"}


# ---------------------------------------------------------------------------
# Specs and planning
# ---------------------------------------------------------------------------

def test_plan_grid_row_major():
    tasks = _grid()
    assert len(tasks) == 8
    assert tasks[0].dataset.name == "covid" and tasks[0].index == "ALEX"
    assert tasks[1].index == "B+tree"
    assert tasks[2].workload.label == "balanced"
    assert tasks[4].dataset.name == "stack"


def test_workload_spec_from_name_matches_cli_grammar():
    assert WorkloadSpec.from_name("balanced", 500).params_dict["write_frac"] == 0.5
    assert WorkloadSpec.from_name("ycsb-a", 500).params_dict["variant"] == "A"
    assert WorkloadSpec.from_name("delete", 500).kind == "delete"
    spec = WorkloadSpec.from_name("scan:50", 500)
    assert spec.params_dict["scan_size"] == 50
    assert spec.params_dict["n_scans"] == 20  # max(20, 500 // 50)
    with pytest.raises(ValueError):
        WorkloadSpec.from_name("nope", 500)


def test_workload_spec_labels_match_built_names():
    for spec in (WorkloadSpec.mixed(0.2, n_ops=200, seed=3),
                 WorkloadSpec.deletion(0.5, n_ops=200, seed=3),
                 WorkloadSpec.scan(10, 20, seed=3),
                 WorkloadSpec.ycsb("b", n_ops=200, seed=3)):
        keys = DatasetSpec("covid", 600, 0).keys()
        assert spec.build(keys).name == spec.label


def test_specs_are_hashable_and_frozen():
    assert len({DATASETS[0], DatasetSpec("covid", 1200, 0)}) == 1
    assert len({WORKLOADS[0], WorkloadSpec.mixed(0.0, n_ops=500, seed=1)}) == 1
    with pytest.raises(AttributeError):
        DATASETS[0].n = 99


def test_single_mode_canonicalizes_simulator_params():
    # threads/sockets are multicore-only; in single mode they must not
    # split the cache address of an identical run (the CLI passes its
    # --threads default through plan_grid regardless of mode).
    a = SweepTask(DATASETS[0], WORKLOADS[0], "ALEX")
    b = SweepTask(DATASETS[0], WORKLOADS[0], "ALEX", threads=24, sockets=2)
    assert a == b and cache_key(a) == cache_key(b)
    mt = SweepTask(DATASETS[0], WORKLOADS[0], "ALEX+", mode="multicore",
                   threads=24)
    assert mt.threads == 24
    assert cache_key(mt) != cache_key(
        SweepTask(DATASETS[0], WORKLOADS[0], "ALEX+", mode="multicore",
                  threads=8))


def test_resolve_jobs(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(None) == 1
    assert resolve_jobs(4) == 4
    assert resolve_jobs(0) == (os.cpu_count() or 1)
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_jobs(None) == 3
    assert resolve_jobs(2) == 2  # explicit arg wins
    monkeypatch.setenv("REPRO_JOBS", "zebra")
    with pytest.raises(ValueError):
        resolve_jobs(None)


# ---------------------------------------------------------------------------
# Parity: the determinism contract
# ---------------------------------------------------------------------------

def test_parallel_matches_serial_bit_for_bit():
    tasks = _grid()
    serial = run_sweep(tasks, jobs=1)
    parallel = run_sweep(tasks, jobs=2)
    assert len(serial.cells) == len(parallel.cells) == len(tasks)
    for s, p in zip(serial.cells, parallel.cells):
        assert s.task == p.task
        assert _stripped(s.record) == _stripped(p.record)
        assert s.fingerprint == p.fingerprint
    # Fell back to serial only if the platform refused to fork.
    assert parallel.used_processes or parallel.pool_error


def test_sweep_cell_matches_direct_execute():
    task = SweepTask(DATASETS[0], WORKLOADS[1], "ALEX")
    cell = run_sweep([task], jobs=1).cells[0]
    direct = execute(ALEX(), WORKLOADS[1].build(DATASETS[0].keys()))
    got = cell.run_result()
    assert got.index_name == direct.index_name
    assert got.virtual_ns == direct.virtual_ns
    assert got.phase_ns == direct.phase_ns
    assert got.lookup_latency == direct.lookup_latency
    assert got.write_latency == direct.write_latency
    assert got.insert_stats == direct.insert_stats
    assert got.memory == direct.memory
    assert got.scanned_entries == direct.scanned_entries


def test_multicore_mode_parity():
    tasks = plan_grid(DATASETS[:1], WORKLOADS[:1], ["ALEX+", "ART-OLC"],
                      mode="multicore", threads=8)
    serial = run_sweep(tasks, jobs=1)
    parallel = run_sweep(tasks, jobs=2)
    assert [c.fingerprint for c in serial.cells] == \
           [c.fingerprint for c in parallel.cells]
    assert all(c.throughput_mops > 0 for c in serial.cells)
    with pytest.raises(ValueError):
        serial.cells[0].run_result()  # SimResult records, not RunResults


# ---------------------------------------------------------------------------
# Content-addressed cache
# ---------------------------------------------------------------------------

def test_cache_hit_miss_and_record_parity(tmp_path):
    cache = SweepCache(str(tmp_path))
    tasks = _grid()
    first = run_sweep(tasks, jobs=1, cache=cache)
    assert first.cache_hits == 0 and first.executed == len(tasks)
    assert len(cache) == len(tasks)
    second = run_sweep(tasks, jobs=1, cache=cache)
    assert second.cache_hits == len(tasks) and second.executed == 0
    assert second.cache_hit_rate == 1.0
    for a, b in zip(first.cells, second.cells):
        assert a.record == b.record  # wall_seconds included: same bytes

    # A different grid parameter is a different address: all misses.
    moved = plan_grid([DatasetSpec("covid", 1200, 7)], WORKLOADS, INDEXES)
    third = run_sweep(moved, jobs=1, cache=cache)
    assert third.cache_hits == 0


def test_cache_invalidated_by_cost_model_version(tmp_path, monkeypatch):
    cache = SweepCache(str(tmp_path))
    task = SweepTask(DATASETS[0], WORKLOADS[0], "B+tree")
    run_sweep([task], jobs=1, cache=cache)
    key_before = cache_key(task)
    monkeypatch.setattr("repro.core.cost.COST_MODEL_VERSION", 999)
    assert cache_key(task) != key_before
    report = run_sweep([task], jobs=1, cache=cache)
    assert report.cache_hits == 0 and report.executed == 1


def test_cache_invalidated_by_schema_version(tmp_path, monkeypatch):
    cache = SweepCache(str(tmp_path))
    task = SweepTask(DATASETS[0], WORKLOADS[0], "B+tree")
    run_sweep([task], jobs=1, cache=cache)
    monkeypatch.setattr("repro.core.results.SCHEMA_VERSION", 999)
    report = run_sweep([task], jobs=1, cache=cache)
    assert report.cache_hits == 0 and report.executed == 1


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache = SweepCache(str(tmp_path))
    task = SweepTask(DATASETS[0], WORKLOADS[0], "B+tree")
    key = cache_key(task)
    with open(os.path.join(str(tmp_path), f"{key}.json"), "w") as f:
        f.write("{torn write")
    report = run_sweep([task], jobs=1, cache=cache)
    assert report.cache_hits == 0 and report.executed == 1
    assert cache.get(key) is not None  # repaired by the re-execution


def test_resumption_after_partial_sweep(tmp_path):
    """A killed sweep resumes: finished cells hit, the rest execute."""
    cache = SweepCache(str(tmp_path))
    tasks = _grid()
    run_sweep(tasks[:3], jobs=1, cache=cache)  # the "partial" first run
    seen = []
    report = run_sweep(tasks, jobs=1, cache=cache,
                       on_result=lambda c: seen.append(c.cached))
    assert report.cache_hits == 3
    assert report.executed == len(tasks) - 3
    assert seen.count(True) == 3
    # Resumed cells are indistinguishable from a from-scratch sweep.
    fresh = run_sweep(tasks, jobs=1)
    assert [_stripped(c.record) for c in report.cells] == \
           [_stripped(c.record) for c in fresh.cells]


# ---------------------------------------------------------------------------
# Fingerprints, observers, aggregation
# ---------------------------------------------------------------------------

def test_fingerprint_ignores_wall_clock_only():
    record = run_sweep([_grid()[0]], jobs=1).cells[0].record
    wobbled = dict(record, wall_seconds=record["wall_seconds"] + 1.0)
    assert result_fingerprint(wobbled) == result_fingerprint(record)
    changed = dict(record, virtual_ns=record["virtual_ns"] + 1.0)
    assert result_fingerprint(changed) != result_fingerprint(record)


def test_observer_factory_attaches_per_task():
    class OpCounter(ExecutionObserver):
        def __init__(self):
            self.n = 0

        def on_op(self, event, latency):
            self.n += 1

    counters = {}

    def factory(task):
        counters[task] = OpCounter()
        return [counters[task]]

    tasks = _grid()[:3]
    report = run_sweep(tasks, jobs=2, observer_factory=factory)
    assert set(counters) == set(tasks)
    for task, counter in counters.items():
        assert counter.n == 500  # every op observed, in this process
    assert not report.used_processes  # observers force in-process runs


def test_sweep_heatmap_matches_compute_heatmap():
    learned = {"ALEX": ALEX}
    traditional = {"B+tree": BPlusTree}
    data = {d.name: d.keys() for d in DATASETS}

    def build(keys, wl_name):
        spec = {"read-only": WORKLOADS[0], "balanced": WORKLOADS[1]}[wl_name]
        return spec.build(keys)

    legacy = compute_heatmap(data, build, ["read-only", "balanced"],
                             learned, traditional)
    swept, report = sweep_heatmap(DATASETS, WORKLOADS, ["ALEX"], ["B+tree"],
                                  jobs=1)
    assert set(swept.cells) == set(legacy.cells)
    for key, cell in swept.cells.items():
        other = legacy.cells[key]
        assert cell.best_learned == other.best_learned
        assert cell.best_traditional == other.best_traditional
        assert cell.learned_mops == other.learned_mops
        assert cell.traditional_mops == other.traditional_mops
    assert len(report.cells) == 8


def test_report_to_dict_and_records():
    report = run_sweep(_grid()[:2], jobs=1)
    d = report.to_dict()
    assert d["n_cells"] == 2 and len(d["cells"]) == 2
    assert all(c["fingerprint"] for c in d["cells"])
    assert json.dumps(d)  # JSON-serializable
    assert [r["index"] for r in report.records()] == ["ALEX", "B+tree"]
