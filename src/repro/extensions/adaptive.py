"""Hardness-conscious index selection (the paper's "Tomorrow" section).

    "the hardness of a dataset can be added as a new feature/dimension
     in index selection tools [...] When those components are ready,
     ALEX+ would also be ready."

:class:`AdaptiveIndex` is that component: at bulk-load time it measures
the data's (global, local) PLA hardness, combines it with a declared
workload profile, and instantiates the backend the paper's findings
recommend.  It then behaves as a normal ordered index, delegating every
operation — so applications can adopt "the right index" without
committing to one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.hardness import pla_hardness
from repro.datasets.registry import scaled_epsilons
from repro.indexes.alex import ALEX
from repro.indexes.art import ART
from repro.indexes.base import Key, MemoryBreakdown, OrderedIndex, Value
from repro.indexes.lipp import LIPP
from repro.indexes.pgm import PGMIndex


@dataclass(frozen=True)
class WorkloadProfile:
    """What the application expects to do with the index."""

    write_fraction: float = 0.2
    needs_range_scans: bool = False
    needs_deletes: bool = False
    #: Hard cap on index bytes per key (None = unconstrained).
    memory_budget_bytes_per_key: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")


@dataclass(frozen=True)
class Recommendation:
    index_name: str
    reasons: Tuple[str, ...]
    global_hardness: int
    local_hardness: int


def recommend(
    keys: Sequence[int], profile: WorkloadProfile
) -> Recommendation:
    """The paper's decision rules (Messages 1-12) as a function."""
    n = max(len(keys), 2)
    g_eps, l_eps = scaled_epsilons(n)
    g = pla_hardness(keys, g_eps)
    l = pla_hardness(keys, l_eps)
    g_hard = g > 8
    l_hard = l > n / 60
    reasons: List[str] = []

    tight_memory = (
        profile.memory_budget_bytes_per_key is not None
        and profile.memory_budget_bytes_per_key < 40
    )
    if tight_memory and profile.write_fraction >= 0.8 and not profile.needs_range_scans:
        name = "PGM"
        reasons.append("write-dominated under a tight memory budget: "
                       "LSM-style packed runs (paper's 'Today' advice)")
    elif (g_hard or l_hard) and profile.write_fraction >= 0.5:
        name = "ART"
        reasons.append("hard data with >=50% writes: learned indexes lose "
                       "their edge (Message 3); ART is the robust winner")
    elif profile.needs_range_scans:
        name = "ALEX"
        reasons.append("range scans rule out LIPP's unified nodes "
                       "(Message 12); ALEX scans gapped leaves well")
    elif profile.write_fraction <= 0.2 and not tight_memory:
        name = "LIPP"
        reasons.append("read-mostly: LIPP's exact-position lookups lead "
                       "(Messages 1/4) — at a documented memory premium")
    else:
        name = "ALEX"
        reasons.append("balanced default: ALEX is the paper's "
                       "'almost ready' pick (performance, space, robustness)")
    if tight_memory and name == "LIPP":
        name = "ALEX"
        reasons.append("memory budget forbids LIPP (4-5x ALEX, Message 9)")
    return Recommendation(name, tuple(reasons), g, l)


_FACTORIES = {
    "ALEX": ALEX,
    "LIPP": LIPP,
    "ART": ART,
    "PGM": lambda: PGMIndex(check_duplicates=True),
}


class AdaptiveIndex(OrderedIndex):
    """An ordered index that picks its backend from data + workload."""

    name = "Adaptive"
    is_learned = True  # may be; reflects the common case
    supports_delete = True
    supports_range = True

    def __init__(self, profile: Optional[WorkloadProfile] = None, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.profile = profile if profile is not None else WorkloadProfile()
        self._backend: OrderedIndex = ALEX(meter=self.meter)
        self.recommendation: Optional[Recommendation] = None

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        keys = [k for k, _ in items]
        self.recommendation = recommend(keys, self.profile)
        factory = _FACTORIES[self.recommendation.index_name]
        self._backend = factory()
        self._backend.meter = self.meter
        self._backend.bulk_load(items)

    # -- delegation ----------------------------------------------------------

    def lookup(self, key: Key) -> Optional[Value]:
        value = self._backend.lookup(key)
        self.last_op = self._backend.last_op
        return value

    def insert(self, key: Key, value: Value) -> bool:
        ok = self._backend.insert(key, value)
        self.last_op = self._backend.last_op
        return ok

    def update(self, key: Key, value: Value) -> bool:
        return self._backend.update(key, value)

    def delete(self, key: Key) -> bool:
        if not self._backend.supports_delete:
            raise NotImplementedError(
                f"backend {self._backend.name} does not support deletes; "
                "declare needs_deletes in the WorkloadProfile"
            )
        ok = self._backend.delete(key)
        self.last_op = self._backend.last_op
        return ok

    def range_scan(self, start: Key, count: int) -> List[Tuple[Key, Value]]:
        return self._backend.range_scan(start, count)

    def memory_usage(self) -> MemoryBreakdown:
        return self._backend.memory_usage()

    def __len__(self) -> int:
        return len(self._backend)

    @property
    def backend_name(self) -> str:
        return self._backend.name
