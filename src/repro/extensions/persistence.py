"""Index snapshots on disk (the paper's persistence direction, cf. APEX).

APEX [33] rebuilds ALEX for persistent memory; short of PM hardware,
the practical need it serves is surviving restarts.  This extension
provides crash-consistent *snapshots* for any index in the suite:

* :func:`save_snapshot` — dump the index's sorted (key, value) pairs in
  a compact binary format (checksummed, atomically replaced),
* :func:`load_snapshot` — bulk-load a fresh index from the snapshot
  (bulk loading re-derives optimal models, so the rebuilt index is at
  least as good as the one saved — the LSM "compaction on restart"
  effect for free).

Values must be 64-bit unsigned integers (the study's 8-byte payloads);
arbitrary payloads would need an external blob store anyway.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Callable, List, Tuple

from repro.indexes.base import OrderedIndex

_MAGIC = b"GRESNAP1"
_HEADER = struct.Struct("<8sQI")  # magic, n_items, crc32 of body
_PAIR = struct.Struct("<QQ")


class SnapshotError(RuntimeError):
    """Raised when a snapshot file is missing, truncated or corrupt."""


def save_snapshot(index: OrderedIndex, path: str) -> int:
    """Write the index's contents to ``path``; returns bytes written.

    The write goes to a temp file and is atomically renamed, so a crash
    mid-save never destroys the previous snapshot.
    """
    if not index.supports_range:
        raise SnapshotError(f"{index.name} cannot enumerate its contents")
    items = index.range_scan(0, len(index))
    body = bytearray()
    for k, v in items:
        if not isinstance(v, int) or not 0 <= v < 2**64:
            raise SnapshotError(
                f"snapshot payloads must be u64 integers, got {type(v).__name__}"
            )
        body += _PAIR.pack(k, v)
    header = _HEADER.pack(_MAGIC, len(items), zlib.crc32(bytes(body)))
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as f:
        f.write(header)
        f.write(body)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    return len(header) + len(body)


def load_snapshot(factory: Callable[[], OrderedIndex], path: str) -> OrderedIndex:
    """Rebuild an index from a snapshot file via bulk loading."""
    try:
        with open(path, "rb") as f:
            raw = f.read()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path!r}: {exc}") from exc
    if len(raw) < _HEADER.size:
        raise SnapshotError("snapshot truncated: missing header")
    magic, n_items, crc = _HEADER.unpack_from(raw)
    if magic != _MAGIC:
        raise SnapshotError("not a GRE snapshot (bad magic)")
    body = raw[_HEADER.size:]
    if len(body) != n_items * _PAIR.size:
        raise SnapshotError(
            f"snapshot truncated: expected {n_items} pairs, "
            f"got {len(body) // _PAIR.size}"
        )
    if zlib.crc32(body) != crc:
        raise SnapshotError("snapshot corrupt: checksum mismatch")
    items: List[Tuple[int, int]] = [
        _PAIR.unpack_from(body, i * _PAIR.size) for i in range(n_items)
    ]
    index = factory()
    index.bulk_load(items)
    return index
