"""String keys over numeric learned indexes (the paper's future work).

The paper scopes itself to one-dimensional *numeric* keys and points to
SIndex [55] / the last-mile string work [50] for strings.  This
extension closes the gap pragmatically, the way production systems
front numeric indexes with strings:

* a string maps to its first 8 bytes as a big-endian integer — an
  **order-preserving** projection (lexicographic order of the prefixes
  equals numeric order of the codes),
* strings sharing an 8-byte prefix collide; collisions live in a small
  sorted bucket stored as the prefix key's payload,
* lookups therefore cost one numeric index probe plus (rarely) a bucket
  scan; range scans walk the numeric index in order and expand buckets.

This preserves every property the underlying index brings (hardness
sensitivity, SMO behaviour, memory shape) while supporting arbitrary
``str``/``bytes`` keys.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro.indexes.base import OrderedIndex

StrKey = Union[str, bytes]

_PREFIX_BYTES = 8


def encode_prefix(key: StrKey) -> int:
    """Order-preserving 64-bit code of a string's first 8 bytes."""
    raw = key.encode("utf-8") if isinstance(key, str) else bytes(key)
    return int.from_bytes(raw[:_PREFIX_BYTES].ljust(_PREFIX_BYTES, b"\0"), "big")


def _norm(key: StrKey) -> bytes:
    return key.encode("utf-8") if isinstance(key, str) else bytes(key)


class _Bucket:
    """Sorted (full_key, value) pairs sharing one 8-byte prefix."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: List[Tuple[bytes, Any]] = []

    def get(self, key: bytes) -> Optional[Any]:
        i = bisect.bisect_left(self.entries, (key,))
        if i < len(self.entries) and self.entries[i][0] == key:
            return self.entries[i][1]
        return None

    def put(self, key: bytes, value: Any) -> bool:
        """Insert; False if the key already existed (unchanged)."""
        i = bisect.bisect_left(self.entries, (key,))
        if i < len(self.entries) and self.entries[i][0] == key:
            return False
        self.entries.insert(i, (key, value))
        return True

    def replace(self, key: bytes, value: Any) -> bool:
        i = bisect.bisect_left(self.entries, (key,))
        if i < len(self.entries) and self.entries[i][0] == key:
            self.entries[i] = (key, value)
            return True
        return False

    def remove(self, key: bytes) -> bool:
        i = bisect.bisect_left(self.entries, (key,))
        if i < len(self.entries) and self.entries[i][0] == key:
            del self.entries[i]
            return True
        return False


class StringKeyIndex:
    """Ordered map from strings/bytes to values, backed by any
    :class:`~repro.indexes.base.OrderedIndex`.

    >>> from repro import ALEX
    >>> idx = StringKeyIndex(ALEX)
    >>> idx.bulk_load([(b"apple", 1), (b"banana", 2)])
    >>> idx.lookup("apple")
    1
    """

    def __init__(self, base_factory: Callable[[], OrderedIndex]) -> None:
        self._index = base_factory()
        self._size = 0

    @property
    def base_index(self) -> OrderedIndex:
        """The numeric index underneath (for metering/memory access)."""
        return self._index

    # -- build --------------------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[StrKey, Any]]) -> None:
        """Build from items sorted by (byte-wise) key."""
        normed = [(_norm(k), v) for k, v in items]
        for a, b in zip(normed, normed[1:]):
            if a[0] >= b[0]:
                raise ValueError("bulk_load requires strictly ascending unique keys")
        numeric: List[Tuple[int, _Bucket]] = []
        for k, v in normed:
            code = encode_prefix(k)
            if numeric and numeric[-1][0] == code:
                numeric[-1][1].put(k, v)
            else:
                bucket = _Bucket()
                bucket.put(k, v)
                numeric.append((code, bucket))
        self._index.bulk_load(numeric)
        self._size = len(items)

    # -- point operations ---------------------------------------------------------

    def lookup(self, key: StrKey) -> Optional[Any]:
        k = _norm(key)
        bucket = self._index.lookup(encode_prefix(k))
        return bucket.get(k) if bucket is not None else None

    def insert(self, key: StrKey, value: Any) -> bool:
        k = _norm(key)
        code = encode_prefix(k)
        bucket = self._index.lookup(code)
        if bucket is None:
            bucket = _Bucket()
            bucket.put(k, value)
            self._index.insert(code, bucket)
            self._size += 1
            return True
        if bucket.put(k, value):
            self._size += 1
            return True
        return False

    def update(self, key: StrKey, value: Any) -> bool:
        k = _norm(key)
        bucket = self._index.lookup(encode_prefix(k))
        return bucket.replace(k, value) if bucket is not None else False

    def delete(self, key: StrKey) -> bool:
        if not self._index.supports_delete:
            raise NotImplementedError(
                f"{self._index.name} does not support deletes"
            )
        k = _norm(key)
        code = encode_prefix(k)
        bucket = self._index.lookup(code)
        if bucket is None or not bucket.remove(k):
            return False
        self._size -= 1
        if not bucket.entries:
            self._index.delete(code)
        return True

    # -- scans -----------------------------------------------------------------

    def range_scan(self, start: StrKey, count: int) -> List[Tuple[bytes, Any]]:
        """Up to ``count`` pairs with key >= ``start``, byte order."""
        s = _norm(start)
        out: List[Tuple[bytes, Any]] = []
        probe = encode_prefix(s)
        # Over-fetch numeric entries: each may expand to several strings.
        fetch = max(count, 8)
        while len(out) < count:
            rows = self._index.range_scan(probe, fetch)
            if not rows:
                break
            for code, bucket in rows:
                for k, v in bucket.entries:
                    if k >= s and len(out) < count:
                        out.append((k, v))
            last_code = rows[-1][0]
            if len(rows) < fetch:
                break  # exhausted the index
            probe = last_code + 1
        return out[:count]

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: StrKey) -> bool:
        return self.lookup(key) is not None

    # -- persistence --------------------------------------------------------

    def save(self, path: str) -> int:
        """Crash-consistent snapshot (length-prefixed string records)."""
        import os
        import struct
        import zlib

        body = bytearray()
        for k, v in self.range_scan(b"", len(self)):
            if not isinstance(v, int) or not 0 <= v < 2**64:
                raise ValueError("string-index snapshots need u64 values")
            body += struct.pack("<I", len(k)) + k + struct.pack("<Q", v)
        header = struct.pack("<8sQI", b"GRESTR1\0", self._size,
                             zlib.crc32(bytes(body)))
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as f:
            f.write(header)
            f.write(body)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
        return len(header) + len(body)

    @classmethod
    def load(cls, base_factory: Callable[[], OrderedIndex], path: str) -> "StringKeyIndex":
        """Rebuild a string index from :meth:`save`'s snapshot."""
        import struct
        import zlib

        with open(path, "rb") as f:
            raw = f.read()
        magic, n, crc = struct.unpack_from("<8sQI", raw)
        if magic != b"GRESTR1\0":
            raise ValueError(f"{path!r} is not a string-index snapshot")
        body = raw[struct.calcsize("<8sQI"):]
        if zlib.crc32(body) != crc:
            raise ValueError("string-index snapshot corrupt: bad checksum")
        items: List[Tuple[bytes, Any]] = []
        off = 0
        for _ in range(n):
            (klen,) = struct.unpack_from("<I", body, off)
            off += 4
            k = bytes(body[off : off + klen])
            off += klen
            (v,) = struct.unpack_from("<Q", body, off)
            off += 8
            items.append((k, v))
        index = cls(base_factory)
        index.bulk_load(items)
        return index
