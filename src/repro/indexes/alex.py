"""ALEX — an updatable adaptive learned index (Ding et al., SIGMOD 2020).

Structure ("ML for subspace lookup" + "sparse nodes" in the paper's
taxonomy):

* **Inner nodes** hold a linear model and a power-of-two pointer array.
  A traversal *computes* the child slot from the model — no search.
  Multiple adjacent slots may point to the same child.
* **Data nodes** are gapped arrays at a target density (0.6/0.7/0.8
  min/avg/max, Table 1).  A lookup predicts a slot with the node's model
  and runs an exponential "last-mile" search.  An insert places the key
  in a gap or shifts keys toward the nearest gap — the *key shifting*
  whose write amplification Figure 3/Table 3 dissect.
* **SMOs** are performance-driven: each data node keeps runtime
  statistics (shifts and search distance per insert); when density
  exceeds the bound, a cost model picks *expand & retrain* (model still
  accurate) or *split sideways* (model degraded), mirroring ALEX's
  empirical cost model.

Deletes erase in place (possibly contracting the node) and never
degrade the model — the paper's "no model pollution" result
(Message 8).  Duplicate keys are supported via inlining, with an
optional linked-list mode used by the Appendix-B experiment.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.cost import (
    ALLOC_NODE,
    CACHE_PROBE,
    charge_local_search,
    KEY_COMPARE,
    KEY_SHIFT,
    MODEL_EVAL,
    NODE_HOP,
    PHASE_COLLISION,
    PHASE_SEARCH,
    PHASE_SMO,
    PHASE_STATS,
    PHASE_TRAVERSE,
    SCAN_ENTRY,
    SLOT_INIT,
    STATS_UPDATE,
    TRAIN_KEY,
)
from repro.core.validate import Violation, sorted_violations
from repro.indexes import batching
from repro.indexes.base import (
    KEY_BYTES,
    PAYLOAD_BYTES,
    POINTER_BYTES,
    Key,
    MemoryBreakdown,
    OpRecord,
    OrderedIndex,
    Value,
)
from repro.indexes.linear_model import LinearModel

#: Sentinel for gaps at the tail of a data node (larger than any u64 key).
_GAP_HIGH = 1 << 70

_DATA_HEADER_BYTES = 48  # model, stats, lock word, counters
_INNER_HEADER_BYTES = 32


class _DataNode:
    """Gapped array leaf.

    ``keys[i]`` is the real key when ``present[i]``; a gap slot holds a
    copy of its nearest occupied *right* neighbour (``_GAP_HIGH`` when
    none), so the whole array stays sorted and exponential search works
    without consulting the bitmap.
    """

    __slots__ = (
        "node_id", "keys", "values", "present", "num_keys",
        "model", "prev", "next",
        "inserts_since_build", "shifts_since_build", "search_since_build",
        "np_cache",
    )

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.keys: List[Key] = []
        self.values: List[Value] = []
        self.present: List[bool] = []
        #: Batch-lookup arrays (see ``_lookup_batch``); ``None`` = stale,
        #: ``False`` = keys don't fit int64.  Reset on any layout change.
        self.np_cache: Any = None
        self.num_keys = 0
        self.model = LinearModel()
        self.prev: Optional["_DataNode"] = None
        self.next: Optional["_DataNode"] = None
        self.inserts_since_build = 0
        self.shifts_since_build = 0
        self.search_since_build = 0

    @property
    def capacity(self) -> int:
        return len(self.keys)

    def density(self) -> float:
        return self.num_keys / self.capacity if self.capacity else 1.0

    def occupied_items(self) -> List[Tuple[Key, Value]]:
        return [
            (self.keys[i], self.values[i])
            for i in range(self.capacity)
            if self.present[i]
        ]


class _InnerNode:
    __slots__ = ("node_id", "model", "children")

    def __init__(self, node_id: int, model: LinearModel, children: List[Any]) -> None:
        self.node_id = node_id
        self.model = model
        self.children = children  # power-of-two sized

    def child_slot(self, key: Key) -> int:
        return self.model.predict_clamped(key, len(self.children))


class ALEX(OrderedIndex):
    """ALEX with the paper's Table-1 configuration (scaled).

    Parameters
    ----------
    max_data_keys:
        Maximum keys per data node — the stand-in for the paper's 16 MB
        node-size cap; ALEX+ uses a smaller cap (512 KB).
    density_bounds:
        ``(min, avg, max)`` data node densities.
    duplicate_mode:
        ``None`` (unique keys), ``"inline"`` or ``"linked_list"``
        (Appendix B).
    """

    name = "ALEX"
    is_learned = True
    supports_delete = True
    supports_range = True

    def __init__(
        self,
        max_data_keys: int = 16384,
        density_bounds: Tuple[float, float, float] = (0.6, 0.7, 0.8),
        target_leaf_keys: int = 512,
        max_fanout: int = 1 << 14,
        duplicate_mode: Optional[str] = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        if duplicate_mode not in (None, "inline", "linked_list"):
            raise ValueError(f"unknown duplicate_mode: {duplicate_mode!r}")
        self.min_density, self.avg_density, self.max_density = density_bounds
        # Node-size limits are *bytes* in ALEX (16MB / 512KB caps), so a
        # lower fill factor means fewer keys per node: ALEX-M (fill 0.2)
        # gets ~3.5x more data nodes and therefore finer-grained leaf
        # models — the accuracy gain behind Figure 9.
        density_scale = self.avg_density / 0.7
        self.max_data_keys = max(64, int(max_data_keys * density_scale))
        self.target_leaf_keys = max(32, int(target_leaf_keys * density_scale))
        self.max_fanout = max_fanout
        self.duplicate_mode = duplicate_mode
        self._root: Any = self._new_data_node([])
        self.smo_count = 0
        self.expand_count = 0
        self.split_count = 0

    @property
    def supports_duplicates(self) -> bool:  # type: ignore[override]
        return self.duplicate_mode is not None

    # -- node construction ---------------------------------------------------

    def _new_data_node(self, items: Sequence[Tuple[Key, Value]]) -> _DataNode:
        """Build a data node at average density with model-based layout."""
        node = _DataNode(self._next_node_id())
        n = len(items)
        cap = max(8, int(math.ceil(n / self.avg_density)))
        node.keys = [_GAP_HIGH] * cap
        node.values = [None] * cap
        node.present = [False] * cap
        node.num_keys = n
        self.meter.charge(ALLOC_NODE)
        self.meter.charge(SLOT_INIT, cap)
        if n == 0:
            return node
        keys = [k for k, _ in items]
        node.model = LinearModel.train(keys).scaled(cap / max(n, 1))
        self.meter.charge(TRAIN_KEY, n)
        self._model_place(node, items)
        self._fill_gaps(node)
        return node

    @staticmethod
    def _model_place(node: _DataNode, items: Sequence[Tuple[Key, Value]]) -> None:
        """Model-based placement: each key at ``max(prediction, prev+1)``,
        with the tail compacted left when predictions overflow capacity.

        Keys whose predictions collapse (e.g. a dense cluster under a
        nearly-flat local slope) pack into contiguous runs — exactly the
        runs whose shifting makes hard datasets hard for ALEX."""
        cap = node.capacity
        positions: List[int] = []
        pos = -1
        predict = node.model.predictor(cap)
        for k, _ in items:
            pos = max(predict(k), pos + 1)
            positions.append(pos)
        limit = cap - 1
        for i in range(len(items) - 1, -1, -1):
            if positions[i] > limit:
                positions[i] = limit
            limit = positions[i] - 1
        for (k, v), p in zip(items, positions):
            node.keys[p] = k
            node.values[p] = v
            node.present[p] = True

    @staticmethod
    def _fill_gaps(node: _DataNode) -> None:
        """Rewrite gap slots with their nearest occupied right key."""
        nxt = _GAP_HIGH
        for i in range(node.capacity - 1, -1, -1):
            if node.present[i]:
                nxt = node.keys[i]
            else:
                node.keys[i] = nxt

    # -- bulk load --------------------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        if self.duplicate_mode is None:
            self.check_sorted_unique(items)
        else:
            self.check_sorted(items)
        build_items = list(items)
        if self.duplicate_mode == "linked_list" and build_items:
            # The storage scheme applies at bulk load too: one slot per
            # distinct key, duplicates chained off it.
            grouped: List[Tuple[Key, Value]] = []
            for k, v in build_items:
                if grouped and grouped[-1][0] == k:
                    prev = grouped[-1][1]
                    if isinstance(prev, _DupChain):
                        prev.values.append(v)
                    else:
                        grouped[-1] = (k, _DupChain([prev, v]))
                        self.meter.charge(ALLOC_NODE)
                else:
                    grouped.append((k, v))
            build_items = grouped
        self._root = self._bulk_build(build_items)
        self._size = len(items)
        self._link_leaves()

    def _bulk_build(self, items: List[Tuple[Key, Value]]) -> Any:
        n = len(items)
        if n <= self.target_leaf_keys:
            return self._new_data_node(items)
        fanout = 1 << max(1, math.ceil(math.log2(n / self.target_leaf_keys)))
        fanout = min(fanout, self.max_fanout)
        lo, hi = items[0][0], items[-1][0]
        model = LinearModel.endpoints(lo, hi + 1, fanout + 1)
        self.meter.charge(TRAIN_KEY, 2)
        # Partition items by predicted slot.
        groups: List[List[Tuple[Key, Value]]] = [[] for _ in range(fanout)]
        for it in items:
            s = min(model.predict_clamped(it[0], fanout + 1), fanout - 1)
            groups[s].append(it)
        if max(len(g) for g in groups) == n:
            # Model failed to partition (extreme skew): split by median.
            mid = n // 2
            boundary = items[mid][0]
            slope = 1.0 / max(boundary - items[0][0], 1)
            model = LinearModel(slope, 0.0, items[0][0])
            split_at = self._routed_split_at(model, items, 2, 1)
            if split_at == 0 or split_at == n:
                # Routing cannot separate the keys at all: one big leaf.
                return self._new_data_node(items)
            groups = [items[:split_at], items[split_at:]]
            fanout = 2
        children: List[Any] = [None] * fanout
        prev_child: Any = None
        for s in range(fanout):
            if groups[s]:
                prev_child = self._bulk_build(groups[s])
            elif prev_child is None:
                prev_child = self._new_data_node([])
            children[s] = prev_child
        # Leading empties fixed up to the first real child.
        first = next(c for c in children if c is not None)
        for s in range(fanout):
            if children[s] is None:
                children[s] = first
        inner = _InnerNode(self._next_node_id(), model, children)
        self.meter.charge(ALLOC_NODE)
        return inner

    def _link_leaves(self) -> None:
        leaves: List[_DataNode] = []
        seen = set()

        def walk(node: Any) -> None:
            if isinstance(node, _DataNode):
                if id(node) not in seen:
                    seen.add(id(node))
                    leaves.append(node)
                return
            for c in node.children:
                walk(c)

        walk(self._root)
        for a, b in zip(leaves, leaves[1:]):
            a.next = b
            b.prev = a
        if leaves:
            leaves[0].prev = None
            leaves[-1].next = None

    # -- traversal ----------------------------------------------------------------

    def _descend(self, key: Key, path: Optional[List[int]] = None) -> Tuple[_DataNode, List[Tuple[_InnerNode, int]]]:
        node = self._root
        parents: List[Tuple[_InnerNode, int]] = []
        while isinstance(node, _InnerNode):
            self.meter.charge(NODE_HOP)
            self.meter.charge(MODEL_EVAL)
            if path is not None:
                path.append(node.node_id)
            slot = node.child_slot(key)
            parents.append((node, slot))
            node = node.children[slot]
        self.meter.charge(NODE_HOP)
        if path is not None:
            path.append(node.node_id)
        return node, parents

    def _leaf_lower_bound(self, node: _DataNode, key: Key) -> Tuple[int, int]:
        """Exponential search from the model prediction; returns
        ``(slot, probes)`` where slot is the leftmost slot with value >= key."""
        cap = node.capacity
        self.meter.charge(MODEL_EVAL)
        hint = node.model.predict_clamped(key, cap)
        keys = node.keys
        probes = 1
        if keys[hint] >= key:
            bound = 1
            lo = hint - bound
            while lo >= 0 and keys[lo] >= key:
                probes += 1
                bound <<= 1
                lo = hint - bound
            lo = max(lo, 0)
            hi = hint
        else:
            bound = 1
            hi = hint + bound
            while hi < cap and keys[hi] < key:
                probes += 1
                bound <<= 1
                hi = hint + bound
            hi = min(hi, cap)
            lo = hint
        while lo < hi:
            probes += 1
            mid = (lo + hi) // 2
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        charge_local_search(self.meter, probes, lo - hint)
        return lo, probes

    @staticmethod
    def _occupied_at(node: _DataNode, pos: int, key: Key) -> int:
        """First occupied slot >= pos whose value still equals ``key``.
        Returns -1 when the key is not present."""
        cap = node.capacity
        while pos < cap and node.keys[pos] == key:
            if node.present[pos]:
                return pos
            pos += 1
        return -1

    # -- lookup ------------------------------------------------------------------

    def lookup(self, key: Key) -> Optional[Value]:
        path: List[int] = []
        with self.meter.phase(PHASE_TRAVERSE):
            node, _ = self._descend(key, path)
        with self.meter.phase(PHASE_SEARCH):
            pos, probes = self._leaf_lower_bound(node, key)
            occ = self._occupied_at(node, pos, key)
        found = occ >= 0
        self.last_op = OpRecord(
            op="lookup", key=key, found=found, path=path,
            nodes_traversed=len(path), search_distance=probes,
        )
        if not found:
            return None
        value = node.values[occ]
        if self.duplicate_mode == "linked_list" and isinstance(value, _DupChain):
            self.meter.charge(NODE_HOP)  # pointer chase to the chain
            return value.values[0]
        return value

    @staticmethod
    def _leaf_cache(node: _DataNode):
        """Numpy mirror of a leaf's gapped array: int64 keys (tail-gap
        ``_GAP_HIGH`` mapped to INT64_MAX, which preserves every ``<``,
        ``>=`` and ``==`` outcome against int64 probe keys) plus the
        sorted occupied-slot positions."""
        cache = node.np_cache
        if cache is None:
            np = batching._np
            int64_max = (1 << 63) - 1
            mapped = [int64_max if k == _GAP_HIGH else k for k in node.keys]
            keys_np = batching.int64_cache(mapped)
            if keys_np is None:
                cache = node.np_cache = False
            else:
                present_idxs = np.flatnonzero(
                    np.asarray(node.present, dtype=bool))
                cache = node.np_cache = (keys_np, present_idxs)
        return cache

    @staticmethod
    def _leaf_lookup_plain(node: _DataNode, key: Key) -> Tuple[int, int, int]:
        """Meter-free replay of ``_leaf_lower_bound`` + ``_occupied_at``
        for the scalar tail of small batch groups; returns
        ``(occ, probes, distance)``."""
        cap = node.capacity
        hint = node.model.predict_clamped(key, cap)
        keys = node.keys
        probes = 1
        if keys[hint] >= key:
            bound = 1
            lo = hint - bound
            while lo >= 0 and keys[lo] >= key:
                probes += 1
                bound <<= 1
                lo = hint - bound
            lo = max(lo, 0)
            hi = hint
        else:
            bound = 1
            hi = hint + bound
            while hi < cap and keys[hi] < key:
                probes += 1
                bound <<= 1
                hi = hint + bound
            hi = min(hi, cap)
            lo = hint
        while lo < hi:
            probes += 1
            mid = (lo + hi) // 2
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        occ = ALEX._occupied_at(node, lo, key)
        return occ, probes, lo - hint

    def _lookup_batch(self, keys: Sequence[Key]):
        """Vectorized lookup: grouped descent through the inner nodes,
        then a per-leaf replay of the exponential search with rank
        arithmetic (``keys[x] >= key`` is ``x >= r`` for the key's rank
        ``r`` in the gapped array, which stays sorted by construction).
        Groups smaller than the numpy break-even run a meter-free scalar
        tail instead.  Bails under duplicate modes.
        """
        if self.duplicate_mode is not None:
            return None
        ks = batching.key_array(keys)
        if ks is None:
            return None
        np = batching._np
        B = len(ks)
        values: List[Optional[Value]] = [None] * B
        found = [False] * B
        depth = np.zeros(B, dtype=np.int64)
        probes = np.zeros(B, dtype=np.int64)
        cp = np.zeros(B, dtype=np.int64)
        leaf_groups = []  # (node, idx, ksub, rank, cache) per visited leaf
        stack = [(self._root, np.arange(B), 0)]
        while stack:
            node, idx, d = stack.pop()
            if isinstance(node, _InnerNode):
                slots = batching.predict_clamped_vec(
                    node.model, ks[idx], len(node.children))
                order = np.argsort(slots, kind="stable")
                sorted_slots = slots[order]
                cuts = np.flatnonzero(np.diff(sorted_slots)) + 1
                bounds = [0] + cuts.tolist() + [len(order)]
                children = node.children
                for t in range(len(bounds) - 1):
                    a = bounds[t]
                    part = order[a:bounds[t + 1]]
                    stack.append(
                        (children[int(sorted_slots[a])], idx[part], d + 1))
                continue
            depth[idx] = d
            cache = self._leaf_cache(node) if len(idx) >= 16 else False
            if cache is False:
                for gi in idx:
                    gi = int(gi)
                    occ, pr, dist = self._leaf_lookup_plain(
                        node, int(ks[gi]))
                    probes[gi] = pr
                    cp[gi] = min(max((abs(dist) - 4) // 8, 0), 64)
                    if occ >= 0:
                        found[gi] = True
                        values[gi] = node.values[occ]
                continue
            ksub = ks[idx]
            r = np.searchsorted(cache[0], ksub, side="left")
            leaf_groups.append((node, idx, ksub, r, cache))
        if leaf_groups:
            # One global exponential-search replay across every leaf:
            # per-leaf calls on tiny arrays would drown in numpy call
            # overhead, so the per-key model/capacity parameters are
            # broadcast and concatenated instead.
            order = np.concatenate([g[1] for g in leaf_groups])
            rr = np.concatenate([g[3] for g in leaf_groups])
            caps = np.concatenate(
                [np.full(len(g[1]), g[0].capacity, dtype=np.int64)
                 for g in leaf_groups])
            slopes = np.concatenate(
                [np.full(len(g[1]), g[0].model.slope) for g in leaf_groups])
            inters = np.concatenate(
                [np.full(len(g[1]), g[0].model.intercept)
                 for g in leaf_groups])
            anchors = np.concatenate(
                [np.full(len(g[1]), g[0].model.anchor, dtype=np.int64)
                 for g in leaf_groups])
            ksall = ks[order]
            pred = slopes * (ksall - anchors).astype(np.float64) + inters
            # Same clamp-preserving pre-clip as predict_clamped_vec,
            # bounded by the largest capacity in the batch.
            cmax = float(int(caps.max()) + 2)
            hint = np.clip(np.clip(pred, -cmax, cmax).astype(np.int64),
                           0, np.maximum(caps - 1, 0))
            pr, lo = batching.simulate_exponential(hint, rr, caps)
            probes[order] = pr
            cp[order] = batching.local_search_lines(lo - hint)
            off = 0
            for node, idx, ksub, r, (keys_np, present_idxs) in leaf_groups:
                lo_g = lo[off:off + len(idx)]
                off += len(idx)
                pos_in = np.searchsorted(present_idxs, lo_g)
                has_occ = pos_in < len(present_idxs)
                occ = present_idxs[
                    np.minimum(pos_in, len(present_idxs) - 1)]
                hit = has_occ & (keys_np[occ] == ksub)
                node_values = node.values
                for j in np.flatnonzero(hit):
                    gi = int(idx[j])
                    found[gi] = True
                    values[gi] = node_values[int(occ[j])]
        log = batching.ChargeLog(B)
        log.add(PHASE_TRAVERSE, NODE_HOP, depth + 1)
        log.add(PHASE_TRAVERSE, MODEL_EVAL, depth, reached=depth > 0)
        log.add(PHASE_SEARCH, MODEL_EVAL, np.ones(B, dtype=np.int64))
        log.add(PHASE_SEARCH, KEY_COMPARE, probes)
        log.add(PHASE_SEARCH, CACHE_PROBE, cp, reached=cp > 0)
        probes_list = probes.tolist()

        def make_record(i: int) -> OpRecord:
            key = keys[i]
            path: List[int] = []
            node = self._root
            while isinstance(node, _InnerNode):
                path.append(node.node_id)
                node = node.children[node.child_slot(key)]
            path.append(node.node_id)
            return OpRecord(
                op="lookup", key=key, found=found[i], path=path,
                nodes_traversed=len(path), search_distance=probes_list[i],
            )

        return batching.BatchLookup(values, log, make_record)

    # -- insert ------------------------------------------------------------------

    def insert(self, key: Key, value: Value) -> bool:
        path: List[int] = []
        with self.meter.phase(PHASE_TRAVERSE):
            node, parents = self._descend(key, path)
        with self.meter.phase(PHASE_SEARCH):
            pos, probes = self._leaf_lower_bound(node, key)
            occ = self._occupied_at(node, pos, key)
        if occ >= 0:
            handled = self._insert_duplicate(node, occ, key, value, path, probes)
            if handled is not None:
                return handled
        shifted = self._place(node, pos, key, value)
        node.num_keys += 1
        self._size += 1
        with self.meter.phase(PHASE_STATS):
            node.inserts_since_build += 1
            node.shifts_since_build += shifted
            node.search_since_build += probes
            self.meter.charge(STATS_UPDATE)
        created = 0
        smo = False
        if node.density() > self.max_density:
            with self.meter.phase(PHASE_SMO):
                created = self._smo(node, parents)
            smo = True
        self.last_op = OpRecord(
            op="insert", key=key, path=path, nodes_traversed=len(path),
            keys_shifted=shifted, nodes_created=created, smo=smo,
            search_distance=probes,
        )
        return True

    def _insert_duplicate(
        self,
        node: _DataNode,
        occ: int,
        key: Key,
        value: Value,
        path: List[int],
        probes: int,
    ) -> Optional[bool]:
        """Handle an insert that hit an existing key.

        Returns True/False when fully handled, or None to fall through to
        a normal placement (inline duplicate mode).
        """
        if self.duplicate_mode is None:
            self.last_op = OpRecord(
                op="insert", key=key, found=True, path=path,
                nodes_traversed=len(path), search_distance=probes,
            )
            return False
        if self.duplicate_mode == "linked_list":
            with self.meter.phase(PHASE_COLLISION):
                current = node.values[occ]
                if isinstance(current, _DupChain):
                    # Head push: write a slab-allocated cell and swap the
                    # head pointer — no chain traversal, no key shifting.
                    # This is why the linked list wins inserts (Fig. B).
                    current.values.append(value)
                    self.meter.charge(SLOT_INIT, 2)
                else:
                    node.values[occ] = _DupChain([current, value])
                    self.meter.charge(ALLOC_NODE)
            self._size += 1  # chain entries live off-node; num_keys unchanged
            self.last_op = OpRecord(
                op="insert", key=key, found=True, path=path,
                nodes_traversed=len(path), search_distance=probes,
            )
            return True
        return None  # inline: place a second copy next to the first

    def _place(self, node: _DataNode, pos: int, key: Key, value: Value) -> int:
        """Put ``key`` into the array at/near ``pos``; returns keys shifted."""
        node.np_cache = None
        with self.meter.phase(PHASE_COLLISION):
            cap = node.capacity
            if pos < cap and not node.present[pos]:
                # Gap run: slots pos..first_occupied-1 all hold the same
                # copied value; place at the prediction-closest legal slot.
                end = pos
                while end < cap and not node.present[end] and node.keys[end] == node.keys[pos]:
                    end += 1
                hint = node.model.predict_clamped(key, cap)
                target = min(max(hint, pos), end - 1)
                node.keys[target] = key
                node.values[target] = value
                node.present[target] = True
                for i in range(pos, target):
                    node.keys[i] = key
                self.meter.charge(SLOT_INIT, target - pos + 1)
                return 0
            # Occupied (or past the end): shift toward the nearest gap.
            left = pos - 1
            while left >= 0 and node.present[left]:
                left -= 1
            right = pos
            while right < cap and node.present[right]:
                right += 1
            use_right = right < cap and (left < 0 or right - pos <= pos - left)
            if use_right:
                for i in range(right, pos, -1):
                    node.keys[i] = node.keys[i - 1]
                    node.values[i] = node.values[i - 1]
                    node.present[i] = True
                node.keys[pos] = key
                node.values[pos] = value
                node.present[pos] = True
                shifted = right - pos
            elif left >= 0:
                for i in range(left, pos - 1):
                    node.keys[i] = node.keys[i + 1]
                    node.values[i] = node.values[i + 1]
                    node.present[i] = True
                node.keys[pos - 1] = key
                node.values[pos - 1] = value
                node.present[pos - 1] = True
                shifted = pos - 1 - left
            else:
                # No gap at all (should be prevented by density SMOs, but
                # handle defensively): expand immediately, then retry.
                self._expand(node)
                return self._place(node, self._leaf_lower_bound(node, key)[0], key, value)
            self.meter.charge(KEY_SHIFT, shifted)
            return shifted

    # -- SMOs --------------------------------------------------------------------

    def _smo(self, node: _DataNode, parents: List[Tuple[_InnerNode, int]]) -> int:
        """Expand or split an over-dense node; returns nodes created."""
        self.smo_count += 1
        inserts = max(node.inserts_since_build, 1)
        avg_shift = node.shifts_since_build / inserts
        avg_search = node.search_since_build / inserts
        model_degraded = avg_shift > 16.0 or avg_search > 12.0
        too_big = node.num_keys * 2 > self.max_data_keys
        if too_big or (model_degraded and node.num_keys > self.target_leaf_keys):
            return self._split_sideways(node, parents)
        self._expand(node)
        self.expand_count += 1
        return 0

    def _expand(self, node: _DataNode) -> None:
        node.np_cache = None
        items = node.occupied_items()
        n = len(items)
        cap = max(8, int(math.ceil(n / self.avg_density)))
        node.keys = [_GAP_HIGH] * cap
        node.values = [None] * cap
        node.present = [False] * cap
        keys = [k for k, _ in items]
        node.model = LinearModel.train(keys).scaled(cap / max(n, 1))
        self.meter.charge(TRAIN_KEY, n)
        self.meter.charge(SLOT_INIT, cap)
        self.meter.charge(KEY_SHIFT, n)
        self._model_place(node, items)
        self._fill_gaps(node)
        node.inserts_since_build = 0
        node.shifts_since_build = 0
        node.search_since_build = 0

    @staticmethod
    def _routed_split_at(
        model: LinearModel, items: Sequence[Tuple[Key, Value]], fanout: int, slot: int
    ) -> int:
        """First item index the ``model`` routes to a child slot >= ``slot``.

        Items MUST be partitioned with the same routing function traversal
        uses: a key comparison against a float boundary can disagree with
        ``predict_clamped`` in the last ulp and strand the boundary key in
        a child that lookups never visit.
        """
        lo, hi = 0, len(items)
        while lo < hi:
            mid = (lo + hi) // 2
            if model.predict_clamped(items[mid][0], fanout) < slot:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _split_sideways(self, node: _DataNode, parents: List[Tuple[_InnerNode, int]]) -> int:
        self.split_count += 1
        if not parents:
            # Node is the root: grow a new inner node above it.
            items = node.occupied_items()
            mid = len(items) // 2
            boundary = items[mid][0]
            lo = items[0][0]
            # Fanout-2 model with the boundary between the two slots.
            slope = 1.0 / max(boundary - lo, 1)
            model = LinearModel(slope, 0.0, lo)
            split_at = self._routed_split_at(model, items, 2, 1)
            if split_at == 0 or split_at == len(items):
                # The model cannot separate the keys: retrain in place.
                self._expand(node)
                self.expand_count += 1
                return 0
            left = self._new_data_node(items[:split_at])
            right = self._new_data_node(items[split_at:])
            left.prev, left.next = node.prev, right
            right.prev, right.next = left, node.next
            if node.prev is not None:
                node.prev.next = left
            if node.next is not None:
                node.next.prev = right
            inner = _InnerNode(self._next_node_id(), model, [left, right])
            self.meter.charge(ALLOC_NODE)
            self._root = inner
            return 3
        parent, slot = parents[-1]
        # Contiguous run of parent slots pointing at this node.
        s0 = slot
        while s0 > 0 and parent.children[s0 - 1] is node:
            s0 -= 1
        s1 = slot + 1
        while s1 < len(parent.children) and parent.children[s1] is node:
            s1 += 1
        if s1 - s0 >= 2:
            # Split the slot run where the parent model routes keys to b+.
            b = (s0 + s1) // 2
            items = node.occupied_items()
            split_at = self._routed_split_at(
                parent.model, items, len(parent.children), b
            )
            if split_at == 0 or split_at == len(items):
                # All keys routed to one side of the slot boundary: the
                # parent model cannot separate them — split downward.
                return self._split_down(node, parent, s0, s1)
            left = self._new_data_node(items[:split_at])
            right = self._new_data_node(items[split_at:])
            self._replace_run(parent, s0, b, s1, node, left, right)
            return 2
        # Single slot: double the parent fanout (if allowed) and retry.
        if len(parent.children) * 2 <= self.max_fanout:
            self._double_fanout(parent)
            # Slot indices doubled with the fanout: refresh before retrying.
            parents[-1] = (parent, slot * 2)
            return 1 + self._split_sideways(node, parents)
        # Parent at max fanout: split downward into a new fanout-2 inner.
        return self._split_down(node, parent, s0, s1)

    def _split_down(self, node: _DataNode, parent: _InnerNode, s0: int, s1: int) -> int:
        """Replace ``node`` with a fanout-2 inner splitting at the median."""
        items = node.occupied_items()
        mid = len(items) // 2
        if mid == 0 or items[mid][0] == items[0][0]:
            # Fewer than two distinct keys: nothing to split on.
            self._expand(node)
            self.expand_count += 1
            return 0
        boundary = items[mid][0]
        slope = 1.0 / max(boundary - items[0][0], 1)
        model = LinearModel(slope, 0.0, items[0][0])
        split_at = self._routed_split_at(model, items, 2, 1)
        if split_at == 0 or split_at == len(items):
            self._expand(node)
            self.expand_count += 1
            return 0
        left = self._new_data_node(items[:split_at])
        right = self._new_data_node(items[split_at:])
        inner = _InnerNode(self._next_node_id(), model, [left, right])
        self.meter.charge(ALLOC_NODE)
        self._splice_leaf_links(node, left, right)
        for s in range(s0, s1):
            parent.children[s] = inner
        return 3

    def _slot_boundary_key(self, parent: _InnerNode, slot: int) -> Key:
        """Smallest key the parent model routes to ``slot``."""
        return parent.model.inverse(slot)

    def _replace_run(
        self,
        parent: _InnerNode,
        s0: int,
        b: int,
        s1: int,
        node: _DataNode,
        left: _DataNode,
        right: _DataNode,
    ) -> None:
        for s in range(s0, b):
            parent.children[s] = left
        for s in range(b, s1):
            parent.children[s] = right
        self.meter.charge(SLOT_INIT, s1 - s0)
        self._splice_leaf_links(node, left, right)

    def _splice_leaf_links(self, old: _DataNode, left: _DataNode, right: _DataNode) -> None:
        left.prev, left.next = old.prev, right
        right.prev, right.next = left, old.next
        if old.prev is not None:
            old.prev.next = left
        if old.next is not None:
            old.next.prev = right

    def _double_fanout(self, parent: _InnerNode) -> None:
        new_children: List[Any] = []
        for c in parent.children:
            new_children.append(c)
            new_children.append(c)
        parent.children = new_children
        parent.model = parent.model.scaled(2.0)
        self.meter.charge(ALLOC_NODE)
        self.meter.charge(SLOT_INIT, len(new_children))

    # -- update / delete -----------------------------------------------------------

    def update(self, key: Key, value: Value) -> bool:
        with self.meter.phase(PHASE_TRAVERSE):
            node, _ = self._descend(key)
        with self.meter.phase(PHASE_SEARCH):
            pos, _ = self._leaf_lower_bound(node, key)
            occ = self._occupied_at(node, pos, key)
        if occ < 0:
            return False
        node.values[occ] = value
        self.meter.charge(KEY_SHIFT)
        return True

    def delete(self, key: Key) -> bool:
        path: List[int] = []
        with self.meter.phase(PHASE_TRAVERSE):
            node, parents = self._descend(key, path)
        with self.meter.phase(PHASE_SEARCH):
            pos, probes = self._leaf_lower_bound(node, key)
            occ = self._occupied_at(node, pos, key)
        if occ < 0:
            self.last_op = OpRecord(
                op="delete", key=key, found=False, path=path,
                nodes_traversed=len(path),
            )
            return False
        node.np_cache = None
        with self.meter.phase(PHASE_COLLISION):
            node.present[occ] = False
            node.values[occ] = None
            # The freed slot and gaps left of it copy the next occupied
            # key; slot occ+1 already holds it (occupied or gap copy).
            nxt = node.keys[occ + 1] if occ + 1 < node.capacity else _GAP_HIGH
            i = occ
            rewrites = 0
            while i >= 0 and not node.present[i]:
                node.keys[i] = nxt
                rewrites += 1
                i -= 1
            self.meter.charge(SLOT_INIT, rewrites)
        node.num_keys -= 1
        self._size -= 1
        smo = False
        if node.capacity > 16 and node.density() < self.min_density / 2:
            with self.meter.phase(PHASE_SMO):
                self._expand(node)  # contraction: same retrain machinery
            smo = True
        self.last_op = OpRecord(
            op="delete", key=key, found=True, path=path,
            nodes_traversed=len(path), smo=smo, search_distance=probes,
        )
        return True

    # -- scans -----------------------------------------------------------------

    def range_scan(self, start: Key, count: int) -> List[Tuple[Key, Value]]:
        out: List[Tuple[Key, Value]] = []
        with self.meter.phase(PHASE_TRAVERSE):
            node, _ = self._descend(start)
        pos, _ = self._leaf_lower_bound(node, start)
        cur: Optional[_DataNode] = node
        while cur is not None and len(out) < count:
            cap = cur.capacity
            while pos < cap and len(out) < count:
                if cur.present[pos]:
                    value = cur.values[pos]
                    if self.duplicate_mode == "linked_list" and isinstance(value, _DupChain):
                        for v in value.values:
                            out.append((cur.keys[pos], v))
                            self.meter.charge(SCAN_ENTRY)
                            if len(out) >= count:
                                break
                    else:
                        out.append((cur.keys[pos], value))
                        self.meter.charge(SCAN_ENTRY)
                else:
                    self.meter.charge(SLOT_INIT)  # skipping a gap (bitmap word)
                pos += 1
            cur = cur.next
            pos = 0
            if cur is not None:
                self.meter.charge(NODE_HOP)
        return out

    # -- memory -----------------------------------------------------------------

    def memory_usage(self) -> MemoryBreakdown:
        inner = 0
        leaf = 0
        seen = set()
        stack = [self._root]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            if isinstance(node, _InnerNode):
                inner += _INNER_HEADER_BYTES + len(node.children) * POINTER_BYTES
                stack.extend(node.children)
            else:
                # Gapped arrays: capacity slots of key+payload + bitmap.
                leaf += (
                    _DATA_HEADER_BYTES
                    + node.capacity * (KEY_BYTES + PAYLOAD_BYTES)
                    + node.capacity // 8
                )
        return MemoryBreakdown(inner=inner, leaf=leaf)

    # -- introspection ------------------------------------------------------------

    def data_nodes(self) -> List[_DataNode]:
        out: List[_DataNode] = []
        seen = set()
        stack = [self._root]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            if isinstance(node, _InnerNode):
                stack.extend(node.children)
            else:
                out.append(node)
        return out

    # -- validation ---------------------------------------------------------------

    def debug_validate(self) -> List[Violation]:
        """Gapped-array invariants: sorted slots, gap copies of the
        nearest occupied right neighbour, present-bitmap accounting,
        the post-SMO density ceiling, the doubly linked leaf chain,
        and model routing (every stored key must descend back to the
        leaf that holds it).  Walks nodes directly; never charges the
        meter.
        """
        out: List[Violation] = []
        ordered: List[_DataNode] = []

        def walk(node: Any) -> None:
            if isinstance(node, _DataNode):
                ordered.append(node)
                return
            prev_child = None
            for child in node.children:
                if child is prev_child:
                    continue  # adjacent slots may share one child
                prev_child = child
                walk(child)

        walk(self._root)

        for node in ordered:
            cap = node.capacity
            if not (len(node.values) == len(node.present) == cap):
                out.append(Violation(
                    node.node_id, "alex.slot-arrays",
                    f"keys/values/present lengths {cap}/"
                    f"{len(node.values)}/{len(node.present)} differ"))
                continue
            occupied = sum(1 for p in node.present if p)
            if occupied != node.num_keys:
                out.append(Violation(
                    node.node_id, "alex.present-count",
                    f"num_keys={node.num_keys} but {occupied} slots "
                    f"are present"))
            out.extend(sorted_violations(
                node.keys, node.node_id, "alex.keys-sorted", strict=False))
            # Gap copies: scanning right-to-left, a gap must repeat the
            # nearest occupied key to its right (_GAP_HIGH past the end).
            expect = _GAP_HIGH
            for i in range(cap - 1, -1, -1):
                if node.present[i]:
                    expect = node.keys[i]
                elif node.keys[i] != expect:
                    out.append(Violation(
                        node.node_id, "alex.gap-copy",
                        f"gap slot {i} holds {node.keys[i]}, expected a "
                        f"copy of {expect}"))
                    break
            if node.density() > self.max_density + 1e-9:
                out.append(Violation(
                    node.node_id, "alex.density",
                    f"density {node.density():.3f} exceeds max_density "
                    f"{self.max_density} (missed SMO)"))

        # Leaf chain: prev/next must thread the in-order leaves exactly.
        for i, node in enumerate(ordered):
            before = ordered[i - 1] if i > 0 else None
            after = ordered[i + 1] if i + 1 < len(ordered) else None
            if node.prev is not before or node.next is not after:
                out.append(Violation(
                    node.node_id, "alex.leaf-chain",
                    "prev/next links disagree with in-order traversal"))
                break

        # Cross-leaf ordering + model routing + size accounting.
        strict = self.duplicate_mode is None
        last_key: Optional[Key] = None
        total = 0
        for node in ordered:
            for i in range(node.capacity):
                if not node.present[i]:
                    continue
                k = node.keys[i]
                if last_key is not None and (
                        k < last_key or (strict and k == last_key)):
                    out.append(Violation(
                        node.node_id, "alex.chain-order",
                        f"key {k} not above previous leaf key {last_key}"))
                last_key = k
                v = node.values[i]
                total += len(v.values) if isinstance(v, _DupChain) else 1
            for k, _ in node.occupied_items():
                cur = self._root
                while isinstance(cur, _InnerNode):
                    cur = cur.children[cur.child_slot(k)]
                if cur is not node:
                    out.append(Violation(
                        node.node_id, "alex.routing",
                        f"key {k} routes to node "
                        f"{getattr(cur, 'node_id', '?')} instead of its "
                        f"holder"))
                    break
        if total != self._size:
            out.append(Violation(
                0, "alex.size",
                f"leaves hold {total} entries but len(index) == "
                f"{self._size}"))
        return out


class _DupChain:
    """Out-of-place value list for ALEX's linked-list duplicate mode."""

    __slots__ = ("values",)

    def __init__(self, values: List[Value]) -> None:
        self.values = values
