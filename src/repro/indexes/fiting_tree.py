"""FITing-Tree (Galakatos et al., SIGMOD 2019).

The paper *describes* FITing-Tree (error-driven segmentation + per-
segment insert buffers, Section 2) but excludes it from the evaluation
because no open-source implementation exists.  This reproduction builds
it from the paper's description so the comparison the authors could not
run becomes possible:

* leaves are ε-bounded linear segments over a sorted array (we use the
  same optimal PLA machinery as PGM; FITing-Tree's greedy shrinking-
  cone segmentation yields within-2x the same segments),
* each segment owns a fixed-size *insert buffer*; lookups check the
  segment (model ± ε) then the buffer,
* a full buffer triggers a merge-and-resegment of that leaf only
  ("delta-merge" granularity between XIndex's per-group and FINEdex's
  per-record),
* segments are routed by a B+-tree over their first keys, as in the
  original design.

Not part of the paper's figures; exercised by the test suite and
available to the CLI/benchmarks for what-if comparisons.
"""

from __future__ import annotations

import bisect
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.cost import (
    ALLOC_NODE,
    CACHE_PROBE,
    KEY_COMPARE,
    KEY_SHIFT,
    MODEL_EVAL,
    NODE_HOP,
    PHASE_COLLISION,
    PHASE_SEARCH,
    PHASE_SMO,
    PHASE_TRAVERSE,
    SCAN_ENTRY,
    TRAIN_KEY,
    charge_binary_search,
)
from repro.core.hardness import optimal_pla
from repro.core.validate import (
    Violation,
    range_violation,
    residual_violations,
    sorted_violations,
)
from repro.indexes.base import (
    KEY_BYTES,
    PAYLOAD_BYTES,
    Key,
    MemoryBreakdown,
    OpRecord,
    OrderedIndex,
    Value,
)
from repro.indexes import batching
from repro.indexes.btree import BPlusTree
from repro.indexes.linear_model import LinearModel

_SEGMENT_HEADER_BYTES = 56


class _FitSegment:
    __slots__ = ("node_id", "first_key", "keys", "values", "model",
                 "buf_keys", "buf_values")

    def __init__(self, node_id: int, first_key: Key) -> None:
        self.node_id = node_id
        self.first_key = first_key
        self.keys: List[Key] = []
        self.values: List[Value] = []
        self.model = LinearModel()
        self.buf_keys: List[Key] = []
        self.buf_values: List[Value] = []


class FITingTree(OrderedIndex):
    """FITing-Tree with ε = 32 (matching the paper's error-driven peers)."""

    name = "FITing-Tree"
    is_learned = True
    supports_delete = False  # as scoped by the original paper's evaluation
    supports_range = True

    def __init__(self, epsilon: int = 32, buffer_size: int = 32, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        if buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        self.epsilon = epsilon
        self.buffer_size = buffer_size
        self._segments: List[_FitSegment] = [_FitSegment(self._next_node_id(), 0)]
        #: Inner routing structure: a B+-tree over segment first keys.
        self._router = BPlusTree(fanout=32, meter=self.meter)
        self._router.bulk_load([(0, 0)])
        self.merge_count = 0
        #: Batch-lookup tables; ``None`` = stale (see ``_batch_tables``).
        self._batch_cache: Any = None

    # -- build --------------------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        self._invalidate_batch_cache()
        self.check_sorted(items)
        self._segments = self._segment_items(list(items))
        self._segments[0].first_key = 0
        self._rebuild_router()
        self._size = len(items)

    def _segment_items(self, items: List[Tuple[Key, Value]]) -> List[_FitSegment]:
        if not items:
            return [_FitSegment(self._next_node_id(), 0)]
        keys = [k for k, _ in items]
        plas = optimal_pla(keys, self.epsilon)
        self.meter.charge(TRAIN_KEY, len(keys))
        out: List[_FitSegment] = []
        for pla in plas:
            seg = _FitSegment(self._next_node_id(), pla.first_key)
            lo, hi = pla.first_index, pla.first_index + pla.length
            seg.keys = keys[lo:hi]
            seg.values = [v for _, v in items[lo:hi]]
            seg.model = LinearModel(pla.model.slope, pla.model.intercept - lo,
                                    pla.model.anchor)
            out.append(seg)
            self.meter.charge(ALLOC_NODE)
        return out

    def _rebuild_router(self) -> None:
        self._router = BPlusTree(fanout=32, meter=self.meter)
        self._router.bulk_load(
            [(seg.first_key, i) for i, seg in enumerate(self._segments)]
        )

    # -- routing ------------------------------------------------------------------

    def _find_segment(self, key: Key) -> Tuple[int, _FitSegment]:
        # B+-tree routing: find the last segment pivot <= key.
        pivots = [s.first_key for s in self._segments]
        self.meter.charge(NODE_HOP, max(1, self._router.height - 1))
        i = bisect.bisect_right(pivots, key) - 1
        self.meter.charge(KEY_COMPARE, max(1, len(pivots).bit_length()))
        i = max(i, 0)
        return i, self._segments[i]

    def _segment_lower_bound(self, seg: _FitSegment, key: Key) -> int:
        n = len(seg.keys)
        if n == 0:
            return 0
        self.meter.charge(MODEL_EVAL)
        pred = int(seg.model.predict(key))
        hi = max(min(pred + self.epsilon + 2, n), 0)
        lo = min(max(pred - self.epsilon - 1, 0), hi)
        probes = 0
        while lo < hi:
            probes += 1
            mid = (lo + hi) // 2
            if seg.keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        charge_binary_search(self.meter, probes)
        return lo

    # -- operations ---------------------------------------------------------------

    def lookup(self, key: Key) -> Optional[Value]:
        with self.meter.phase(PHASE_TRAVERSE):
            _, seg = self._find_segment(key)
            self.meter.charge(NODE_HOP)
        with self.meter.phase(PHASE_SEARCH):
            i = self._segment_lower_bound(seg, key)
            if i < len(seg.keys) and seg.keys[i] == key:
                self.last_op = OpRecord(op="lookup", key=key, found=True,
                                        path=[seg.node_id], nodes_traversed=2)
                return seg.values[i]
            self.meter.charge(NODE_HOP)  # buffer is a separate allocation
            j = bisect.bisect_left(seg.buf_keys, key)
            self.meter.charge(KEY_COMPARE, max(1, len(seg.buf_keys).bit_length()))
            if j < len(seg.buf_keys) and seg.buf_keys[j] == key:
                self.last_op = OpRecord(op="lookup", key=key, found=True,
                                        path=[seg.node_id], nodes_traversed=2)
                return seg.buf_values[j]
        self.last_op = OpRecord(op="lookup", key=key, found=False,
                                path=[seg.node_id], nodes_traversed=2)
        return None

    def _batch_tables(self):
        """Index-wide arrays for the batch path: segment pivots, the
        concatenated trained/buffered key arrays, per-segment model
        parameters, and the router's constant per-op charges.  Rebuilt
        lazily after any mutation; ``False`` when unusable."""
        cache = self._batch_cache
        if cache is None:
            segs = self._segments
            if any(not seg.keys for seg in segs):
                # Only a pre-bulk-load index has empty segments; their
                # charge order differs (no window search), so bail.
                cache = self._batch_cache = False
                return cache
            pivots = batching.int64_cache([s.first_key for s in segs])
            models = batching.model_arrays([s.model for s in segs])
            main = batching.ConcatTable.build([s.keys for s in segs])
            buf = batching.ConcatTable.build([s.buf_keys for s in segs])
            if pivots is None or models is None or main is None or buf is None:
                cache = self._batch_cache = False
                return cache
            nh_const = max(1, self._router.height - 1) + 1
            kc_const = max(1, len(segs).bit_length())
            node_ids = [s.node_id for s in segs]
            cache = self._batch_cache = (
                pivots, models, main, buf, nh_const, kc_const, node_ids)
        return cache

    def _lookup_batch(self, keys: Sequence[Key]):
        """Vectorized lookup: route all keys with one ``searchsorted``
        over the segment pivots, replay every segment's ±ε window
        search by rank arithmetic over the concatenated key arrays, and
        probe the (concatenated) insert buffers the same way."""
        ks = batching.key_array(keys)
        if ks is None:
            return None
        cache = self._batch_tables()
        if cache is False:
            return None
        pivots, (slopes, intercepts, anchors), main, buf, nh_const, \
            kc_const, node_ids = cache
        np = batching._np
        B = len(ks)
        si = np.maximum(np.searchsorted(pivots, ks, side="right") - 1, 0)
        lens = main.lens[si]
        lo, hi = batching.window_bounds(
            slopes[si], intercepts[si], anchors[si], ks, self.epsilon, lens)
        r = main.rank_local(ks, si)
        probes = batching.simulate_binary(lo, hi, r)
        cp = batching.cache_probe_units(probes)
        i = np.clip(r, lo, hi)
        in_main = (i < lens) & (
            main.cat[np.minimum(main.offsets[si] + i, len(main.cat) - 1)]
            == ks)
        miss = ~in_main
        if len(buf.cat):
            rb = buf.rank_local(ks, si)
            in_buf = miss & (rb < buf.lens[si]) & (
                buf.cat[np.minimum(buf.offsets[si] + rb,
                                   len(buf.cat) - 1)] == ks)
        else:
            rb = np.zeros(B, dtype=np.int64)
            in_buf = np.zeros(B, dtype=bool)
        kc = probes + np.where(miss, buf.bl[si], 0)
        values: List[Optional[Value]] = [None] * B
        segs = self._segments
        for j in np.flatnonzero(in_main):
            values[j] = segs[int(si[j])].values[int(i[j])]
        for j in np.flatnonzero(in_buf):
            values[j] = segs[int(si[j])].buf_values[int(rb[j])]
        found = (in_main | in_buf).tolist()
        si_list = si.tolist()
        log = batching.ChargeLog(B)
        log.add(PHASE_TRAVERSE, NODE_HOP, nh_const)
        log.add(PHASE_TRAVERSE, KEY_COMPARE, kc_const)
        log.add(PHASE_SEARCH, MODEL_EVAL, 1)
        log.add(PHASE_SEARCH, KEY_COMPARE, kc)
        log.add(PHASE_SEARCH, CACHE_PROBE, cp, reached=cp > 0)
        log.add(PHASE_SEARCH, NODE_HOP, np.ones(B, dtype=np.int64),
                reached=miss)

        def make_record(i: int) -> OpRecord:
            return OpRecord(op="lookup", key=keys[i], found=found[i],
                            path=[node_ids[si_list[i]]], nodes_traversed=2)

        return batching.BatchLookup(values, log, make_record)

    def insert(self, key: Key, value: Value) -> bool:
        with self.meter.phase(PHASE_TRAVERSE):
            si, seg = self._find_segment(key)
            self.meter.charge(NODE_HOP)
        with self.meter.phase(PHASE_SEARCH):
            i = self._segment_lower_bound(seg, key)
            if i < len(seg.keys) and seg.keys[i] == key:
                self.last_op = OpRecord(op="insert", key=key, found=True,
                                        path=[seg.node_id], nodes_traversed=2)
                return False
            j = bisect.bisect_left(seg.buf_keys, key)
            if j < len(seg.buf_keys) and seg.buf_keys[j] == key:
                self.last_op = OpRecord(op="insert", key=key, found=True,
                                        path=[seg.node_id], nodes_traversed=2)
                return False
        shifted = len(seg.buf_keys) - j
        self._invalidate_batch_cache()
        with self.meter.phase(PHASE_COLLISION):
            seg.buf_keys.insert(j, key)
            seg.buf_values.insert(j, value)
            self.meter.charge(KEY_SHIFT, shifted)
        smo = False
        created = 0
        if len(seg.buf_keys) > self.buffer_size:
            with self.meter.phase(PHASE_SMO):
                created = self._merge_segment(si)
            smo = True
        self._size += 1
        self.last_op = OpRecord(
            op="insert", key=key, path=[seg.node_id], nodes_traversed=2,
            keys_shifted=shifted, smo=smo, nodes_created=created,
        )
        return True

    def _merge_segment(self, si: int) -> int:
        """Merge a full buffer into its segment and re-segment locally."""
        self.merge_count += 1
        seg = self._segments[si]
        merged: List[Tuple[Key, Value]] = []
        a = b = 0
        while a < len(seg.keys) and b < len(seg.buf_keys):
            if seg.keys[a] <= seg.buf_keys[b]:
                merged.append((seg.keys[a], seg.values[a]))
                a += 1
            else:
                merged.append((seg.buf_keys[b], seg.buf_values[b]))
                b += 1
        merged.extend(zip(seg.keys[a:], seg.values[a:]))
        merged.extend(zip(seg.buf_keys[b:], seg.buf_values[b:]))
        self.meter.charge(KEY_SHIFT, len(merged))
        new_segments = self._segment_items(merged)
        new_segments[0].first_key = seg.first_key
        self._segments[si : si + 1] = new_segments
        # Router update: re-bulk (routing keys changed).
        self.meter.charge(KEY_SHIFT, len(self._segments) - si)
        self._rebuild_router()
        return len(new_segments)

    def update(self, key: Key, value: Value) -> bool:
        _, seg = self._find_segment(key)
        i = self._segment_lower_bound(seg, key)
        if i < len(seg.keys) and seg.keys[i] == key:
            seg.values[i] = value
            self.meter.charge(KEY_SHIFT)
            return True
        j = bisect.bisect_left(seg.buf_keys, key)
        if j < len(seg.buf_keys) and seg.buf_keys[j] == key:
            seg.buf_values[j] = value
            self.meter.charge(KEY_SHIFT)
            return True
        return False

    # -- scans -----------------------------------------------------------------

    def range_scan(self, start: Key, count: int) -> List[Tuple[Key, Value]]:
        out: List[Tuple[Key, Value]] = []
        with self.meter.phase(PHASE_TRAVERSE):
            si, _ = self._find_segment(start)
        for s in range(si, len(self._segments)):
            seg = self._segments[s]
            i = self._segment_lower_bound(seg, start) if s == si else 0
            j = bisect.bisect_left(seg.buf_keys, start) if s == si else 0
            while len(out) < count and (i < len(seg.keys) or j < len(seg.buf_keys)):
                take_main = j >= len(seg.buf_keys) or (
                    i < len(seg.keys) and seg.keys[i] <= seg.buf_keys[j]
                )
                if take_main:
                    out.append((seg.keys[i], seg.values[i]))
                    i += 1
                else:
                    out.append((seg.buf_keys[j], seg.buf_values[j]))
                    j += 1
                self.meter.charge(SCAN_ENTRY)
            if len(out) >= count:
                break
            if s + 1 < len(self._segments):
                self.meter.charge(NODE_HOP)
        return out

    # -- memory -----------------------------------------------------------------

    def memory_usage(self) -> MemoryBreakdown:
        inner = self._router.memory_usage().total
        leaf = 0
        for seg in self._segments:
            leaf += _SEGMENT_HEADER_BYTES
            leaf += len(seg.keys) * (KEY_BYTES + PAYLOAD_BYTES)
            leaf += self.buffer_size * (KEY_BYTES + PAYLOAD_BYTES)  # buffer arena
        return MemoryBreakdown(inner=inner, leaf=leaf)

    def debug_validate(self) -> List[Violation]:
        """Segment/buffer invariants plus full validation of the inner
        routing B+-tree: strictly increasing pivots anchored at 0,
        trained and buffered arrays sorted and within the pivot range,
        buffers within ``buffer_size`` (an overflow must have merged),
        no key both trained and buffered, ε-bounded model residuals,
        and the router's leaves mirroring the segment pivot list
        exactly.  Router violations are re-reported under their
        ``btree.*`` rule names.  Never charges the meter.
        """
        out: List[Violation] = []
        segs = self._segments
        if not segs:
            return [Violation(0, "fiting.pivot-order",
                              "index has no segments at all")]
        if segs[0].first_key != 0:
            out.append(Violation(
                segs[0].node_id, "fiting.pivot-order",
                f"first pivot is {segs[0].first_key}, expected 0"))
        out.extend(sorted_violations(
            [s.first_key for s in segs], 0, "fiting.pivot-order",
            what="pivots"))
        total = 0
        for si, seg in enumerate(segs):
            hi = segs[si + 1].first_key if si + 1 < len(segs) else None
            out.extend(sorted_violations(
                seg.keys, seg.node_id, "fiting.keys-sorted"))
            out.extend(sorted_violations(
                seg.buf_keys, seg.node_id, "fiting.buffer-sorted",
                what="buf_keys"))
            for keys in (seg.keys, seg.buf_keys):
                out.extend(range_violation(
                    keys, seg.first_key, hi, seg.node_id,
                    "fiting.key-range"))
            if (len(seg.keys) != len(seg.values)
                    or len(seg.buf_keys) != len(seg.buf_values)):
                out.append(Violation(
                    seg.node_id, "fiting.arrays",
                    "key and value arrays have different lengths"))
            if len(seg.buf_keys) > self.buffer_size:
                out.append(Violation(
                    seg.node_id, "fiting.buffer-bound",
                    f"buffer holds {len(seg.buf_keys)} > buffer_size "
                    f"{self.buffer_size} (missed merge)"))
            dup = set(seg.keys) & set(seg.buf_keys)
            if dup:
                out.append(Violation(
                    seg.node_id, "fiting.buffer-shadow",
                    f"key(s) {sorted(dup)[:3]} both trained and "
                    f"buffered"))
            if seg.keys:
                out.extend(residual_violations(
                    seg.model, seg.keys, 0, self.epsilon, seg.node_id,
                    "fiting.epsilon"))
            total += len(seg.keys) + len(seg.buf_keys)
        if total != self._size:
            out.append(Violation(
                0, "fiting.size",
                f"segments hold {total} keys but len(index) == "
                f"{self._size}"))
        # The router is itself an OrderedIndex: validate it in full,
        # then check it stays in sync with the segment list.
        out.extend(self._router.debug_validate())
        router_keys: List[Key] = []
        leaf = self._router._root
        while hasattr(leaf, "children"):  # descend to the leftmost leaf
            leaf = leaf.children[0]
        while leaf is not None:
            router_keys.extend(leaf.keys)
            leaf = leaf.next
        if router_keys != [s.first_key for s in segs]:
            out.append(Violation(
                0, "fiting.router-sync",
                f"router holds {len(router_keys)} pivots but the index "
                f"has {len(segs)} segments (or pivots differ)"))
        return out

    def segment_count(self) -> int:
        return len(self._segments)
