"""XIndex (Tang et al., PPoPP 2020) — delta-merge learned index.

Two-layer structure: a root that routes to *groups*; each group owns a
sorted data array approximated by up to ``max_models_per_group`` linear
models (error bound 32, Table 1) and a per-group *delta* absorbing
inserts.  When a delta fills up, the group *compacts*: delta and data
are merged and the models retrained.

Upstream XIndex performs compaction on a background thread; the paper
pins that thread to the same core as the workers (same CPU budget for
every index) and shows the resulting context-switch/merge cost as
XIndex's signature tail-latency blow-up (Figures 10–11).  We reproduce
that execution model faithfully for a single CPU: the merge runs inline
and its full cost lands on the unlucky triggering operation — exactly
what a pinned background thread does to the foreground latency
distribution.  The concurrency adapter models the RCU handshake.

Deletes are not part of the paper's XIndex evaluation (Figure 7
excludes it); updates are in-place.
"""

from __future__ import annotations

import bisect
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.cost import (
    ALLOC_NODE,
    CACHE_PROBE,
    charge_binary_search,
    KEY_COMPARE,
    KEY_SHIFT,
    MODEL_EVAL,
    NODE_HOP,
    PHASE_COLLISION,
    PHASE_SEARCH,
    PHASE_SMO,
    PHASE_TRAVERSE,
    SCAN_ENTRY,
    TRAIN_KEY,
)
from repro.core.hardness import Segment, optimal_pla
from repro.core.validate import (
    Violation,
    range_violation,
    residual_violations,
    segment_partition_violations,
    sorted_violations,
)
from repro.indexes.base import (
    KEY_BYTES,
    PAYLOAD_BYTES,
    POINTER_BYTES,
    Key,
    MemoryBreakdown,
    OpRecord,
    OrderedIndex,
    Value,
)
from repro.indexes import batching
from repro.indexes.linear_model import LinearModel

_GROUP_HEADER_BYTES = 64
_MODEL_BYTES = 24


class _Group:
    __slots__ = ("node_id", "pivot", "keys", "values", "segments", "delta_keys", "delta_values")

    def __init__(self, node_id: int, pivot: Key) -> None:
        self.node_id = node_id
        self.pivot = pivot
        self.keys: List[Key] = []
        self.values: List[Value] = []
        self.segments: List[Segment] = []
        self.delta_keys: List[Key] = []
        self.delta_values: List[Value] = []


class XIndex(OrderedIndex):
    """XIndex with the paper's Table-1 configuration."""

    name = "XIndex"
    is_learned = True
    supports_delete = False
    supports_range = True

    def __init__(
        self,
        epsilon: int = 32,
        delta_size: int = 256,
        max_models_per_group: int = 4,
        target_group_keys: int = 1024,
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        self.epsilon = epsilon
        self.delta_size = delta_size
        self.max_models_per_group = max_models_per_group
        self.target_group_keys = target_group_keys
        self._groups: List[_Group] = [_Group(self._next_node_id(), 0)]
        self._root_model = LinearModel()
        self.compaction_count = 0
        #: Virtual time the last compaction cost — tail-latency benches
        #: read this to attribute merge spikes.
        self.last_compaction_cost = 0.0
        #: Batch-lookup tables; ``None`` = stale (see ``_batch_tables``).
        self._batch_cache: Any = None

    # -- build --------------------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        self.check_sorted(items)
        self._invalidate_batch_cache()
        self._groups = []
        for start in range(0, len(items), self.target_group_keys):
            chunk = items[start : start + self.target_group_keys]
            g = _Group(self._next_node_id(), chunk[0][0] if start else 0)
            g.keys = [k for k, _ in chunk]
            g.values = [v for _, v in chunk]
            self._retrain_group(g)
            self._groups.append(g)
            self.meter.charge(ALLOC_NODE)
        if not self._groups:
            self._groups = [_Group(self._next_node_id(), 0)]
        self._train_root()
        self._size = len(items)

    def _train_root(self) -> None:
        pivots = [g.pivot for g in self._groups]
        self._root_model = LinearModel.train(pivots)
        self.meter.charge(TRAIN_KEY, len(pivots))

    def _retrain_group(self, g: _Group) -> None:
        g.segments = optimal_pla(g.keys, self.epsilon) if g.keys else []
        self.meter.charge(TRAIN_KEY, len(g.keys))

    # -- routing ------------------------------------------------------------------

    def _find_group(self, key: Key) -> Tuple[int, _Group]:
        # Root structure access (upstream: a 2-level RMI) is a pointer
        # chase of its own before the group node is reached.
        self.meter.charge(NODE_HOP)
        self.meter.charge(MODEL_EVAL)
        n = len(self._groups)
        hint = self._root_model.predict_clamped(key, n)
        # Local search around the root model's prediction.
        i = hint
        probes = 1
        while i > 0 and self._groups[i].pivot > key:
            i -= 1
            probes += 1
        while i + 1 < n and self._groups[i + 1].pivot <= key:
            i += 1
            probes += 1
        self.meter.charge(KEY_COMPARE, probes)
        return i, self._groups[i]

    def _group_lower_bound(self, g: _Group, key: Key) -> int:
        """Model-guided lower bound in the group's main array."""
        if not g.keys:
            return 0
        # Pick the segment (≤ 4, so a short scan).
        seg = g.segments[0]
        for s in g.segments:
            self.meter.charge(KEY_COMPARE)
            if s.first_key <= key:
                seg = s
            else:
                break
        self.meter.charge(MODEL_EVAL)
        pred = int(seg.model.predict(key))
        n = len(g.keys)
        hi = max(min(pred + self.epsilon + 2, n), 0)
        lo = min(max(pred - self.epsilon - 1, 0), hi)
        probes = 0
        while lo < hi:
            probes += 1
            mid = (lo + hi) // 2
            if g.keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        charge_binary_search(self.meter, probes)
        return lo

    # -- operations ---------------------------------------------------------------

    def lookup(self, key: Key) -> Optional[Value]:
        with self.meter.phase(PHASE_TRAVERSE):
            gi, g = self._find_group(key)
            self.meter.charge(NODE_HOP)
        with self.meter.phase(PHASE_SEARCH):
            i = self._group_lower_bound(g, key)
            if i < len(g.keys) and g.keys[i] == key:
                self.last_op = OpRecord(op="lookup", key=key, found=True,
                                        path=[g.node_id], nodes_traversed=2)
                return g.values[i]
            # Miss in main: probe the delta.
            self.meter.charge(NODE_HOP)
            j = bisect.bisect_left(g.delta_keys, key)
            self.meter.charge(KEY_COMPARE, max(1, len(g.delta_keys).bit_length()))
            if j < len(g.delta_keys) and g.delta_keys[j] == key:
                self.last_op = OpRecord(op="lookup", key=key, found=True,
                                        path=[g.node_id], nodes_traversed=2)
                return g.delta_values[j]
        self.last_op = OpRecord(op="lookup", key=key, found=False,
                                path=[g.node_id], nodes_traversed=2)
        return None

    def _batch_tables(self):
        """Index-wide arrays for the batch path: group pivots, the
        concatenated frozen/delta key arrays, per-(group, segment)
        model parameters, and a padded 2D table of segment first keys
        for the vectorized segment scan.  Rebuilt lazily after any
        mutation; ``False`` when unusable."""
        cache = self._batch_cache
        if cache is None:
            groups = self._groups
            if any(not g.keys for g in groups):
                # Only a pre-bulk-load index has keyless groups; their
                # lower bound short-circuits with no charges, so bail.
                cache = self._batch_cache = False
                return cache
            pivots = batching.int64_cache([g.pivot for g in groups])
            models = batching.model_arrays(
                [s.model for g in groups for s in g.segments])
            main = batching.ConcatTable.build([g.keys for g in groups])
            delta = batching.ConcatTable.build(
                [g.delta_keys for g in groups])
            fks = batching.int64_cache(
                [s.first_key for g in groups for s in g.segments])
            if (pivots is None or models is None or main is None
                    or delta is None or fks is None):
                cache = self._batch_cache = False
                return cache
            np = batching._np
            nm = np.asarray([len(g.segments) for g in groups],
                            dtype=np.int64)
            seg_off = np.zeros(len(groups) + 1, dtype=np.int64)
            np.cumsum(nm, out=seg_off[1:])
            fk2d = np.zeros((len(groups), int(nm.max())), dtype=np.int64)
            for gi, g in enumerate(groups):
                fk2d[gi, : len(g.segments)] = fks[seg_off[gi]:seg_off[gi + 1]]
            node_ids = [g.node_id for g in groups]
            cache = self._batch_cache = (
                pivots, models, main, delta, nm, seg_off, fk2d, node_ids)
        return cache

    def _lookup_batch(self, keys: Sequence[Key]):
        """Vectorized lookup: root-model routing with the hint walk
        replayed as ``1 + |i_final - hint|``, a masked 2D segment scan
        (groups hold at most ~4 models), rank-replayed ±ε window
        searches over the concatenated frozen arrays, and the same
        trick for the per-group deltas."""
        ks = batching.key_array(keys)
        if ks is None:
            return None
        cache = self._batch_tables()
        if cache is False:
            return None
        (pivots, (slopes, intercepts, anchors), main, delta, nm, seg_off,
         fk2d, node_ids) = cache
        np = batching._np
        B = len(ks)
        hint = batching.predict_clamped_vec(
            self._root_model, ks, len(node_ids))
        gi = np.maximum(np.searchsorted(pivots, ks, side="right") - 1, 0)
        t_kc = 1 + np.abs(gi - hint)
        live = (np.arange(fk2d.shape[1], dtype=np.int64)[None, :]
                < nm[gi][:, None])
        c = ((fk2d[gi] <= ks[:, None]) & live).sum(axis=1)
        scan_kc = np.minimum(c + 1, nm[gi])
        chosen = seg_off[gi] + np.maximum(c - 1, 0)
        lens = main.lens[gi]
        lo, hi = batching.window_bounds(
            slopes[chosen], intercepts[chosen], anchors[chosen], ks,
            self.epsilon, lens)
        r = main.rank_local(ks, gi)
        probes = batching.simulate_binary(lo, hi, r)
        cp = batching.cache_probe_units(probes)
        i = np.clip(r, lo, hi)
        in_main = (i < lens) & (
            main.cat[np.minimum(main.offsets[gi] + i, len(main.cat) - 1)]
            == ks)
        miss = ~in_main
        if len(delta.cat):
            rd = delta.rank_local(ks, gi)
            in_delta = miss & (rd < delta.lens[gi]) & (
                delta.cat[np.minimum(delta.offsets[gi] + rd,
                                     len(delta.cat) - 1)] == ks)
        else:
            rd = np.zeros(B, dtype=np.int64)
            in_delta = np.zeros(B, dtype=bool)
        s_kc = scan_kc + probes + np.where(miss, delta.bl[gi], 0)
        values: List[Optional[Value]] = [None] * B
        groups = self._groups
        for j in np.flatnonzero(in_main):
            values[j] = groups[int(gi[j])].values[int(i[j])]
        for j in np.flatnonzero(in_delta):
            values[j] = groups[int(gi[j])].delta_values[int(rd[j])]
        found = (in_main | in_delta).tolist()
        gi_list = gi.tolist()
        log = batching.ChargeLog(B)
        log.add(PHASE_TRAVERSE, NODE_HOP, 2)
        log.add(PHASE_TRAVERSE, MODEL_EVAL, 1)
        log.add(PHASE_TRAVERSE, KEY_COMPARE, t_kc)
        log.add(PHASE_SEARCH, KEY_COMPARE, s_kc)
        log.add(PHASE_SEARCH, MODEL_EVAL, 1)
        log.add(PHASE_SEARCH, CACHE_PROBE, cp, reached=cp > 0)
        log.add(PHASE_SEARCH, NODE_HOP, np.ones(B, dtype=np.int64),
                reached=miss)

        def make_record(i: int) -> OpRecord:
            return OpRecord(op="lookup", key=keys[i], found=found[i],
                            path=[node_ids[gi_list[i]]], nodes_traversed=2)

        return batching.BatchLookup(values, log, make_record)

    def insert(self, key: Key, value: Value) -> bool:
        with self.meter.phase(PHASE_TRAVERSE):
            gi, g = self._find_group(key)
            self.meter.charge(NODE_HOP)
        with self.meter.phase(PHASE_SEARCH):
            i = self._group_lower_bound(g, key)
            if i < len(g.keys) and g.keys[i] == key:
                self.last_op = OpRecord(op="insert", key=key, found=True,
                                        path=[g.node_id], nodes_traversed=2)
                return False
            j = bisect.bisect_left(g.delta_keys, key)
            if j < len(g.delta_keys) and g.delta_keys[j] == key:
                self.last_op = OpRecord(op="insert", key=key, found=True,
                                        path=[g.node_id], nodes_traversed=2)
                return False
        shifted = len(g.delta_keys) - j
        self._invalidate_batch_cache()
        with self.meter.phase(PHASE_COLLISION):
            g.delta_keys.insert(j, key)
            g.delta_values.insert(j, value)
            self.meter.charge(KEY_SHIFT, shifted)
        smo = False
        created = 0
        if len(g.delta_keys) >= self.delta_size:
            with self.meter.phase(PHASE_SMO):
                created = self._compact(gi, g)
            smo = True
        self._size += 1
        self.last_op = OpRecord(
            op="insert", key=key, path=[g.node_id], nodes_traversed=2,
            keys_shifted=shifted, smo=smo, nodes_created=created,
        )
        return True

    def _compact(self, gi: int, g: _Group) -> int:
        """Merge the delta into the main array; split the group if its
        PLA now needs more than ``max_models_per_group`` models."""
        self.compaction_count += 1
        before = self.meter.total_time()
        merged_k: List[Key] = []
        merged_v: List[Value] = []
        a, b = 0, 0
        while a < len(g.keys) and b < len(g.delta_keys):
            if g.keys[a] <= g.delta_keys[b]:
                merged_k.append(g.keys[a])
                merged_v.append(g.values[a])
                a += 1
            else:
                merged_k.append(g.delta_keys[b])
                merged_v.append(g.delta_values[b])
                b += 1
        merged_k.extend(g.keys[a:])
        merged_v.extend(g.values[a:])
        merged_k.extend(g.delta_keys[b:])
        merged_v.extend(g.delta_values[b:])
        self.meter.charge(KEY_SHIFT, len(merged_k))
        g.keys, g.values = merged_k, merged_v
        g.delta_keys, g.delta_values = [], []
        self._retrain_group(g)
        created = 0
        if len(g.segments) > self.max_models_per_group:
            # Error tolerance exceeded: split the group in half.
            mid = len(g.keys) // 2
            right = _Group(self._next_node_id(), g.keys[mid])
            right.keys = g.keys[mid:]
            right.values = g.values[mid:]
            del g.keys[mid:]
            del g.values[mid:]
            self._retrain_group(g)
            self._retrain_group(right)
            self._groups.insert(gi + 1, right)
            self._train_root()
            self.meter.charge(ALLOC_NODE)
            created = 1
        self.last_compaction_cost = self.meter.total_time() - before
        return created

    def update(self, key: Key, value: Value) -> bool:
        _, g = self._find_group(key)
        i = self._group_lower_bound(g, key)
        if i < len(g.keys) and g.keys[i] == key:
            g.values[i] = value
            self.meter.charge(KEY_SHIFT)
            return True
        j = bisect.bisect_left(g.delta_keys, key)
        if j < len(g.delta_keys) and g.delta_keys[j] == key:
            g.delta_values[j] = value
            self.meter.charge(KEY_SHIFT)
            return True
        return False

    # -- scans -----------------------------------------------------------------

    def range_scan(self, start: Key, count: int) -> List[Tuple[Key, Value]]:
        out: List[Tuple[Key, Value]] = []
        with self.meter.phase(PHASE_TRAVERSE):
            gi, g = self._find_group(start)
        first_group = True
        while gi < len(self._groups) and len(out) < count:
            g = self._groups[gi]
            if first_group:
                i = self._group_lower_bound(g, start)
                j = bisect.bisect_left(g.delta_keys, start)
                first_group = False
            else:
                i = j = 0
            # Two-way merge of main and delta.
            while len(out) < count and (i < len(g.keys) or j < len(g.delta_keys)):
                take_main = j >= len(g.delta_keys) or (
                    i < len(g.keys) and g.keys[i] <= g.delta_keys[j]
                )
                if take_main:
                    out.append((g.keys[i], g.values[i]))
                    i += 1
                else:
                    out.append((g.delta_keys[j], g.delta_values[j]))
                    j += 1
                self.meter.charge(SCAN_ENTRY)
            gi += 1
            if gi < len(self._groups):
                self.meter.charge(NODE_HOP)
        return out

    # -- memory -----------------------------------------------------------------

    def memory_usage(self) -> MemoryBreakdown:
        inner = len(self._groups) * (KEY_BYTES + POINTER_BYTES) + _MODEL_BYTES
        leaf = 0
        for g in self._groups:
            leaf += _GROUP_HEADER_BYTES
            leaf += len(g.keys) * (KEY_BYTES + PAYLOAD_BYTES)
            leaf += self.delta_size * (KEY_BYTES + PAYLOAD_BYTES)  # delta arena
            inner += len(g.segments) * _MODEL_BYTES
        return MemoryBreakdown(inner=inner, leaf=leaf)

    # -- introspection ------------------------------------------------------------

    def group_count(self) -> int:
        return len(self._groups)

    # -- validation ---------------------------------------------------------------

    def debug_validate(self) -> List[Violation]:
        """Two-layer invariants: strictly increasing group pivots with
        the first anchored at 0, every key (frozen and delta) inside
        its group's pivot range, sorted frozen and delta arrays with no
        key in both, the delta strictly below ``delta_size`` (a full
        delta must have compacted), PLA segments contiguously
        partitioning each frozen array within the ε bound.  Walks
        groups directly; never charges the meter.
        """
        out: List[Violation] = []
        groups = self._groups
        if not groups:
            return [Violation(0, "xindex.pivot-order",
                              "index has no groups at all")]
        if groups[0].pivot != 0:
            out.append(Violation(
                groups[0].node_id, "xindex.pivot-order",
                f"first pivot is {groups[0].pivot}, expected 0"))
        out.extend(sorted_violations(
            [g.pivot for g in groups], 0, "xindex.pivot-order",
            what="pivots"))
        total = 0
        for gi, g in enumerate(groups):
            hi = groups[gi + 1].pivot if gi + 1 < len(groups) else None
            for keys, what, rule in (
                    (g.keys, "keys", "xindex.keys-sorted"),
                    (g.delta_keys, "delta_keys", "xindex.delta-sorted")):
                out.extend(sorted_violations(
                    keys, g.node_id, rule, what=what))
                out.extend(range_violation(
                    keys, g.pivot, hi, g.node_id, "xindex.key-range"))
            if len(g.keys) != len(g.values):
                out.append(Violation(
                    g.node_id, "xindex.arrays",
                    f"{len(g.keys)} keys vs {len(g.values)} values"))
            if len(g.delta_keys) != len(g.delta_values):
                out.append(Violation(
                    g.node_id, "xindex.arrays",
                    f"{len(g.delta_keys)} delta keys vs "
                    f"{len(g.delta_values)} delta values"))
            if len(g.delta_keys) >= self.delta_size:
                out.append(Violation(
                    g.node_id, "xindex.delta-bound",
                    f"delta holds {len(g.delta_keys)} >= delta_size "
                    f"{self.delta_size} (missed compaction)"))
            dup = set(g.keys) & set(g.delta_keys)
            if dup:
                out.append(Violation(
                    g.node_id, "xindex.delta-shadow",
                    f"key(s) {sorted(dup)[:3]} present in both the "
                    f"frozen array and the delta"))
            out.extend(segment_partition_violations(
                g.segments, len(g.keys), g.node_id, "xindex.segments"))
            for seg in g.segments:
                out.extend(residual_violations(
                    seg.model,
                    g.keys[seg.first_index:seg.first_index + seg.length],
                    seg.first_index, self.epsilon, g.node_id,
                    "xindex.epsilon"))
            total += len(g.keys) + len(g.delta_keys)
        if total != self._size:
            out.append(Violation(
                0, "xindex.size",
                f"groups hold {total} keys but len(index) == "
                f"{self._size}"))
        return out
