"""Linear models and model-based search shared by the learned indexes.

Every learned index in the study is, at heart, a tree of linear models
``position ≈ slope * key + intercept``.  This module provides:

* :class:`LinearModel` — train/predict over (key, position) pairs,
* :func:`fmcd_model` — LIPP's collision-minimizing model construction,
* :func:`exponential_search` / :func:`biased_search` — last-mile search
  primitives with cost metering.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

try:  # numpy accelerates large fits; everything works without it
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.core.cost import (
    CostMeter,
    charge_binary_search,
    charge_local_search,
)

#: Fits over fewer keys than this stay in pure Python (array setup
#: overhead dominates below it).
_NUMPY_MIN_N = 256


class LinearModel:
    """``pos = slope * (key - anchor) + intercept``.

    The integer ``anchor`` is subtracted *before* the float multiply:
    raw 64-bit keys have a float64 ulp of ~16, which would make nearby
    keys indistinguishable (and did, before this existed — LIPP's FMCD
    placement livelocked on dense clusters of huge keys).  Anchoring at
    the trained keys' base keeps the multiply in exact-float territory.

    ``__slots__`` keeps instances dict-free: predict/predict_clamped are
    the hottest statements in the whole repository, and slot loads of
    ``slope``/``anchor``/``intercept`` shave a dict probe off each of
    the three attribute reads per call.  For loops that evaluate one
    model many times, :meth:`predictor` hoists the attribute reads and
    the ``n - 1`` clamp bound out of the loop entirely.
    """

    __slots__ = ("slope", "intercept", "anchor")

    def __init__(self, slope: float = 0.0, intercept: float = 0.0,
                 anchor: int = 0) -> None:
        self.slope = slope
        self.intercept = intercept
        self.anchor = anchor

    def __repr__(self) -> str:
        return (f"LinearModel(slope={self.slope!r}, "
                f"intercept={self.intercept!r}, anchor={self.anchor!r})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinearModel):
            return NotImplemented
        return (self.slope, self.intercept, self.anchor) == (
            other.slope, other.intercept, other.anchor)

    __hash__ = None  # value-equal and mutable, like the dataclass it replaced

    def predict(self, key: int) -> float:
        return self.slope * (key - self.anchor) + self.intercept

    def predict_clamped(self, key: int, n: int) -> int:
        """Predicted slot in ``[0, n-1]``."""
        if n <= 0:
            return 0
        p = int(self.slope * (key - self.anchor) + self.intercept)
        if p < 0:
            return 0
        if p >= n:
            return n - 1
        return p

    def predictor(self, n: int) -> Callable[[int], int]:
        """A closure computing :meth:`predict_clamped` for fixed ``n``.

        Hoists the three attribute loads and the clamp bound so hot
        loops (bulk builds, FMCD placement) pay only the arithmetic.
        The float expression is unchanged — predictions are bit-equal.
        """
        if n <= 0:
            return lambda key: 0
        slope = self.slope
        intercept = self.intercept
        anchor = self.anchor
        hi = n - 1

        def predict(key: int) -> int:
            p = int(slope * (key - anchor) + intercept)
            if p < 0:
                return 0
            if p > hi:
                return hi
            return p

        return predict

    def inverse(self, position: float) -> int:
        """Smallest key mapping to at least ``position`` (approximate)."""
        if self.slope <= 0:
            return self.anchor
        import math

        return self.anchor + int(math.ceil((position - self.intercept) / self.slope))

    def scaled(self, factor: float) -> "LinearModel":
        """The same mapping stretched to a ``factor``× larger range."""
        return LinearModel(self.slope * factor, self.intercept * factor, self.anchor)

    @staticmethod
    def train(keys: Sequence[int], positions: Optional[Sequence[float]] = None) -> "LinearModel":
        """Least-squares fit of positions (default ``0..n-1``) on keys.

        Uses a numerically stable centered formulation anchored at the
        first key: 64-bit keys would overflow float64 precision otherwise.
        """
        n = len(keys)
        if n == 0:
            return LinearModel()
        if positions is None:
            positions = range(n)
        if n == 1:
            return LinearModel(0.0, float(positions[0]), keys[0])
        base = keys[0]
        if _np is not None and n >= _NUMPY_MIN_N and keys[-1] - base < 2**52:
            # Vectorized fast path: shifted keys fit float64 exactly.
            ks = _np.asarray([k - base for k in keys], dtype=_np.float64)
            ps = _np.asarray(positions, dtype=_np.float64)
            mean_k = float(ks.mean())
            mean_p = float(ps.mean())
            dk = ks - mean_k
            den = float(dk @ dk)
            if den == 0.0:
                return LinearModel(0.0, mean_p, base)
            slope = float(dk @ (ps - mean_p)) / den
            return LinearModel(slope, mean_p - slope * mean_k, base)
        shifted = [k - base for k in keys]
        mean_k = sum(shifted) / n
        mean_p = sum(positions) / n
        num = 0.0
        den = 0.0
        for k, p in zip(shifted, positions):
            dk = k - mean_k
            num += dk * (p - mean_p)
            den += dk * dk
        if den == 0.0:
            return LinearModel(0.0, mean_p, base)
        slope = num / den
        return LinearModel(slope, mean_p - slope * mean_k, base)

    @staticmethod
    def endpoints(lo_key: int, hi_key: int, n: int) -> "LinearModel":
        """Model mapping ``[lo_key, hi_key]`` linearly onto ``[0, n)``.

        This is the two-point fit ALEX/LIPP use when building inner nodes
        from key-range boundaries.
        """
        if hi_key <= lo_key:
            return LinearModel(0.0, 0.0, lo_key)
        slope = (n - 1) / (hi_key - lo_key) if n > 1 else 0.0
        return LinearModel(slope, 0.0, lo_key)


def fmcd_model(keys: Sequence[int], n_slots: int) -> LinearModel:
    """LIPP's FMCD ("fastest minimum conflict degree") model heuristic.

    Finds a linear mapping of ``keys`` onto ``n_slots`` slots that keeps
    conflicts low by fitting through two interior quantile keys, which is
    what LIPP's reference implementation converges to in practice.  Falls
    back to an endpoint fit for tiny inputs.
    """
    m = len(keys)
    if m < 2 or n_slots < 2:
        return LinearModel.endpoints(keys[0] if keys else 0, keys[-1] if keys else 1, n_slots)
    # Fit through ~10th and ~90th percentile keys to resist outliers.
    i = max(0, m // 10)
    j = min(m - 1, m - 1 - m // 10)
    if j <= i:
        i, j = 0, m - 1
    ki, kj = keys[i], keys[j]
    if kj == ki:
        return LinearModel.endpoints(keys[0], keys[-1] + 1, n_slots)
    # Map rank i -> slot proportional position, rank j likewise; anchor
    # at ki so prediction stays exact for tightly clustered huge keys.
    target_i = (i + 0.5) / m * n_slots
    target_j = (j + 0.5) / m * n_slots
    slope = (target_j - target_i) / (kj - ki)
    return LinearModel(slope, target_i, ki)


def exponential_search(
    keys: Sequence[int],
    key: int,
    hint: int,
    meter: Optional[CostMeter] = None,
) -> Tuple[int, int]:
    """ALEX-style exponential search around a predicted position.

    ``keys`` must be sorted.  Returns ``(lower_bound_index, probes)``
    where ``lower_bound_index`` is the first index with
    ``keys[idx] >= key`` (may equal ``len(keys)``).
    """
    n = len(keys)
    if n == 0:
        return 0, 0
    if hint < 0:
        hint = 0
    elif hint >= n:
        hint = n - 1
    probes = 1
    if keys[hint] >= key:
        # Grow bound leftwards.
        bound = 1
        lo = hint - bound
        while lo >= 0 and keys[lo] >= key:
            probes += 1
            bound <<= 1
            lo = hint - bound
        lo = max(lo, 0)
        hi = hint
        if keys[hi] == key:
            hi += 0
    else:
        # Grow bound rightwards.
        bound = 1
        hi = hint + bound
        while hi < n and keys[hi] < key:
            probes += 1
            bound <<= 1
            hi = hint + bound
        hi = min(hi, n)
        lo = hint
    # Binary search within [lo, hi].
    while lo < hi:
        probes += 1
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    if meter is not None:
        charge_local_search(meter, probes, lo - hint)
    return lo, probes


def binary_search_lower(
    keys: Sequence[int],
    key: int,
    meter: Optional[CostMeter] = None,
) -> int:
    """Plain lower-bound binary search with metering."""
    lo, hi = 0, len(keys)
    probes = 0
    while lo < hi:
        probes += 1
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    if meter is not None:
        charge_binary_search(meter, probes)
    return lo
