"""HOT — Height-Optimized Trie (Binna et al., SIGMOD 2018), simplified.

HOT packs runs of binary Patricia (crit-bit) nodes into compound nodes
with a fanout of up to 32, storing only the *discriminating* bits as
sparse partial keys.  The two properties the paper leans on are:

* very low height (few cache misses per traversal), and
* the smallest end-to-end memory footprint of all evaluated indexes
  (Figure 8), because a compound entry costs ~4 bytes of partial key
  plus one pointer instead of full keys or wide null-padded arrays.

This implementation keeps the underlying structure as an explicit
binary crit-bit trie (simple, obviously correct) and models the
compound packing analytically: traversal charges one ``NODE_HOP`` per
*compound* crossed (``_COMPOUND_SPAN`` binary levels ≈ one 32-fanout
compound), and :meth:`memory_usage` prices compound nodes, not binary
ones.  DESIGN.md records this substitution.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.core.cost import (
    ALLOC_NODE,
    KEY_COMPARE,
    NODE_HOP,
    PHASE_COLLISION,
    PHASE_TRAVERSE,
    SCAN_ENTRY,
    SLOT_PROBE,
)
from repro.core.validate import Violation
from repro.indexes.base import (
    POINTER_BYTES,
    Key,
    MemoryBreakdown,
    OpRecord,
    OrderedIndex,
    Value,
)

#: log2(32): binary levels folded into one compound node.
_COMPOUND_SPAN = 5
_KEY_BITS = 64
_COMPOUND_HEADER_BYTES = 24
_PARTIAL_KEY_BYTES = 4


def _bit(key: Key, pos: int) -> int:
    """Bit ``pos`` of the key, 0 = most significant."""
    return (key >> (_KEY_BITS - 1 - pos)) & 1


def _subtree_min(node: Any) -> Key:
    """Minimum key under ``node`` — O(1) because inners cache it."""
    if isinstance(node, _HotInner):
        return node.min_key
    return node.key if node is not None else 0


class _HotLeaf:
    __slots__ = ("key", "value")

    def __init__(self, key: Key, value: Value) -> None:
        self.key = key
        self.value = value


class _HotInner:
    __slots__ = ("node_id", "crit", "left", "right", "min_key")

    def __init__(self, node_id: int, crit: int, left: Any, right: Any) -> None:
        self.node_id = node_id
        self.crit = crit  # discriminating bit position
        self.left = left
        self.right = right
        # Minimum key of the subtree; needed because a search key may
        # diverge from the subtree's shared prefix at a *skipped* bit,
        # so bit-following alone cannot bound a range scan.
        self.min_key: Key = _subtree_min(left)


class HOT(OrderedIndex):
    """Height-optimized trie over 64-bit integer keys."""

    name = "HOT"
    is_learned = False
    # Upstream HOT (and HOT-ROWEX) does not implement deletion; the paper
    # excludes it from the deletion study, and so do we.
    supports_delete = False
    supports_range = True

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self._root: Optional[Any] = None
        self._n_inner = 0

    # -- build --------------------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        self.check_sorted(items)
        self._root = self._build(items, 0) if items else None
        self._size = len(items)

    def _build(self, items: Sequence[Tuple[Key, Value]], from_bit: int) -> Any:
        if len(items) == 1:
            return _HotLeaf(items[0][0], items[0][1])
        lo, hi = items[0][0], items[-1][0]
        # First bit where lo and hi differ is the crit bit of this subtree.
        diff = lo ^ hi
        crit = _KEY_BITS - diff.bit_length()
        split_point = lo | ((1 << (_KEY_BITS - 1 - crit)) - 1)  # last key with bit=0
        # Binary search for the first item whose crit bit is 1.
        l, r = 0, len(items)
        while l < r:
            mid = (l + r) // 2
            if items[mid][0] <= split_point:
                l = mid + 1
            else:
                r = mid
        self._n_inner += 1
        return _HotInner(
            self._next_node_id(),
            crit,
            self._build(items[:l], crit + 1),
            self._build(items[l:], crit + 1),
        )

    # -- traversal helpers ----------------------------------------------------

    def _charge_descent(self, binary_levels: int) -> None:
        """One NODE_HOP per compound crossed plus in-compound probes."""
        compounds = (binary_levels + _COMPOUND_SPAN - 1) // _COMPOUND_SPAN
        self.meter.charge(NODE_HOP, compounds)
        self.meter.charge(SLOT_PROBE, binary_levels)

    def _descend(self, key: Key) -> Tuple[Optional[_HotLeaf], List[int], int]:
        """Walk to the candidate leaf; returns (leaf, path_ids, levels)."""
        node = self._root
        path: List[int] = []
        levels = 0
        while isinstance(node, _HotInner):
            if levels % _COMPOUND_SPAN == 0:
                path.append(node.node_id)  # compound-root identity
            node = node.right if _bit(key, node.crit) else node.left
            levels += 1
        return node, path, levels

    # -- operations -------------------------------------------------------------

    def lookup(self, key: Key) -> Optional[Value]:
        with self.meter.phase(PHASE_TRAVERSE):
            leaf, path, levels = self._descend(key)
            self._charge_descent(levels)
        self.meter.charge(KEY_COMPARE)
        found = leaf is not None and leaf.key == key
        self.last_op = OpRecord(
            op="lookup", key=key, found=found, path=path,
            nodes_traversed=max(1, len(path)),
        )
        return leaf.value if found else None

    def insert(self, key: Key, value: Value) -> bool:
        if self._root is None:
            self._root = _HotLeaf(key, value)
            self._size = 1
            self.meter.charge(ALLOC_NODE)
            self.last_op = OpRecord(op="insert", key=key, nodes_created=1)
            return True
        with self.meter.phase(PHASE_TRAVERSE):
            leaf, path, levels = self._descend(key)
            self._charge_descent(levels)
        self.meter.charge(KEY_COMPARE)
        if leaf.key == key:
            self.last_op = OpRecord(
                op="insert", key=key, found=True, path=path,
                nodes_traversed=len(path),
            )
            return False
        with self.meter.phase(PHASE_COLLISION):
            diff = leaf.key ^ key
            crit = _KEY_BITS - diff.bit_length()
            # Insert the new inner node at the first point on the root path
            # whose crit position exceeds the differing bit.
            new_leaf = _HotLeaf(key, value)
            self._n_inner += 1
            node_id = self._next_node_id()
            parent: Optional[_HotInner] = None
            node = self._root
            while isinstance(node, _HotInner) and node.crit < crit:
                # The new key lands somewhere in this subtree: keep the
                # cached minimum (used by range-scan pruning) current.
                if key < node.min_key:
                    node.min_key = key
                parent = node
                node = node.right if _bit(key, node.crit) else node.left
            if _bit(key, crit):
                new = _HotInner(node_id, crit, node, new_leaf)
            else:
                new = _HotInner(node_id, crit, new_leaf, node)
            if parent is None:
                self._root = new
            elif _bit(key, parent.crit):
                parent.right = new
            else:
                parent.left = new
            self.meter.charge(ALLOC_NODE)
        self._size += 1
        self.last_op = OpRecord(
            op="insert", key=key, path=path, nodes_traversed=len(path),
            nodes_created=1,
        )
        return True

    def update(self, key: Key, value: Value) -> bool:
        leaf, _, levels = self._descend(key)
        self._charge_descent(levels)
        if leaf is not None and leaf.key == key:
            leaf.value = value
            return True
        return False

    # -- range scans ---------------------------------------------------------------

    def range_scan(self, start: Key, count: int) -> List[Tuple[Key, Value]]:
        out: List[Tuple[Key, Value]] = []
        if self._root is None or count <= 0:
            return out
        for leaf in self._iter_from(self._root, start, bounded=True):
            out.append((leaf.key, leaf.value))
            self.meter.charge(SCAN_ENTRY)
            if len(out) >= count:
                break
        return out

    def _iter_from(self, node: Any, start: Key, bounded: bool) -> Iterator[_HotLeaf]:
        if isinstance(node, _HotLeaf):
            if not bounded or node.key >= start:
                yield node
            return
        self.meter.charge(SLOT_PROBE)
        if not bounded or node.min_key >= start:
            yield from self._iter_from(node.left, start, False)
            yield from self._iter_from(node.right, start, False)
            return
        # Subtree straddles ``start``.  left-keys < right-min, so:
        rmin = _subtree_min(node.right)
        if rmin <= start:
            # Everything on the left is < start: skip it entirely.
            yield from self._iter_from(node.right, start, True)
        else:
            yield from self._iter_from(node.left, start, True)
            yield from self._iter_from(node.right, start, False)

    # -- validation ---------------------------------------------------------------

    def debug_validate(self) -> List[Violation]:
        """Binary-trie invariants: crit-bit positions strictly increase
        along every root-to-leaf path, each leaf's key matches every
        (crit, side) constraint accumulated on its path (left subtree
        bit 0, right bit 1 — the radix-prefix property), cached
        ``min_key`` equals the true subtree minimum, and leaf count
        matches ``len(index)``.  Walks nodes directly; never charges
        the meter.
        """
        out: List[Violation] = []
        count = 0

        def walk(node: Any, constraints: List[Tuple[int, int]]) -> Key:
            nonlocal count
            if isinstance(node, _HotLeaf):
                count += 1
                for crit, side in constraints:
                    if _bit(node.key, crit) != side:
                        out.append(Violation(
                            0, "hot.bit-partition",
                            f"leaf key {node.key} has bit {crit} == "
                            f"{_bit(node.key, crit)} but sits on the "
                            f"{'right' if side else 'left'} side"))
                        break
                return node.key
            if constraints and node.crit <= constraints[-1][0]:
                out.append(Violation(
                    node.node_id, "hot.crit-order",
                    f"crit bit {node.crit} not below parent crit "
                    f"{constraints[-1][0]}"))
            if node.crit < 0 or node.crit >= _KEY_BITS:
                out.append(Violation(
                    node.node_id, "hot.crit-order",
                    f"crit bit {node.crit} outside 0..{_KEY_BITS - 1}"))
            lmin = walk(node.left, constraints + [(node.crit, 0)])
            rmin = walk(node.right, constraints + [(node.crit, 1)])
            true_min = min(lmin, rmin)
            if node.min_key != true_min:
                out.append(Violation(
                    node.node_id, "hot.min-key",
                    f"cached min_key {node.min_key} but subtree minimum "
                    f"is {true_min}"))
            return true_min

        if self._root is not None:
            walk(self._root, [])
        if count != self._size:
            out.append(Violation(
                0, "hot.size",
                f"{count} leaves but len(index) == {self._size}"))
        return out

    # -- memory ----------------------------------------------------------------

    def memory_usage(self) -> MemoryBreakdown:
        # HOT packs the trie aggressively: a compound node shares one set
        # of discriminating bit positions among up to 32 entries, each
        # entry holding a sparse partial key of a few *bits* plus one
        # pointer; intra-compound structure is implicit in the linearized
        # layout.  Amortized across measurements in the HOT paper this
        # comes to ~2.5 bytes of trie per key on integer data — the reason
        # HOT is the smallest index in Figure 8.
        inner = int(self._size * 2.5) if self._size else 0
        n_compounds = max(1, (self._n_inner + 30) // 31) if self._n_inner else 0
        inner += n_compounds * _COMPOUND_HEADER_BYTES
        # HOT stores *tuple pointers*: the record itself lives outside
        # the index (unlike ALEX/PGM/LIPP whose leaf layer embeds the
        # key-payload pairs) — this is why HOT is Figure 8's smallest.
        leaf = self._size * POINTER_BYTES
        return MemoryBreakdown(inner=inner, leaf=leaf)

    @property
    def compound_height(self) -> int:
        """Height in compound nodes (what a traversal pays for)."""
        def depth(node: Any) -> int:
            if not isinstance(node, _HotInner):
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        return (depth(self._root) + _COMPOUND_SPAN - 1) // _COMPOUND_SPAN
