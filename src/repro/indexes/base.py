"""Common interface implemented by every index in the suite.

All indexes — learned and traditional — are ordered maps from unsigned
64-bit integer keys to opaque payloads, matching the paper's setup of
8-byte keys paired with 8-byte payloads.  Every index:

* supports ``bulk_load`` (sorted build), ``lookup``, ``insert`` and
  ``update``; most support ``delete`` and ``range_scan`` (the paper notes
  LIPP/Masstree/Wormhole/B+TreeOLC/HOT-ROWEX lack deletes upstream; we
  implement deletes where the paper's authors did, i.e. for LIPP/ALEX),
* meters its work on a :class:`~repro.core.cost.CostMeter`,
* records an :class:`OpRecord` for its most recent operation so the
  benchmark harness can compute Table-3 statistics and the concurrency
  adapters can derive lock/contention traces,
* reports an analytic :class:`MemoryBreakdown` mirroring the C++ struct
  layouts (Python object overhead would distort Figure 8 beyond use).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    ClassVar,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.cost import CostMeter

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.validate import Violation

Key = int
Value = Any

#: Size in bytes of one key and one payload in the modelled C++ layout.
KEY_BYTES = 8
PAYLOAD_BYTES = 8
POINTER_BYTES = 8


@dataclass
class MemoryBreakdown:
    """Analytic end-to-end size of an index, in bytes.

    ``inner`` is the non-leaf (model / routing) layer, ``leaf`` the leaf
    layer including key-position/key-payload slots — the paper's point is
    that the leaf layer dominates once updates force explicit key storage.
    """

    inner: int = 0
    leaf: int = 0
    metadata: int = 0

    @property
    def total(self) -> int:
        return self.inner + self.leaf + self.metadata


@dataclass
class OpRecord:
    """What the most recent operation did, structurally.

    The fields mirror Table 3 of the paper plus what the concurrency
    adapters need: the identities of nodes on the traversal path (for
    lock-contention replay) and the work done at the leaf.
    """

    op: str = ""
    key: Key = 0
    found: bool = False
    #: Serial ids of nodes visited root→leaf (inclusive).
    path: List[int] = field(default_factory=list)
    #: Number of nodes traversed (== len(path) unless the index skips).
    nodes_traversed: int = 0
    #: Keys moved to make room (ALEX/B+-tree style collision resolution).
    keys_shifted: int = 0
    #: New nodes allocated by this operation (LIPP chaining, splits).
    nodes_created: int = 0
    #: Whether a structural modification operation ran.
    smo: bool = False
    #: Last-mile search distance (slots probed around the prediction).
    search_distance: int = 0


class OrderedIndex(ABC):
    """Abstract ordered secondary-memory-free index."""

    #: Human-readable name used in reports ("ALEX", "ART", ...).
    name: ClassVar[str] = "index"
    #: Whether the index is a learned (model-based) index.
    is_learned: ClassVar[bool] = False
    supports_delete: ClassVar[bool] = True
    supports_range: ClassVar[bool] = True
    supports_duplicates: ClassVar[bool] = False
    #: Wrappers composing other indexes (e.g. the migration
    #: multiplexer) — real implementations of the contract, but not
    #: standalone registrable competitors.
    is_adapter: ClassVar[bool] = False

    def __init__(self, meter: Optional[CostMeter] = None) -> None:
        self.meter = meter if meter is not None else CostMeter()
        self.last_op = OpRecord()
        self._size = 0
        self._node_serial = 0
        #: Vectorized-lookup state (tables, or a wrapper's delegation
        #: binding); dropped through :meth:`_invalidate_batch_cache`.
        self._batch_cache: Optional[Any] = None
        #: Bumped on every invalidation; batch loops snapshot it to
        #: detect wrapper-driven mutation mid-batch.
        self._mutation_gen = 0

    # -- node identity -------------------------------------------------------

    def _next_node_id(self) -> int:
        """Deterministic serial id for a newly allocated node."""
        self._node_serial += 1
        return self._node_serial

    # -- required operations ---------------------------------------------------

    @abstractmethod
    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        """Build the index from ``items`` sorted ascending by key.

        Raises ``ValueError`` if the items are not sorted.
        """

    @abstractmethod
    def lookup(self, key: Key) -> Optional[Value]:
        """Return the payload for ``key`` or ``None`` if absent."""

    @abstractmethod
    def insert(self, key: Key, value: Value) -> bool:
        """Insert ``key``.  Returns False if the key already exists
        (for indexes without duplicate support) and leaves it unchanged."""

    def update(self, key: Key, value: Value) -> bool:
        """In-place payload update.  Default: lookup-and-overwrite via
        insert path; subclasses override with a true in-place write."""
        raise NotImplementedError

    def delete(self, key: Key) -> bool:
        """Remove ``key``.  Returns False if absent."""
        raise NotImplementedError(f"{self.name} does not support deletes")

    def range_scan(self, start: Key, count: int) -> List[Tuple[Key, Value]]:
        """Return up to ``count`` pairs with key >= ``start`` ascending."""
        raise NotImplementedError(f"{self.name} does not support range scans")

    # -- batch protocol --------------------------------------------------------
    #
    # The public ``*_many`` entry points are correct by construction: the
    # default loops the scalar ops, so every index supports batches
    # immediately, with identical results, OpRecords, and meter charges.
    # Model-based indexes override the internal ``_lookup_batch`` hook
    # with a numpy fast path that returns the same observables (see
    # ``repro.indexes.batching``); the hook returns ``None`` whenever it
    # cannot guarantee exact parity and the loop fallback runs instead.

    def _lookup_batch(self, keys: Sequence[Key]) -> Optional["Any"]:
        """Vectorized lookup hook: a ``batching.BatchLookup`` with
        per-op values, charge log, and record factory — or ``None`` to
        take the scalar loop."""
        return None

    def _invalidate_batch_cache(self) -> None:
        """The one choke point for dropping batch state.

        Every mutation that can stale a ``_batch_cache`` — an index's
        own structural change, or a wrapper swapping/filling an inner
        index (see :class:`~repro.indexes.multiplex.MultiplexIndex`) —
        must route through here, never assign ``_batch_cache`` raw:
        the generation bump is what lets the batch loops below detect
        mid-batch mutation by a wrapper's scan/pump path."""
        self._mutation_gen += 1
        self._batch_cache = None

    def _loop_records(self, records: Optional[List[Optional[OpRecord]]]) -> Any:
        """Per-op ``last_op`` capture for the loop fallbacks: appends the
        fresh record, or ``None`` when the op did not refresh it."""
        if records is None:
            return None

        def capture(prev: OpRecord) -> None:
            rec = self.last_op
            records.append(rec if rec is not prev else None)

        return capture

    def lookup_many(self, keys: Sequence[Key],
                    records: Optional[List[Optional[OpRecord]]] = None,
                    ) -> List[Optional[Value]]:
        """Batched :meth:`lookup` over ``keys``, in order.

        Observationally identical to calling ``lookup`` in a loop: same
        values, same cost-meter charges (including counter creation
        order), and ``last_op`` reflects the final key.  When
        ``records`` is given, each op's fresh ``OpRecord`` (or ``None``
        if the op left ``last_op`` stale) is appended to it.
        """
        batch = self._lookup_batch(keys)
        if batch is not None:
            batch.log.apply_totals(self.meter)
            n = len(keys)
            if records is not None:
                for i in range(n):
                    rec = batch.make_record(i)
                    records.append(rec)
                    self.last_op = rec
            elif n:
                self.last_op = batch.make_record(n - 1)
            return batch.values
        capture = self._loop_records(records)
        out: List[Optional[Value]] = []
        for key in keys:
            prev = self.last_op
            out.append(self.lookup(key))
            if capture is not None:
                capture(prev)
        return out

    def insert_many(self, pairs: Sequence[Tuple[Key, Value]],
                    records: Optional[List[Optional[OpRecord]]] = None,
                    ) -> List[bool]:
        """Batched :meth:`insert`; duplicate keys within one batch get
        the scalar semantics (later inserts see the earlier ones)."""
        capture = self._loop_records(records)
        out: List[bool] = []
        for key, value in pairs:
            prev = self.last_op
            out.append(self.insert(key, value))
            if capture is not None:
                capture(prev)
        return out

    def scan_many(self, starts: Sequence[Key], count: int,
                  records: Optional[List[Optional[OpRecord]]] = None,
                  ) -> List[List[Tuple[Key, Value]]]:
        """Batched :meth:`range_scan`: one scan of ``count`` per start.

        Shares the batch-cache invalidation hook: a wrapper (e.g. a
        migrating ``MultiplexIndex``) may mutate or even *swap* its
        inner index from inside ``range_scan`` — its pump runs there —
        so if the mutation generation moved during the batch, any batch
        state bound mid-batch is dropped rather than served stale to
        the next ``lookup_many``.
        """
        gen0 = self._mutation_gen
        capture = self._loop_records(records)
        out: List[List[Tuple[Key, Value]]] = []
        for start in starts:
            prev = self.last_op
            out.append(self.range_scan(start, count))
            if capture is not None:
                capture(prev)
        if self._mutation_gen != gen0:
            self._invalidate_batch_cache()
        return out

    # -- introspection ---------------------------------------------------------

    @abstractmethod
    def memory_usage(self) -> MemoryBreakdown:
        """Analytic end-to-end size (modelled C++ layout)."""

    def debug_validate(self) -> List["Violation"]:
        """Full structural-invariant walk; ``[]`` means sound.

        Every index in the registry overrides this with checks specific
        to its structure (gap copies for ALEX, precise positions for
        LIPP, ε-bounds for the PLA family, ...), returning
        :class:`~repro.core.validate.Violation` records rather than
        asserting.  Implementations must walk node structures directly
        — never through ``lookup``/``range_scan`` — so validation can
        run mid-benchmark without charging the cost meter.  The default
        checks only the size floor shared by all implementations.
        """
        from repro.core.validate import Violation

        if self._size < 0:
            return [Violation(0, "index.size-negative",
                              f"_size is {self._size}")]
        return []

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Key) -> bool:
        return self.lookup(key) is not None

    def items(self) -> Iterable[Tuple[Key, Value]]:
        """All pairs in key order (used by tests; may be slow)."""
        if not self.supports_range:
            raise NotImplementedError
        out = self.range_scan(0, len(self))
        return out

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def check_sorted(items: Sequence[Tuple[Key, Value]]) -> None:
        for i in range(1, len(items)):
            if items[i - 1][0] > items[i][0]:
                raise ValueError("bulk_load requires items sorted by key")

    @staticmethod
    def check_sorted_unique(items: Sequence[Tuple[Key, Value]]) -> None:
        for i in range(1, len(items)):
            if items[i - 1][0] >= items[i][0]:
                raise ValueError(
                    "bulk_load requires strictly ascending unique keys"
                )
