"""RMI — the original Recursive Model Index (Kraska et al., SIGMOD 2018).

The paper's Section 2 background: the read-only index that started the
field.  Two stages of linear models over a packed sorted array; stage 1
routes a key to one of ``fanout`` stage-2 models; each stage-2 model
predicts a position with a per-model recorded maximum error, bounding
the last-mile binary search.

Included as the read-only baseline the updatable indexes are measured
against conceptually.  ``insert``/``delete`` raise — that limitation is
the entire motivation of the paper this repository reproduces.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.core.cost import (
    CACHE_PROBE,
    KEY_COMPARE,
    MODEL_EVAL,
    NODE_HOP,
    PHASE_SEARCH,
    PHASE_TRAVERSE,
    SCAN_ENTRY,
    TRAIN_KEY,
    charge_binary_search,
)
from repro.core.validate import Violation, sorted_violations
from repro.indexes import batching
from repro.indexes.base import (
    KEY_BYTES,
    PAYLOAD_BYTES,
    Key,
    MemoryBreakdown,
    OpRecord,
    OrderedIndex,
    Value,
)
from repro.indexes.linear_model import LinearModel

_MODEL_BYTES = 24


class RMI(OrderedIndex):
    """Two-stage recursive model index (read-only)."""

    name = "RMI"
    is_learned = True
    supports_delete = False
    supports_range = True

    def __init__(self, fanout: int = 64, **kwargs: Any) -> None:
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        super().__init__(**kwargs)
        self.fanout = fanout
        self._keys: List[Key] = []
        self._values: List[Value] = []
        self._root = LinearModel()
        self._leaf_models: List[LinearModel] = []
        self._leaf_errors: List[int] = []
        self._batch_cache: Any = None

    # -- build --------------------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        self._invalidate_batch_cache()
        self.check_sorted(items)
        self._keys = [k for k, _ in items]
        self._values = [v for _, v in items]
        self._size = len(items)
        n = len(self._keys)
        self._leaf_models = [LinearModel() for _ in range(self.fanout)]
        self._leaf_errors = [0] * self.fanout
        if n == 0:
            self._root = LinearModel()
            return
        # Stage 1: one model over the whole CDF, scaled to leaf slots.
        self._root = LinearModel.train(self._keys).scaled(self.fanout / n)
        self.meter.charge(TRAIN_KEY, n)
        # Partition by the stage-1 prediction, then fit each partition.
        buckets: List[List[int]] = [[] for _ in range(self.fanout)]
        route = self._root.predictor(self.fanout)
        for idx, k in enumerate(self._keys):
            buckets[route(k)].append(idx)
        for m, bucket in enumerate(buckets):
            if not bucket:
                continue
            ks = [self._keys[i] for i in bucket]
            model = LinearModel.train(ks, bucket)
            self._leaf_models[m] = model
            self._leaf_errors[m] = max(
                (abs(int(model.predict(self._keys[i])) - i) for i in bucket),
                default=0,
            )
            self.meter.charge(TRAIN_KEY, len(ks))

    # -- lookup ------------------------------------------------------------------

    def _lower_bound(self, key: Key) -> int:
        n = len(self._keys)
        if n == 0:
            return 0
        self.meter.charge(MODEL_EVAL)
        m = self._root.predict_clamped(key, self.fanout)
        self.meter.charge(NODE_HOP)  # stage-2 model fetch
        self.meter.charge(MODEL_EVAL)
        model = self._leaf_models[m]
        err = self._leaf_errors[m]
        pred = int(model.predict(key))
        hi = max(min(pred + err + 2, n), 0)
        lo = min(max(pred - err - 1, 0), hi)
        probes = 0
        while lo < hi:
            probes += 1
            mid = (lo + hi) // 2
            if self._keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        charge_binary_search(self.meter, probes)
        # The prediction window is exact only for trained keys; absent
        # keys at bucket edges may need to spill to the neighbours.
        while lo > 0 and self._keys[lo - 1] >= key:
            lo -= 1
            self.meter.charge(KEY_COMPARE)
        while lo < n and self._keys[lo] < key:
            lo += 1
            self.meter.charge(KEY_COMPARE)
        return lo

    def lookup(self, key: Key) -> Optional[Value]:
        with self.meter.phase(PHASE_TRAVERSE):
            pass
        with self.meter.phase(PHASE_SEARCH):
            i = self._lower_bound(key)
        found = i < len(self._keys) and self._keys[i] == key
        self.last_op = OpRecord(op="lookup", key=key, found=found,
                                nodes_traversed=2)
        return self._values[i] if found else None

    def _lookup_batch(self, keys: Sequence[Key]):
        """Vectorized two-stage lookup (see ``repro.indexes.batching``).

        Stage-1 routing, the stage-2 predictions, the bounded binary
        search, and the edge-spill loops are all replayed with rank
        arithmetic: ``np.searchsorted`` gives every key's true rank
        ``r``; every ``self._keys[mid] < key`` comparison is then
        ``mid < r``, and the spill loops walk ``|clip(r, lo, hi) - r|``
        steps to land exactly on ``r``.
        """
        ks = batching.key_array(keys)
        n = len(self._keys)
        if ks is None or n == 0:
            return None
        cache = self._batch_cache
        if cache is None:
            keys_np = batching.int64_cache(self._keys)
            models = batching.model_arrays(self._leaf_models)
            if keys_np is None or models is None:
                return None
            errors = batching.int64_cache(self._leaf_errors)
            cache = self._batch_cache = (keys_np, models, errors)
        keys_np, (slopes, intercepts, anchors), errors = cache
        np = batching._np
        m = batching.predict_clamped_vec(self._root, ks, self.fanout)
        err = errors[m]
        # Per-model error bounds make the window per-key; inline the
        # ``window_bounds`` form with the gathered ``err``.
        pred = batching.predict_vec(slopes[m], intercepts[m], anchors[m], ks)
        c = float(n) + float(errors.max()) + 4.0
        p = np.clip(pred, -c, c).astype(np.int64)
        hi = np.clip(p + err + 2, 0, n)
        lo = np.minimum(np.maximum(p - err - 1, 0), hi)
        r = np.searchsorted(keys_np, ks, side="left")
        probes = batching.simulate_binary(lo, hi, r)
        spill = np.abs(np.clip(r, lo, hi) - r)
        cp = batching.cache_probe_units(probes)
        found = (r < n) & (keys_np[np.minimum(r, n - 1)] == ks)
        B = len(ks)
        log = batching.ChargeLog(B)
        log.add(PHASE_SEARCH, MODEL_EVAL, np.full(B, 2, dtype=np.int64))
        log.add(PHASE_SEARCH, NODE_HOP, np.ones(B, dtype=np.int64))
        log.add(PHASE_SEARCH, KEY_COMPARE, probes + spill)
        log.add(PHASE_SEARCH, CACHE_PROBE, cp, reached=cp > 0)
        values = [None] * B
        vals = self._values
        for i in np.flatnonzero(found):
            values[i] = vals[r[i]]
        found_list = found.tolist()

        def make_record(i: int) -> OpRecord:
            return OpRecord(op="lookup", key=keys[i], found=found_list[i],
                            nodes_traversed=2)

        return batching.BatchLookup(values, log, make_record)

    # -- mutations: the point of the paper ---------------------------------------

    def insert(self, key: Key, value: Value) -> bool:
        raise NotImplementedError(
            "RMI is read-only — use ALEX/LIPP/PGM for dynamic workloads "
            "(that gap is what 'Are Updatable Learned Indexes Ready?' studies)"
        )

    def update(self, key: Key, value: Value) -> bool:
        i = self._lower_bound(key)
        if i < len(self._keys) and self._keys[i] == key:
            self._values[i] = value
            return True
        return False

    # -- scans -----------------------------------------------------------------

    def range_scan(self, start: Key, count: int) -> List[Tuple[Key, Value]]:
        i = self._lower_bound(start)
        out = []
        for j in range(i, min(i + count, len(self._keys))):
            out.append((self._keys[j], self._values[j]))
            self.meter.charge(SCAN_ENTRY)
        return out

    # -- memory -----------------------------------------------------------------

    def memory_usage(self) -> MemoryBreakdown:
        inner = (1 + self.fanout) * _MODEL_BYTES + self.fanout * 8
        leaf = len(self._keys) * (KEY_BYTES + PAYLOAD_BYTES)
        return MemoryBreakdown(inner=inner, leaf=leaf)

    @property
    def max_error(self) -> int:
        return max(self._leaf_errors, default=0)

    # -- validation ---------------------------------------------------------------

    def debug_validate(self) -> List[Violation]:
        """Read-only invariants: the packed arrays sorted and parallel,
        size accounting, and every key's stage-2 residual within the
        recorded per-model error bound (the bound that makes last-mile
        search exact for trained keys).  Never charges the meter.
        """
        out: List[Violation] = []
        out.extend(sorted_violations(self._keys, 0, "rmi.keys-sorted",
                                     strict=False))
        if len(self._keys) != len(self._values):
            out.append(Violation(
                0, "rmi.arrays",
                f"{len(self._keys)} keys vs {len(self._values)} values"))
        if len(self._keys) != self._size:
            out.append(Violation(
                0, "rmi.size",
                f"{len(self._keys)} packed keys but len(index) == "
                f"{self._size}"))
        for idx, k in enumerate(self._keys):
            m = self._root.predict_clamped(k, self.fanout)
            err = self._leaf_errors[m]
            pred = int(self._leaf_models[m].predict(k))
            if abs(pred - idx) > err:
                out.append(Violation(
                    m, "rmi.error-bound",
                    f"key {k}: stage-2 model {m} predicts rank {pred}, "
                    f"true rank {idx}, recorded error bound {err}"))
                break
        return out
