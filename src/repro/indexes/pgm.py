"""PGM-Index (Ferragina & Vinciguerra, VLDB 2020), fully dynamic.

A *static* PGM is a hierarchy of optimal ε-approximate PLA levels over
a packed sorted array: a lookup walks the levels top-down, each model
narrowing the next level's search to a ±ε window ("error-driven" in the
paper's taxonomy, ε = 64 from Table 1).

The *dynamic* PGM uses the LSM-style logarithmic method ("tree-merge"):
sorted runs of geometrically growing capacity, each indexed by its own
static PGM.  An insert merges full runs; deletes insert tombstones.
This is why the paper observes that

* PGM's insert throughput is the best of all indexes on write-only
  workloads (bulk merges amortize beautifully) while its lookups are
  the worst (every run may need probing),
* PGM is the most *space-efficient* learned index (packed arrays, no
  gaps — Figure 8), and
* PGM shrugs off distribution shift (different distributions simply
  live in different runs — Figure 12).
"""

from __future__ import annotations

import heapq

from typing import Any, List, Optional, Sequence, Tuple

from repro.core.cost import (
    ALLOC_NODE,
    CACHE_PROBE,
    charge_binary_search,
    KEY_COMPARE,
    KEY_SHIFT,
    MODEL_EVAL,
    NODE_HOP,
    PHASE_COLLISION,
    PHASE_SEARCH,
    PHASE_SMO,
    PHASE_TRAVERSE,
    SCAN_ENTRY,
    TRAIN_KEY,
)
from repro.core.hardness import Segment, optimal_pla
from repro.indexes import batching
from repro.core.validate import (
    Violation,
    residual_violations,
    segment_partition_violations,
    sorted_violations,
)
from repro.indexes.base import (
    KEY_BYTES,
    PAYLOAD_BYTES,
    Key,
    MemoryBreakdown,
    OpRecord,
    OrderedIndex,
    Value,
)

_TOMBSTONE = object()
_SEGMENT_BYTES = 8 + 8 + 8  # first_key + slope + intercept (as in C++ PGM)


class _StaticPGM:
    """One immutable run: packed arrays + recursive PLA levels."""

    __slots__ = ("keys", "values", "levels", "epsilon", "np_cache")

    def __init__(
        self,
        items: Sequence[Tuple[Key, Value]],
        epsilon: int,
        meter,
    ) -> None:
        self.epsilon = epsilon
        #: Lazily-built numpy arrays for the batch fast path; ``False``
        #: marks a run whose keys/anchors do not fit int64.  Runs are
        #: immutable, so the cache never needs invalidation.
        self.np_cache = None
        self.keys: List[Key] = [k for k, _ in items]
        self.values: List[Value] = [v for _, v in items]
        #: levels[0] = leaf segments over keys; levels[i+1] indexes the
        #: first_keys of levels[i]; the last level has one segment.
        self.levels: List[List[Segment]] = []
        meter.charge(TRAIN_KEY, len(self.keys))
        if self.keys:
            level = optimal_pla(self.keys, epsilon)
            self.levels.append(level)
            while len(level) > 1:
                first_keys = [seg.first_key for seg in level]
                level = optimal_pla(first_keys, epsilon)
                self.levels.append(level)
                meter.charge(TRAIN_KEY, len(first_keys))

    def __len__(self) -> int:
        return len(self.keys)

    def lower_bound(self, key: Key, meter) -> int:
        """Index of the first key >= ``key`` via the model hierarchy."""
        n = len(self.keys)
        if n == 0:
            return 0
        eps = self.epsilon
        # Walk from the top level down, narrowing the segment choice.
        seg_idx = 0
        for depth in range(len(self.levels) - 1, 0, -1):
            level = self.levels[depth]
            lower = self.levels[depth - 1]
            seg = level[seg_idx if seg_idx < len(level) else len(level) - 1]
            meter.charge(MODEL_EVAL)
            meter.charge(NODE_HOP)
            pred = int(seg.model.predict(key))
            hi = max(min(pred + eps + 2, len(lower)), 0)
            lo = min(max(pred - eps - 1, 0), hi)
            # Find the last segment whose first_key <= key in [lo, hi).
            seg_idx = self._search_segments(lower, key, lo, hi, meter)
        leaf = self.levels[0][seg_idx]
        meter.charge(MODEL_EVAL)
        meter.charge(NODE_HOP)
        pred = int(leaf.model.predict(key))
        hi = max(min(pred + eps + 2, n), 0)
        lo = min(max(pred - eps - 1, 0), hi)
        # Binary search the ±ε window in the packed key array.
        probes = 0
        while lo < hi:
            probes += 1
            mid = (lo + hi) // 2
            if self.keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        charge_binary_search(meter, probes)
        return lo

    @staticmethod
    def _search_segments(level: List[Segment], key: Key, lo: int, hi: int, meter) -> int:
        probes = 0
        while lo < hi:
            probes += 1
            mid = (lo + hi) // 2
            if level[mid].first_key <= key:
                lo = mid + 1
            else:
                hi = mid
        charge_binary_search(meter, probes)
        return max(lo - 1, 0)

    def segment_count(self) -> int:
        return sum(len(level) for level in self.levels)

    def batch_cache(self):
        """Numpy mirrors of the packed keys and the PLA hierarchy, or
        ``False`` when they do not fit int64 (the batch path then bails
        for good on this run)."""
        if self.np_cache is None:
            keys_np = batching.int64_cache(self.keys)
            if keys_np is None:
                self.np_cache = False
                return False
            levels = []
            for depth, level in enumerate(self.levels):
                models = batching.model_arrays([s.model for s in level])
                lower_first = None
                if depth >= 1:
                    lower_first = batching.int64_cache(
                        [s.first_key for s in self.levels[depth - 1]])
                    if lower_first is None:
                        self.np_cache = False
                        return False
                if models is None:
                    self.np_cache = False
                    return False
                levels.append((models, lower_first))
            self.np_cache = (keys_np, levels)
        return self.np_cache


class PGMIndex(OrderedIndex):
    """Dynamic PGM-Index with the paper's ε = 64 configuration."""

    name = "PGM"
    is_learned = True
    supports_delete = True
    supports_range = True

    def __init__(
        self,
        epsilon: int = 64,
        buffer_size: int = 256,
        check_duplicates: bool = False,
        merge_policy: str = "logarithmic",
        tier_fanout: int = 4,
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        if epsilon < 1:
            raise ValueError("epsilon must be >= 1")
        if merge_policy not in ("logarithmic", "tiered"):
            raise ValueError("merge_policy must be 'logarithmic' or 'tiered'")
        if tier_fanout < 2:
            raise ValueError("tier_fanout must be >= 2")
        self.epsilon = epsilon
        self.buffer_size = buffer_size
        #: Upstream PGM blindly appends (upsert semantics) — the lookup
        #: before insert would erase its LSM write advantage.  Enable only
        #: when strict duplicate rejection is required.
        self.check_duplicates = check_duplicates
        #: "logarithmic" (upstream: binary merging, one run per level) or
        #: "tiered" (size-tiered: up to ``tier_fanout`` similar-size runs
        #: coexist before merging — cheaper writes, costlier lookups).
        self.merge_policy = merge_policy
        self.tier_fanout = tier_fanout
        #: Unsorted write buffer (level 0 of the logarithmic method).
        self._buffer: dict = {}
        #: Sorted runs, newest first; logarithmic keeps one per level
        #: (None = empty level), tiered keeps a flat newest-first list.
        self._runs: List[Optional[_StaticPGM]] = []
        self.merge_count = 0

    # -- build --------------------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        self.check_sorted(items)
        self._buffer.clear()
        self._runs = [_StaticPGM(items, self.epsilon, self.meter)] if items else []
        self._size = len(items)
        self.meter.charge(ALLOC_NODE)

    # -- lookup ------------------------------------------------------------------

    def lookup(self, key: Key) -> Optional[Value]:
        probed = 0
        with self.meter.phase(PHASE_SEARCH):
            if key in self._buffer:
                v = self._buffer[key]
                self.last_op = OpRecord(op="lookup", key=key, found=v is not _TOMBSTONE,
                                        nodes_traversed=1)
                return None if v is _TOMBSTONE else v
            self.meter.charge(KEY_COMPARE)
        with self.meter.phase(PHASE_TRAVERSE):
            # Newest run first: LSM shadowing semantics.
            for run in self._runs:
                if run is None or len(run) == 0:
                    continue
                probed += 1
                i = run.lower_bound(key, self.meter)
                if i < len(run.keys) and run.keys[i] == key:
                    v = run.values[i]
                    self.last_op = OpRecord(
                        op="lookup", key=key, found=v is not _TOMBSTONE,
                        nodes_traversed=probed,
                    )
                    return None if v is _TOMBSTONE else v
        self.last_op = OpRecord(op="lookup", key=key, found=False, nodes_traversed=probed)
        return None

    def _lookup_batch(self, keys: Sequence[Key]):
        """Vectorized LSM lookup: newest-first run probing with the PLA
        level walk replayed by rank arithmetic per run.

        Each run's ``_search_segments`` condition ``first_key <= key``
        is ``mid < ub`` with ``ub = searchsorted(first_keys, key,
        'right')``, and the leaf window's ``keys[mid] < key`` is
        ``mid < r`` — so probe counts (hence the virtual clock) come out
        exactly equal to the scalar walk.  Ops that hit the buffer or an
        early run deactivate and stop charging, like the scalar early
        exit.
        """
        ks = batching.key_array(keys)
        if ks is None:
            return None
        np = batching._np
        B = len(ks)
        values: List[Optional[Value]] = [None] * B
        found = [False] * B
        nt = [0] * B
        buffer_miss = np.ones(B, dtype=bool)
        active = np.ones(B, dtype=bool)
        if self._buffer:
            buf = self._buffer
            for i, key in enumerate(keys):
                if key in buf:
                    v = buf[key]
                    buffer_miss[i] = False
                    active[i] = False
                    nt[i] = 1
                    if v is not _TOMBSTONE:
                        found[i] = True
                        values[i] = v
        me = np.zeros(B, dtype=np.int64)
        nh = np.zeros(B, dtype=np.int64)
        kc = np.zeros(B, dtype=np.int64)
        cp = np.zeros(B, dtype=np.int64)
        probed = np.zeros(B, dtype=np.int64)
        for run in self._runs:
            if run is None or len(run) == 0:
                continue
            if not active.any():
                break
            cache = run.batch_cache()
            if cache is False:
                return None
            keys_np, levels = cache
            idxs = np.flatnonzero(active)
            ksub = ks[idxs]
            probed[idxs] += 1
            eps = run.epsilon
            n_run = len(run.keys)
            seg_idx = np.zeros(len(idxs), dtype=np.int64)
            for depth in range(len(levels) - 1, 0, -1):
                (slopes, intercepts, anchors), lower_first = levels[depth]
                sel = np.minimum(seg_idx, len(slopes) - 1)
                lo, hi = batching.window_bounds(
                    slopes[sel], intercepts[sel], anchors[sel], ksub,
                    eps, len(lower_first))
                ub = np.searchsorted(lower_first, ksub, side="right")
                steps = batching.simulate_binary(lo, hi, ub)
                me[idxs] += 1
                nh[idxs] += 1
                kc[idxs] += steps
                cp[idxs] += batching.cache_probe_units(steps)
                seg_idx = np.maximum(np.clip(ub, lo, hi) - 1, 0)
            (slopes, intercepts, anchors), _ = levels[0]
            lo, hi = batching.window_bounds(
                slopes[seg_idx], intercepts[seg_idx], anchors[seg_idx],
                ksub, eps, n_run)
            r = np.searchsorted(keys_np, ksub, side="left")
            steps = batching.simulate_binary(lo, hi, r)
            me[idxs] += 1
            nh[idxs] += 1
            kc[idxs] += steps
            cp[idxs] += batching.cache_probe_units(steps)
            final = np.clip(r, lo, hi)
            hit = (final < n_run) & (
                keys_np[np.minimum(final, n_run - 1)] == ksub)
            run_values = run.values
            for j in np.flatnonzero(hit):
                gi = int(idxs[j])
                v = run_values[int(final[j])]
                nt[gi] = int(probed[gi])
                if v is not _TOMBSTONE:
                    found[gi] = True
                    values[gi] = v
                active[gi] = False
        for gi in np.flatnonzero(active):
            nt[int(gi)] = int(probed[int(gi)])
        log = batching.ChargeLog(B)
        traversed = probed > 0
        log.add(PHASE_SEARCH, KEY_COMPARE, np.ones(B, dtype=np.int64),
                reached=buffer_miss)
        log.add(PHASE_TRAVERSE, MODEL_EVAL, me, reached=traversed)
        log.add(PHASE_TRAVERSE, NODE_HOP, nh, reached=traversed)
        log.add(PHASE_TRAVERSE, KEY_COMPARE, kc, reached=traversed)
        log.add(PHASE_TRAVERSE, CACHE_PROBE, cp, reached=cp > 0)

        def make_record(i: int) -> OpRecord:
            return OpRecord(op="lookup", key=keys[i], found=found[i],
                            nodes_traversed=nt[i])

        return batching.BatchLookup(values, log, make_record)

    # -- insert ------------------------------------------------------------------

    def insert(self, key: Key, value: Value) -> bool:
        if self.check_duplicates and self.lookup(key) is not None:
            self.last_op = OpRecord(op="insert", key=key, found=True)
            return False
        self._put(key, value)
        self._size += 1
        return True

    def _put(self, key: Key, value: Value) -> None:
        with self.meter.phase(PHASE_COLLISION):
            self._buffer[key] = value
            self.meter.charge(KEY_SHIFT)
        smo = False
        if len(self._buffer) >= self.buffer_size:
            with self.meter.phase(PHASE_SMO):
                self._merge_down()
            smo = True
        self.last_op = OpRecord(op="insert", key=key, smo=smo, nodes_created=1 if smo else 0)

    def _merge_down(self) -> None:
        """Flush the buffer according to the configured merge policy."""
        self.merge_count += 1
        spill = sorted(self._buffer.items())
        self._buffer.clear()
        if self.merge_policy == "tiered":
            self._merge_down_tiered(spill)
            return
        level = 0
        while True:
            if level >= len(self._runs):
                self._runs.append(None)
            run = self._runs[level]
            capacity = self.buffer_size * (2 ** level)
            if run is None or len(run) == 0:
                if len(spill) <= capacity:
                    self._runs[level] = _StaticPGM(spill, self.epsilon, self.meter)
                    self.meter.charge(ALLOC_NODE)
                    self.meter.charge(KEY_SHIFT, len(spill))
                    return
                level += 1
                continue
            # Merge and carry to the next level.
            spill = self._merge_items(list(zip(run.keys, run.values)), spill)
            self._runs[level] = None
            self.meter.charge(KEY_SHIFT, len(spill))
            level += 1

    def _merge_down_tiered(self, spill: List[Tuple[Key, Value]]) -> None:
        """Size-tiered compaction: up to ``tier_fanout`` similar-size
        runs coexist; overflowing a size bucket merges that bucket."""
        self._runs.insert(0, _StaticPGM(spill, self.epsilon, self.meter))
        self.meter.charge(ALLOC_NODE)
        self.meter.charge(KEY_SHIFT, len(spill))
        while True:
            buckets: dict = {}
            for idx, run in enumerate(self._runs):
                if run is None or len(run) == 0:
                    continue
                buckets.setdefault(max(len(run), 1).bit_length() // 2, []).append(idx)
            victims = next(
                (idxs for idxs in buckets.values() if len(idxs) >= self.tier_fanout),
                None,
            )
            if victims is None:
                return
            # K-way merge, newest run wins on key ties (age = position
            # in the newest-first victims list).
            victims.sort()
            tagged = []
            for age, idx in enumerate(victims):
                run = self._runs[idx]
                tagged.append(
                    [(k, age, v) for k, v in zip(run.keys, run.values)]
                )
            merged: List[Tuple[Key, Value]] = []
            last_key: Optional[Key] = None
            for k, _, v in heapq.merge(*tagged):
                if k == last_key:
                    continue
                last_key = k
                merged.append((k, v))
            self.meter.charge(KEY_SHIFT, sum(len(t) for t in tagged))
            # The merged run takes the oldest victim's position, keeping
            # newest-first shadowing intact for the survivors.
            new_run = _StaticPGM(merged, self.epsilon, self.meter)
            self.meter.charge(ALLOC_NODE)
            keep = [r for i, r in enumerate(self._runs) if i not in set(victims)]
            keep.insert(
                sum(1 for i in range(victims[-1]) if i not in set(victims)), new_run
            )
            self._runs = keep

    @staticmethod
    def _merge_items(
        old: List[Tuple[Key, Value]], new: List[Tuple[Key, Value]]
    ) -> List[Tuple[Key, Value]]:
        """Merge-sort two runs; on equal keys the *new* entry wins.

        Tombstones are RETAINED even when they meet their victim: a
        still-deeper run (not part of this merge) may hold another copy
        of the key, and dropping the tombstone here would resurrect it.
        Tombstones thus ride to the bottom, as in production LSM trees.
        """
        out: List[Tuple[Key, Value]] = []
        i = j = 0
        while i < len(old) and j < len(new):
            if old[i][0] < new[j][0]:
                out.append(old[i])
                i += 1
            elif old[i][0] > new[j][0]:
                out.append(new[j])
                j += 1
            else:
                out.append(new[j])
                i += 1
                j += 1
        out.extend(old[i:])
        out.extend(new[j:])
        return out

    # -- update / delete -----------------------------------------------------------

    def update(self, key: Key, value: Value) -> bool:
        if self.lookup(key) is None:
            return False
        self._put(key, value)
        return True

    def delete(self, key: Key) -> bool:
        if self.lookup(key) is None:
            self.last_op = OpRecord(op="delete", key=key, found=False)
            return False
        self._put(key, _TOMBSTONE)
        self._size -= 1
        self.last_op = OpRecord(op="delete", key=key, found=True)
        return True

    # -- scans -----------------------------------------------------------------

    def range_scan(self, start: Key, count: int) -> List[Tuple[Key, Value]]:
        """K-way merge across the buffer and every run."""
        out: List[Tuple[Key, Value]] = []
        cursors: List[Tuple[int, int]] = []  # (run_idx, position)
        runs = [r for r in self._runs if r is not None and len(r) > 0]
        with self.meter.phase(PHASE_TRAVERSE):
            positions = [run.lower_bound(start, self.meter) for run in runs]
        buf = sorted((k, v) for k, v in self._buffer.items() if k >= start)
        bi = 0
        seen = set()
        while len(out) < count:
            best_key = None
            best_src = -2  # -1 = buffer, else run index
            if bi < len(buf):
                best_key, best_src = buf[bi][0], -1
            for ri, run in enumerate(runs):
                p = positions[ri]
                if p < len(run.keys):
                    k = run.keys[p]
                    if best_key is None or k < best_key:
                        best_key, best_src = k, ri
            if best_key is None:
                break
            self.meter.charge(SCAN_ENTRY)
            if best_src == -1:
                k, v = buf[bi]
                bi += 1
            else:
                p = positions[best_src]
                k, v = runs[best_src].keys[p], runs[best_src].values[p]
                positions[best_src] = p + 1
            if k in seen:
                continue
            seen.add(k)
            if v is not _TOMBSTONE:
                out.append((k, v))
        return out

    # -- memory -----------------------------------------------------------------

    def memory_usage(self) -> MemoryBreakdown:
        leaf = len(self._buffer) * (KEY_BYTES + PAYLOAD_BYTES) * 2  # hash slack
        inner = 0
        for run in self._runs:
            if run is None:
                continue
            leaf += len(run.keys) * (KEY_BYTES + PAYLOAD_BYTES)
            inner += run.segment_count() * _SEGMENT_BYTES
        return MemoryBreakdown(inner=inner, leaf=leaf)

    # -- introspection ------------------------------------------------------------

    def run_sizes(self) -> List[int]:
        return [len(r) if r is not None else 0 for r in self._runs]

    # -- validation ---------------------------------------------------------------

    def debug_validate(self) -> List[Violation]:
        """LSM/PLA invariants: every run's packed keys strictly sorted,
        each PLA level a contiguous partition of the level below with
        matching ``first_key`` anchors and a single top segment, every
        segment's residual within its ε bound, and (in strict-duplicate
        mode) live-key accounting across buffer-over-runs shadowing.
        ``node_id`` reports the run's position in ``_runs``.  Walks
        arrays directly; never charges the meter.
        """
        out: List[Violation] = []
        for ri, run in enumerate(self._runs):
            if run is None or len(run) == 0:
                continue
            out.extend(sorted_violations(
                run.keys, ri, "pgm.run-sorted"))
            if not run.levels:
                out.append(Violation(
                    ri, "pgm.levels", "non-empty run has no PLA levels"))
                continue
            if len(run.levels[-1]) != 1:
                out.append(Violation(
                    ri, "pgm.levels",
                    f"top level has {len(run.levels[-1])} segments, "
                    f"expected 1"))
            base: List[Key] = run.keys
            for depth, level in enumerate(run.levels):
                out.extend(segment_partition_violations(
                    level, len(base), ri, "pgm.levels"))
                for seg in level:
                    if (seg.first_index < len(base)
                            and seg.first_key != base[seg.first_index]):
                        out.append(Violation(
                            ri, "pgm.levels",
                            f"level {depth} segment anchors first_key "
                            f"{seg.first_key} but rank {seg.first_index} "
                            f"holds {base[seg.first_index]}"))
                        break
                    out.extend(residual_violations(
                        seg.model,
                        base[seg.first_index:seg.first_index + seg.length],
                        seg.first_index, run.epsilon, ri, "pgm.epsilon"))
                base = [seg.first_key for seg in level]
        if self.check_duplicates:
            # Newest-first shadowing: buffer wins, then shallower runs.
            live: dict = {}
            for k, v in self._buffer.items():
                live.setdefault(k, v)
            for run in self._runs:
                if run is None:
                    continue
                for k, v in zip(run.keys, run.values):
                    live.setdefault(k, v)
            count = sum(1 for v in live.values() if v is not _TOMBSTONE)
            if count != self._size:
                out.append(Violation(
                    0, "pgm.size",
                    f"{count} live keys after shadowing but len(index) "
                    f"== {self._size}"))
        return out
