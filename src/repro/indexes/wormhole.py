"""Wormhole (Wu, Ni, Jiang — EuroSys 2019), simplified.

Wormhole keeps data in a doubly-linked list of sorted leaf nodes
(~128 keys each) and replaces the usual tree of interior nodes with a
*MetaTrieHT*: a hash table over leaf anchor prefixes searched by binary
search on the prefix *length*.  A point lookup therefore costs
``O(log L)`` hash probes (L = key length in bytes, so ≤ 3 probes for
8-byte keys) plus one in-leaf binary search — independent of N.

Faithfulness notes (recorded in DESIGN.md): leaf behaviour, anchors and
splits are implemented exactly; the MetaTrieHT is *modelled* — a sorted
anchor array provides correctness while the meter charges the hashed
prefix-search cost (``HASH`` per probe), and :meth:`memory_usage`
prices the hash table entries.  The paper's headline Wormhole results
(string-key specialisation wastes on integers; the single inner-layer
lock kills write scalability — modelled in the concurrency adapter)
survive this substitution.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.core.cost import (
    ALLOC_NODE,
    HASH,
    KEY_COMPARE,
    KEY_SHIFT,
    NODE_HOP,
    PHASE_COLLISION,
    PHASE_SEARCH,
    PHASE_SMO,
    PHASE_TRAVERSE,
    SCAN_ENTRY,
)
from repro.core.validate import (
    Violation,
    range_violation,
    sorted_violations,
)
from repro.indexes.base import (
    KEY_BYTES,
    PAYLOAD_BYTES,
    Key,
    MemoryBreakdown,
    OpRecord,
    OrderedIndex,
    Value,
)

_LEAF_CAPACITY = 128
#: log2(KEY_BYTES): binary search on prefix length for 8-byte keys.
_META_PROBES = 3
_HT_ENTRY_BYTES = 24  # hashed prefix tag + leaf pointer + bitmap slice


class _WormLeaf:
    __slots__ = ("node_id", "anchor", "keys", "values", "next", "prev")

    def __init__(self, node_id: int, anchor: Key) -> None:
        self.node_id = node_id
        self.anchor = anchor
        self.keys: List[Key] = []
        self.values: List[Value] = []
        self.next: Optional["_WormLeaf"] = None
        self.prev: Optional["_WormLeaf"] = None


class Wormhole(OrderedIndex):
    """Wormhole-style ordered index over 64-bit integer keys."""

    name = "Wormhole"
    is_learned = False
    supports_delete = False  # upstream does not cover deletion (paper §4.4)
    supports_range = True

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        first = _WormLeaf(self._next_node_id(), 0)
        self._leaves: List[_WormLeaf] = [first]  # sorted by anchor

    # -- build --------------------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        self.check_sorted(items)
        fill = int(_LEAF_CAPACITY * 0.7)
        self._leaves = []
        prev: Optional[_WormLeaf] = None
        for start in range(0, len(items), fill):
            chunk = items[start : start + fill]
            leaf = _WormLeaf(self._next_node_id(), chunk[0][0] if self._leaves else 0)
            leaf.keys = [k for k, _ in chunk]
            leaf.values = [v for _, v in chunk]
            leaf.prev = prev
            if prev is not None:
                prev.next = leaf
            self._leaves.append(leaf)
            prev = leaf
            self.meter.charge(ALLOC_NODE)
        if not self._leaves:
            self._leaves = [_WormLeaf(self._next_node_id(), 0)]
        self._size = len(items)

    # -- meta search ------------------------------------------------------------

    def _meta_search(self, key: Key) -> _WormLeaf:
        """Find the leaf owning ``key``; costed as a MetaTrieHT search."""
        self.meter.charge(HASH, _META_PROBES)
        lo, hi = 0, len(self._leaves)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._leaves[mid].anchor <= key:
                lo = mid + 1
            else:
                hi = mid
        return self._leaves[max(0, lo - 1)]

    def _leaf_rank(self, leaf: _WormLeaf, key: Key) -> int:
        lo, hi = 0, len(leaf.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            self.meter.charge(KEY_COMPARE)
            if leaf.keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # -- operations ---------------------------------------------------------------

    def lookup(self, key: Key) -> Optional[Value]:
        with self.meter.phase(PHASE_TRAVERSE):
            leaf = self._meta_search(key)
            self.meter.charge(NODE_HOP)
        with self.meter.phase(PHASE_SEARCH):
            i = self._leaf_rank(leaf, key)
        found = i < len(leaf.keys) and leaf.keys[i] == key
        self.last_op = OpRecord(
            op="lookup", key=key, found=found, path=[leaf.node_id],
            nodes_traversed=1,
        )
        return leaf.values[i] if found else None

    def insert(self, key: Key, value: Value) -> bool:
        with self.meter.phase(PHASE_TRAVERSE):
            leaf = self._meta_search(key)
            self.meter.charge(NODE_HOP)
        with self.meter.phase(PHASE_SEARCH):
            i = self._leaf_rank(leaf, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            self.last_op = OpRecord(
                op="insert", key=key, found=True, path=[leaf.node_id],
                nodes_traversed=1,
            )
            return False
        shifted = len(leaf.keys) - i
        with self.meter.phase(PHASE_COLLISION):
            leaf.keys.insert(i, key)
            leaf.values.insert(i, value)
            self.meter.charge(KEY_SHIFT, shifted)
        created = 0
        smo = False
        if len(leaf.keys) > _LEAF_CAPACITY:
            with self.meter.phase(PHASE_SMO):
                created = self._split(leaf)
            smo = True
        self._size += 1
        self.last_op = OpRecord(
            op="insert", key=key, path=[leaf.node_id], nodes_traversed=1,
            keys_shifted=shifted, nodes_created=created, smo=smo,
        )
        return True

    def _split(self, leaf: _WormLeaf) -> int:
        mid = len(leaf.keys) // 2
        right = _WormLeaf(self._next_node_id(), leaf.keys[mid])
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        del leaf.keys[mid:]
        del leaf.values[mid:]
        right.next = leaf.next
        right.prev = leaf
        if leaf.next is not None:
            leaf.next.prev = right
        leaf.next = right
        self.meter.charge(ALLOC_NODE)
        self.meter.charge(KEY_SHIFT, len(right.keys))
        # New anchor goes into the meta structure: hash-table inserts for
        # each prefix length touched (modelled), plus the sorted register.
        self.meter.charge(HASH, _META_PROBES)
        pos = self._anchor_rank(right.anchor)
        self._leaves.insert(pos, right)
        return 1

    def _anchor_rank(self, anchor: Key) -> int:
        lo, hi = 0, len(self._leaves)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._leaves[mid].anchor < anchor:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def update(self, key: Key, value: Value) -> bool:
        leaf = self._meta_search(key)
        i = self._leaf_rank(leaf, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            leaf.values[i] = value
            self.meter.charge(KEY_SHIFT)
            return True
        return False

    # -- scans -----------------------------------------------------------------

    def range_scan(self, start: Key, count: int) -> List[Tuple[Key, Value]]:
        out: List[Tuple[Key, Value]] = []
        with self.meter.phase(PHASE_TRAVERSE):
            leaf: Optional[_WormLeaf] = self._meta_search(start)
            self.meter.charge(NODE_HOP)
        i = self._leaf_rank(leaf, start)
        while leaf is not None and len(out) < count:
            while i < len(leaf.keys) and len(out) < count:
                out.append((leaf.keys[i], leaf.values[i]))
                self.meter.charge(SCAN_ENTRY)
                i += 1
            leaf = leaf.next
            i = 0
            if leaf is not None:
                self.meter.charge(NODE_HOP)
        return out

    # -- memory -----------------------------------------------------------------

    def memory_usage(self) -> MemoryBreakdown:
        leaf_bytes = 0
        for leaf in self._leaves:
            leaf_bytes += 32 + _LEAF_CAPACITY * (KEY_BYTES + PAYLOAD_BYTES)
        # MetaTrieHT: each anchor contributes entries for the prefix
        # lengths that discriminate it (~KEY_BYTES/2 on average), stored
        # in a hash table kept under 80% load.
        n_anchor_entries = len(self._leaves) * (KEY_BYTES // 2)
        inner = int(n_anchor_entries / 0.8) * _HT_ENTRY_BYTES
        return MemoryBreakdown(inner=inner, leaf=leaf_bytes)

    @property
    def leaf_count(self) -> int:
        return len(self._leaves)

    # -- validation ---------------------------------------------------------------

    def debug_validate(self) -> List[Violation]:
        """Leaf-list invariants: strictly increasing anchors with the
        first anchored at 0, per-leaf keys sorted and within
        ``[anchor, next_anchor)``, leaf occupancy within
        ``_LEAF_CAPACITY`` (an overflow must have split), the doubly
        linked prev/next chain mirroring the anchor-sorted leaf list
        exactly, and size accounting.  Walks leaves directly; never
        charges the meter.
        """
        out: List[Violation] = []
        leaves = self._leaves
        if not leaves:
            return [Violation(0, "worm.anchor-order",
                              "index has no leaves at all")]
        if leaves[0].anchor != 0:
            out.append(Violation(
                leaves[0].node_id, "worm.anchor-order",
                f"first anchor is {leaves[0].anchor}, expected 0"))
        out.extend(sorted_violations(
            [leaf.anchor for leaf in leaves], 0, "worm.anchor-order",
            what="anchors"))
        total = 0
        for i, leaf in enumerate(leaves):
            hi = leaves[i + 1].anchor if i + 1 < len(leaves) else None
            out.extend(sorted_violations(
                leaf.keys, leaf.node_id, "worm.keys-sorted"))
            out.extend(range_violation(
                leaf.keys, leaf.anchor, hi, leaf.node_id,
                "worm.key-range"))
            if len(leaf.keys) != len(leaf.values):
                out.append(Violation(
                    leaf.node_id, "worm.arrays",
                    f"{len(leaf.keys)} keys vs {len(leaf.values)} "
                    f"values"))
            if len(leaf.keys) > _LEAF_CAPACITY:
                out.append(Violation(
                    leaf.node_id, "worm.capacity",
                    f"leaf holds {len(leaf.keys)} > capacity "
                    f"{_LEAF_CAPACITY} (missed split)"))
            before = leaves[i - 1] if i > 0 else None
            after = leaves[i + 1] if i + 1 < len(leaves) else None
            if leaf.prev is not before or leaf.next is not after:
                out.append(Violation(
                    leaf.node_id, "worm.leaf-chain",
                    "prev/next links disagree with the anchor-sorted "
                    "leaf list"))
            total += len(leaf.keys)
        if total != self._size:
            out.append(Violation(
                0, "worm.size",
                f"leaves hold {total} keys but len(index) == "
                f"{self._size}"))
        return out
