"""Shared machinery for numpy-vectorized batch lookups.

The batch fast paths must be *observationally identical* to the scalar
hot paths: same values, same :class:`~repro.indexes.base.OpRecord`
fields, and — the hard part — the exact same :class:`CostMeter` state,
including the dict insertion order of ``(phase, kind)`` counters (the
virtual clock sums floats in insertion order, so even the order is
observable).  Three ideas make that tractable:

* **Search replay by rank.**  Every windowed binary search in the
  scalar paths compares ``keys[mid] < key`` (or ``first_key <= key``),
  which is equivalent to ``mid < r`` where ``r`` is the key's rank from
  ``np.searchsorted``.  So the probe counts of a whole batch can be
  replayed with masked integer arithmetic — no key arrays touched —
  and come out *exactly* equal to what the scalar loop would count.
* **Charge logs.**  Fast paths record per-op unit counts per charge
  *site* (one scalar ``meter.charge`` statement, in the order the
  scalar path reaches them).  :meth:`ChargeLog.apply_totals` replays
  the summed charges in first-reached order, reproducing the scalar
  loop's counter insertion order; :meth:`ChargeLog.apply_op` replays
  one op for the engine's per-op observer playback.
* **Integer units.**  All unit counts are integers well below 2**53,
  so one big add equals many small float adds bit-for-bit.

numpy is optional: every helper degrades to ``None`` and callers fall
back to the correct-by-construction scalar loop.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

try:  # pragma: no cover - exercised via the no-numpy fallback tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Batches below this size skip the vectorized path: the numpy call
#: overhead outweighs the win.  Tests shrink it to force coverage.
MIN_BATCH = 16

_INT64_MAX = (1 << 63) - 1


def numpy_available() -> bool:
    return _np is not None


def key_array(keys: Sequence[int]) -> Optional["Any"]:
    """``keys`` as an int64 array, or ``None`` when the batch should
    take the scalar fallback (numpy missing, batch too small, or keys
    outside int64 — the scalar path handles arbitrary Python ints)."""
    if _np is None or len(keys) < MIN_BATCH:
        return None
    try:
        arr = _np.asarray(keys, dtype=_np.int64)
    except (OverflowError, ValueError, TypeError):
        return None
    if arr.ndim != 1:
        return None
    return arr


def int64_cache(keys: Sequence[int]) -> Optional["Any"]:
    """Index-side key arrays for the caches; ``None`` if any stored key
    does not fit int64 (the fast path then bails for good)."""
    if _np is None:
        return None
    try:
        return _np.asarray(keys, dtype=_np.int64)
    except (OverflowError, ValueError, TypeError):
        return None


def model_arrays(models: Sequence[Any]):
    """Per-model (slope, intercept, anchor) gather arrays.

    Returns ``None`` when an anchor overflows int64.
    """
    if _np is None:
        return None
    try:
        anchors = _np.asarray([m.anchor for m in models], dtype=_np.int64)
    except (OverflowError, ValueError, TypeError):
        return None
    slopes = _np.asarray([m.slope for m in models], dtype=_np.float64)
    intercepts = _np.asarray([m.intercept for m in models], dtype=_np.float64)
    return slopes, intercepts, anchors


def predict_vec(slope, intercept, anchor, ks):
    """Vectorized ``LinearModel.predict``: float64 ops in the same
    order as the scalar expression ``slope * (key - anchor) + intercept``
    (int64 subtract is exact; the float cast rounds identically)."""
    return slope * (ks - anchor).astype(_np.float64) + intercept


def predict_clamped_vec(model, ks, n: int):
    """Vectorized ``LinearModel.predict_clamped`` for one model."""
    if n <= 0:
        return _np.zeros(len(ks), dtype=_np.int64)
    pred = predict_vec(model.slope, model.intercept, _np.int64(model.anchor), ks)
    # Pre-clip so the int64 cast cannot overflow; the clip bound is
    # outside [-1, n] so post-clamp results are unchanged.
    c = float(n + 2)
    p = _np.clip(pred, -c, c).astype(_np.int64)
    return _np.clip(p, 0, n - 1)


def window_bounds(slope, intercept, anchor, ks, eps: int, length):
    """The scalar paths' last-mile window ``[lo, hi)`` around a model
    prediction: ``hi = max(min(pred+eps+2, n), 0)``,
    ``lo = min(max(pred-eps-1, 0), hi)``.

    ``length`` may be a scalar or a per-key array.  The float prediction
    is pre-clipped to a magnitude that provably leaves the clamped
    ``lo``/``hi`` unchanged while keeping the int64 cast in range.
    """
    pred = predict_vec(slope, intercept, anchor, ks)
    nmax = int(length.max()) if hasattr(length, "max") else int(length)
    c = float(nmax + eps + 4)
    p = _np.clip(pred, -c, c).astype(_np.int64)
    hi = _np.clip(p + (eps + 2), 0, length)
    lo = _np.minimum(_np.maximum(p - (eps + 1), 0), hi)
    return lo, hi


def simulate_binary(lo, hi, r):
    """Probe count of the scalar lower-bound loop over ``[lo, hi)``.

    The loop compares ``keys[mid] < key``; with ``r`` the key's rank
    (``np.searchsorted(..., 'left')`` for ``<`` conditions,
    ``'right'`` for ``<=`` conditions) that is exactly ``mid < r``, so
    the whole control flow replays in ~log2(window) masked steps.
    Returns the per-key probe counts; the final ``lo`` is
    ``clip(r, lo, hi)``.
    """
    lo = lo.copy()
    hi = hi.copy()
    probes = _np.zeros(lo.shape, dtype=_np.int64)
    active = lo < hi
    while active.any():
        probes[active] += 1
        mid = (lo + hi) >> 1
        right = active & (mid < r)
        left = active & ~(mid < r)
        lo = _np.where(right, mid + 1, lo)
        hi = _np.where(left, mid, hi)
        active = lo < hi
    return probes


def simulate_exponential(hint, r, cap: int):
    """Replay ALEX's inline exponential search around ``hint``.

    Conditions ``keys[x] >= key`` become ``x >= r``.  Returns
    ``(probes, lo)`` where ``lo == r`` clipped into the final window —
    exactly the scalar result — and ``probes`` matches the scalar count
    (first comparison + doubling steps + windowed binary).
    """
    probes = _np.ones(hint.shape, dtype=_np.int64)
    left = hint >= r  # keys[hint] >= key
    bound = _np.ones(hint.shape, dtype=_np.int64)
    lo = _np.where(left, hint - 1, hint)
    hi = _np.where(left, hint, hint + 1)
    act = left & (lo >= 0) & (lo >= r)
    while act.any():
        probes[act] += 1
        bound[act] <<= 1
        lo = _np.where(act, hint - bound, lo)
        act = act & (lo >= 0) & (lo >= r)
    lo = _np.where(left, _np.maximum(lo, 0), lo)
    act = ~left & (hi < cap) & (hi < r)
    while act.any():
        probes[act] += 1
        bound[act] <<= 1
        hi = _np.where(act, hint + bound, hi)
        act = act & (hi < cap) & (hi < r)
    hi = _np.where(left, hi, _np.minimum(hi, cap))
    probes += simulate_binary(lo, hi, r)
    return probes, _np.clip(r, lo, hi)


def cache_probe_units(probes):
    """Per-op CACHE_PROBE units of ``charge_binary_search``: each
    search step charges ``probes - 3`` when ``probes > 3``; summed
    over steps that is ``max(probes - 3, 0)`` per step."""
    return _np.maximum(probes - 3, 0)


def local_search_lines(distance):
    """Per-op CACHE_PROBE units of ``charge_local_search``."""
    lines = _np.maximum((_np.abs(distance) - 4) // 8, 0)
    return _np.minimum(lines, 64)


class ConcatTable:
    """Per-segment sorted key lists flattened into one sorted array.

    Valid when the segments partition the key space by their pivots —
    then a key routed to segment ``s`` has its global ``searchsorted``
    rank inside ``[offsets[s], offsets[s+1]]`` and the segment-local
    rank is just ``rank - offsets[s]``.  One ``searchsorted`` over the
    concatenation replaces a Python binary search per key.
    """

    __slots__ = ("cat", "offsets", "lens", "bl")

    @staticmethod
    def build(key_lists):
        if _np is None:
            return None
        lens = _np.asarray([len(ks) for ks in key_lists], dtype=_np.int64)
        offsets = _np.zeros(len(key_lists) + 1, dtype=_np.int64)
        _np.cumsum(lens, out=offsets[1:])
        cat = int64_cache([k for ks in key_lists for k in ks])
        if cat is None:
            return None
        t = ConcatTable()
        t.cat = cat
        t.offsets = offsets
        t.lens = lens
        t.bl = _np.asarray(
            [max(1, len(ks).bit_length()) for ks in key_lists],
            dtype=_np.int64)
        return t

    def rank_local(self, ks, si):
        r = _np.searchsorted(self.cat, ks, side="left")
        return r - self.offsets[si]


class ChargeLog:
    """Ordered per-op charge records for one batched phase.

    A *site* corresponds to one scalar ``meter.charge`` statement (or a
    group of same-key statements that the scalar path always reaches in
    a fixed order).  Sites are added in the order the scalar path first
    executes them within an op.  ``reached`` is ``None`` when every op
    executes the site (possibly with 0 units — a zero charge still
    inserts the counter key, which is observable through the float
    summation order), or a boolean array marking the ops that do.
    """

    __slots__ = ("n", "sites")

    def __init__(self, n: int) -> None:
        self.n = n
        self.sites: List[tuple] = []

    def add(self, phase: str, kind: str, units, reached=None) -> None:
        self.sites.append((phase, kind, units, reached))

    def apply_totals(self, meter) -> None:
        """Replay the whole batch as one charge per site, in the order
        the scalar loop would first create each counter key."""
        order = []
        for pos, (phase, kind, units, reached) in enumerate(self.sites):
            if reached is None:
                first = 0
            else:
                hits = _np.flatnonzero(reached) if _np is not None else [
                    i for i, f in enumerate(reached) if f]
                if len(hits) == 0:
                    continue
                first = int(hits[0])
            order.append((first, pos))
        order.sort()
        for _, pos in order:
            phase, kind, units, reached = self.sites[pos]
            if hasattr(units, "sum"):
                total = int(units.sum() if reached is None
                            else units[reached].sum())
            else:
                count = self.n if reached is None else int(
                    reached.sum() if hasattr(reached, "sum")
                    else sum(bool(f) for f in reached))
                total = units * count
            meter.charge_phased(phase, kind, total)

    def apply_op(self, meter, i: int) -> None:
        """Replay op ``i``'s charges in scalar order."""
        for phase, kind, units, reached in self.sites:
            if reached is not None and not reached[i]:
                continue
            u = units[i] if hasattr(units, "__getitem__") else units
            meter.charge_phased(phase, kind, int(u))


class BatchLookup:
    """Result of an index's internal ``_lookup_batch`` fast path."""

    __slots__ = ("values", "log", "make_record")

    def __init__(self, values: List[Any], log: ChargeLog,
                 make_record: Callable[[int], Any]) -> None:
        self.values = values
        self.log = log
        self.make_record = make_record
