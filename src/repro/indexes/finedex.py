"""FINEdex (Li et al., VLDB 2021) — fine-grained delta learned index.

Like XIndex, FINEdex is error-driven (ε = 32) and delta-merge based,
but its delta granularity is one *bin per record* instead of one delta
per group: an inserted key lands in the tiny sorted bin hanging off its
left neighbour in the trained array.  This minimises conflicts between
concurrent writers (each bin is an independent synchronisation unit —
modelled by the concurrency adapter) and allows *local* retraining:
when a bin overflows, only the owning model segment is flattened and
refitted, never the whole structure.

Structure here: a list of :class:`_FineSegment`, each owning a slice of
the key space with its model, packed arrays, and per-record bins; a
plain sorted pivot array routes to segments (upstream uses a small
learned root; the routing cost is metered equivalently).
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.cost import (
    ALLOC_NODE,
    CACHE_PROBE,
    charge_binary_search,
    KEY_COMPARE,
    KEY_SHIFT,
    MODEL_EVAL,
    NODE_HOP,
    PHASE_COLLISION,
    PHASE_SEARCH,
    PHASE_SMO,
    PHASE_TRAVERSE,
    SCAN_ENTRY,
    TRAIN_KEY,
)
from repro.core.hardness import optimal_pla
from repro.core.validate import (
    Violation,
    first_inversion,
    range_violation,
    residual_violations,
    sorted_violations,
)
from repro.indexes.base import (
    KEY_BYTES,
    PAYLOAD_BYTES,
    POINTER_BYTES,
    Key,
    MemoryBreakdown,
    OpRecord,
    OrderedIndex,
    Value,
)
from repro.indexes import batching
from repro.indexes.linear_model import LinearModel

_SEGMENT_HEADER_BYTES = 48
_BIN_ENTRY_BYTES = KEY_BYTES + PAYLOAD_BYTES
_BIN_HEADER_BYTES = 16


class _FineSegment:
    __slots__ = ("node_id", "first_key", "keys", "values", "model", "bins", "bin_entries")

    def __init__(self, node_id: int, first_key: Key) -> None:
        self.node_id = node_id
        self.first_key = first_key
        self.keys: List[Key] = []
        self.values: List[Value] = []
        self.model = LinearModel()
        #: position -> sorted [(key, value)] of inserts landing after
        #: keys[position] (position -1 collects keys below keys[0]).
        self.bins: Dict[int, List[Tuple[Key, Value]]] = {}
        self.bin_entries = 0


class FINEdex(OrderedIndex):
    """FINEdex with the paper's ε = 32 configuration."""

    name = "FINEdex"
    is_learned = True
    supports_delete = False
    supports_range = True

    def __init__(self, epsilon: int = 32, bin_capacity: int = 16, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.epsilon = epsilon
        self.bin_capacity = bin_capacity
        self._segments: List[_FineSegment] = [_FineSegment(self._next_node_id(), 0)]
        self.retrain_count = 0
        #: Batch-lookup tables; ``None`` = stale (see ``_batch_tables``).
        self._batch_cache: Any = None

    # -- build --------------------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        self.check_sorted(items)
        self._invalidate_batch_cache()
        self._segments = self._build_segments(list(items))
        # The first segment is the catch-all for keys below every pivot.
        self._segments[0].first_key = 0
        self._size = len(items)

    def _build_segments(self, items: List[Tuple[Key, Value]]) -> List[_FineSegment]:
        if not items:
            return [_FineSegment(self._next_node_id(), 0)]
        keys = [k for k, _ in items]
        plas = optimal_pla(keys, self.epsilon)
        self.meter.charge(TRAIN_KEY, len(keys))
        segments: List[_FineSegment] = []
        for pla in plas:
            seg = _FineSegment(self._next_node_id(), pla.first_key)
            lo, hi = pla.first_index, pla.first_index + pla.length
            seg.keys = keys[lo:hi]
            seg.values = [v for _, v in items[lo:hi]]
            # Rebase the model to segment-local positions.
            seg.model = LinearModel(pla.model.slope, pla.model.intercept - lo, pla.model.anchor)
            segments.append(seg)
            self.meter.charge(ALLOC_NODE)
        return segments

    # -- routing ------------------------------------------------------------------

    def _find_segment(self, key: Key) -> Tuple[int, _FineSegment]:
        # Upstream FINEdex routes through its level-model root: one
        # pointer chase into the root structure plus the model walk.
        self.meter.charge(NODE_HOP)
        self.meter.charge(MODEL_EVAL)
        pivots = [s.first_key for s in self._segments]
        i = bisect.bisect_right(pivots, key) - 1
        self.meter.charge(KEY_COMPARE, max(1, len(pivots).bit_length()))
        i = max(i, 0)
        return i, self._segments[i]

    def _segment_lower_bound(self, seg: _FineSegment, key: Key) -> int:
        n = len(seg.keys)
        if n == 0:
            return 0
        self.meter.charge(MODEL_EVAL)
        pred = int(seg.model.predict(key))
        hi = max(min(pred + self.epsilon + 2, n), 0)
        lo = min(max(pred - self.epsilon - 1, 0), hi)
        probes = 0
        while lo < hi:
            probes += 1
            mid = (lo + hi) // 2
            if seg.keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        charge_binary_search(self.meter, probes)
        return lo

    # -- operations ---------------------------------------------------------------

    def lookup(self, key: Key) -> Optional[Value]:
        with self.meter.phase(PHASE_TRAVERSE):
            _, seg = self._find_segment(key)
            self.meter.charge(NODE_HOP)
        with self.meter.phase(PHASE_SEARCH):
            i = self._segment_lower_bound(seg, key)
            if i < len(seg.keys) and seg.keys[i] == key:
                self.last_op = OpRecord(op="lookup", key=key, found=True,
                                        path=[seg.node_id], nodes_traversed=2)
                return seg.values[i]
            # Check the bin of the left neighbour.
            self.meter.charge(NODE_HOP)
            bin_ = seg.bins.get(i - 1)
            if bin_:
                j = bisect.bisect_left(bin_, (key,))
                self.meter.charge(KEY_COMPARE, max(1, len(bin_).bit_length()))
                if j < len(bin_) and bin_[j][0] == key:
                    self.last_op = OpRecord(op="lookup", key=key, found=True,
                                            path=[seg.node_id], nodes_traversed=2)
                    return bin_[j][1]
        self.last_op = OpRecord(op="lookup", key=key, found=False,
                                path=[seg.node_id], nodes_traversed=2)
        return None

    def _batch_tables(self):
        """Index-wide arrays for the batch path: segment pivots, the
        concatenated trained key array, and per-segment models.  Bins
        stay in their dicts — the batch path probes them with a scalar
        pass over the misses only.  Rebuilt lazily after any mutation;
        ``False`` when unusable."""
        cache = self._batch_cache
        if cache is None:
            segs = self._segments
            if any(not seg.keys for seg in segs):
                # Only a pre-bulk-load index has keyless segments;
                # their lower bound short-circuits with no charges.
                cache = self._batch_cache = False
                return cache
            pivots = batching.int64_cache([s.first_key for s in segs])
            models = batching.model_arrays([s.model for s in segs])
            main = batching.ConcatTable.build([s.keys for s in segs])
            if pivots is None or models is None or main is None:
                cache = self._batch_cache = False
                return cache
            kc_const = max(1, len(segs).bit_length())
            node_ids = [s.node_id for s in segs]
            cache = self._batch_cache = (
                pivots, models, main, kc_const, node_ids)
        return cache

    def _lookup_batch(self, keys: Sequence[Key]):
        """Vectorized lookup over the trained arrays; per-record bins
        (a dict per segment) are probed scalar, but only for the keys
        that missed the trained array."""
        ks = batching.key_array(keys)
        if ks is None:
            return None
        cache = self._batch_tables()
        if cache is False:
            return None
        pivots, (slopes, intercepts, anchors), main, kc_const, node_ids = \
            cache
        np = batching._np
        B = len(ks)
        si = np.maximum(np.searchsorted(pivots, ks, side="right") - 1, 0)
        lens = main.lens[si]
        lo, hi = batching.window_bounds(
            slopes[si], intercepts[si], anchors[si], ks, self.epsilon, lens)
        r = main.rank_local(ks, si)
        probes = batching.simulate_binary(lo, hi, r)
        cp = batching.cache_probe_units(probes)
        i = np.clip(r, lo, hi)
        in_main = (i < lens) & (
            main.cat[np.minimum(main.offsets[si] + i, len(main.cat) - 1)]
            == ks)
        miss = ~in_main
        values: List[Optional[Value]] = [None] * B
        segs = self._segments
        for j in np.flatnonzero(in_main):
            values[j] = segs[int(si[j])].values[int(i[j])]
        # Scalar bin probe for the misses, mirroring the scalar path's
        # conditional charge (an absent or empty bin charges nothing).
        bin_kc = np.zeros(B, dtype=np.int64)
        found_bin = np.zeros(B, dtype=bool)
        for j in np.flatnonzero(miss):
            seg = segs[int(si[j])]
            bin_ = seg.bins.get(int(i[j]) - 1)
            if bin_:
                bin_kc[j] = max(1, len(bin_).bit_length())
                key = int(ks[j])
                jj = bisect.bisect_left(bin_, (key,))
                if jj < len(bin_) and bin_[jj][0] == key:
                    found_bin[j] = True
                    values[j] = bin_[jj][1]
        kc = probes + bin_kc
        found = (in_main | found_bin).tolist()
        si_list = si.tolist()
        log = batching.ChargeLog(B)
        log.add(PHASE_TRAVERSE, NODE_HOP, 2)
        log.add(PHASE_TRAVERSE, MODEL_EVAL, 1)
        log.add(PHASE_TRAVERSE, KEY_COMPARE, kc_const)
        log.add(PHASE_SEARCH, MODEL_EVAL, 1)
        log.add(PHASE_SEARCH, KEY_COMPARE, kc)
        log.add(PHASE_SEARCH, CACHE_PROBE, cp, reached=cp > 0)
        log.add(PHASE_SEARCH, NODE_HOP, np.ones(B, dtype=np.int64),
                reached=miss)

        def make_record(i: int) -> OpRecord:
            return OpRecord(op="lookup", key=keys[i], found=found[i],
                            path=[node_ids[si_list[i]]], nodes_traversed=2)

        return batching.BatchLookup(values, log, make_record)

    def insert(self, key: Key, value: Value) -> bool:
        with self.meter.phase(PHASE_TRAVERSE):
            si, seg = self._find_segment(key)
            self.meter.charge(NODE_HOP)
        with self.meter.phase(PHASE_SEARCH):
            i = self._segment_lower_bound(seg, key)
            if i < len(seg.keys) and seg.keys[i] == key:
                self.last_op = OpRecord(op="insert", key=key, found=True,
                                        path=[seg.node_id], nodes_traversed=2)
                return False
        # The per-record bin is its own heap allocation: a pointer chase.
        self.meter.charge(NODE_HOP)
        bin_ = seg.bins.setdefault(i - 1, [])
        j = bisect.bisect_left(bin_, (key,))
        if j < len(bin_) and bin_[j][0] == key:
            self.last_op = OpRecord(op="insert", key=key, found=True,
                                    path=[seg.node_id], nodes_traversed=2)
            return False
        self._invalidate_batch_cache()
        with self.meter.phase(PHASE_COLLISION):
            bin_.insert(j, (key, value))
            seg.bin_entries += 1
            self.meter.charge(KEY_SHIFT, len(bin_) - j)
        smo = False
        created = 0
        if len(bin_) > self.bin_capacity:
            with self.meter.phase(PHASE_SMO):
                created = self._retrain_segment(si)
            smo = True
        self._size += 1
        self.last_op = OpRecord(
            op="insert", key=key, path=[seg.node_id], nodes_traversed=2,
            keys_shifted=len(bin_) - j if not smo else 0, smo=smo,
            nodes_created=created,
        )
        return True

    def _retrain_segment(self, si: int) -> int:
        """Flatten one segment's bins and refit locally (may split)."""
        self.retrain_count += 1
        seg = self._segments[si]
        items = list(self._iter_segment(seg))
        self.meter.charge(KEY_SHIFT, len(items))
        new_segments = self._build_segments(items)
        # Preserve the routing pivot so keys between the old pivot and the
        # first retrained key keep resolving to the same place.
        new_segments[0].first_key = seg.first_key
        self._segments[si : si + 1] = new_segments
        return len(new_segments)

    @staticmethod
    def _iter_segment(seg: _FineSegment):
        for b in seg.bins.get(-1, []):
            yield b
        for i in range(len(seg.keys)):
            yield (seg.keys[i], seg.values[i])
            for b in seg.bins.get(i, []):
                yield b

    def update(self, key: Key, value: Value) -> bool:
        _, seg = self._find_segment(key)
        i = self._segment_lower_bound(seg, key)
        if i < len(seg.keys) and seg.keys[i] == key:
            seg.values[i] = value
            self.meter.charge(KEY_SHIFT)
            return True
        bin_ = seg.bins.get(i - 1)
        if bin_:
            j = bisect.bisect_left(bin_, (key,))
            if j < len(bin_) and bin_[j][0] == key:
                bin_[j] = (key, value)
                self.meter.charge(KEY_SHIFT)
                return True
        return False

    # -- scans -----------------------------------------------------------------

    def range_scan(self, start: Key, count: int) -> List[Tuple[Key, Value]]:
        out: List[Tuple[Key, Value]] = []
        with self.meter.phase(PHASE_TRAVERSE):
            si, _ = self._find_segment(start)
        for s in range(si, len(self._segments)):
            seg = self._segments[s]
            for k, v in self._iter_segment(seg):
                if k < start:
                    continue
                out.append((k, v))
                self.meter.charge(SCAN_ENTRY)
                if len(out) >= count:
                    return out
            if s + 1 < len(self._segments):
                self.meter.charge(NODE_HOP)
        return out

    # -- memory -----------------------------------------------------------------

    def memory_usage(self) -> MemoryBreakdown:
        inner = len(self._segments) * (KEY_BYTES + POINTER_BYTES)
        leaf = 0
        for seg in self._segments:
            leaf += _SEGMENT_HEADER_BYTES
            leaf += len(seg.keys) * (KEY_BYTES + PAYLOAD_BYTES + POINTER_BYTES)
            for bin_ in seg.bins.values():
                leaf += _BIN_HEADER_BYTES + len(bin_) * _BIN_ENTRY_BYTES
        return MemoryBreakdown(inner=inner, leaf=leaf)

    # -- introspection ------------------------------------------------------------

    def segment_count(self) -> int:
        return len(self._segments)

    # -- validation ---------------------------------------------------------------

    def debug_validate(self) -> List[Violation]:
        """Segment-and-bin invariants: strictly increasing pivots with
        the first anchored at 0, trained arrays sorted and within their
        pivot range, every bin attached to a valid position with its
        contents strictly inside the open interval between the
        neighbouring trained keys, bin sizes within ``bin_capacity``
        (an overflow must have retrained), the ``bin_entries`` counter
        exact, model residuals within ε over the trained keys, and a
        globally sorted merged iteration.  Walks segments directly;
        never charges the meter.
        """
        out: List[Violation] = []
        segs = self._segments
        if not segs:
            return [Violation(0, "finedex.pivot-order",
                              "index has no segments at all")]
        if segs[0].first_key != 0:
            out.append(Violation(
                segs[0].node_id, "finedex.pivot-order",
                f"first pivot is {segs[0].first_key}, expected 0"))
        out.extend(sorted_violations(
            [s.first_key for s in segs], 0, "finedex.pivot-order",
            what="pivots"))
        total = 0
        for si, seg in enumerate(segs):
            hi = segs[si + 1].first_key if si + 1 < len(segs) else None
            out.extend(sorted_violations(
                seg.keys, seg.node_id, "finedex.keys-sorted"))
            out.extend(range_violation(
                seg.keys, seg.first_key, hi, seg.node_id,
                "finedex.key-range"))
            if len(seg.keys) != len(seg.values):
                out.append(Violation(
                    seg.node_id, "finedex.arrays",
                    f"{len(seg.keys)} keys vs {len(seg.values)} values"))
            if seg.keys:
                out.extend(residual_violations(
                    seg.model, seg.keys, 0, self.epsilon, seg.node_id,
                    "finedex.epsilon"))
            entries = 0
            for b, bin_ in seg.bins.items():
                entries += len(bin_)
                if not -1 <= b < max(len(seg.keys), 1):
                    out.append(Violation(
                        seg.node_id, "finedex.bin-position",
                        f"bin attached at position {b} of a segment "
                        f"with {len(seg.keys)} trained keys"))
                    continue
                if len(bin_) > self.bin_capacity:
                    out.append(Violation(
                        seg.node_id, "finedex.bin-capacity",
                        f"bin {b} holds {len(bin_)} > bin_capacity "
                        f"{self.bin_capacity} (missed retrain)"))
                bkeys = [k for k, _ in bin_]
                out.extend(sorted_violations(
                    bkeys, seg.node_id, "finedex.bin-sorted",
                    what=f"bins[{b}]"))
                blo = seg.keys[b] + 1 if b >= 0 else seg.first_key
                bhi = seg.keys[b + 1] if b + 1 < len(seg.keys) else hi
                out.extend(range_violation(
                    bkeys, blo, bhi, seg.node_id, "finedex.bin-range"))
            if entries != seg.bin_entries:
                out.append(Violation(
                    seg.node_id, "finedex.bin-count",
                    f"bin_entries counter {seg.bin_entries} but bins "
                    f"hold {entries}"))
            merged = [k for k, _ in self._iter_segment(seg)]
            i = first_inversion(merged, strict=True)
            if i >= 0:
                out.append(Violation(
                    seg.node_id, "finedex.order",
                    f"merged iteration inverts at position {i}: "
                    f"{merged[i]} >= {merged[i + 1]}"))
            total += len(seg.keys) + entries
        if total != self._size:
            out.append(Violation(
                0, "finedex.size",
                f"segments hold {total} keys but len(index) == "
                f"{self._size}"))
        return out
