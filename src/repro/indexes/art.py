"""Adaptive Radix Tree (Leis et al., ICDE 2013).

Keys are treated as 8-byte big-endian strings, so integer order equals
lexicographic byte order.  Nodes grow through the classic tiers
(Node4 → Node16 → Node48 → Node256) and use pessimistic path
compression (the full skipped prefix is stored in the node).

Implementation note: children are kept in one sorted ``(byte, child)``
array regardless of tier; the tier — derived from the child count —
drives the *memory model* and the per-node search cost, which is what
the paper's results depend on (ART's low space utilisation comes from
the null-pointer slack of Node48/Node256, reproduced analytically in
:meth:`ART.memory_usage`).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.core.cost import (
    ALLOC_NODE,
    KEY_COMPARE,
    SLOT_INIT,
    KEY_SHIFT,
    NODE_HOP,
    PHASE_COLLISION,
    PHASE_SMO,
    PHASE_TRAVERSE,
    SCAN_ENTRY,
)
from repro.core.validate import Violation, sorted_violations
from repro.indexes.base import (
    KEY_BYTES,
    PAYLOAD_BYTES,
    POINTER_BYTES,
    Key,
    MemoryBreakdown,
    OpRecord,
    OrderedIndex,
    Value,
)

_HEADER_BYTES = 16


def _key_bytes(key: Key) -> bytes:
    return key.to_bytes(KEY_BYTES, "big")


def _tier(n_children: int) -> int:
    """The smallest ART node tier that fits ``n_children``."""
    if n_children <= 4:
        return 4
    if n_children <= 16:
        return 16
    if n_children <= 48:
        return 48
    return 256


def _tier_bytes(tier: int) -> int:
    if tier == 4:
        return _HEADER_BYTES + 4 + 4 * POINTER_BYTES
    if tier == 16:
        return _HEADER_BYTES + 16 + 16 * POINTER_BYTES
    if tier == 48:
        return _HEADER_BYTES + 256 + 48 * POINTER_BYTES
    return _HEADER_BYTES + 256 * POINTER_BYTES


class _ArtLeaf:
    __slots__ = ("key", "value")

    def __init__(self, key: Key, value: Value) -> None:
        self.key = key
        self.value = value


class _ArtNode:
    __slots__ = ("node_id", "prefix", "bytes_", "children")

    def __init__(self, node_id: int, prefix: bytes = b"") -> None:
        self.node_id = node_id
        self.prefix = prefix
        self.bytes_: List[int] = []  # sorted discriminating bytes
        self.children: List[Any] = []  # parallel to bytes_

    def find(self, b: int) -> int:
        """Index of byte ``b`` in this node, or -1."""
        lo, hi = 0, len(self.bytes_)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.bytes_[mid] < b:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self.bytes_) and self.bytes_[lo] == b:
            return lo
        return -1

    def lower(self, b: int) -> int:
        """Index of the first byte >= ``b``."""
        lo, hi = 0, len(self.bytes_)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.bytes_[mid] < b:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def add(self, b: int, child: Any) -> None:
        i = self.lower(b)
        self.bytes_.insert(i, b)
        self.children.insert(i, child)

    def remove(self, b: int) -> None:
        i = self.find(b)
        del self.bytes_[i]
        del self.children[i]


class ART(OrderedIndex):
    """Adaptive radix tree over 64-bit integer keys."""

    name = "ART"
    is_learned = False
    supports_delete = True
    supports_range = True

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self._root: Optional[Any] = None

    # -- build --------------------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        self.check_sorted(items)
        self._root = None
        self._size = 0
        for k, v in items:
            self._insert_quiet(k, v)
        self._size = len(items)

    def _insert_quiet(self, key: Key, value: Value) -> bool:
        """Insert without phase attribution (bulk load)."""
        return self._do_insert(key, value, OpRecord(op="bulk"))

    # -- lookup --------------------------------------------------------------

    def lookup(self, key: Key) -> Optional[Value]:
        kb = _key_bytes(key)
        node = self._root
        depth = 0
        path: List[int] = []
        with self.meter.phase(PHASE_TRAVERSE):
            while node is not None:
                if isinstance(node, _ArtLeaf):
                    self.meter.charge(KEY_COMPARE)
                    found = node.key == key
                    self.last_op = OpRecord(
                        op="lookup", key=key, found=found, path=path,
                        nodes_traversed=len(path) + 1,
                    )
                    return node.value if found else None
                self.meter.charge(NODE_HOP)
                path.append(node.node_id)
                p = node.prefix
                if p:
                    self.meter.charge(KEY_COMPARE)
                    if kb[depth : depth + len(p)] != p:
                        break
                    depth += len(p)
                i = node.find(kb[depth])
                self.meter.charge(KEY_COMPARE, 2 if _tier(len(node.bytes_)) <= 16 else 1)
                if i < 0:
                    break
                node = node.children[i]
                depth += 1
        self.last_op = OpRecord(
            op="lookup", key=key, found=False, path=path, nodes_traversed=len(path)
        )
        return None

    # -- insert --------------------------------------------------------------

    def insert(self, key: Key, value: Value) -> bool:
        rec = OpRecord(op="insert", key=key)
        ok = self._do_insert(key, value, rec)
        if ok:
            self._size += 1
        self.last_op = rec
        return ok

    def _do_insert(self, key: Key, value: Value, rec: OpRecord) -> bool:
        kb = _key_bytes(key)
        if self._root is None:
            self._root = _ArtLeaf(key, value)
            rec.nodes_created = 1
            self.meter.charge(ALLOC_NODE)
            return True

        parent: Optional[_ArtNode] = None
        parent_byte = 0
        node = self._root
        depth = 0
        with self.meter.phase(PHASE_TRAVERSE):
            while True:
                if isinstance(node, _ArtLeaf):
                    break
                rec.path.append(node.node_id)
                self.meter.charge(NODE_HOP)
                p = node.prefix
                if p:
                    common = _common_len(kb, depth, p)
                    self.meter.charge(KEY_COMPARE)
                    if common < len(p):
                        # Prefix mismatch: split this node's prefix.
                        with self.meter.phase(PHASE_SMO):
                            self._split_prefix(parent, parent_byte, node, kb, depth, common, key, value, rec)
                        rec.smo = True
                        return True
                    depth += len(p)
                i = node.find(kb[depth])
                self.meter.charge(KEY_COMPARE, 2)
                if i < 0:
                    with self.meter.phase(PHASE_COLLISION):
                        self._add_child(node, kb[depth], _ArtLeaf(key, value), rec)
                    return True
                parent, parent_byte = node, kb[depth]
                node = node.children[i]
                depth += 1
        # Reached a leaf.
        leaf: _ArtLeaf = node
        self.meter.charge(KEY_COMPARE)
        if leaf.key == key:
            rec.found = True
            return False
        with self.meter.phase(PHASE_COLLISION):
            lb = _key_bytes(leaf.key)
            common = 0
            while depth + common < KEY_BYTES and lb[depth + common] == kb[depth + common]:
                common += 1
            new = _ArtNode(self._next_node_id(), kb[depth : depth + common])
            self.meter.charge(ALLOC_NODE)
            rec.nodes_created = 2
            d = depth + common
            new.add(lb[d], leaf)
            new.add(kb[d], _ArtLeaf(key, value))
            self._replace_child(parent, parent_byte, new)
        return True

    def _split_prefix(
        self,
        parent: Optional[_ArtNode],
        parent_byte: int,
        node: _ArtNode,
        kb: bytes,
        depth: int,
        common: int,
        key: Key,
        value: Value,
        rec: OpRecord,
    ) -> None:
        p = node.prefix
        new = _ArtNode(self._next_node_id(), p[:common])
        self.meter.charge(ALLOC_NODE)
        rec.nodes_created = 2
        old_branch_byte = p[common]
        node.prefix = p[common + 1 :]
        new.add(old_branch_byte, node)
        new.add(kb[depth + common], _ArtLeaf(key, value))
        self._replace_child(parent, parent_byte, new)

    def _add_child(self, node: _ArtNode, b: int, child: Any, rec: OpRecord) -> None:
        before = _tier(len(node.bytes_))
        node.add(b, child)
        # Only Node4/Node16 keep sorted arrays that shift on insert;
        # Node48/Node256 are index-addressed (O(1) slot writes) — one of
        # the reasons ART shines on dense integer keys.
        if before <= 16:
            self.meter.charge(KEY_SHIFT, len(node.bytes_) - node.find(b))
        else:
            self.meter.charge(SLOT_INIT)
        after = _tier(len(node.bytes_))
        rec.nodes_created += 1
        # Single-value leaves are stored inline as tagged pointers (the
        # ART paper's combined pointer/value slot): no allocation here.
        if after != before:
            # Node grew a tier: modelled as reallocation + copy.
            rec.smo = True
            self.meter.charge(ALLOC_NODE)
            self.meter.charge(KEY_SHIFT, len(node.bytes_))

    def _replace_child(self, parent: Optional[_ArtNode], b: int, new_child: Any) -> None:
        if parent is None:
            self._root = new_child
        else:
            parent.children[parent.find(b)] = new_child

    # -- update / delete ----------------------------------------------------------

    def update(self, key: Key, value: Value) -> bool:
        leaf = self._find_leaf(key)
        if leaf is None:
            return False
        leaf.value = value
        self.meter.charge(KEY_SHIFT)
        return True

    def _find_leaf(self, key: Key) -> Optional[_ArtLeaf]:
        kb = _key_bytes(key)
        node = self._root
        depth = 0
        while node is not None:
            if isinstance(node, _ArtLeaf):
                return node if node.key == key else None
            self.meter.charge(NODE_HOP)
            p = node.prefix
            if p:
                if kb[depth : depth + len(p)] != p:
                    return None
                depth += len(p)
            i = node.find(kb[depth])
            if i < 0:
                return None
            node = node.children[i]
            depth += 1
        return None

    def delete(self, key: Key) -> bool:
        kb = _key_bytes(key)
        rec = OpRecord(op="delete", key=key)
        node = self._root
        parent: Optional[_ArtNode] = None
        parent_byte = 0
        grand: Optional[_ArtNode] = None
        grand_byte = 0
        depth = 0
        with self.meter.phase(PHASE_TRAVERSE):
            while node is not None and not isinstance(node, _ArtLeaf):
                rec.path.append(node.node_id)
                self.meter.charge(NODE_HOP)
                p = node.prefix
                if p:
                    if kb[depth : depth + len(p)] != p:
                        node = None
                        break
                    depth += len(p)
                i = node.find(kb[depth])
                if i < 0:
                    node = None
                    break
                grand, grand_byte = parent, parent_byte
                parent, parent_byte = node, kb[depth]
                node = node.children[i]
                depth += 1
        if node is None or node.key != key:
            rec.found = False
            self.last_op = rec
            return False
        rec.found = True
        with self.meter.phase(PHASE_SMO):
            if parent is None:
                self._root = None
            else:
                parent.remove(parent_byte)
                self.meter.charge(KEY_SHIFT, len(parent.bytes_))
                if len(parent.bytes_) == 1:
                    # Merge single-child node back into the path (restore
                    # path compression), as the ART paper prescribes.
                    only = parent.children[0]
                    if isinstance(only, _ArtNode):
                        only.prefix = parent.prefix + bytes([parent.bytes_[0]]) + only.prefix
                        merged: Any = only
                    else:
                        merged = only
                    self._replace_child(grand, grand_byte, merged)
                    rec.smo = True
        self._size -= 1
        self.last_op = rec
        return True

    # -- range scans ----------------------------------------------------------------

    def range_scan(self, start: Key, count: int) -> List[Tuple[Key, Value]]:
        out: List[Tuple[Key, Value]] = []
        if self._root is None or count <= 0:
            return out
        sb = _key_bytes(start)
        for leaf in self._iter_from(self._root, 0, sb, bounded=True):
            out.append((leaf.key, leaf.value))
            self.meter.charge(SCAN_ENTRY)
            if len(out) >= count:
                break
        return out

    def _iter_from(self, node: Any, depth: int, sb: bytes, bounded: bool) -> Iterator[_ArtLeaf]:
        """In-order leaves with key >= start (when ``bounded``)."""
        if isinstance(node, _ArtLeaf):
            if not bounded or _key_bytes(node.key) >= sb:
                yield node
            return
        self.meter.charge(NODE_HOP)
        p = node.prefix
        if bounded and p:
            probe = sb[depth : depth + len(p)]
            if p > probe:
                bounded = False  # whole subtree is above start
            elif p < probe:
                return  # whole subtree is below start
        depth2 = depth + len(p)
        if not bounded:
            for child in node.children:
                yield from self._iter_from(child, depth2 + 1, sb, bounded=False)
            return
        b = sb[depth2]
        i = node.lower(b)
        for j in range(i, len(node.bytes_)):
            child_bounded = node.bytes_[j] == b
            yield from self._iter_from(node.children[j], depth2 + 1, sb, bounded=child_bounded)

    # -- memory ----------------------------------------------------------------

    def memory_usage(self) -> MemoryBreakdown:
        inner = 0
        leaf = 0
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            if isinstance(node, _ArtLeaf):
                # Single-value leaves are pointer-tagged: the 8-byte
                # payload rides in the child slot; with pessimistic path
                # compression the key is spelled by the path itself.
                leaf += PAYLOAD_BYTES
            else:
                inner += _tier_bytes(_tier(len(node.bytes_))) + len(node.prefix)
                stack.extend(node.children)
        return MemoryBreakdown(inner=inner, leaf=leaf)

    # -- validation ---------------------------------------------------------------

    def debug_validate(self) -> List[Violation]:
        """Radix invariants: discriminating bytes strictly sorted and
        parallel to the child array, no single-child inner nodes (path
        compression would have folded them), every root-to-leaf byte
        path a prefix of the leaf's big-endian key (radix-prefix
        consistency), paths within the 8-byte key length, and leaf
        count matching ``len(index)``.  Walks nodes directly; never
        charges the meter.
        """
        out: List[Violation] = []
        count = 0

        def walk(node: Any, path: bytes) -> None:
            nonlocal count
            if isinstance(node, _ArtLeaf):
                count += 1
                kb = _key_bytes(node.key)
                if not kb.startswith(path):
                    out.append(Violation(
                        0, "art.prefix-path",
                        f"leaf key {node.key} ({kb.hex()}) does not "
                        f"extend its path {path.hex()}"))
                return
            if len(node.bytes_) != len(node.children):
                out.append(Violation(
                    node.node_id, "art.parallel-arrays",
                    f"{len(node.bytes_)} bytes vs "
                    f"{len(node.children)} children"))
                return
            if len(node.bytes_) < 2:
                out.append(Violation(
                    node.node_id, "art.min-children",
                    f"inner node has {len(node.bytes_)} children; path "
                    f"compression requires >= 2"))
            out.extend(sorted_violations(
                node.bytes_, node.node_id, "art.bytes-sorted",
                what="bytes_"))
            base = path + node.prefix
            if len(base) >= KEY_BYTES:
                out.append(Violation(
                    node.node_id, "art.depth",
                    f"path length {len(base)} leaves no room for a "
                    f"discriminating byte in an {KEY_BYTES}-byte key"))
                return
            for b, child in zip(node.bytes_, node.children):
                walk(child, base + bytes([b]))

        if self._root is not None:
            walk(self._root, b"")
        if count != self._size:
            out.append(Violation(
                0, "art.size",
                f"{count} leaves but len(index) == {self._size}"))
        return out

    @property
    def height(self) -> int:
        """Maximum node depth (leaves excluded)."""
        def depth(node: Any) -> int:
            if isinstance(node, _ArtLeaf) or node is None:
                return 0
            return 1 + max((depth(c) for c in node.children), default=0)

        return depth(self._root)


def _common_len(kb: bytes, depth: int, prefix: bytes) -> int:
    n = 0
    limit = min(len(prefix), len(kb) - depth)
    while n < limit and kb[depth + n] == prefix[n]:
        n += 1
    return n
