"""Live-migration multiplexer: two indexes behind one ``OrderedIndex``.

A :class:`MultiplexIndex` is the data-plane half of zero-downtime index
migration (the control plane lives in :mod:`repro.core.migrate`).  It
presents the full ``OrderedIndex`` contract — including the
``lookup_many``/``insert_many``/``scan_many`` batch paths — while:

* serving every **read** from the *primary* (the index being replaced),
  so client-visible lookup latency never changes,
* duplicating every **write** to primary *and* secondary, checking
  write parity (a dual write that disagrees on success is divergence),
* **backfilling** the secondary in interleaved chunks: each client op
  pumps up to ``pump_per_op`` chunks copied from a snapshot cursor that
  walks the primary in key order via ``range_scan``.  Pump work is
  charged to the *secondary's* cost meter, never the client-visible
  primary meter — migration overhead is measured, not hidden, and reads
  stay exactly as cheap as before,
* **verifying** after backfill completes: a second cursor sweep
  value-compares every primary key against the secondary, then keys
  dual-written during the sweep (the *dirty set*) are re-compared, then
  sizes must match.  Only a fully verified secondary reaches ``ready``,
* **cutting over** atomically between two client operations: the
  primary reference, meter, and capability flags swap in one step with
  no operation deferred or rejected (``cutover_stall_ops == 0`` by
  construction).  On divergence the migration moves to ``failed``; an
  :meth:`abort` detaches the secondary and the primary keeps serving.

Divergence handling — comparing against the differential-oracle model
and shrinking a repro stream with ``shrink_stream`` — is the
controller's job; the multiplexer only *detects* and records
:class:`Divergence` facts, so this module stays import-light (it must
not depend on :mod:`repro.core.opstream`, which imports the runner).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Set, Tuple

from repro.indexes.base import (
    Key,
    MemoryBreakdown,
    OpRecord,
    OrderedIndex,
    Value,
)

__all__ = [
    "BACKFILL", "VERIFY", "READY", "DONE", "FAILED", "DETACHED",
    "Divergence", "MultiplexIndex",
]

#: Migration phases of the multiplexer's pump state machine.
BACKFILL = "backfill"
VERIFY = "verify"
READY = "ready"
DONE = "done"        # cut over; the old secondary is now the primary
FAILED = "failed"    # divergence detected; awaiting abort/rollback
DETACHED = "detached"  # aborted; secondary dropped, primary serving


@dataclass(frozen=True)
class Divergence:
    """One observed disagreement between primary and secondary."""

    #: Client-op sequence number at detection time.
    seq: int
    #: Where it surfaced: "write" (dual-write parity), "backfill"
    #: (copy hit an existing key with a different value), "verify"
    #: (sweep or dirty-set re-check), "size" (cardinality mismatch).
    stage: str
    op: str
    key: Key
    expected: str
    got: str

    def describe(self) -> str:
        return (f"[{self.stage}] seq={self.seq} {self.op} key={self.key}: "
                f"expected {self.expected}, got {self.got}")


class MultiplexIndex(OrderedIndex):
    """Primary + shadow secondary multiplexed behind one index."""

    name = "Multiplex"
    is_learned = False
    is_adapter = True

    def __init__(
        self,
        primary: OrderedIndex,
        secondary: OrderedIndex,
        chunk: int = 128,
        pump_per_op: int = 1,
        auto_cutover: bool = False,
        divergence_limit: int = 20,
    ) -> None:
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        if not primary.supports_range:
            raise ValueError(
                f"{primary.name} cannot be migrated from: the backfill "
                "snapshot cursor needs range_scan support")
        super().__init__(meter=primary.meter)
        self.primary = primary
        self.secondary: Optional[OrderedIndex] = secondary
        self.retired: Optional[OrderedIndex] = None
        self.chunk = chunk
        self.pump_per_op = pump_per_op
        self.auto_cutover = auto_cutover
        self.divergence_limit = divergence_limit
        self.phase = BACKFILL
        # Capabilities: reads follow the primary; writes need both sides.
        self.supports_delete = primary.supports_delete and secondary.supports_delete
        self.supports_range = primary.supports_range
        self.supports_duplicates = False
        #: Next key the backfill snapshot cursor will copy from.
        self._cursor: Key = 0
        #: Next key the verification sweep will compare.
        self._vcursor: Key = 0
        #: Keys dual-written while verification was in flight; re-compared
        #: before cutover so churn cannot slip past the sweep.
        self._dirty: Set[Key] = set()
        #: Keys already written to the secondary while backfill was in
        #: flight.  The cursor must value-compare these instead of
        #: re-inserting: LSM-style secondaries (PGM) blind-append on
        #: insert, so "insert returned False" cannot detect duplicates.
        self._shadow_written: Set[Key] = set()
        self.divergences: List[Divergence] = []
        #: Progress callback ``(stage, done, total)`` per pumped chunk.
        self.progress_sink: Optional[Callable[[str, int, int], None]] = None
        # Counters surfaced in the migration report.
        self.backfill_keys = 0
        self.backfill_chunks = 0
        #: Backfill-cursor keys that were already dual-written (their
        #: values get compared instead of copied).
        self.backfill_duplicates = 0
        self.verify_keys = 0
        self.reverify_keys = 0
        self.dual_writes = 0
        self.cutover_seq: Optional[int] = None
        #: Client ops deferred or rejected because of cutover: always 0 —
        #: the swap happens inside a single pump, between client ops.
        self.cutover_stall_ops = 0
        self._seq = 0

    # -- helpers ---------------------------------------------------------------

    @property
    def migrating(self) -> bool:
        """Whether a secondary is still attached (not cut over/aborted)."""
        return self.phase in (BACKFILL, VERIFY, READY, FAILED)

    def _mirror(self, prev: OpRecord) -> None:
        """Adopt the primary's fresh ``last_op`` (identity-compared, so
        staleness semantics survive the wrapper: ops that leave the
        primary's record stale leave ours stale too)."""
        cur = self.primary.last_op
        if cur is not prev:
            self.last_op = cur

    def _borrowed_meter(self):
        """Context that charges the primary's next ops to the secondary's
        meter — backfill/verify reads of the primary are migration
        overhead, not client traffic."""
        mux = self

        class _Borrow:
            def __enter__(self) -> None:
                self._saved = mux.primary.meter
                assert mux.secondary is not None
                mux.primary.meter = mux.secondary.meter

            def __exit__(self, *exc: Any) -> None:
                mux.primary.meter = self._saved

        return _Borrow()

    def _diverge(self, stage: str, op: str, key: Key,
                 expected: object, got: object) -> None:
        if len(self.divergences) < self.divergence_limit:
            self.divergences.append(Divergence(
                seq=self._seq, stage=stage, op=op, key=key,
                expected=repr(expected), got=repr(got)))
        self.phase = FAILED

    def _progress(self, stage: str, done: int) -> None:
        if self.progress_sink is not None:
            self.progress_sink(stage, done, len(self.primary))

    def _expect_in_secondary(self, key: Key) -> bool:
        """Whether ``key``'s presence in the primary implies presence in
        the secondary (already backfilled, or backfill finished)."""
        return self.phase in (VERIFY, READY) or key < self._cursor

    # -- the pump: interleaved backfill / verify / cutover ---------------------

    def pump(self) -> int:
        """Advance the migration by one chunk; returns keys processed.

        Called automatically (``pump_per_op`` times) after every client
        operation, so migration progress interleaves with live traffic
        instead of stopping the world."""
        if self.phase == BACKFILL:
            return self._backfill_chunk()
        if self.phase == VERIFY:
            return self._verify_chunk()
        if self.phase == READY and self.auto_cutover:
            self.cutover()
        return 0

    def _pump(self) -> None:
        for _ in range(self.pump_per_op):
            if not self.migrating or self.phase == FAILED:
                return
            self.pump()

    def _backfill_chunk(self) -> int:
        secondary = self.secondary
        assert secondary is not None
        with self._borrowed_meter():
            rows = self.primary.range_scan(self._cursor, self.chunk)
        for key, value in rows:
            if key in self._shadow_written or not secondary.insert(key, value):
                # Already present (dual-written while the cursor was
                # behind it): fine, but the values must agree.
                self.backfill_duplicates += 1
                got = secondary.lookup(key)
                if got != value:
                    self._diverge("backfill", "insert", key, value, got)
                    return 0
        self.backfill_keys += len(rows)
        self.backfill_chunks += 1
        self._invalidate_batch_cache()
        if len(rows) < self.chunk:
            self.phase = VERIFY
            self._vcursor = 0
            self._shadow_written.clear()  # the dirty set takes over
        else:
            self._cursor = rows[-1][0] + 1
        self._progress("backfill", self.backfill_keys)
        return len(rows)

    def _verify_chunk(self) -> int:
        secondary = self.secondary
        assert secondary is not None
        with self._borrowed_meter():
            rows = self.primary.range_scan(self._vcursor, self.chunk)
        for key, value in rows:
            got = secondary.lookup(key)
            self.verify_keys += 1
            if got != value:
                self._diverge("verify", "lookup", key, value, got)
                return 0
        self._progress("verify", self.verify_keys)
        if len(rows) < self.chunk:
            return self._finish_verification(len(rows))
        self._vcursor = rows[-1][0] + 1
        return len(rows)

    def _finish_verification(self, scanned: int) -> int:
        """Sweep done: re-check churned keys, then cardinality, then
        declare ready (and cut over if configured)."""
        secondary = self.secondary
        assert secondary is not None
        for key in sorted(self._dirty):
            with self._borrowed_meter():
                expected = self.primary.lookup(key)
            got = secondary.lookup(key)
            self.reverify_keys += 1
            if got != expected:
                self._diverge("verify", "reverify", key, expected, got)
                return 0
        self._dirty.clear()
        if len(secondary) != len(self.primary):
            self._diverge("size", "verify", 0,
                          len(self.primary), len(secondary))
            return 0
        self.phase = READY
        self._progress("ready", self.verify_keys)
        if self.auto_cutover:
            self.cutover()
        return scanned

    def cutover(self) -> None:
        """Atomically promote the verified secondary to primary.

        Runs between two client operations (the pump sits after the
        op's primary work), so no client op is ever deferred: the swap
        rebinds the primary reference, the client-visible meter, and
        the capability flags in one step."""
        if self.phase != READY:
            raise RuntimeError(
                f"cutover requires a fully verified secondary "
                f"(phase={self.phase!r})")
        secondary = self.secondary
        assert secondary is not None
        # Keys written while READY (cutover pending) get one last
        # comparison, so the verified-before-swap guarantee covers
        # every key no matter how late the churn arrived.
        for key in sorted(self._dirty):
            with self._borrowed_meter():
                expected = self.primary.lookup(key)
            got = secondary.lookup(key)
            self.reverify_keys += 1
            if got != expected:
                self._diverge("verify", "reverify", key, expected, got)
                return
        self._dirty.clear()
        self.retired = self.primary
        self.primary = secondary
        self.secondary = None
        self.meter = self.primary.meter
        self.supports_delete = self.primary.supports_delete
        self.supports_range = self.primary.supports_range
        self.phase = DONE
        self.cutover_seq = self._seq
        self._invalidate_batch_cache()

    def abort(self) -> None:
        """Drop the secondary; the primary keeps serving unchanged."""
        if self.phase in (DONE, DETACHED):
            raise RuntimeError(f"nothing to abort (phase={self.phase!r})")
        self.retired = self.secondary
        self.secondary = None
        self.phase = DETACHED
        self._invalidate_batch_cache()

    # -- OrderedIndex: reads ---------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        """Load the *primary*; the backfill pump will copy to the
        secondary like any other pre-existing data."""
        self.primary.bulk_load(items)
        self._invalidate_batch_cache()

    def lookup(self, key: Key) -> Optional[Value]:
        prev = self.primary.last_op
        value = self.primary.lookup(key)
        self._mirror(prev)
        self._seq += 1
        self._pump()
        return value

    def range_scan(self, start: Key, count: int) -> List[Tuple[Key, Value]]:
        prev = self.primary.last_op
        rows = self.primary.range_scan(start, count)
        self._mirror(prev)
        self._seq += 1
        self._pump()
        return rows

    # -- OrderedIndex: dual writes ---------------------------------------------

    def insert(self, key: Key, value: Value) -> bool:
        prev = self.primary.last_op
        okp = self.primary.insert(key, value)
        self._mirror(prev)
        self._seq += 1
        secondary = self.secondary
        if okp and secondary is not None and self.phase != FAILED:
            # A fresh primary insert means the key was absent, so the
            # backfill cursor can never have copied it: the secondary
            # insert must succeed unconditionally.
            self.dual_writes += 1
            if not secondary.insert(key, value):
                self._diverge("write", "insert", key, True, False)
            elif self.phase == BACKFILL:
                self._shadow_written.add(key)
            elif self.phase in (VERIFY, READY):
                self._dirty.add(key)
        self._pump()
        return okp

    def update(self, key: Key, value: Value) -> bool:
        prev = self.primary.last_op
        okp = self.primary.update(key, value)
        self._mirror(prev)
        self._seq += 1
        secondary = self.secondary
        if okp and secondary is not None and self.phase != FAILED:
            self.dual_writes += 1
            oks = secondary.update(key, value)
            if not oks and self._expect_in_secondary(key):
                self._diverge("write", "update", key, True, False)
            elif oks and self.phase == BACKFILL:
                self._shadow_written.add(key)
            elif oks and self.phase in (VERIFY, READY):
                self._dirty.add(key)
            # Not yet backfilled and not written: the cursor will copy
            # the new value.
        self._pump()
        return okp

    def delete(self, key: Key) -> bool:
        prev = self.primary.last_op
        okp = self.primary.delete(key)
        self._mirror(prev)
        self._seq += 1
        secondary = self.secondary
        if okp and secondary is not None and self.phase != FAILED:
            self.dual_writes += 1
            oks = secondary.delete(key)
            if not oks and self._expect_in_secondary(key):
                self._diverge("write", "delete", key, True, False)
            elif self.phase == BACKFILL:
                self._shadow_written.discard(key)
            elif self.phase in (VERIFY, READY):
                # Both sides must now agree the key is gone.
                self._dirty.add(key)
        self._pump()
        return okp

    # -- batch paths -----------------------------------------------------------

    def _lookup_batch(self, keys: Sequence[Key]) -> Optional[Any]:
        """Delegate the vectorized fast path to the live primary.

        The binding is cached in ``_batch_cache`` and dropped by
        ``_invalidate_batch_cache`` — which every pump chunk, cutover,
        and abort calls — so a batch can never be served by an index
        that was swapped out mid-stream (see ``scan_many`` in the base
        class for the wrapper-mutation guard)."""
        if self._batch_cache is None:
            self._batch_cache = self.primary
        return self._batch_cache._lookup_batch(keys)

    def _invalidate_batch_cache(self) -> None:
        super()._invalidate_batch_cache()
        # Cascade to both sides: their own caches key vectorized tables
        # off structures the pump may just have mutated.
        self.primary._invalidate_batch_cache()
        if self.secondary is not None:
            self.secondary._invalidate_batch_cache()

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.primary)

    def memory_usage(self) -> MemoryBreakdown:
        """Honest accounting: while both sides are attached, migration
        really does hold two indexes in memory."""
        mem = self.primary.memory_usage()
        if self.secondary is not None:
            other = self.secondary.memory_usage()
            return MemoryBreakdown(
                inner=mem.inner + other.inner,
                leaf=mem.leaf + other.leaf,
                metadata=mem.metadata + other.metadata,
            )
        return mem

    def debug_validate(self) -> List[Any]:
        out = list(self.primary.debug_validate())
        if self.secondary is not None:
            out.extend(self.secondary.debug_validate())
        return out

    def status(self) -> dict:
        """Migration-progress snapshot (feeds instance telemetry)."""
        return {
            "phase": self.phase,
            "primary": self.primary.name,
            "secondary": self.secondary.name if self.secondary else None,
            "cursor": self._cursor,
            "backfill_keys": self.backfill_keys,
            "backfill_chunks": self.backfill_chunks,
            "backfill_duplicates": self.backfill_duplicates,
            "verify_keys": self.verify_keys,
            "reverify_keys": self.reverify_keys,
            "dirty": len(self._dirty),
            "dual_writes": self.dual_writes,
            "divergences": len(self.divergences),
            "cutover_seq": self.cutover_seq,
            "cutover_stall_ops": self.cutover_stall_ops,
        }
