"""STX-style in-memory B+-tree.

The traditional baseline of the study.  Cache-conscious fanout (keys per
node sized to a few cache lines, like STX's default of 16–32 slots),
sorted slot arrays with binary search, leaf side-links for range scans
(the paper added side-links to B+TreeOLC for exactly this reason).

Deletes rebalance by borrowing from or merging with siblings, keeping
all nodes at least half full, so the memory report stays honest under
the deletion workloads of Figure 7.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.core.cost import (
    ALLOC_NODE,
    KEY_SHIFT,
    NODE_HOP,
    PHASE_COLLISION,
    PHASE_SEARCH,
    PHASE_SMO,
    PHASE_TRAVERSE,
    SCAN_ENTRY,
    SLOT_INIT,
)
from repro.core.validate import Violation, range_violation, sorted_violations
from repro.indexes.base import (
    KEY_BYTES,
    PAYLOAD_BYTES,
    POINTER_BYTES,
    Key,
    MemoryBreakdown,
    OpRecord,
    OrderedIndex,
    Value,
)
from repro.indexes.linear_model import binary_search_lower

_NODE_HEADER_BYTES = 24


class _Node:
    __slots__ = ("node_id", "keys")

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.keys: List[Key] = []


class _Inner(_Node):
    """Inner node: keys[i] separates children[i] (< key) and children[i+1]."""

    __slots__ = ("children",)

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.children: List[_Node] = []


class _Leaf(_Node):
    __slots__ = ("values", "next")

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.values: List[Value] = []
        self.next: Optional["_Leaf"] = None


class BPlusTree(OrderedIndex):
    """A classic B+-tree over 64-bit integer keys."""

    name = "B+tree"
    is_learned = False
    supports_delete = True
    supports_range = True

    def __init__(self, fanout: int = 32, **kwargs: Any) -> None:
        if fanout < 4:
            raise ValueError("fanout must be >= 4")
        super().__init__(**kwargs)
        self.fanout = fanout
        self._min_fill = fanout // 2
        self._root: _Node = _Leaf(self._next_node_id())
        self._height = 1

    # -- build ----------------------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        self.check_sorted(items)
        fill = max(2, int(self.fanout * 0.8))
        leaves: List[_Leaf] = []
        for start in range(0, len(items), fill):
            leaf = _Leaf(self._next_node_id())
            chunk = items[start : start + fill]
            leaf.keys = [k for k, _ in chunk]
            leaf.values = [v for _, v in chunk]
            if leaves:
                leaves[-1].next = leaf
            leaves.append(leaf)
            self.meter.charge(ALLOC_NODE)
            self.meter.charge(SLOT_INIT, len(chunk))
        if not leaves:
            leaves = [_Leaf(self._next_node_id())]
        level: List[_Node] = list(leaves)
        # Track the minimum key of each node's subtree: inner separators
        # must be subtree minima, not the child's own first routing key.
        level_mins: List[Key] = [leaf.keys[0] if leaf.keys else 0 for leaf in leaves]
        self._height = 1
        while len(level) > 1:
            parents: List[_Node] = []
            parent_mins: List[Key] = []
            for start in range(0, len(level), fill):
                group = level[start : start + fill]
                inner = _Inner(self._next_node_id())
                inner.children = list(group)
                inner.keys = level_mins[start + 1 : start + len(group)]
                parents.append(inner)
                parent_mins.append(level_mins[start])
                self.meter.charge(ALLOC_NODE)
            level = parents
            level_mins = parent_mins
            self._height += 1
        self._root = level[0]
        self._size = len(items)

    # -- traversal ------------------------------------------------------------

    def _descend(self, key: Key, record_path: Optional[List[int]] = None) -> _Leaf:
        node = self._root
        while isinstance(node, _Inner):
            self.meter.charge(NODE_HOP)
            if record_path is not None:
                record_path.append(node.node_id)
            idx = binary_search_lower(node.keys, key, self.meter)
            if idx < len(node.keys) and node.keys[idx] == key:
                idx += 1
            node = node.children[idx]
        self.meter.charge(NODE_HOP)
        if record_path is not None:
            record_path.append(node.node_id)
        return node  # type: ignore[return-value]

    def lookup(self, key: Key) -> Optional[Value]:
        path: List[int] = []
        with self.meter.phase(PHASE_TRAVERSE):
            leaf = self._descend(key, path)
        with self.meter.phase(PHASE_SEARCH):
            idx = binary_search_lower(leaf.keys, key, self.meter)
        found = idx < len(leaf.keys) and leaf.keys[idx] == key
        self.last_op = OpRecord(
            op="lookup", key=key, found=found, path=path, nodes_traversed=len(path)
        )
        return leaf.values[idx] if found else None

    # -- insert -----------------------------------------------------------------

    def insert(self, key: Key, value: Value) -> bool:
        path_nodes: List[_Inner] = []
        path_ids: List[int] = []
        node = self._root
        with self.meter.phase(PHASE_TRAVERSE):
            while isinstance(node, _Inner):
                self.meter.charge(NODE_HOP)
                path_ids.append(node.node_id)
                idx = binary_search_lower(node.keys, key, self.meter)
                if idx < len(node.keys) and node.keys[idx] == key:
                    idx += 1
                path_nodes.append(node)
                node = node.children[idx]
            self.meter.charge(NODE_HOP)
            path_ids.append(node.node_id)
        leaf: _Leaf = node  # type: ignore[assignment]
        with self.meter.phase(PHASE_SEARCH):
            idx = binary_search_lower(leaf.keys, key, self.meter)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            self.last_op = OpRecord(
                op="insert", key=key, found=True, path=path_ids,
                nodes_traversed=len(path_ids),
            )
            return False
        shifted = len(leaf.keys) - idx
        with self.meter.phase(PHASE_COLLISION):
            leaf.keys.insert(idx, key)
            leaf.values.insert(idx, value)
            self.meter.charge(KEY_SHIFT, shifted)
        created = 0
        smo = False
        if len(leaf.keys) > self.fanout:
            with self.meter.phase(PHASE_SMO):
                created = self._split(leaf, path_nodes)
            smo = True
        self._size += 1
        self.last_op = OpRecord(
            op="insert", key=key, found=False, path=path_ids,
            nodes_traversed=len(path_ids), keys_shifted=shifted,
            nodes_created=created, smo=smo,
        )
        return True

    def _split(self, node: _Node, path: List[_Inner]) -> int:
        """Split an over-full node, propagating upward.  Returns #allocs."""
        created = 0
        while True:
            mid = len(node.keys) // 2
            if isinstance(node, _Leaf):
                right = _Leaf(self._next_node_id())
                right.keys = node.keys[mid:]
                right.values = node.values[mid:]
                del node.keys[mid:]
                del node.values[mid:]
                right.next = node.next
                node.next = right
                sep = right.keys[0]
            else:
                inner: _Inner = node  # type: ignore[assignment]
                right = _Inner(self._next_node_id())
                sep = inner.keys[mid]
                right.keys = inner.keys[mid + 1 :]
                right.children = inner.children[mid + 1 :]
                del inner.keys[mid:]
                del inner.children[mid + 1 :]
            created += 1
            self.meter.charge(ALLOC_NODE)
            self.meter.charge(KEY_SHIFT, len(right.keys))
            if not path:
                new_root = _Inner(self._next_node_id())
                new_root.keys = [sep]
                new_root.children = [node, right]
                self._root = new_root
                self._height += 1
                created += 1
                self.meter.charge(ALLOC_NODE)
                return created
            parent = path.pop()
            idx = binary_search_lower(parent.keys, sep, self.meter)
            parent.keys.insert(idx, sep)
            parent.children.insert(idx + 1, right)
            self.meter.charge(KEY_SHIFT, len(parent.keys) - idx)
            if len(parent.children) <= self.fanout:
                return created
            node = parent

    def update(self, key: Key, value: Value) -> bool:
        with self.meter.phase(PHASE_TRAVERSE):
            leaf = self._descend(key)
        with self.meter.phase(PHASE_SEARCH):
            idx = binary_search_lower(leaf.keys, key, self.meter)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            leaf.values[idx] = value
            self.meter.charge(KEY_SHIFT)
            return True
        return False

    # -- delete ------------------------------------------------------------------

    def delete(self, key: Key) -> bool:
        removed, _ = self._delete_rec(self._root, key, [])
        if removed:
            self._size -= 1
            # Collapse a root with a single child.
            while isinstance(self._root, _Inner) and len(self._root.children) == 1:
                self._root = self._root.children[0]
                self._height -= 1
        return removed

    def _delete_rec(self, node: _Node, key: Key, path_ids: List[int]) -> Tuple[bool, bool]:
        """Returns (removed, child_underflowed)."""
        self.meter.charge(NODE_HOP)
        path_ids.append(node.node_id)
        if isinstance(node, _Leaf):
            idx = binary_search_lower(node.keys, key, self.meter)
            if idx >= len(node.keys) or node.keys[idx] != key:
                self.last_op = OpRecord(
                    op="delete", key=key, found=False, path=path_ids,
                    nodes_traversed=len(path_ids),
                )
                return False, False
            shifted = len(node.keys) - idx - 1
            del node.keys[idx]
            del node.values[idx]
            self.meter.charge(KEY_SHIFT, shifted)
            self.last_op = OpRecord(
                op="delete", key=key, found=True, path=path_ids,
                nodes_traversed=len(path_ids), keys_shifted=shifted,
            )
            return True, len(node.keys) < self._min_fill
        inner: _Inner = node  # type: ignore[assignment]
        idx = binary_search_lower(inner.keys, key, self.meter)
        if idx < len(inner.keys) and inner.keys[idx] == key:
            idx += 1
        removed, underflow = self._delete_rec(inner.children[idx], key, path_ids)
        if not removed or not underflow:
            return removed, False
        with self.meter.phase(PHASE_SMO):
            self._rebalance(inner, idx)
        if removed and self.last_op.op == "delete":
            self.last_op.smo = True
        return True, len(inner.children) < max(2, self._min_fill)

    def _rebalance(self, parent: _Inner, idx: int) -> None:
        left = parent.children[idx - 1] if idx > 0 else None
        right = parent.children[idx + 1] if idx + 1 < len(parent.children) else None

        def fill(n: Optional[_Node]) -> int:
            return len(n.keys) if n is not None else -1

        if left is not None and fill(left) > self._min_fill:
            self._borrow(parent, idx - 1, from_left=True)
        elif right is not None and fill(right) > self._min_fill:
            self._borrow(parent, idx, from_left=False)
        elif left is not None:
            self._merge(parent, idx - 1)
        elif right is not None:
            self._merge(parent, idx)

    def _borrow(self, parent: _Inner, left_idx: int, from_left: bool) -> None:
        left = parent.children[left_idx]
        right = parent.children[left_idx + 1]
        self.meter.charge(KEY_SHIFT, 2)
        if isinstance(left, _Leaf) and isinstance(right, _Leaf):
            if from_left:
                right.keys.insert(0, left.keys.pop())
                right.values.insert(0, left.values.pop())
            else:
                left.keys.append(right.keys.pop(0))
                left.values.append(right.values.pop(0))
            parent.keys[left_idx] = right.keys[0]
        else:
            li: _Inner = left  # type: ignore[assignment]
            ri: _Inner = right  # type: ignore[assignment]
            if from_left:
                ri.keys.insert(0, parent.keys[left_idx])
                parent.keys[left_idx] = li.keys.pop()
                ri.children.insert(0, li.children.pop())
            else:
                li.keys.append(parent.keys[left_idx])
                parent.keys[left_idx] = ri.keys.pop(0)
                li.children.append(ri.children.pop(0))

    def _merge(self, parent: _Inner, left_idx: int) -> None:
        left = parent.children[left_idx]
        right = parent.children[left_idx + 1]
        self.meter.charge(KEY_SHIFT, len(right.keys))
        if isinstance(left, _Leaf) and isinstance(right, _Leaf):
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next = right.next
        else:
            li: _Inner = left  # type: ignore[assignment]
            ri: _Inner = right  # type: ignore[assignment]
            li.keys.append(parent.keys[left_idx])
            li.keys.extend(ri.keys)
            li.children.extend(ri.children)
        del parent.keys[left_idx]
        del parent.children[left_idx + 1]

    # -- scans ----------------------------------------------------------------

    def range_scan(self, start: Key, count: int) -> List[Tuple[Key, Value]]:
        out: List[Tuple[Key, Value]] = []
        with self.meter.phase(PHASE_TRAVERSE):
            leaf: Optional[_Leaf] = self._descend(start)
        idx = binary_search_lower(leaf.keys, start, self.meter)
        while leaf is not None and len(out) < count:
            while idx < len(leaf.keys) and len(out) < count:
                out.append((leaf.keys[idx], leaf.values[idx]))
                self.meter.charge(SCAN_ENTRY)
                idx += 1
            leaf = leaf.next
            idx = 0
            if leaf is not None:
                self.meter.charge(NODE_HOP)
        return out

    # -- memory ----------------------------------------------------------------

    def memory_usage(self) -> MemoryBreakdown:
        inner_bytes = 0
        leaf_bytes = 0
        stack: List[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Inner):
                cap = max(len(node.children), 1)
                inner_bytes += (
                    _NODE_HEADER_BYTES
                    + cap * POINTER_BYTES
                    + max(cap - 1, 0) * KEY_BYTES
                )
                stack.extend(node.children)
            else:
                # STX leaves allocate full capacity arrays.
                leaf_bytes += (
                    _NODE_HEADER_BYTES
                    + POINTER_BYTES  # side link
                    + self.fanout * (KEY_BYTES + PAYLOAD_BYTES)
                )
        return MemoryBreakdown(inner=inner_bytes, leaf=leaf_bytes)

    @property
    def height(self) -> int:
        return self._height

    # -- validation --------------------------------------------------------------

    def debug_validate(self) -> List[Violation]:
        """Structural walk: key order, fill bounds, separator ranges,
        balance, the leaf side-link chain, and size accounting.

        Separator semantics match ``_descend`` (equal keys go right):
        every key in ``children[i]`` is ``< keys[i]`` and every key in
        ``children[i+1]`` is ``>= keys[i]``.  Walks nodes directly;
        never charges the meter.
        """
        out: List[Violation] = []
        leaves: List[_Leaf] = []
        depths: set = set()

        def walk(node: _Node, lo: Optional[Key], hi: Optional[Key],
                 depth: int) -> None:
            out.extend(sorted_violations(
                node.keys, node.node_id, "btree.keys-sorted"))
            out.extend(range_violation(
                node.keys, lo, hi, node.node_id, "btree.key-range"))
            if isinstance(node, _Inner):
                if len(node.children) != len(node.keys) + 1:
                    out.append(Violation(
                        node.node_id, "btree.child-count",
                        f"{len(node.keys)} keys but "
                        f"{len(node.children)} children"))
                    return
                if len(node.children) > self.fanout:
                    out.append(Violation(
                        node.node_id, "btree.inner-fill",
                        f"{len(node.children)} children exceeds fanout "
                        f"{self.fanout}"))
                if depth > 1 and not node.children:
                    out.append(Violation(
                        node.node_id, "btree.node-empty",
                        "non-root inner node has no children"))
                bounds: List[Optional[Key]] = [lo, *node.keys, hi]
                for i, child in enumerate(node.children):
                    walk(child, bounds[i], bounds[i + 1], depth + 1)
            else:
                leaf = node  # type: _Leaf
                if len(leaf.keys) != len(leaf.values):
                    out.append(Violation(
                        leaf.node_id, "btree.leaf-arrays",
                        f"{len(leaf.keys)} keys vs "
                        f"{len(leaf.values)} values"))
                if len(leaf.keys) > self.fanout:
                    out.append(Violation(
                        leaf.node_id, "btree.leaf-fill",
                        f"{len(leaf.keys)} keys exceeds fanout "
                        f"{self.fanout}"))
                if depth > 1 and not leaf.keys:
                    out.append(Violation(
                        leaf.node_id, "btree.node-empty",
                        "non-root leaf holds no keys"))
                depths.add(depth)
                leaves.append(leaf)

        walk(self._root, None, None, 1)
        if len(depths) > 1:
            out.append(Violation(
                self._root.node_id, "btree.balance",
                f"leaves at depths {sorted(depths)}"))
        if depths and max(depths) != self._height:
            out.append(Violation(
                self._root.node_id, "btree.height",
                f"_height={self._height} but leaves sit at depth "
                f"{max(depths)}"))
        for i, leaf in enumerate(leaves):
            expect = leaves[i + 1] if i + 1 < len(leaves) else None
            if leaf.next is not expect:
                out.append(Violation(
                    leaf.node_id, "btree.leaf-chain",
                    "side link does not point at the next in-order leaf"))
                break
        total = sum(len(leaf.keys) for leaf in leaves)
        if total != self._size:
            out.append(Violation(
                self._root.node_id, "btree.size",
                f"leaves hold {total} keys but len(index) == {self._size}"))
        return out
