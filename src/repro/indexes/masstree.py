"""Masstree (Mao, Kohler, Morris — EuroSys 2012), single-layer variant.

Masstree is a trie of B+-trees where each layer indexes an 8-byte key
slice.  The study's keys are exactly 8-byte integers, so the structure
degenerates to a single B+-tree layer — what matters for the paper's
results is Masstree's *node discipline*, which we reproduce:

* fanout-15 interior and border (leaf) nodes (one cache-line-friendly
  permutation word governs up to 15 slots),
* border nodes keep keys **unsorted**, appended in arrival order, with
  a permutation array giving logical order — an insert appends and
  rewrites the permutation word instead of shifting keys,
* border nodes are chained for range scans,
* upstream Masstree implements no structural delete (the paper excludes
  it from the deletion study).

The extra indirection through the permutation is charged on every
search; the permutation rewrite (a full 8-byte word) is the write the
concurrent adapter turns into cache-line traffic — together with the
version-number protocol it is what "crumbles" under NUMA in Figure 6.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.core.cost import (
    ALLOC_NODE,
    KEY_COMPARE,
    KEY_SHIFT,
    NODE_HOP,
    PHASE_COLLISION,
    PHASE_SEARCH,
    PHASE_SMO,
    PHASE_TRAVERSE,
    SCAN_ENTRY,
    SLOT_PROBE,
)
from repro.core.validate import (
    Violation,
    range_violation,
    sorted_violations,
)
from repro.indexes.base import (
    KEY_BYTES,
    PAYLOAD_BYTES,
    POINTER_BYTES,
    Key,
    MemoryBreakdown,
    OpRecord,
    OrderedIndex,
    Value,
)

_FANOUT = 15
_VERSION_BYTES = 8
_PERMUTATION_BYTES = 8


class _Interior:
    __slots__ = ("node_id", "keys", "children")

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.keys: List[Key] = []
        self.children: List[Any] = []


class _Border:
    """Border node: unsorted slots + permutation giving logical order."""

    __slots__ = ("node_id", "keys", "values", "perm", "next")

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.keys: List[Key] = []
        self.values: List[Value] = []
        self.perm: List[int] = []  # logical rank -> physical slot
        self.next: Optional["_Border"] = None

    def logical_key(self, rank: int) -> Key:
        return self.keys[self.perm[rank]]

    def sorted_items(self) -> List[Tuple[Key, Value]]:
        return [(self.keys[s], self.values[s]) for s in self.perm]


class Masstree(OrderedIndex):
    """Masstree-style B+-tree with permutation border nodes."""

    name = "Masstree"
    is_learned = False
    supports_delete = False
    supports_range = True

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self._root: Any = _Border(self._next_node_id())

    # -- build --------------------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        self.check_sorted(items)
        fill = max(2, int(_FANOUT * 0.75))
        borders: List[_Border] = []
        for start in range(0, len(items), fill):
            chunk = items[start : start + fill]
            b = _Border(self._next_node_id())
            b.keys = [k for k, _ in chunk]
            b.values = [v for _, v in chunk]
            b.perm = list(range(len(chunk)))
            if borders:
                borders[-1].next = b
            borders.append(b)
            self.meter.charge(ALLOC_NODE)
        if not borders:
            borders = [_Border(self._next_node_id())]
        level: List[Any] = list(borders)
        mins: List[Key] = [b.keys[0] if b.keys else 0 for b in borders]
        while len(level) > 1:
            parents: List[Any] = []
            parent_mins: List[Key] = []
            for start in range(0, len(level), fill):
                group = level[start : start + fill]
                inner = _Interior(self._next_node_id())
                inner.children = list(group)
                inner.keys = mins[start + 1 : start + len(group)]
                parents.append(inner)
                parent_mins.append(mins[start])
                self.meter.charge(ALLOC_NODE)
            level, mins = parents, parent_mins
        self._root = level[0]
        self._size = len(items)

    # -- traversal ------------------------------------------------------------

    def _lower(self, keys: List[Key], key: Key) -> int:
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            self.meter.charge(KEY_COMPARE)
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _descend(self, key: Key, path: Optional[List[int]] = None) -> Tuple[_Border, List[_Interior]]:
        node = self._root
        inner_path: List[_Interior] = []
        while isinstance(node, _Interior):
            self.meter.charge(NODE_HOP)
            if path is not None:
                path.append(node.node_id)
            idx = self._lower(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                idx += 1
            inner_path.append(node)
            node = node.children[idx]
        self.meter.charge(NODE_HOP)
        if path is not None:
            path.append(node.node_id)
        return node, inner_path

    def _border_rank(self, border: _Border, key: Key) -> int:
        """Lower-bound logical rank in a border node (via permutation)."""
        lo, hi = 0, len(border.perm)
        while lo < hi:
            mid = (lo + hi) // 2
            self.meter.charge(KEY_COMPARE)
            self.meter.charge(SLOT_PROBE)  # permutation indirection
            if border.logical_key(mid) < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # -- operations ---------------------------------------------------------------

    def lookup(self, key: Key) -> Optional[Value]:
        path: List[int] = []
        with self.meter.phase(PHASE_TRAVERSE):
            border, _ = self._descend(key, path)
        with self.meter.phase(PHASE_SEARCH):
            rank = self._border_rank(border, key)
        found = rank < len(border.perm) and border.logical_key(rank) == key
        self.last_op = OpRecord(
            op="lookup", key=key, found=found, path=path, nodes_traversed=len(path)
        )
        return border.values[border.perm[rank]] if found else None

    def insert(self, key: Key, value: Value) -> bool:
        path: List[int] = []
        with self.meter.phase(PHASE_TRAVERSE):
            border, inner_path = self._descend(key, path)
        with self.meter.phase(PHASE_SEARCH):
            rank = self._border_rank(border, key)
        if rank < len(border.perm) and border.logical_key(rank) == key:
            self.last_op = OpRecord(
                op="insert", key=key, found=True, path=path,
                nodes_traversed=len(path),
            )
            return False
        with self.meter.phase(PHASE_COLLISION):
            # Append to physical slots; only the permutation word shifts.
            border.keys.append(key)
            border.values.append(value)
            border.perm.insert(rank, len(border.keys) - 1)
            self.meter.charge(KEY_SHIFT)      # the new slot write
            self.meter.charge(SLOT_PROBE, 2)  # permutation word rewrite
        created = 0
        smo = False
        if len(border.keys) > _FANOUT:
            with self.meter.phase(PHASE_SMO):
                created = self._split_border(border, inner_path)
            smo = True
        self._size += 1
        self.last_op = OpRecord(
            op="insert", key=key, path=path, nodes_traversed=len(path),
            keys_shifted=1, nodes_created=created, smo=smo,
        )
        return True

    def _split_border(self, border: _Border, inner_path: List[_Interior]) -> int:
        items = border.sorted_items()
        mid = len(items) // 2
        right = _Border(self._next_node_id())
        right.keys = [k for k, _ in items[mid:]]
        right.values = [v for _, v in items[mid:]]
        right.perm = list(range(len(right.keys)))
        border.keys = [k for k, _ in items[:mid]]
        border.values = [v for _, v in items[:mid]]
        border.perm = list(range(len(border.keys)))
        right.next = border.next
        border.next = right
        self.meter.charge(ALLOC_NODE)
        self.meter.charge(KEY_SHIFT, len(items))
        created = 1
        sep = right.keys[0]
        node: Any = right
        while True:
            if not inner_path:
                new_root = _Interior(self._next_node_id())
                new_root.keys = [sep]
                new_root.children = [self._root, node]
                self._root = new_root
                self.meter.charge(ALLOC_NODE)
                return created + 1
            parent = inner_path.pop()
            idx = self._lower(parent.keys, sep)
            parent.keys.insert(idx, sep)
            parent.children.insert(idx + 1, node)
            self.meter.charge(KEY_SHIFT, len(parent.keys) - idx)
            if len(parent.children) <= _FANOUT:
                return created
            # Split the interior node.
            m = len(parent.keys) // 2
            new_inner = _Interior(self._next_node_id())
            sep = parent.keys[m]
            new_inner.keys = parent.keys[m + 1 :]
            new_inner.children = parent.children[m + 1 :]
            del parent.keys[m:]
            del parent.children[m + 1 :]
            self.meter.charge(ALLOC_NODE)
            created += 1
            node = new_inner

    def update(self, key: Key, value: Value) -> bool:
        with self.meter.phase(PHASE_TRAVERSE):
            border, _ = self._descend(key)
        rank = self._border_rank(border, key)
        if rank < len(border.perm) and border.logical_key(rank) == key:
            border.values[border.perm[rank]] = value
            self.meter.charge(KEY_SHIFT)
            return True
        return False

    # -- scans -----------------------------------------------------------------

    def range_scan(self, start: Key, count: int) -> List[Tuple[Key, Value]]:
        out: List[Tuple[Key, Value]] = []
        with self.meter.phase(PHASE_TRAVERSE):
            border, _ = self._descend(start)
        rank = self._border_rank(border, start)
        node: Optional[_Border] = border
        while node is not None and len(out) < count:
            while rank < len(node.perm) and len(out) < count:
                slot = node.perm[rank]
                out.append((node.keys[slot], node.values[slot]))
                self.meter.charge(SCAN_ENTRY)
                self.meter.charge(SLOT_PROBE)  # permutation indirection
                rank += 1
            node = node.next
            rank = 0
            if node is not None:
                self.meter.charge(NODE_HOP)
        return out

    # -- memory -----------------------------------------------------------------

    def memory_usage(self) -> MemoryBreakdown:
        inner = 0
        leaf = 0
        stack: List[Any] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Interior):
                inner += (
                    _VERSION_BYTES
                    + _FANOUT * KEY_BYTES
                    + (_FANOUT + 1) * POINTER_BYTES
                )
                stack.extend(node.children)
            else:
                leaf += (
                    _VERSION_BYTES
                    + _PERMUTATION_BYTES
                    + _FANOUT * (KEY_BYTES + PAYLOAD_BYTES)
                    + 2 * POINTER_BYTES
                )
        return MemoryBreakdown(inner=inner, leaf=leaf)

    # -- validation ---------------------------------------------------------------

    def debug_validate(self) -> List[Violation]:
        """Permutation-border invariants: ``perm`` a true permutation of
        the physical slots, logical order strictly sorted, fanout
        bounds on borders and interiors, separator key ranges matching
        ``_descend``'s equal-goes-right routing, the border side-link
        chain threading the in-order leaves, and size accounting.
        Walks nodes directly; never charges the meter.
        """
        out: List[Violation] = []
        borders: List[_Border] = []

        def walk(node: Any, lo: Optional[Key], hi: Optional[Key]) -> None:
            if isinstance(node, _Interior):
                out.extend(sorted_violations(
                    node.keys, node.node_id, "mass.keys-sorted"))
                out.extend(range_violation(
                    node.keys, lo, hi, node.node_id, "mass.key-range"))
                if len(node.children) != len(node.keys) + 1:
                    out.append(Violation(
                        node.node_id, "mass.child-count",
                        f"{len(node.keys)} keys but "
                        f"{len(node.children)} children"))
                    return
                if len(node.children) > _FANOUT + 1:
                    out.append(Violation(
                        node.node_id, "mass.fanout",
                        f"{len(node.children)} children exceeds fanout"))
                bounds: List[Optional[Key]] = [lo, *node.keys, hi]
                for i, child in enumerate(node.children):
                    walk(child, bounds[i], bounds[i + 1])
                return
            border = node
            n = len(border.keys)
            if len(border.values) != n or len(border.perm) != n:
                out.append(Violation(
                    border.node_id, "mass.perm",
                    f"keys/values/perm lengths {n}/{len(border.values)}/"
                    f"{len(border.perm)} differ"))
                return
            if sorted(border.perm) != list(range(n)):
                out.append(Violation(
                    border.node_id, "mass.perm",
                    f"perm {border.perm} is not a permutation of "
                    f"0..{n - 1}"))
                return
            if n > _FANOUT:
                out.append(Violation(
                    border.node_id, "mass.fanout",
                    f"border holds {n} keys, fanout is {_FANOUT}"))
            logical = [border.logical_key(r) for r in range(n)]
            out.extend(sorted_violations(
                logical, border.node_id, "mass.logical-order",
                what="logical keys"))
            out.extend(range_violation(
                logical, lo, hi, border.node_id, "mass.key-range"))
            borders.append(border)

        walk(self._root, None, None)
        for i, border in enumerate(borders):
            expect = borders[i + 1] if i + 1 < len(borders) else None
            if border.next is not expect:
                out.append(Violation(
                    border.node_id, "mass.border-chain",
                    "side link does not point at the next in-order "
                    "border"))
                break
        total = sum(len(b.keys) for b in borders)
        if total != self._size:
            out.append(Violation(
                0, "mass.size",
                f"borders hold {total} keys but len(index) == "
                f"{self._size}"))
        return out
