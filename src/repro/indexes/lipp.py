"""LIPP — updatable learned index with precise positions (Wu et al., VLDB 2021).

LIPP eliminates last-mile search entirely ("collision-driven" in the
paper's taxonomy): every node holds a collision-minimizing linear model
(FMCD) over a sparse slot array (density 0.5, Table 1), and a key's
slot is *computed*, never searched.  Each slot is one of

* ``EMPTY``       — a gap awaiting an insert,
* a data entry    — the key lives exactly at its predicted slot,
* a child pointer — keys that collided here live in a chained subtree.

The **unified node layout** (data and child pointers interleaved in the
same array) is the design choice the paper repeatedly dissects:

* every insert updates statistics in *every node on its path* — root
  included — which is what destroys LIPP+'s multicore scalability
  (Figure 5),
* range scans need a branch per slot to test "data or child?"
  (Message 12),
* the sparse arrays at density 0.5 plus chained nodes make LIPP the
  most memory-hungry index in Figure 8.

Inserting into an occupied slot allocates exactly one new chained node
for the two colliding keys — write amplification bounded at one node
per collision (Message 5).  Subtree rebuilds ("adjust" SMOs) trigger on
the paper's inserted/conflict ratios (2 / 0.1).

Deletion is implemented the way the paper's authors extended LIPP:
empty the slot (collapsing single-entry chains), never touching models.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.core.cost import (
    ALLOC_NODE,
    BRANCH,
    KEY_COMPARE,
    MODEL_EVAL,
    NODE_HOP,
    PHASE_COLLISION,
    PHASE_SMO,
    PHASE_STATS,
    PHASE_TRAVERSE,
    SCAN_ENTRY,
    SLOT_INIT,
    STATS_UPDATE,
    TRAIN_KEY,
)
from repro.indexes.base import (
    KEY_BYTES,
    PAYLOAD_BYTES,
    Key,
    MemoryBreakdown,
    OpRecord,
    OrderedIndex,
    Value,
)
from repro.core.validate import Violation, first_inversion
from repro.indexes import batching
from repro.indexes.linear_model import LinearModel, fmcd_model

_EMPTY = 0
_DATA = 1
_CHILD = 2

_NODE_HEADER_BYTES = 56  # model, size, build_size, stats counters
_SLOT_BYTES = KEY_BYTES + PAYLOAD_BYTES + 1  # tagged union + type bitmap bit


class _LippNode:
    __slots__ = (
        "node_id", "model", "tags", "keys", "values",
        "size", "build_size", "num_inserts", "num_conflicts",
        "np_cache",
    )

    def __init__(self, node_id: int, capacity: int) -> None:
        self.node_id = node_id
        self.model = LinearModel()
        self.tags: List[int] = [_EMPTY] * capacity
        self.keys: List[Key] = [0] * capacity
        self.values: List[Any] = [None] * capacity
        #: Batch-lookup mirror of ``tags``/``keys`` (see
        #: ``LIPP._lookup_batch``); ``None`` = stale, ``False`` = keys
        #: don't fit int64.  Reset whenever a slot tag/key changes.
        self.np_cache: Any = None
        #: Keys stored in this subtree.
        self.size = 0
        #: Subtree size when the node was (re)built.
        self.build_size = 0
        #: Inserts into the subtree since the build.
        self.num_inserts = 0
        #: Inserts that hit an occupied slot since the build.
        self.num_conflicts = 0

    @property
    def capacity(self) -> int:
        return len(self.tags)


class LIPP(OrderedIndex):
    """LIPP with the paper's Table-1 configuration.

    Parameters
    ----------
    density:
        Node fill target; LIPP's integer fill factor of 2 means capacity
        = 2 × keys (density 0.5).
    max_node_slots:
        Stand-in for the 16 MB node cap.
    insert_ratio / conflict_ratio:
        Subtree rebuild triggers (2 / 0.1 in Table 1): rebuild when the
        subtree has absorbed ``insert_ratio ×`` its build size, or when
        more than ``conflict_ratio`` of recent inserts chained new nodes.
    """

    name = "LIPP"
    is_learned = True
    supports_delete = True
    supports_range = True

    def __init__(
        self,
        density: float = 0.5,
        max_node_slots: int = 1 << 20,
        insert_ratio: float = 2.0,
        conflict_ratio: float = 0.1,
        min_rebuild_size: int = 64,
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        self.density = density
        self.max_node_slots = max_node_slots
        self.insert_ratio = insert_ratio
        self.conflict_ratio = conflict_ratio
        self.min_rebuild_size = min_rebuild_size
        self._root = self._build_node([])
        self.rebuild_count = 0
        self.chain_count = 0

    # -- node construction ---------------------------------------------------

    def _build_node(self, items: Sequence[Tuple[Key, Value]]) -> _LippNode:
        n = len(items)
        cap = max(16, min(int(n / self.density) + 1, self.max_node_slots))
        node = _LippNode(self._next_node_id(), cap)
        node.size = n
        node.build_size = n
        self.meter.charge(ALLOC_NODE)
        self.meter.charge(SLOT_INIT, cap)
        if n == 0:
            return node
        keys = [k for k, _ in items]
        node.model = fmcd_model(keys, cap)
        self.meter.charge(TRAIN_KEY, n)
        # Group colliding keys; each group of >1 becomes a chained child.
        groups: List[List[Tuple[Key, Value]]] = []
        slots: List[int] = []
        predict = node.model.predictor(cap)
        for it in items:
            s = predict(it[0])
            if slots and s == slots[-1]:
                groups[-1].append(it)
            else:
                slots.append(s)
                groups.append([it])
        # Monotonicity repair: FMCD clamping can fold distinct key runs
        # into the same boundary slot; merge is already handled above.
        for s, group in zip(slots, groups):
            if len(group) == 1:
                node.tags[s] = _DATA
                node.keys[s] = group[0][0]
                node.values[s] = group[0][1]
            else:
                node.tags[s] = _CHILD
                node.values[s] = self._build_node(group)
        return node

    # -- bulk load --------------------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        self.check_sorted_unique(items)
        self._root = self._build_node(list(items))
        self._size = len(items)

    # -- lookup ------------------------------------------------------------------

    def lookup(self, key: Key) -> Optional[Value]:
        node = self._root
        path: List[int] = []
        with self.meter.phase(PHASE_TRAVERSE):
            while True:
                self.meter.charge(NODE_HOP)
                self.meter.charge(MODEL_EVAL)
                path.append(node.node_id)
                s = node.model.predict_clamped(key, node.capacity)
                tag = node.tags[s]
                if tag == _CHILD:
                    node = node.values[s]
                    continue
                self.meter.charge(KEY_COMPARE)
                found = tag == _DATA and node.keys[s] == key
                self.last_op = OpRecord(
                    op="lookup", key=key, found=found, path=path,
                    nodes_traversed=len(path),
                )
                return node.values[s] if found else None

    @staticmethod
    def _node_cache(node: _LippNode):
        """Numpy mirror of one node's slot tags and keys."""
        cache = node.np_cache
        if cache is None:
            np = batching._np
            keys_np = batching.int64_cache(node.keys)
            if keys_np is None:
                cache = node.np_cache = False
            else:
                tags_np = np.asarray(node.tags, dtype=np.int8)
                cache = node.np_cache = (tags_np, keys_np)
        return cache

    def _lookup_batch(self, keys: Sequence[Key]):
        """Vectorized precise-position lookup: grouped descent, one
        ``predict_clamped`` evaluation per (node, key-group).  LIPP has
        no last-mile search, so the whole scalar hot path is model
        evaluation + slot tag tests — exactly numpy's shape.  Groups
        below the numpy break-even take a meter-free scalar tail.
        """
        ks = batching.key_array(keys)
        if ks is None:
            return None
        np = batching._np
        B = len(ks)
        values: List[Optional[Value]] = [None] * B
        found = [False] * B
        depth = np.zeros(B, dtype=np.int64)
        stack = [(self._root, np.arange(B), 1)]
        while stack:
            node, idx, d = stack.pop()
            cache = self._node_cache(node) if len(idx) >= 16 else False
            if cache is False:
                for gi in idx:
                    gi = int(gi)
                    key = int(ks[gi])
                    cur, dd = node, d
                    while True:
                        s = cur.model.predict_clamped(key, cur.capacity)
                        tag = cur.tags[s]
                        if tag == _CHILD:
                            cur = cur.values[s]
                            dd += 1
                            continue
                        depth[gi] = dd
                        if tag == _DATA and cur.keys[s] == key:
                            found[gi] = True
                            values[gi] = cur.values[s]
                        break
                continue
            tags_np, keys_np = cache
            ksub = ks[idx]
            s = batching.predict_clamped_vec(node.model, ksub, node.capacity)
            tag = tags_np[s]
            is_child = tag == _CHILD
            term = np.flatnonzero(~is_child)
            if len(term):
                tidx = idx[term]
                depth[tidx] = d
                ts = s[term]
                hit = (tag[term] == _DATA) & (keys_np[ts] == ksub[term])
                node_values = node.values
                for j in np.flatnonzero(hit):
                    gi = int(tidx[j])
                    found[gi] = True
                    values[gi] = node_values[int(ts[j])]
            child_pos = np.flatnonzero(is_child)
            if len(child_pos):
                cs = s[child_pos]
                order = np.argsort(cs, kind="stable")
                sorted_slots = cs[order]
                cuts = np.flatnonzero(np.diff(sorted_slots)) + 1
                bounds = [0] + cuts.tolist() + [len(order)]
                cidx = idx[child_pos]
                node_values = node.values
                for t in range(len(bounds) - 1):
                    a = bounds[t]
                    part = order[a:bounds[t + 1]]
                    stack.append((node_values[int(sorted_slots[a])],
                                  cidx[part], d + 1))
        log = batching.ChargeLog(B)
        log.add(PHASE_TRAVERSE, NODE_HOP, depth)
        log.add(PHASE_TRAVERSE, MODEL_EVAL, depth)
        log.add(PHASE_TRAVERSE, KEY_COMPARE, np.ones(B, dtype=np.int64))

        def make_record(i: int) -> OpRecord:
            key = keys[i]
            path: List[int] = []
            node = self._root
            while True:
                path.append(node.node_id)
                s = node.model.predict_clamped(key, node.capacity)
                if node.tags[s] == _CHILD:
                    node = node.values[s]
                    continue
                break
            return OpRecord(op="lookup", key=key, found=found[i],
                            path=path, nodes_traversed=len(path))

        return batching.BatchLookup(values, log, make_record)

    # -- insert ------------------------------------------------------------------

    def insert(self, key: Key, value: Value) -> bool:
        path_nodes: List[_LippNode] = []
        path: List[int] = []
        node = self._root
        conflict = False
        created = 0
        with self.meter.phase(PHASE_TRAVERSE):
            while True:
                self.meter.charge(NODE_HOP)
                self.meter.charge(MODEL_EVAL)
                path_nodes.append(node)
                path.append(node.node_id)
                s = node.model.predict_clamped(key, node.capacity)
                tag = node.tags[s]
                if tag == _CHILD:
                    node = node.values[s]
                    continue
                break
        if tag == _DATA and node.keys[s] == key:
            self.last_op = OpRecord(
                op="insert", key=key, found=True, path=path,
                nodes_traversed=len(path),
            )
            return False
        node.np_cache = None
        if tag == _EMPTY:
            with self.meter.phase(PHASE_COLLISION):
                node.tags[s] = _DATA
                node.keys[s] = key
                node.values[s] = value
                self.meter.charge(SLOT_INIT)
        else:
            # Collision: chain exactly one new node holding both entries.
            conflict = True
            self.chain_count += 1
            with self.meter.phase(PHASE_COLLISION):
                old = (node.keys[s], node.values[s])
                pair = sorted([old, (key, value)])
                child = self._build_node(pair)
                node.tags[s] = _CHILD
                node.keys[s] = 0
                node.values[s] = child
                created = 1
        # Statistics are updated in EVERY node on the path (the unified
        # layout forces this) — the root-contention source in Figure 5.
        with self.meter.phase(PHASE_STATS):
            for pn in path_nodes:
                pn.size += 1
                pn.num_inserts += 1
                if conflict:
                    pn.num_conflicts += 1
                # Several counters per node (size, inserts, conflicts):
                # the "non-negligible, particularly pronounced in LIPP"
                # statistics cost of Figure 3.
                self.meter.charge(STATS_UPDATE, 2)
        self._size += 1
        smo = False
        with self.meter.phase(PHASE_SMO):
            smo = self._maybe_rebuild(path_nodes)
            # LIPP bounds its tree height: a too-deep insertion path
            # forces an adjust (rebuild) halfway up the chain even if the
            # ratio triggers have not fired yet.
            if not smo and len(path_nodes) > self._depth_limit():
                smo = self._rebuild_at(path_nodes, len(path_nodes) // 2)
        self.last_op = OpRecord(
            op="insert", key=key, path=path, nodes_traversed=len(path),
            nodes_created=created, smo=smo,
        )
        return True

    def _depth_limit(self) -> int:
        """Height bound: rebuilds trigger when a path exceeds this."""
        return max(8, int(2.0 * max(self._size, 2).bit_length()))

    def _maybe_rebuild(self, path_nodes: List[_LippNode]) -> bool:
        """Rebuild the highest subtree whose ratios exceed the bounds."""
        for i, node in enumerate(path_nodes):
            if node.build_size < self.min_rebuild_size and node.size < self.min_rebuild_size:
                continue
            grown = node.num_inserts >= self.insert_ratio * max(node.build_size, 1)
            # Conflicts are measured against the subtree's *build size*
            # (Table 1's 0.1 ratio): measuring against inserts would
            # trigger an O(subtree) rebuild every few dozen operations.
            conflicted = node.num_conflicts > self.conflict_ratio * max(
                node.build_size, self.min_rebuild_size
            )
            if grown or conflicted:
                return self._rebuild_at(path_nodes, i)
        return False

    def _rebuild_at(self, path_nodes: List[_LippNode], i: int) -> bool:
        """Rebuild the subtree rooted at ``path_nodes[i]``."""
        node = path_nodes[i]
        items = list(self._iter_subtree(node))
        if not items:
            return False
        rebuilt = self._build_node(items)
        self.rebuild_count += 1
        if i == 0:
            self._root = rebuilt
        else:
            parent = path_nodes[i - 1]
            # Find the slot pointing at this child.
            s = parent.model.predict_clamped(items[0][0], parent.capacity)
            if parent.tags[s] == _CHILD and parent.values[s] is node:
                parent.values[s] = rebuilt
            else:  # defensive: locate by scan
                for j in range(parent.capacity):
                    if parent.tags[j] == _CHILD and parent.values[j] is node:
                        parent.values[j] = rebuilt
                        break
        return True

    def _iter_subtree(self, node: _LippNode) -> Iterator[Tuple[Key, Value]]:
        for s in range(node.capacity):
            tag = node.tags[s]
            if tag == _DATA:
                yield (node.keys[s], node.values[s])
            elif tag == _CHILD:
                yield from self._iter_subtree(node.values[s])

    # -- update / delete -----------------------------------------------------------

    def update(self, key: Key, value: Value) -> bool:
        node = self._root
        while True:
            self.meter.charge(NODE_HOP)
            self.meter.charge(MODEL_EVAL)
            s = node.model.predict_clamped(key, node.capacity)
            tag = node.tags[s]
            if tag == _CHILD:
                node = node.values[s]
                continue
            if tag == _DATA and node.keys[s] == key:
                node.values[s] = value
                self.meter.charge(SLOT_INIT)
                return True
            return False

    def delete(self, key: Key) -> bool:
        path_nodes: List[_LippNode] = []
        path: List[int] = []
        node = self._root
        with self.meter.phase(PHASE_TRAVERSE):
            while True:
                self.meter.charge(NODE_HOP)
                self.meter.charge(MODEL_EVAL)
                path_nodes.append(node)
                path.append(node.node_id)
                s = node.model.predict_clamped(key, node.capacity)
                tag = node.tags[s]
                if tag == _CHILD:
                    node = node.values[s]
                    continue
                break
        if tag != _DATA or node.keys[s] != key:
            self.last_op = OpRecord(
                op="delete", key=key, found=False, path=path,
                nodes_traversed=len(path),
            )
            return False
        node.np_cache = None
        node.tags[s] = _EMPTY
        node.values[s] = None
        self.meter.charge(SLOT_INIT)
        with self.meter.phase(PHASE_STATS):
            for pn in path_nodes:
                pn.size -= 1
                self.meter.charge(STATS_UPDATE)
        self._size -= 1
        # Collapse a chained node that shrank to a single entry back into
        # its parent slot (keeps Figure-7 deletion memory honest).
        if len(path_nodes) >= 2 and node.size == 1:
            parent = path_nodes[-2]
            for j in range(parent.capacity):
                if parent.tags[j] == _CHILD and parent.values[j] is node:
                    remaining = next(self._iter_subtree(node))
                    parent.np_cache = None
                    parent.tags[j] = _DATA
                    parent.keys[j] = remaining[0]
                    parent.values[j] = remaining[1]
                    self.meter.charge(SLOT_INIT)
                    break
        self.last_op = OpRecord(
            op="delete", key=key, found=True, path=path,
            nodes_traversed=len(path),
        )
        return True

    # -- scans -----------------------------------------------------------------

    def range_scan(self, start: Key, count: int) -> List[Tuple[Key, Value]]:
        out: List[Tuple[Key, Value]] = []
        for kv in self._scan_from(self._root, start, bounded=True):
            out.append(kv)
            self.meter.charge(SCAN_ENTRY)
            if len(out) >= count:
                break
        return out

    def _scan_from(self, node: _LippNode, start: Key, bounded: bool) -> Iterator[Tuple[Key, Value]]:
        cap = node.capacity
        s0 = node.model.predict_clamped(start, cap) if bounded else 0
        self.meter.charge(MODEL_EVAL)
        for s in range(s0, cap):
            # The unified layout's per-slot branch (Message 12).
            self.meter.charge(BRANCH)
            tag = node.tags[s]
            if tag == _EMPTY:
                continue
            if tag == _DATA:
                if not bounded or node.keys[s] >= start:
                    yield (node.keys[s], node.values[s])
            else:
                self.meter.charge(NODE_HOP)
                yield from self._scan_from(node.values[s], start, bounded and s == s0)

    # -- memory -----------------------------------------------------------------

    def memory_usage(self) -> MemoryBreakdown:
        total_slots = 0
        n_nodes = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            n_nodes += 1
            total_slots += node.capacity
            for s in range(node.capacity):
                if node.tags[s] == _CHILD:
                    stack.append(node.values[s])
        # The unified layout has no separate leaf layer; report the whole
        # structure as "leaf" plus per-node headers as metadata.
        return MemoryBreakdown(
            leaf=total_slots * _SLOT_BYTES,
            metadata=n_nodes * _NODE_HEADER_BYTES,
        )

    # -- introspection ------------------------------------------------------------

    def debug_validate(self) -> List[Violation]:
        """LIPP's defining invariants: *precise positions* (every data
        slot sits exactly where the node's model predicts its key),
        child routing (every key in a child subtree predicts the slot
        that holds the child), per-subtree size counters, a globally
        sorted traversal, and tag/value consistency.  Walks nodes
        directly; never charges the meter.
        """
        out: List[Violation] = []

        def walk(node: _LippNode) -> int:
            data = 0
            for s in range(node.capacity):
                tag = node.tags[s]
                if tag == _DATA:
                    data += 1
                    pred = node.model.predict_clamped(
                        node.keys[s], node.capacity)
                    if pred != s:
                        out.append(Violation(
                            node.node_id, "lipp.precise-position",
                            f"key {node.keys[s]} stored in slot {s} but "
                            f"model predicts {pred}"))
                elif tag == _CHILD:
                    child = node.values[s]
                    if not isinstance(child, _LippNode):
                        out.append(Violation(
                            node.node_id, "lipp.tag-value",
                            f"slot {s} tagged CHILD but holds "
                            f"{type(child).__name__}"))
                        continue
                    for k, _ in self._iter_subtree(child):
                        pred = node.model.predict_clamped(k, node.capacity)
                        if pred != s:
                            out.append(Violation(
                                node.node_id, "lipp.child-routing",
                                f"key {k} in child under slot {s} but "
                                f"model predicts slot {pred}"))
                            break
                    data += walk(child)
                elif tag != _EMPTY:
                    out.append(Violation(
                        node.node_id, "lipp.tag-value",
                        f"slot {s} has unknown tag {tag}"))
            if node.size != data:
                out.append(Violation(
                    node.node_id, "lipp.subtree-size",
                    f"size counter {node.size} but subtree holds "
                    f"{data} keys"))
            return data

        total = walk(self._root)
        if total != self._size:
            out.append(Violation(
                self._root.node_id, "lipp.size",
                f"tree holds {total} keys but len(index) == {self._size}"))
        keys = [k for k, _ in self._iter_subtree(self._root)]
        i = first_inversion(keys, strict=True)
        if i >= 0:
            out.append(Violation(
                self._root.node_id, "lipp.order",
                f"in-order traversal inverts at position {i}: "
                f"{keys[i]} >= {keys[i + 1]}"))
        return out

    def node_count(self) -> int:
        n = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            n += 1
            for s in range(node.capacity):
                if node.tags[s] == _CHILD:
                    stack.append(node.values[s])
        return n

    def max_depth(self) -> int:
        def depth(node: _LippNode) -> int:
            best = 1
            for s in range(node.capacity):
                if node.tags[s] == _CHILD:
                    best = max(best, 1 + depth(node.values[s]))
            return best

        return depth(self._root)
