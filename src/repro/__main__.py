"""``python -m repro`` — the GRE command-line interface."""

import sys

from repro.cli import main

sys.exit(main())
