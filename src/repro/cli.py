"""GRE command-line interface — run the benchmark without writing code.

The paper's artifact ships scripts "to run the benchmark and visualize
all experiments"; this module is their equivalent::

    python -m repro datasets
    python -m repro hardness genome --n 20000
    python -m repro run --index ALEX --dataset covid --workload balanced
    python -m repro compare --dataset osm --workload write-only
    python -m repro heatmap --n 6000 --ops 4000
    python -m repro scalability --dataset covid --workload write-only
    python -m repro memory --dataset fb
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Sequence

from repro import execute
from repro.core.hardness import mse_hardness, pla_hardness
from repro.core.memory import measure_after_write_only
from repro.core.registry import REGISTRY
from repro.core.report import ascii_chart, format_bytes, table
from repro.core.workloads import (
    MIX_FRACTIONS,
    MIX_NAMES,
    churn_workload,
    deletion_workload,
    mixed_workload,
    moving_hotspot_workload,
    scan_workload,
    ycsb_workload,
)
from repro.datasets import registry
from repro.datasets.registry import scaled_epsilons

#: Every index the CLI exposes — a derived view over the registry.
_ALL_INDEXES = REGISTRY.factories(tag="cli")
_MIX = dict(zip(MIX_NAMES, MIX_FRACTIONS))


def _workload(args, keys):
    name = args.workload
    if name in _MIX:
        return mixed_workload(keys, _MIX[name], n_ops=args.ops, seed=args.seed)
    if name.startswith("ycsb-"):
        return ycsb_workload(keys, name[-1].upper(), n_ops=args.ops, seed=args.seed)
    if name.startswith("delete"):
        return deletion_workload(keys, 0.5, n_ops=args.ops, seed=args.seed)
    if name.startswith("scan"):
        size = int(name.split(":")[1]) if ":" in name else 100
        return scan_workload(keys, size, max(20, args.ops // size), seed=args.seed)
    if name.startswith("churn"):
        frac = float(name.split(":")[1]) if ":" in name else 0.5
        return churn_workload(keys, frac, n_ops=args.ops, seed=args.seed)
    if name.startswith("hotspot"):
        phases = int(name.split(":")[1]) if ":" in name else 4
        return moving_hotspot_workload(keys, n_ops=args.ops, phases=phases,
                                       seed=args.seed)
    raise SystemExit(
        f"unknown workload {name!r}; use one of {MIX_NAMES}, ycsb-a/b/c, "
        "delete, scan[:SIZE], churn[:WRITE_FRAC], hotspot[:PHASES]"
    )


def cmd_list(args) -> int:
    # Binding the concurrent variants is a lazy import; do it once so
    # the catalog can show them.
    concurrent = {s.name: s.concurrent_name for s in REGISTRY.concurrent_specs()}
    rows = []
    for spec in REGISTRY:
        rows.append([
            spec.name,
            "learned" if spec.is_learned else "traditional",
            "x" if spec.supports_insert else "",
            "x" if spec.supports_delete else "",
            "x" if spec.supports_range else "",
            "x" if spec.supports_batch else "",
            "x" if spec.supports_migration else "",
            "x" if spec.supports_sharding else "",
            concurrent.get(spec.name, "") or "",
            ",".join(sorted(spec.tags)),
        ])
    print(table(
        ["Index", "Family", "insert", "delete", "range", "batch",
         "migrate", "shard", "concurrent", "tags"],
        rows, title=f"Index registry ({len(REGISTRY)} entries)"))
    print("\nbatch = numpy-vectorized lookup_many fast path "
          "(see `repro bench`); every index accepts the *_many APIs.\n"
          "migrate = eligible for zero-downtime live migration "
          "(see `repro migrate`).\n"
          "shard = usable as the per-shard engine of the sharded "
          "serving tier (see `repro shard`).")
    return 0


def cmd_bench(args) -> int:
    """Scalar vs batched lookup microbenchmark (wall clock)."""
    import json
    import random as _random
    import time as _time

    from repro.core.bench_history import provenance
    from repro.core.runner import LatencyStats
    from repro.core.workloads import payload
    from repro.indexes import batching
    from repro.indexes.linear_model import LinearModel

    names = ([n for n in args.indexes.split(",") if n] if args.indexes
             else [s.name for s in REGISTRY if s.supports_batch])
    for n in names:  # fail fast on typos
        REGISTRY.get(n)
    keys = registry.get(args.dataset).generate(args.n, seed=args.seed)
    items = [(k, payload(k)) for k in keys]
    rng = _random.Random(args.seed + 1)
    qs = [keys[rng.randrange(len(keys))] for _ in range(args.lookups)]
    for i in range(0, len(qs), 3):  # ~1/3 misses
        qs[i] += 1

    results = []
    for name in names:
        spec = REGISTRY.get(name)
        a = spec.factory()
        a.bulk_load(items)
        for k in qs[:256]:  # warm (mirrors the batch side's warm-up)
            a.lookup(k)
        t0 = _time.perf_counter()
        scalar_values = [a.lookup(k) for k in qs]
        t_scalar = _time.perf_counter() - t0

        b = spec.factory()
        b.bulk_load(items)
        vectorized = b._lookup_batch(qs) is not None  # charges nothing
        b.lookup_many(qs[:256])  # warm batch tables
        t0 = _time.perf_counter()
        batch_values = b.lookup_many(qs)
        t_batch = _time.perf_counter() - t0
        if batch_values != scalar_values:
            raise SystemExit(f"{name}: batch/scalar value mismatch")
        if list(a.meter._counts.items()) != list(b.meter._counts.items()):
            raise SystemExit(f"{name}: batch/scalar cost divergence")
        # Virtual-clock lookup profile: deterministic across machines,
        # so the regression gate can judge it against a committed
        # baseline (wall-clock numbers above are recorded, not gated).
        samples = []
        v0 = a.meter.total_time()
        for k in qs:
            before = a.meter.total_time()
            a.lookup(k)
            samples.append(a.meter.total_time() - before)
        virtual_ns = a.meter.total_time() - v0
        vstats = LatencyStats.from_samples(samples)
        virtual_mops = (len(qs) / (virtual_ns / 1e9) / 1e6
                        if virtual_ns > 0 else 0.0)
        speedup = t_scalar / t_batch if t_batch > 0 else float("inf")
        results.append({
            "index": name,
            "vectorized": vectorized,
            "scalar_ops_per_s": len(qs) / t_scalar,
            "batch_ops_per_s": len(qs) / t_batch,
            "speedup": speedup,
            "virtual_lookup_mops": virtual_mops,
            "virtual_lookup_p99_ns": vstats.p99,
        })
        print(f"{name:12s} scalar {len(qs) / t_scalar:>10.0f} op/s   "
              f"batch {len(qs) / t_batch:>10.0f} op/s   "
              f"{speedup:5.1f}x{'' if vectorized else '  (loop fallback)'}   "
              f"[virtual {virtual_mops:.2f} Mops, p99 {vstats.p99:.0f} ns]")

    # predict_clamped hoisting note: per-call method vs the predictor()
    # closure that hoists the attribute loads and the clamp bound.
    model = LinearModel.train(keys)
    n = len(keys)
    reps = min(len(qs), 20000)
    t0 = _time.perf_counter()
    for k in qs[:reps]:
        model.predict_clamped(k, n)
    t_before = _time.perf_counter() - t0
    pred = model.predictor(n)
    t0 = _time.perf_counter()
    for k in qs[:reps]:
        pred(k)
    t_after = _time.perf_counter() - t0
    predict_note = {
        "before_mops": reps / t_before / 1e6,
        "after_mops": reps / t_after / 1e6,
        "speedup": t_before / t_after if t_after > 0 else float("inf"),
        "note": "predictor(n) hoists the slope/intercept/anchor loads "
                "and the n-1 clamp bound out of the per-call path; "
                "predictions are bit-identical to predict_clamped.",
    }
    print(f"predict_clamped: {predict_note['before_mops']:.2f} -> "
          f"{predict_note['after_mops']:.2f} Mcalls/s "
          f"({predict_note['speedup']:.2f}x hoisted)")

    doc = {
        "dataset": args.dataset,
        "n": args.n,
        "lookups": args.lookups,
        "seed": args.seed,
        "numpy": batching.numpy_available(),
        "results": results,
        "predict_clamped": predict_note,
    }
    doc.update(provenance())
    if args.out:
        with open(args.out, "w") as f:
            json.dump(doc, f, indent=2)
        print(f"wrote {args.out}")
    if args.min_speedup > 0:
        slow = [r for r in results
                if r["vectorized"] and r["speedup"] < args.min_speedup]
        if slow:
            for r in slow:
                print(f"FAIL {r['index']}: {r['speedup']:.2f}x < "
                      f"{args.min_speedup}x", file=sys.stderr)
            return 1
    if args.history:
        from repro.core.bench_history import append_history, check_history

        context = {"dataset": args.dataset, "n": args.n,
                   "lookups": args.lookups, "seed": args.seed,
                   "indexes": sorted(names)}
        metrics = {}
        info = {}
        for r in results:
            metrics[f"virtual_lookup_mops.{r['index']}"] = r["virtual_lookup_mops"]
            metrics[f"virtual_lookup_p99_ns.{r['index']}"] = r["virtual_lookup_p99_ns"]
            info[f"scalar_ops_per_s.{r['index']}"] = r["scalar_ops_per_s"]
            info[f"batch_ops_per_s.{r['index']}"] = r["batch_ops_per_s"]
            info[f"speedup.{r['index']}"] = r["speedup"]
        if args.check:
            regressions = check_history(args.history, "bench", metrics,
                                        context=context,
                                        tolerance=args.tolerance)
            if regressions:
                for reg in regressions:
                    print(f"FAIL {reg}", file=sys.stderr)
                print(f"bench --check: {len(regressions)} regression(s) vs "
                      f"{args.history}", file=sys.stderr)
                return 1
            print(f"bench --check: no regressions vs {args.history} "
                  f"(tolerance {args.tolerance:.0%})")
        append_history(args.history, "bench", metrics, info=info,
                       context=context)
        print(f"history: appended to {args.history}")
    return 0


def cmd_datasets(args) -> int:
    rows = []
    for name in registry.names(include_duplicates=True):
        ds = registry.get(name)
        rows.append([ds.name, ds.hardness_class, ds.description])
    print(table(["Name", "Class", "Description"], rows, title="Datasets"))
    return 0


def cmd_hardness(args) -> int:
    ds = registry.get(args.dataset)
    keys = ds.generate(args.n, seed=args.seed)
    g_eps, l_eps = scaled_epsilons(len(keys))
    print(f"{ds.name}: n={len(keys)}  (class: {ds.hardness_class})")
    print(f"  global hardness H(eps={g_eps:>4}) = {pla_hardness(keys, g_eps)}")
    print(f"  local  hardness H(eps={l_eps:>4}) = {pla_hardness(keys, l_eps)}")
    print(f"  MSE of one line (appendix D)  = {mse_hardness(keys):.4g}")
    deciles = [keys[int(q * (len(keys) - 1) / 10)] for q in range(11)]
    print("  CDF deciles (key/max):",
          " ".join(f"{k / max(deciles[-1], 1):.3f}" for k in deciles))
    return 0


def _telemetry_from_args(args):
    """A Telemetry bundle for the run/diagnose flags, or None."""
    from repro.core.telemetry import (
        CostProfiler,
        MetricsCollector,
        Telemetry,
        TraceRecorder,
    )

    trace = getattr(args, "trace", "") or getattr(args, "trace_log", "")
    metrics = getattr(args, "metrics", "")
    profile = getattr(args, "profile", False)
    if not (trace or metrics or profile):
        return None
    return Telemetry(
        trace=TraceRecorder() if trace else None,
        metrics=MetricsCollector(window_ops=getattr(args, "window", 256)) if metrics else None,
        profiler=CostProfiler() if profile else None,
    )


def _save_telemetry(args, telemetry) -> None:
    """Persist telemetry artifacts through the versioned-results layer."""
    from repro.core.results import save_jsonl

    if telemetry is None:
        return
    if telemetry.trace is not None:
        if getattr(args, "trace", ""):
            telemetry.trace.save_chrome(args.trace)
            print(f"trace: {args.trace} ({len(telemetry.trace.spans())} op spans; "
                  "open in Perfetto / chrome://tracing)")
        if getattr(args, "trace_log", ""):
            n = save_jsonl(telemetry.trace.events, args.trace_log,
                           tags={"artifact": "trace"})
            print(f"trace log: {args.trace_log} ({n} events)")
    if telemetry.metrics is not None and getattr(args, "metrics", ""):
        n = save_jsonl(telemetry.metrics.series, args.metrics,
                       tags={"artifact": "metrics"})
        storms = telemetry.metrics.smo_storms()
        print(f"metrics: {args.metrics} ({n} samples, "
              f"{len(storms)} SMO storm(s) detected)")


def cmd_run(args) -> int:
    factory = _ALL_INDEXES.get(args.index)
    if factory is None:
        raise SystemExit(f"unknown index {args.index!r}; use one of {sorted(_ALL_INDEXES)}")
    keys = registry.get(args.dataset).generate(args.n, seed=args.seed)
    wl = _workload(args, keys)
    telemetry = _telemetry_from_args(args)
    bus = slo = None
    if getattr(args, "events", ""):
        from repro.core.events import EventBus
        from repro.core.instance import IndexInstance
        from repro.core.slo import SLOTracker

        bus = EventBus()
        slo = SLOTracker(bus=bus, window_ops=getattr(args, "window", 256))
        target = bus.attach_instance(IndexInstance.wrap(factory()))
        r = execute(target, wl, telemetry=telemetry, bus=bus, observers=[slo])
    else:
        r = execute(factory(), wl, telemetry=telemetry)
    _save_telemetry(args, telemetry)
    if bus is not None:
        n = bus.save(args.events)
        print(f"events: {args.events} ({n} events, "
              f"{len(slo.alerts)} SLO alert(s))")
    if getattr(args, "out", None):
        from repro.core.results import save_jsonl

        save_jsonl([r], args.out, append=True)
    if getattr(args, "json", False):
        import json

        from repro.core.results import result_record

        print(json.dumps(result_record(r), indent=2))
        return 0
    rows = [
        ["throughput", f"{r.throughput_mops:.3f} Mops (virtual)"],
        ["ops", r.n_ops],
        ["virtual time", f"{r.virtual_ns / 1e6:.2f} ms"],
        ["wall time", f"{r.wall_seconds:.2f} s (interpreter)"],
        ["lookup p50/p99.9", f"{r.lookup_latency.p50:.0f} / {r.lookup_latency.p999:.0f} ns"],
        ["write  p50/p99.9", f"{r.write_latency.p50:.0f} / {r.write_latency.p999:.0f} ns"],
        ["memory", format_bytes(r.memory.total)],
    ]
    avg = r.insert_stats.averages()
    if r.insert_stats.inserts:
        rows.append(["keys shifted/insert", f"{avg['keys_shifted']:.2f}"])
        rows.append(["nodes created/insert", f"{avg['nodes_created']:.2f}"])
    print(table(["Metric", "Value"], rows,
                title=f"{args.index} on {args.dataset} / {wl.name}"))
    return 0


def cmd_top(args) -> int:
    """Live control-tower view over the operational event stream."""
    import json

    from repro.core.events import KIND_OP_WINDOW, EventBus, validate_bus_events
    from repro.core.instance import IndexInstance
    from repro.core.results import load_jsonl
    from repro.core.slo import ControlTower, SLOTracker

    tower = ControlTower()
    view = None
    if args.events:
        records = load_jsonl(args.events)
        validate_bus_events(records)
        for rec in records:
            tower.consume(rec)
    else:
        bus = EventBus()
        bus.subscribe(tower.consume)
        live = sys.stdout.isatty() and not args.once and not args.json

        def refresh(event: dict) -> None:
            # ANSI home+clear keeps the table in place between windows.
            sys.stdout.write("\x1b[H\x1b[2J" + tower.render() + "\n")
            sys.stdout.flush()

        if live:
            bus.subscribe(refresh, kinds=[KIND_OP_WINDOW])
        keys = registry.get(args.dataset).generate(args.n, seed=args.seed)
        wl = _workload(args, keys)
        if getattr(args, "shards", 0):
            from repro.core.shard import ShardedIndex, ShardRouter
            from repro.core.slo import cluster_view

            try:
                spec = REGISTRY.get(args.index)
            except KeyError as exc:
                raise SystemExit(exc.args[0]) from None
            if not spec.supports_sharding:
                raise SystemExit(f"{args.index!r} does not support sharding "
                                 "(see `repro list`)")
            sharded = ShardedIndex(args.index, n_shards=args.shards)
            sharded.attach_bus(bus)
            router = ShardRouter(sharded, window_ops=max(args.window, 64),
                                 slo_window=args.window, bus=bus)
            router.run(wl)
            view = cluster_view(router.all_trackers)
        elif getattr(args, "server", False):
            from repro.core.events import KIND_JOB
            from repro.core.migrate import resolve_index_name
            from repro.core.server import run_serve_session, session_streams

            try:
                index = resolve_index_name(args.index)
            except KeyError as exc:
                raise SystemExit(exc.args[0]) from None
            if live:
                bus.subscribe(refresh, kinds=[KIND_JOB])
            n_clients = 4
            bulk, streams = session_streams(
                index, n_clients=n_clients,
                ops_per_client=max(1, args.ops // n_clients),
                seed=args.seed, bulk_keys=keys)
            report = run_serve_session(index, bulk, streams, threaded=True,
                                       seed=args.seed, bus=bus)
            if not report.ok:
                print(f"serve session NOT ok: {report.to_dict()}",
                      file=sys.stderr)
        elif args.migrate:
            from repro.core.migrate import resolve_index_name, run_migration

            try:
                src = resolve_index_name(args.migrate[0])
                dst = resolve_index_name(args.migrate[1])
            except KeyError as exc:
                raise SystemExit(exc.args[0]) from None
            run_migration(src, dst, wl, bus=bus, bus_window=args.window)
        else:
            factory = _ALL_INDEXES.get(args.index)
            if factory is None:
                raise SystemExit(
                    f"unknown index {args.index!r}; use one of {sorted(_ALL_INDEXES)}")
            slo = SLOTracker(bus=bus, window_ops=args.window)
            target = bus.attach_instance(IndexInstance.wrap(factory()))
            execute(target, wl, bus=bus, bus_window=args.window,
                    observers=[slo])
    if args.json:
        doc = tower.to_json()
        if view is not None:
            doc = {"tower": doc, "cluster": view}
        print(json.dumps(doc, indent=2))
        return 0
    print(tower.render())
    if view is not None:
        from repro.core.slo import render_cluster_view

        print()
        print(render_cluster_view(view))
    return 0


def cmd_compare(args) -> int:
    keys = registry.get(args.dataset).generate(args.n, seed=args.seed)
    wl = _workload(args, keys)
    rows = []
    results = []
    for name, factory in _ALL_INDEXES.items():
        r = execute(factory(), wl)
        results.append(r)
        rows.append([name, f"{r.throughput_mops:.3f}",
                     f"{r.lookup_latency.p999:.0f}",
                     format_bytes(r.memory.total)])
    if getattr(args, "out", None):
        from repro.core.results import save_jsonl

        save_jsonl(results, args.out, append=True)
    rows.sort(key=lambda row: -float(row[1]))
    print(table(["Index", "Mops", "lookup p99.9 ns", "memory"], rows,
                title=f"All indexes on {args.dataset} / {wl.name}"))
    return 0


def cmd_heatmap(args) -> int:
    from repro.core.heatmap import sweep_heatmap
    from repro.core.sweep import DatasetSpec, SweepCache, WorkloadSpec

    names = args.datasets.split(",") if args.datasets else registry.heatmap_names()
    datasets = [DatasetSpec(n, args.n, args.seed) for n in names]
    workloads = [WorkloadSpec.mixed(_MIX[m], n_ops=args.ops, seed=args.seed)
                 for m in MIX_NAMES]
    cache = SweepCache(args.cache_dir) if getattr(args, "cache_dir", "") else None
    hm, report = sweep_heatmap(
        datasets, workloads,
        learned_names=REGISTRY.names(tag="core", learned=True),
        traditional_names=REGISTRY.names(tag="core", learned=False),
        jobs=args.jobs, cache=cache,
    )
    print(hm.render())
    print(f"\nlearned-index win fraction: {hm.learned_win_fraction():.0%}")
    if report.jobs > 1 or report.cache_hits:
        print(f"[sweep] {len(report.cells)} cells in {report.wall_seconds:.2f}s "
              f"({report.cells_per_sec:.1f} cells/s, jobs={report.jobs}, "
              f"{report.cache_hits} cache hits)")
    return 0


def _sweep_workload_specs(args) -> List:
    from repro.core.sweep import WorkloadSpec

    names = [w for w in args.workloads.split(",") if w]
    try:
        return [WorkloadSpec.from_name(w, n_ops=args.ops, seed=args.seed)
                for w in names]
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def cmd_sweep(args) -> int:
    from repro.core.sweep import (
        DatasetSpec,
        SweepCache,
        default_cache_dir,
        plan_grid,
        run_sweep,
    )

    ds_names = [d for d in args.datasets.split(",") if d]
    for d in ds_names:  # fail fast on typos
        try:
            registry.get(d)
        except KeyError as exc:
            raise SystemExit(exc.args[0]) from None
    index_names = ([i for i in args.indexes.split(",") if i]
                   if args.indexes else REGISTRY.names(tag="heatmap"))
    if args.mode == "single":
        for name in index_names:
            if name not in _ALL_INDEXES and name not in REGISTRY:
                raise SystemExit(
                    f"unknown index {name!r}; use one of {sorted(_ALL_INDEXES)}")
    datasets = [DatasetSpec(d, args.n, args.seed) for d in ds_names]
    workloads = _sweep_workload_specs(args)
    tasks = plan_grid(datasets, workloads, index_names, mode=args.mode,
                      threads=args.threads, sockets=args.sockets)
    cache = None
    if not args.no_cache:
        cache = SweepCache(args.cache_dir or default_cache_dir())
    report = run_sweep(tasks, jobs=args.jobs, cache=cache)

    if args.out:
        from repro.core.results import save_jsonl

        save_jsonl(report.records(), args.out, append=True)
    if args.bench:
        import json

        from repro.core.bench_history import provenance

        doc = report.to_dict(include_cells=False)
        doc.update(provenance())
        with open(args.bench, "w") as f:
            json.dump(doc, f, indent=2)
    if args.history and report.cells:
        from repro.core.bench_history import append_history, check_history

        single = [c for c in report.cells
                  if c.record.get("kind") != "multicore"]
        mops = [c.throughput_mops for c in single]
        p99s = [(c.record.get("lookup_latency") or {}).get("p99", 0.0)
                for c in single]
        metrics = {}
        if mops:
            metrics["mean_cell_mops"] = sum(mops) / len(mops)
            metrics["min_cell_mops"] = min(mops)
        judged = [p for p in p99s if p > 0]
        if judged:
            metrics["mean_lookup_p99_ns"] = sum(judged) / len(judged)
        context = {"datasets": sorted(ds_names),
                   "workloads": sorted(w.label for w in workloads),
                   "indexes": sorted(index_names), "mode": args.mode,
                   "n": args.n, "ops": args.ops, "seed": args.seed}
        info = {"wall_seconds": report.wall_seconds,
                "cells_per_sec": report.cells_per_sec,
                "cache_hits": report.cache_hits,
                "executed": report.executed}
        if args.check:
            regressions = check_history(args.history, "sweep", metrics,
                                        context=context,
                                        tolerance=args.tolerance)
            if regressions:
                for reg in regressions:
                    print(f"FAIL {reg}", file=sys.stderr)
                return 1
            print(f"sweep --check: no regressions vs {args.history} "
                  f"(tolerance {args.tolerance:.0%})")
        append_history(args.history, "sweep", metrics, info=info,
                       context=context)
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2))
        return 0
    rows = [
        [c.task.dataset.name, c.task.workload.label, c.task.index,
         f"{c.throughput_mops:.3f}", "hit" if c.cached else "run"]
        for c in report.cells
    ]
    print(table(["Dataset", "Workload", "Index", "Mops", "Cache"], rows,
                title=f"Sweep: {len(report.cells)} cells"))
    print(f"\n{len(report.cells)} cells in {report.wall_seconds:.2f}s "
          f"({report.cells_per_sec:.1f} cells/s) — jobs={report.jobs}, "
          f"{report.cache_hits} cache hits "
          f"({report.cache_hit_rate:.0%}), {report.executed} executed")
    if report.pool_error:
        print(f"warning: process pool unavailable ({report.pool_error}); "
              "ran serially")
    return 0


def cmd_scalability(args) -> int:
    from repro.concurrency.adapters import MT_LEARNED, MT_TRADITIONAL
    from repro.concurrency.simcore import MulticoreSimulator, Topology

    keys = registry.get(args.dataset).generate(args.n, seed=args.seed)
    wl = _workload(args, keys)
    threads = [int(t) for t in args.threads.split(",")]
    sim = MulticoreSimulator(Topology(sockets=args.sockets))
    curves: Dict[str, List[float]] = {}
    for name, factory in {**MT_LEARNED, **MT_TRADITIONAL}.items():
        ad = factory()
        ad.bulk_load(wl.bulk_items)
        traces = sim.record(ad, wl.operations)
        curves[name] = [sim.replay(name, traces, t).throughput_mops for t in threads]
    print(ascii_chart(curves, threads,
                      title=f"{args.dataset} / {wl.name} — Mops vs threads "
                            f"({args.sockets} socket(s))"))
    rows = [[name] + [f"{y:.1f}" for y in ys] for name, ys in curves.items()]
    print()
    print(table(["Index"] + [str(t) for t in threads], rows))
    return 0


def cmd_memory(args) -> int:
    keys = registry.get(args.dataset).generate(args.n, seed=args.seed)
    rows = []
    for name, factory in _ALL_INDEXES.items():
        rep = measure_after_write_only(factory, keys)
        rows.append([name, format_bytes(rep.breakdown.total),
                     f"{rep.bytes_per_key:.1f}", f"{rep.inner_fraction:.0%}"])
    rows.sort(key=lambda row: float(row[2]))
    print(table(["Index", "Total", "Bytes/key", "Inner share"], rows,
                title=f"End-to-end memory after write-only ({args.dataset})"))
    return 0


def cmd_diagnose(args) -> int:
    from repro.core.diagnostics import diagnose
    from repro.core.slo import SLOTracker
    from repro.core.telemetry import CostProfiler, MetricsCollector, Telemetry

    factory = _ALL_INDEXES.get(args.index)
    if factory is None:
        raise SystemExit(f"unknown index {args.index!r}; use one of {sorted(_ALL_INDEXES)}")
    keys = registry.get(args.dataset).generate(args.n, seed=args.seed)
    wl = _workload(args, keys)
    idx = factory()
    # Record the run so the report can cite behavioral findings (SMO
    # storms, dominant cost phases, fired SLO alerts), not just
    # end-state structure.
    telemetry = Telemetry(metrics=MetricsCollector(), profiler=CostProfiler())
    slo = SLOTracker()
    execute(idx, wl, telemetry=telemetry, observers=[slo])
    sample = [k for k, _ in wl.bulk_items][:: max(1, len(wl.bulk_items) // 300)]
    print(diagnose(idx, sample, telemetry=telemetry, slo=slo).render())
    return 0


def cmd_profile(args) -> int:
    from repro.core.telemetry import CostProfiler, Telemetry

    factory = _ALL_INDEXES.get(args.index)
    if factory is None:
        raise SystemExit(f"unknown index {args.index!r}; use one of {sorted(_ALL_INDEXES)}")
    keys = registry.get(args.dataset).generate(args.n, seed=args.seed)
    wl = _workload(args, keys)
    idx = factory()
    profiler = CostProfiler()
    r = execute(idx, wl, telemetry=Telemetry(profiler=profiler))
    print(f"{args.index} on {args.dataset} / {wl.name}: "
          f"{r.throughput_mops:.3f} Mops over {r.virtual_ns / 1e6:.2f} virtual ms\n")
    print(profiler.render(top=args.top))
    # The profile is exhaustive: its phase totals are the meter's.
    drift = abs(profiler.total_ns() - sum(idx.meter.time_by_phase().values()))
    print(f"\nreconciliation drift vs CostMeter.time_by_phase(): {drift:.3g} ns")
    return 0


def cmd_fuzz(args) -> int:
    import os

    from repro.core.opstream import fuzz_index, fuzzable_specs, replay_file

    if args.replay:
        paths = []
        for p in args.replay:
            if os.path.isdir(p):
                paths += sorted(
                    os.path.join(p, f) for f in os.listdir(p)
                    if f.endswith(".jsonl"))
            elif not os.path.exists(p):
                raise SystemExit(
                    f"repro fuzz --replay: {p!r} does not exist "
                    "(expected a saved opstream .jsonl file or a "
                    "directory of them)")
            else:
                paths.append(p)
        failed = 0
        for path in paths:
            report = replay_file(path)
            print(f"{path}: {report.describe()}")
            failed += 0 if report.ok else 1
        print(f"\nreplayed {len(paths)} stream(s), {failed} failing")
        return 1 if failed else 0

    if args.index:
        specs = [REGISTRY.get(name) for name in args.index]
        for spec in specs:
            if not spec.supports_insert:
                raise SystemExit(f"{spec.name} is read-only; nothing to fuzz")
    else:
        specs = fuzzable_specs()

    failures = []
    for spec in specs:
        failure = fuzz_index(spec, budget=args.budget, seed=args.seed)
        if failure is None:
            print(f"{spec.name:12s} ok ({args.budget} ops)")
            continue
        failures.append(failure)
        print(failure.describe())
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            dest = os.path.join(
                args.out, f"{spec.name.replace('+', 'plus')}-seed{args.seed}.jsonl")
            failure.stream.save(dest)
            print(f"  shrunk stream saved to {dest}")
    print(f"\nfuzzed {len(specs)} index(es) x {args.budget} ops: "
          f"{len(failures)} failure(s)")
    return 1 if failures else 0


def cmd_migrate(args) -> int:
    import json

    from repro.core.migrate import resolve_index_name, run_migration

    try:
        src = resolve_index_name(args.src)
        dst = resolve_index_name(args.dst)
    except KeyError as exc:
        raise SystemExit(exc.args[0]) from None
    if src == dst:
        raise SystemExit(f"source and destination are both {src}")
    keys = registry.get(args.dataset).generate(args.n, seed=args.seed)
    wl = _workload(args, keys)
    bus = None
    if getattr(args, "events", ""):
        from repro.core.events import EventBus

        bus = EventBus()
    try:
        report = run_migration(src, dst, wl, chunk=args.chunk,
                               pump_per_op=args.pump, seed=args.seed,
                               bus=bus)
    except ValueError as exc:  # capability refusal, not a crash
        raise SystemExit(str(exc)) from None
    if bus is not None:
        n = bus.save(args.events)
        print(f"events: {args.events} ({n} events)")
    if report.repro is not None and args.repro_dir:
        import os

        os.makedirs(args.repro_dir, exist_ok=True)
        dest = os.path.join(
            args.repro_dir,
            f"migrate-{src.replace('+', 'plus')}-to-"
            f"{dst.replace('+', 'plus')}-seed{args.seed}.jsonl")
        report.repro.save(dest)
        report.repro_path = dest
    if args.bench:
        from repro.core.bench_history import provenance

        doc = report.to_dict()
        doc.update(provenance())
        with open(args.bench, "w") as f:
            json.dump(doc, f, indent=2)
        print(f"wrote {args.bench}")
    if args.history:
        from repro.core.bench_history import append_history, check_history

        metrics = {
            "overhead_ns": report.overhead_ns,
            "client_ns": report.client_ns,
            "backfill_keys_per_vsec": report.backfill_keys_per_vsec,
        }
        context = {"src": src, "dst": dst, "dataset": args.dataset,
                   "workload": args.workload, "n": args.n, "ops": args.ops,
                   "chunk": args.chunk, "pump": args.pump, "seed": args.seed}
        if args.check:
            regressions = check_history(args.history, "migration", metrics,
                                        context=context,
                                        tolerance=args.tolerance)
            if regressions:
                for reg in regressions:
                    print(f"FAIL {reg}", file=sys.stderr)
                return 1
            print(f"migrate --check: no regressions vs {args.history} "
                  f"(tolerance {args.tolerance:.0%})")
        append_history(args.history, "migration", metrics,
                       info={"wall_seconds": report.wall_seconds},
                       context=context)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.describe())
    if not report.ok:
        return 1
    if report.verified_fraction < args.min_verified:
        print(f"FAIL: verified fraction {report.verified_fraction:.2%} < "
              f"--min-verified {args.min_verified:.2%}", file=sys.stderr)
        return 1
    return 0


def cmd_shard(args) -> int:
    """Sharded serving tier: scaling curve + hotspot-rebalance replay."""
    import json

    from repro.core.bench_history import provenance
    from repro.core.shard import rebalance_benchmark, scaling_benchmark

    try:
        spec = REGISTRY.get(args.index)
    except KeyError as exc:
        raise SystemExit(exc.args[0]) from None
    if not spec.supports_sharding:
        raise SystemExit(f"{args.index!r} does not support sharding "
                         "(see `repro list`)")
    counts = tuple(int(c) for c in args.shard_counts.split(",") if c)
    try:
        scaling = scaling_benchmark(
            index=args.index, dataset=args.dataset, n=args.n,
            lookups=args.lookups, shard_counts=counts, seed=args.seed,
            batch=args.batch,
            jobs=args.jobs if args.jobs is not None else 0)
    except AssertionError as exc:  # fingerprint divergence — a real bug
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    rebalance = rebalance_benchmark(
        index=args.index, dataset=args.dataset, n=args.n, ops=args.ops,
        shards=args.shards, window_ops=args.window, seed=args.seed)

    doc = {"scaling": scaling, "rebalance": rebalance}
    doc.update(provenance())
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        rows = []
        for level in scaling["levels"]:
            rows.append([
                level["shards"],
                f"{level['virtual_mops_serial']:.2f}",
                f"{level['virtual_mops_parallel']:.2f}",
                f"{level['routing_ns']:.0f}",
                f"{level['wall_pool_s']:.3f}",
                level["pool_jobs"],
                "ok" if level["pool_parity"] else "DIVERGED",
            ])
        print(table(
            ["Shards", "Mops (serial)", "Mops (parallel)", "routing ns",
             "pool wall s", "jobs", "parity"],
            rows,
            title=f"{args.index} scaling on {args.dataset} "
                  f"(n={args.n}, {args.lookups} zipfian lookups, "
                  f"batch={args.batch})"))
        print(f"\nvirtual lookup scaling {counts[0]} -> {counts[-1]} shards: "
              f"{scaling['scaling_virtual']:.2f}x "
              f"(fingerprint parity vs unsharded: ok)")
        rb = rebalance
        print(f"\nmoving-hotspot replay ({rb['ops']} ops, "
              f"{rb['shards_initial']} -> {rb['shards_final']} shards): "
              f"{rb['splits']} splits, {rb['merges']} merges, "
              f"{rb['aborted']} aborted")
        print(f"  p99 ns: pre-skew {rb['pre_skew_p99_ns']:.0f}, "
              f"peak {rb['peak_p99_ns']:.0f}, "
              f"post-rebalance {rb['post_rebalance_p99_ns']:.0f} "
              f"(recovery ratio {rb['p99_recovery_ratio']:.2f})")
        print(f"  cutover stall ops: {rb['cutover_stall_ops']}, "
              f"rejected: {rb['rejected_ops']}, "
              f"oracle: {'clean' if rb['oracle_ok'] else 'DIVERGED'}, "
              f"converged: {rb['converged']}")
    if args.out:
        with open(args.out, "w") as f:
            json.dump(doc, f, indent=2)
        print(f"wrote {args.out}")
    if args.history:
        from repro.core.bench_history import append_history, check_history

        metrics = {
            "scaling_virtual": scaling["scaling_virtual"],
            "virtual_mops_max": scaling["virtual_mops_max"],
            "p99_recovery_ratio": rebalance["p99_recovery_ratio"],
        }
        context = {"index": args.index, "dataset": args.dataset,
                   "n": args.n, "lookups": args.lookups, "ops": args.ops,
                   "shard_counts": list(counts), "shards": args.shards,
                   "batch": args.batch, "window": args.window,
                   "seed": args.seed}
        if args.check:
            regressions = check_history(args.history, "shard", metrics,
                                        context=context,
                                        tolerance=args.tolerance)
            if regressions:
                for reg in regressions:
                    print(f"FAIL {reg}", file=sys.stderr)
                return 1
            print(f"shard --check: no regressions vs {args.history} "
                  f"(tolerance {args.tolerance:.0%})")
        append_history(args.history, "shard", metrics,
                       info={"wall_seconds": rebalance["wall_seconds"]},
                       context=context)
    ok = True
    if scaling["scaling_virtual"] < args.min_scaling:
        print(f"FAIL: virtual scaling {scaling['scaling_virtual']:.2f}x < "
              f"--min-scaling {args.min_scaling:.2f}x", file=sys.stderr)
        ok = False
    if not rebalance["converged"]:
        print("FAIL: moving-hotspot replay did not converge "
              f"(recovery ratio {rebalance['p99_recovery_ratio']:.2f}, "
              f"splits {rebalance['splits']}, "
              f"stall ops {rebalance['cutover_stall_ops']}, "
              f"oracle {'clean' if rebalance['oracle_ok'] else 'diverged'})",
              file=sys.stderr)
        ok = False
    return 0 if ok else 1


def cmd_serve(args) -> int:
    """Async index server session: N clients + a background rebuild,
    journal-replayed through the differential oracle."""
    import json

    from repro.core.bench_history import provenance
    from repro.core.events import EventBus
    from repro.core.migrate import resolve_index_name
    from repro.core.server import run_serve_session, session_streams
    from repro.core.slo import ControlTower

    try:
        index = resolve_index_name(args.index)
    except KeyError as exc:
        raise SystemExit(exc.args[0]) from None
    keys = registry.get(args.dataset).generate(args.n, seed=args.seed)
    bulk, streams = session_streams(
        index, n_clients=args.clients, ops_per_client=args.ops,
        seed=args.seed, profile=args.profile, bulk_keys=keys)

    bus = EventBus()
    tower = ControlTower()
    bus.subscribe(tower.consume)
    report = run_serve_session(
        index, bulk, streams, rebuild_to=args.rebuild,
        rebuild_after=args.rebuild_after, threaded=False, seed=args.seed,
        queue_depth=args.queue_depth, admission=args.admission,
        chunk=args.chunk, bus=bus)
    threaded = None
    if args.threads:
        threaded = run_serve_session(
            index, bulk, streams, rebuild_to=args.rebuild,
            rebuild_after=args.rebuild_after, threaded=True,
            seed=args.seed, queue_depth=args.queue_depth,
            admission=args.admission, chunk=args.chunk)

    doc = {"deterministic": report.to_dict()}
    if threaded is not None:
        doc["threaded"] = threaded.to_dict()
    doc.update(provenance())
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        print(tower.render(title=f"repro serve · {index} on {args.dataset}"))
        rep = report.to_dict()
        print(f"\n{rep['clients']} clients x {args.ops} ops "
              f"({args.profile}), rebuild -> {args.rebuild or index}: "
              f"{rep['ops_per_vsec'] / 1e6:.2f}M ops/vs, "
              f"overhead {rep['overhead_ns'] / 1e3:.0f}k vns, "
              f"journal {rep['journal_len']} ops")
        for label, r in (("deterministic", report), ("threaded", threaded)):
            if r is None:
                continue
            print(f"  {label}: dropped lookups {r.dropped_lookups}, "
                  f"stalled {r.stalled_lookups}, "
                  f"oracle {'clean' if not r.mismatches else 'DIVERGED'}, "
                  f"job {r.job['state'] if r.job else '-'}, "
                  f"wall {r.wall_seconds:.3f}s")
    if args.out:
        with open(args.out, "w") as f:
            json.dump(doc, f, indent=2)
        # stderr: --out defaults on, and --json consumers own stdout.
        print(f"wrote {args.out}", file=sys.stderr)
    if args.history:
        from repro.core.bench_history import append_history, check_history

        # Gated metrics come from the deterministic session only: same
        # seed, same interleave, same virtual-clock numbers on any
        # machine.  Threaded wall-clock stats ride in info, ungated.
        metrics = {
            "serve_ops_per_vsec": report.ops_per_vsec,
            "client_ns": report.client_ns,
            "overhead_ns": report.overhead_ns,
        }
        context = {"index": index, "dataset": args.dataset, "n": args.n,
                   "clients": args.clients, "ops": args.ops,
                   "profile": args.profile, "rebuild": args.rebuild,
                   "rebuild_after": args.rebuild_after,
                   "chunk": args.chunk, "queue_depth": args.queue_depth,
                   "admission": args.admission, "seed": args.seed}
        info = {"wall_seconds": report.wall_seconds}
        if threaded is not None:
            info["threaded_wall_seconds"] = threaded.wall_seconds
        if args.check:
            regressions = check_history(args.history, "serve", metrics,
                                        context=context,
                                        tolerance=args.tolerance)
            if regressions:
                for reg in regressions:
                    print(f"FAIL {reg}", file=sys.stderr)
                return 1
            print(f"serve --check: no regressions vs {args.history} "
                  f"(tolerance {args.tolerance:.0%})")
        append_history(args.history, "serve", metrics, info=info,
                       context=context)
    ok = True
    for label, r in (("deterministic", report), ("threaded", threaded)):
        if r is None:
            continue
        if not r.ok:
            print(f"FAIL: {label} session: "
                  f"dropped lookups {r.dropped_lookups}, "
                  f"stalled {r.stalled_lookups}, "
                  f"oracle mismatches {len(r.mismatches)}, "
                  f"job {r.job['state'] if r.job else '-'}",
                  file=sys.stderr)
            ok = False
    return 0 if ok else 1


def cmd_compare_runs(args) -> int:
    from repro.core.results import ResultStore, compare

    base = ResultStore(args.baseline).load()
    cur = ResultStore(args.current).load()
    regressions = compare(base, cur, threshold=args.threshold)
    if not regressions:
        print(f"no regressions beyond {args.threshold:.0%}")
        return 0
    for r in regressions:
        print(r)
    return 1


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="GRE: benchmark updatable learned indexes "
                    "(reproduction of VLDB 2022).",
    )
    sub = p.add_subparsers(dest="command", required=True)

    def _history_flags(sp):
        sp.add_argument("--history", default="",
                        help="append a fingerprinted bench-history record "
                             "to this JSON-lines file (BENCH_history.jsonl)")
        sp.add_argument("--check", action="store_true",
                        help="fail when a gated virtual-clock metric "
                             "regresses vs the recorded --history baseline")
        sp.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed relative change before --check fails")

    def common(sp, dataset=True, workload=False):
        sp.add_argument("--n", type=int, default=8000, help="keys to generate")
        sp.add_argument("--ops", type=int, default=6000, help="operations to run")
        sp.add_argument("--seed", type=int, default=0)
        if dataset:
            sp.add_argument("--dataset", default="covid",
                            help=f"one of {registry.names()}")
        if workload:
            sp.add_argument("--workload", default="balanced",
                            help=f"{MIX_NAMES} | ycsb-a/b/c | delete | scan[:SIZE]")

    sub.add_parser("datasets", help="list the dataset registry")

    sub.add_parser("list", help="index capability catalog")

    sp = sub.add_parser(
        "bench",
        help="scalar vs batched lookup microbenchmark (wall clock)")
    sp.add_argument("--indexes", default="",
                    help="comma-separated names (default: every "
                         "batch-capable index)")
    sp.add_argument("--n", type=int, default=100000, help="keys to load")
    sp.add_argument("--lookups", type=int, default=20000,
                    help="lookups per side")
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--dataset", default="covid",
                    help=f"one of {registry.names()}")
    sp.add_argument("--out", default="BENCH_batch.json",
                    help="write the JSON report here ('' to skip)")
    sp.add_argument("--min-speedup", type=float, default=0.0,
                    dest="min_speedup",
                    help="fail if any vectorized index speeds up less "
                         "than this")
    _history_flags(sp)

    sp = sub.add_parser("hardness", help="PLA hardness of a dataset")
    sp.add_argument("dataset")
    common(sp, dataset=False)

    sp = sub.add_parser("run", help="run one index on one workload")
    sp.add_argument("--index", default="ALEX",
                    help=f"one of {sorted(_ALL_INDEXES)}")
    sp.add_argument("--json", action="store_true",
                    help="machine-readable output")
    sp.add_argument("--out", default="",
                    help="append the versioned result record to this "
                         "JSON-lines file (compare-runs input)")
    sp.add_argument("--trace", default="",
                    help="write a Chrome trace-event JSON of the run "
                         "(virtual-clock op spans + SMO instants; open "
                         "in Perfetto)")
    sp.add_argument("--trace-log", default="", dest="trace_log",
                    help="write the raw telemetry event log as "
                         "versioned JSON-lines")
    sp.add_argument("--metrics", default="",
                    help="write windowed throughput/SMO-rate/memory "
                         "time-series as versioned JSON-lines")
    sp.add_argument("--window", type=int, default=256,
                    help="ops per metrics window")
    sp.add_argument("--events", default="",
                    help="attach an event bus + SLO tracker and write "
                         "the operational event log (state changes, op "
                         "windows, SMOs, SLO windows, alerts) as "
                         "versioned JSON-lines")
    common(sp, workload=True)

    sp = sub.add_parser(
        "top",
        help="control-tower status table over the operational event "
             "stream: state, throughput, p99, backfill, alerts")
    sp.add_argument("--events", default="",
                    help="fold a saved event log (from run/migrate "
                         "--events) instead of running live")
    sp.add_argument("--index", default="ALEX",
                    help=f"live mode: run one of {sorted(_ALL_INDEXES)}")
    sp.add_argument("--migrate", nargs=2, metavar=("SRC", "DST"),
                    help="live mode: watch a live migration instead of "
                         "a single-index run")
    sp.add_argument("--shards", type=int, default=0,
                    help="live mode: run --index sharded N ways under a "
                         "rebalancing router and aggregate the per-shard "
                         "SLO trackers into a cluster view")
    sp.add_argument("--server", action="store_true",
                    help="live mode: run an index-server session (client "
                         "threads + background rebuild) and watch its "
                         "job/backfill progress")
    sp.add_argument("--once", action="store_true",
                    help="print the final table once (no live refresh)")
    sp.add_argument("--json", action="store_true",
                    help="machine-readable status (implies --once)")
    sp.add_argument("--window", type=int, default=256,
                    help="ops per bus/SLO window")
    common(sp, workload=True)

    sp = sub.add_parser("compare", help="all indexes on one workload")
    sp.add_argument("--out", default="",
                    help="append every index's result record to this "
                         "JSON-lines file (compare-runs input)")
    common(sp, workload=True)

    sp = sub.add_parser("heatmap", help="data x workload winner heatmap")
    sp.add_argument("--datasets", default="",
                    help="comma-separated (default: the paper's ten)")
    sp.add_argument("--jobs", type=int, default=None,
                    help="worker processes (default: REPRO_JOBS or 1; "
                         "0 = one per CPU)")
    sp.add_argument("--cache-dir", default="", dest="cache_dir",
                    help="content-addressed result cache directory "
                         "(default: no caching for heatmap)")
    common(sp, dataset=False)

    sp = sub.add_parser(
        "sweep",
        help="run a dataset x workload x index grid, in parallel with "
             "content-addressed caching")
    sp.add_argument("--datasets", default="covid,stack,genome",
                    help="comma-separated dataset names")
    sp.add_argument("--workloads", default=",".join(MIX_NAMES),
                    help="comma-separated workload names "
                         f"({MIX_NAMES} | ycsb-a..f | delete | scan[:SIZE])")
    sp.add_argument("--indexes", default="",
                    help="comma-separated index names (default: the "
                         "heatmap contenders; concurrent names like "
                         "ALEX+ with --mode multicore)")
    sp.add_argument("--mode", choices=["single", "multicore"], default="single",
                    help="execute cells single-threaded or on the "
                         "simulated multicore")
    sp.add_argument("--threads", type=int, default=24,
                    help="simulated threads per cell (multicore mode)")
    sp.add_argument("--sockets", type=int, default=1,
                    help="simulated sockets (multicore mode)")
    sp.add_argument("--jobs", type=int, default=None,
                    help="worker processes (default: REPRO_JOBS or 1; "
                         "0 = one per CPU)")
    sp.add_argument("--cache-dir", default="", dest="cache_dir",
                    help="cache directory (default: REPRO_CACHE_DIR or "
                         ".repro-cache/sweep)")
    sp.add_argument("--no-cache", action="store_true",
                    help="disable the result cache entirely")
    sp.add_argument("--out", default="",
                    help="append every cell's versioned result record "
                         "to this JSON-lines file")
    sp.add_argument("--bench", default="",
                    help="write sweep performance stats (cells/sec, "
                         "cache hit rate, wall seconds) to this JSON file")
    sp.add_argument("--json", action="store_true",
                    help="machine-readable report (includes per-cell "
                         "determinism fingerprints)")
    _history_flags(sp)
    common(sp, dataset=False)

    sp = sub.add_parser("scalability", help="simulated multicore curves")
    sp.add_argument("--threads", default="2,4,8,16,24,36,48")
    sp.add_argument("--sockets", type=int, default=1)
    common(sp, workload=True)

    sp = sub.add_parser("memory", help="end-to-end memory comparison")
    common(sp)

    sp = sub.add_parser("diagnose", help="index health after a workload")
    sp.add_argument("--index", default="ALEX",
                    help=f"one of {sorted(_ALL_INDEXES)}")
    common(sp, workload=True)

    sp = sub.add_parser("profile",
                        help="cost-attribution flame-table for one run")
    sp.add_argument("--index", default="ALEX",
                    help=f"one of {sorted(_ALL_INDEXES)}")
    sp.add_argument("--top", type=int, default=20,
                    help="hottest (op, phase, cost-kind) cells to show")
    common(sp, workload=True)

    sp = sub.add_parser(
        "fuzz",
        help="randomized differential + invariant testing of the "
             "registry indexes; failures shrink to minimal replayable "
             "streams")
    sp.add_argument("--index", action="append", default=[],
                    help="fuzz only this index (repeatable; default: "
                         "every fuzzable registry index)")
    sp.add_argument("--all", action="store_true",
                    help="fuzz every fuzzable index (the default; kept "
                         "for explicit invocations)")
    sp.add_argument("--budget", type=int, default=2000,
                    help="operations per index")
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--out", default="fuzz-failures",
                    help="directory for shrunk failing streams "
                         "('' disables saving)")
    sp.add_argument("--replay", action="append", default=[],
                    help="replay saved stream file(s)/director(ies) "
                         "instead of fuzzing (repeatable)")

    sp = sub.add_parser(
        "migrate",
        help="zero-downtime live migration between two indexes under a "
             "live workload, with oracle-verified cutover")
    sp.add_argument("src", help="index to migrate from (e.g. btree)")
    sp.add_argument("dst", help="index to migrate to (e.g. alex)")
    sp.add_argument("--chunk", type=int, default=128,
                    help="keys per interleaved backfill/verify chunk")
    sp.add_argument("--pump", type=int, default=1,
                    help="background chunks pumped per client op")
    sp.add_argument("--min-verified", type=float, default=1.0,
                    dest="min_verified",
                    help="fail unless at least this fraction of keys "
                         "was value-verified before cutover")
    sp.add_argument("--bench", default="",
                    help="write the migration report JSON here")
    sp.add_argument("--json", action="store_true",
                    help="machine-readable report")
    sp.add_argument("--repro-dir", default="", dest="repro_dir",
                    help="directory for the shrunk divergence repro "
                         "stream, if the migration aborts")
    sp.add_argument("--events", default="",
                    help="write the migration's operational event log "
                         "(state changes, backfill chunks, cutover) as "
                         "versioned JSON-lines")
    _history_flags(sp)
    common(sp, workload=True)

    sp = sub.add_parser(
        "shard",
        help="sharded serving tier: range-partitioned scaling curve + "
             "hotspot rebalance under a moving-hotspot replay")
    sp.add_argument("--index", default="ALEX",
                    help=f"shard engine, one of {sorted(_ALL_INDEXES)}")
    sp.add_argument("--shard-counts", default="1,2,4,8", dest="shard_counts",
                    help="comma-separated shard counts for the scaling "
                         "curve")
    sp.add_argument("--lookups", type=int, default=8000,
                    help="zipfian lookups per scaling level")
    sp.add_argument("--batch", type=int, default=512,
                    help="keys per lookup_many batch")
    sp.add_argument("--jobs", type=int, default=None,
                    help="worker processes for the parallel wall-clock "
                         "measurement (default: one per CPU)")
    sp.add_argument("--shards", type=int, default=4,
                    help="initial shard count for the rebalance replay")
    sp.add_argument("--window", type=int, default=512,
                    help="router census window (ops)")
    sp.add_argument("--min-scaling", type=float, default=0.0,
                    dest="min_scaling",
                    help="fail if the 1 -> max-shard virtual lookup "
                         "scaling factor is below this")
    sp.add_argument("--out", default="BENCH_shard.json",
                    help="write the JSON report here ('' to skip)")
    sp.add_argument("--json", action="store_true",
                    help="machine-readable report")
    _history_flags(sp)
    common(sp)

    sp = sub.add_parser(
        "serve",
        help="async index server session: N concurrent clients + a "
             "background rebuild, journal-replayed through the "
             "differential oracle (zero dropped/stalled lookups)")
    sp.add_argument("--index", default="ALEX",
                    help=f"served index, one of {sorted(_ALL_INDEXES)}")
    sp.add_argument("--clients", type=int, default=4,
                    help="concurrent client streams")
    sp.add_argument("--profile", default="churn",
                    choices=["churn", "burst"],
                    help="per-client stream shape")
    sp.add_argument("--rebuild", default="",
                    help="background-job destination index (default: "
                         "rebuild into the same type)")
    sp.add_argument("--rebuild-after", type=float, default=0.25,
                    dest="rebuild_after",
                    help="submit the job after this fraction of ops")
    sp.add_argument("--chunk", type=int, default=256,
                    help="keys per background pump chunk")
    sp.add_argument("--queue-depth", type=int, default=8,
                    dest="queue_depth", help="bounded job-queue depth")
    sp.add_argument("--admission", default="block",
                    choices=["block", "reject"],
                    help="job-queue behavior when full")
    sp.add_argument("--threads", action="store_true",
                    help="also run the real-thread session (client "
                         "threads + worker thread) after the "
                         "deterministic one")
    sp.add_argument("--out", default="BENCH_serve.json",
                    help="write the JSON report here ('' to skip)")
    sp.add_argument("--json", action="store_true",
                    help="machine-readable report")
    _history_flags(sp)
    common(sp)

    sp = sub.add_parser("compare-runs",
                        help="regressions between two result files")
    sp.add_argument("baseline")
    sp.add_argument("current")
    sp.add_argument("--threshold", type=float, default=0.10)
    return p


_COMMANDS = {
    "list": cmd_list,
    "bench": cmd_bench,
    "datasets": cmd_datasets,
    "hardness": cmd_hardness,
    "run": cmd_run,
    "top": cmd_top,
    "compare": cmd_compare,
    "heatmap": cmd_heatmap,
    "sweep": cmd_sweep,
    "scalability": cmd_scalability,
    "memory": cmd_memory,
    "diagnose": cmd_diagnose,
    "profile": cmd_profile,
    "fuzz": cmd_fuzz,
    "migrate": cmd_migrate,
    "shard": cmd_shard,
    "serve": cmd_serve,
    "compare-runs": cmd_compare_runs,
}


def main(argv: Sequence[str] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
