"""Dataset registry: named generators + hardness metadata (Table 2).

The registry is the single entry point benchmarks use::

    from repro.datasets import registry
    ds = registry.get("genome")
    keys = ds.generate(100_000, seed=1)
    g, l = ds.hardness(keys)
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.hardness import pla_hardness
from repro.datasets import real


@lru_cache(maxsize=256)
def _generate_cached(name: str, n: int, seed: int) -> Tuple[int, ...]:
    """Memoized key generation, keyed on ``(name, n, seed)``.

    Generators are deterministic in ``(n, seed)``, so regenerating the
    same key array for every sweep cell or test is pure waste.  The
    cache holds immutable tuples; :meth:`Dataset.generate` hands each
    caller a fresh list so nobody can corrupt the shared copy.
    """
    return tuple(_DATASETS[name].generator(n, seed))


def generation_cache_clear() -> None:
    """Drop all memoized key arrays (tests, memory pressure)."""
    _generate_cached.cache_clear()


def generation_cache_info():
    """``functools.lru_cache`` statistics for the generation cache."""
    return _generate_cached.cache_info()


def scaled_epsilons(n: int) -> Tuple[int, int]:
    """(global ε, local ε) scaled to dataset size.

    The paper's 4096/32 are tuned for 200M keys; at reproduction scale
    those values stop discriminating (ε=4096 is 20% of a 20k-key
    dataset).  We keep the paper's coarse:fine ratio (128×) and scale
    with n so the hardness *ranking* across datasets is preserved.
    """
    global_eps = max(64, n // 80)
    local_eps = max(4, n // 2560)
    return global_eps, local_eps


@dataclass(frozen=True)
class Dataset:
    """A named dataset stand-in with paper metadata."""

    name: str
    description: str
    source: str
    #: Paper's qualitative hardness class: "easy", "local-hard",
    #: "global-hard" or "hard" (both dimensions).
    hardness_class: str
    has_duplicates: bool
    generator: Callable[[int, int], List[int]]

    def generate(self, n: int, seed: int = 0) -> List[int]:
        """``n`` sorted keys (unique unless :attr:`has_duplicates`).

        Generation is memoized on ``(name, n, seed)`` process-wide, so
        repeated calls across sweep cells and tests reuse one key
        array; callers always receive their own mutable copy.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if _DATASETS.get(self.name) is not self:
            # Ad-hoc Dataset instances (not registered) bypass the
            # shared cache rather than poison it by name.
            return self.generator(n, seed)
        return list(_generate_cached(self.name, n, seed))

    def hardness(self, keys: List[int], epsilons: Optional[Tuple[int, int]] = None) -> Tuple[int, int]:
        """(global H, local H) of concrete keys, at scaled ε by default."""
        g_eps, l_eps = epsilons if epsilons is not None else scaled_epsilons(len(keys))
        return pla_hardness(keys, g_eps), pla_hardness(keys, l_eps)


_DATASETS: Dict[str, Dataset] = {}


def _register(name: str, description: str, source: str, hardness_class: str,
              has_duplicates: bool = False) -> None:
    _DATASETS[name] = Dataset(
        name=name,
        description=description,
        source=source,
        hardness_class=hardness_class,
        has_duplicates=has_duplicates,
        generator=real.GENERATORS[name],
    )


_register("books", "Amazon book sales popularity", "SOSD [21]", "easy")
_register("fb", "Upsampled Facebook user ID", "SOSD [21]", "local-hard")
_register("osm", "Uniformly sampled OpenStreetMap locations", "SOSD [21]", "hard")
_register("wiki", "Wikipedia article edit timestamps (de-duplicated)", "SOSD [21]", "easy")
_register("wiki_dup", "Wikipedia article edit timestamps (with duplicates)",
          "SOSD [21]", "easy", has_duplicates=True)
_register("covid", "Uniformly sampled Tweet ID with tag COVID-19", "[32]", "easy")
_register("genome", "Loci pairs in human chromosomes", "[47]", "local-hard")
_register("stack", "Vote ID from Stackoverflow", "[51]", "easy")
_register("wise", "Partition key from the WISE data", "[56]", "easy")
_register("libio", "Repository ID from libraries.io", "[31]", "easy")
_register("history", "History node ID in OpenStreetMap", "[7]", "easy")
_register("planet", "Planet ID in OpenStreetMap", "[7]", "global-hard")


def get(name: str) -> Dataset:
    """Look up a dataset by its paper name."""
    try:
        return _DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(_DATASETS)}"
        ) from None


def names(include_duplicates: bool = False) -> List[str]:
    """All registered dataset names, heatmap ordering (easy → hard)."""
    ordered = [
        "covid", "wise", "stack", "libio", "history", "wiki",
        "books", "planet", "genome", "fb", "osm",
    ]
    if include_duplicates:
        ordered.append("wiki_dup")
    return ordered


def heatmap_names() -> List[str]:
    """The 10 datasets shown in the paper's heatmaps (Figure 2)."""
    return ["covid", "libio", "history", "wiki", "stack",
            "books", "planet", "genome", "fb", "osm"]


def all_datasets() -> List[Dataset]:
    return [get(n) for n in names(include_duplicates=True)]
