"""Synthetic stand-ins for the paper's eleven real datasets (Table 2).

The originals (SOSD + GRE additions) are multi-GB downloads we cannot
fetch offline.  What the paper's analysis actually consumes is each
dataset's *position in the (global, local) PLA-hardness plane* and a
few distributional quirks (fb's outliers, wiki's duplicates, planet's
CDF deflection).  Each generator below reproduces its dataset's
documented character:

======== ============================== =======================================
name     paper's description             CDF character reproduced
======== ============================== =======================================
covid    uniformly sampled Tweet IDs     uniform → easy/easy
wise     WISE partition keys             uniform → easy/easy
stack    Stackoverflow vote IDs          near-sequential, small gaps → easy
libio    libraries.io repository IDs     sequential w/ bursty gaps → easy
history  OSM history node IDs            a few linear regimes → easy-moderate
books    Amazon sales popularity         smooth convex (power-law) → moderate
wiki     Wikipedia edit timestamps       near-linear bursts + DUPLICATES
genome   loci pairs in human chromosomes globally smooth, locally bumpy
                                         (dense micro-clusters) → local-hard
fb       upsampled Facebook user IDs     locally chaotic + a few enormous
                                         outlier keys → local-hard
planet   OSM planet IDs                  sharp density deflection + drifting
                                         curvature → global-hard
osm      OSM locations (1-D projection   multi-scale fractal clustering →
         of spatial data)                hard in BOTH dimensions
======== ============================== =======================================

All generators are deterministic in ``(n, seed)`` and return sorted
unique keys (except ``wiki``, which returns sorted keys with ~10%
duplicates, as in SOSD).
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List

Keys = List[int]

_U64_MAX = 2**63  # stay comfortably inside u64


def _unique_sorted(keys: Keys) -> Keys:
    return sorted(set(keys))


def _uniform(n: int, rng: random.Random, lo: int, hi: int) -> Keys:
    keys = set()
    while len(keys) < n:
        keys.add(rng.randrange(lo, hi))
    return sorted(keys)


# ---------------------------------------------------------------------------
# Easy datasets
# ---------------------------------------------------------------------------

def covid(n: int, seed: int = 0) -> Keys:
    """Uniformly sampled Tweet IDs (Snowflake-style 64-bit)."""
    rng = random.Random(f"covid-{seed}")
    return _uniform(n, rng, 1_200_000_000_000_000_000, 1_400_000_000_000_000_000)


def wise(n: int, seed: int = 0) -> Keys:
    """WISE survey partition keys: uniform over the key domain."""
    rng = random.Random(f"wise-{seed}")
    return _uniform(n, rng, 0, _U64_MAX)


def stack(n: int, seed: int = 0) -> Keys:
    """Stackoverflow vote IDs: sequential with small random holes."""
    rng = random.Random(f"stack-{seed}")
    keys = []
    k = 10_000_000
    for _ in range(n):
        k += rng.randint(1, 8)
        keys.append(k)
    return keys


def libio(n: int, seed: int = 0) -> Keys:
    """libraries.io repository IDs: sequential with bursty gaps."""
    rng = random.Random(f"libio-{seed}")
    keys = []
    k = 1_000_000
    for _ in range(n):
        k += rng.randint(1, 4) if rng.random() < 0.995 else rng.randint(50, 400)
        keys.append(k)
    return keys


def history(n: int, seed: int = 0) -> Keys:
    """OSM history node IDs: a handful of linear density regimes."""
    rng = random.Random(f"history-{seed}")
    regimes = [1, 12, 3, 40, 7]
    keys = []
    k = 0
    per = n // len(regimes)
    for step in regimes:
        for _ in range(per):
            k += rng.randint(1, 2 * step)
            keys.append(k)
    while len(keys) < n:
        k += rng.randint(1, 4)
        keys.append(k)
    return keys[:n]


def books(n: int, seed: int = 0) -> Keys:
    """Amazon book popularity: smooth convex power-law CDF."""
    rng = random.Random(f"books-{seed}")
    keys = []
    k = 0
    for i in range(n):
        # Gap grows polynomially with rank: smooth global curvature.
        base = 1 + (i / n) ** 2 * 2000
        k += max(1, int(rng.expovariate(1.0 / base)))
        keys.append(k)
    return keys


def wiki(n: int, seed: int = 0) -> Keys:
    """Wikipedia edit timestamps: bursty seconds, ~10% duplicates.

    The only dataset with duplicate keys (used by Appendix B).
    """
    rng = random.Random(f"wiki-{seed}")
    keys = []
    t = 1_000_000_000
    while len(keys) < n:
        t += rng.randint(0, 3)
        burst = 1 + (rng.randrange(10) == 0) * rng.randint(1, 3)
        for _ in range(min(burst, n - len(keys))):
            keys.append(t)
    return keys


def wiki_unique(n: int, seed: int = 0) -> Keys:
    """De-duplicated wiki variant for unique-key experiments."""
    keys = _unique_sorted(wiki(int(n * 1.25), seed))
    while len(keys) < n:
        keys = _unique_sorted(wiki(int(n * 1.6), seed + 1))
    return keys[:n]


# ---------------------------------------------------------------------------
# Hard datasets
# ---------------------------------------------------------------------------

def genome(n: int, seed: int = 0) -> Keys:
    """Human-genome loci pairs: smooth at macro scale, bumpy locally.

    Micro-clusters of ~100 keys sit at uniformly-spread centres: a
    coarse ε=4096 line absorbs whole clusters (low global H), but at
    ε=32 every cluster needs several of its own segments (high local H).
    """
    rng = random.Random(f"genome-{seed}")
    cluster_size = 100
    n_clusters = max(1, n // cluster_size)
    span = _U64_MAX // (n_clusters + 1)
    keys = set()
    for c in range(n_clusters):
        centre = (c + 1) * span + rng.randrange(-span // 8, span // 8)
        width = rng.randint(200, 4000)  # dense: ~100 keys in a tiny range
        for _ in range(cluster_size):
            keys.add(centre + rng.randrange(width))
    keys = sorted(keys)
    rng2 = random.Random(f"genome-fill-{seed}")
    while len(keys) < n:
        keys.append(rng2.randrange(_U64_MAX))
        keys = _unique_sorted(keys)
    return keys[:n]


def fb(n: int, seed: int = 0) -> Keys:
    """Upsampled Facebook user IDs: chaotic local density + outliers.

    Gap sizes follow a heavy-tailed lognormal (densities change every
    few keys → high local hardness) and a few extreme keys near 2^62
    reproduce the outliers that fool the MSE metric (Appendix D).
    """
    rng = random.Random(f"fb-{seed}")
    keys = []
    k = 0
    for _ in range(n - 3):
        k += max(1, int(rng.lognormvariate(4.0, 2.5)))
        keys.append(k)
    # The infamous outliers.
    keys.extend([2**62, 2**62 + 2**55, 2**62 + 2**58])
    return _unique_sorted(keys)[:n]


def planet(n: int, seed: int = 0) -> Keys:
    """OSM planet IDs: sharp CDF deflection (Figure 1a) + curvature.

    ~70% of keys crowd a small dense prefix whose density itself drifts
    (several coarse segments), then the CDF deflects into a sparse tail
    — high *global* hardness, mild local hardness.
    """
    rng = random.Random(f"planet-{seed}")
    keys = set()
    n_dense = int(n * 0.7)
    # Dense region whose density itself shifts through many coarse
    # regimes (log-uniform densities): every regime boundary costs the
    # coarse PLA another segment — global hardness.
    k = 0
    dense = []
    n_regimes = 40
    per = max(1, n_dense // n_regimes)
    for _ in range(n_regimes):
        density = math.exp(rng.uniform(0.0, 7.0))  # gap scale 1 .. ~1100
        for _ in range(per):
            k += max(1, int(rng.uniform(0.5, 1.5) * density))
            dense.append(k)
    deflection = dense[-1]
    sparse_span = deflection * 2000  # tail is ~2000x sparser
    sparse = sorted(rng.randrange(deflection + 1, deflection + sparse_span)
                    for _ in range(n - len(dense)))
    keys = _unique_sorted(dense + sparse)
    rng2 = random.Random(f"planet-fill-{seed}")
    while len(keys) < n:
        keys.append(deflection + rng2.randrange(sparse_span))
        keys = _unique_sorted(keys)
    return keys[:n]


def osm(n: int, seed: int = 0) -> Keys:
    """OSM locations: 1-D projection of spatial data → multi-scale
    fractal clustering, hard at every ε (the paper's worst case).

    Generated with a multiplicative cascade: the key space is split
    recursively with heavily skewed mass, giving clusters inside
    clusters inside clusters.
    """
    rng = random.Random(f"osm-{seed}")

    def cascade(lo: int, hi: int, count: int, depth: int, out: set) -> None:
        if count <= 0 or hi - lo < 2:
            return
        if depth == 0 or count < 8:
            for _ in range(count):
                out.add(rng.randrange(lo, hi))
            return
        mid = (lo + hi) // 2
        w = rng.betavariate(0.35, 0.35)  # strongly skewed split
        left = int(count * w)
        cascade(lo, mid, left, depth - 1, out)
        cascade(mid, hi, count - left, depth - 1, out)

    out: set = set()
    cascade(0, _U64_MAX, int(n * 1.05), 18, out)
    keys = sorted(out)
    rng2 = random.Random(f"osm-fill-{seed}")
    while len(keys) < n:
        keys.append(rng2.randrange(_U64_MAX))
        keys = _unique_sorted(keys)
    return keys[:n]


#: All stand-ins, keyed by the paper's dataset names.  ``wiki`` maps to
#: the unique variant used in the main experiments; ``wiki_dup`` is the
#: duplicated original for Appendix B.
GENERATORS: Dict[str, Callable[[int, int], Keys]] = {
    "covid": covid,
    "wise": wise,
    "stack": stack,
    "libio": libio,
    "history": history,
    "books": books,
    "wiki": wiki_unique,
    "wiki_dup": wiki,
    "genome": genome,
    "fb": fb,
    "planet": planet,
    "osm": osm,
}
