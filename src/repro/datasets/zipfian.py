"""Zipfian key chooser for the YCSB workloads (Appendix E).

Implements the bounded Zipfian generator of Gray et al. ("Quickly
generating billion-record synthetic databases") exactly as YCSB does,
including the scrambled variant that spreads the hot items across the
key space.  Default constant θ = 0.99 (YCSB's default, used by the
paper).
"""

from __future__ import annotations

import random
from typing import List


class ZipfianGenerator:
    """Ranks in ``[0, n)`` with Zipfian popularity (rank 0 hottest)."""

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self._rng = random.Random(f"zipf-{n}-{theta}-{seed}")
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (1.0 - self._zeta2 / self._zetan)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next_rank(self) -> int:
        """Next Zipfian-distributed rank (Gray et al.'s algorithm)."""
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * (self._eta * u - self._eta + 1.0) ** self._alpha)


class ScrambledZipfian:
    """YCSB's scrambled Zipfian: hot ranks hashed across the keyspace."""

    def __init__(self, keys: List[int], theta: float = 0.99, seed: int = 0) -> None:
        self.keys = keys
        self._gen = ZipfianGenerator(len(keys), theta, seed)

    @staticmethod
    def _fnv_hash(value: int) -> int:
        """FNV-1a 64-bit, as used by YCSB's scrambled generator."""
        h = 0xCBF29CE484222325
        for _ in range(8):
            h ^= value & 0xFF
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
            value >>= 8
        return h

    def next_key(self) -> int:
        rank = self._gen.next_rank()
        return self.keys[self._fnv_hash(rank) % len(self.keys)]
