"""Concurrent index models: each index's real ops + its CC protocol.

Every adapter wraps a *real* single-threaded index instance.  Running
an operation executes it on that index (so results are correct and the
work metered is genuine) and distils the per-op cost delta into an
:class:`~repro.concurrency.trace.OpTrace` according to the index's
concurrency-control protocol, as described in Sections 2.3 and 3.1:

=============  =================================================================
ALEX+          APEX protocol: lock-free traversal (out-of-place SMOs), one
               optimistic lock per data node held for the modify phase.
               ``lock_granularity="record"`` reproduces Appendix A's
               per-256-record variant (more locks, deadlock-avoidance
               restarts make it *slower*).
LIPP+          item-level optimistic locks, no coupling — but every insert
               atomically updates statistics in every node on its path,
               including the root: one shared cache line per path node.
ART-OLC        optimistic lock coupling: readers restart-free, writers lock
               the node they modify.
B+TreeOLC      same, on B+-tree nodes; splits also lock the parent.
HOT-ROWEX      readers never block; writers exclusive per compound node.
Masstree       border-node locks + version bumps; extra cache-line traffic
               from its permutation/version write path (the cross-socket
               bandwidth exhaustion of Figure 6).
Wormhole       per-leaf locks, but ONE exclusive lock serialises every
               inner-layer (MetaTrieHT) update — the write-scalability
               ceiling the paper calls out.
XIndex         non-blocking reads/writes via RCU; delta merges run on a
               background thread *pinned to the same cores* (the paper's
               fair-CPU-budget setup), so merge work stalls whatever
               operation runs next on that core — the Figure 10/11
               tail-latency signature.
FINEdex        one lock per record-level bin; segment retrains lock the
               segment.
=============  =================================================================
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable

from repro.concurrency.trace import (
    OpTrace,
    bytes_from_counts,
    mem_fraction_from_counts,
)
from repro.core.cost import (
    PHASE_COLLISION,
    PHASE_OTHER,
    PHASE_SEARCH,
    PHASE_SMO,
    PHASE_STATS,
    PHASE_TRAVERSE,
)
from repro.core.workloads import DELETE, INSERT, LOOKUP, SCAN, UPDATE, Operation
from repro.indexes.alex import ALEX
from repro.indexes.art import ART
from repro.indexes.base import MemoryBreakdown, OrderedIndex
from repro.indexes.btree import BPlusTree
from repro.indexes.finedex import FINEdex
from repro.indexes.hot import HOT
from repro.indexes.lipp import LIPP
from repro.indexes.masstree import Masstree
from repro.indexes.pgm import PGMIndex
from repro.indexes.wormhole import Wormhole
from repro.indexes.xindex import XIndex

#: Extra hold time modelling lock acquire/release instructions.
_LOCK_OVERHEAD_NS = 15.0
#: Fixed penalty per op for deadlock-avoidance restarts in ALEX+'s
#: per-record locking mode (Appendix A).
_RESTART_OVERHEAD_NS = 45.0


class ConcurrencyAdapter:
    """Base: executes ops on the wrapped index and splits the cost."""

    #: Which op kinds the concurrent variant supports.
    supported_ops = (LOOKUP, INSERT, UPDATE, DELETE, SCAN)
    is_learned = False

    def __init__(self, index: OrderedIndex, name: str) -> None:
        self.index = index
        self.name = name

    def bulk_load(self, items) -> None:
        self.index.bulk_load(items)
        self.index.meter.reset()

    def memory(self) -> MemoryBreakdown:
        return self.index.memory_usage()

    # -- trace construction ----------------------------------------------------

    def run_op(self, op: Operation) -> OpTrace:
        if op.op not in self.supported_ops:
            raise NotImplementedError(f"{self.name} does not support {op.op}")
        meter = self.index.meter
        before = meter.snapshot()
        self._dispatch(op)
        delta = meter.diff(before)
        phases = delta.time_by_phase()
        trace = OpTrace(op=op.op)
        trace.bytes = bytes_from_counts(delta.counts)
        trace.mem_fraction = mem_fraction_from_counts(delta.counts, meter.weights)
        self._shape(op, trace, phases)
        return trace

    def _dispatch(self, op: Operation) -> None:
        kind = op.op
        index = self.index
        if kind == LOOKUP:
            index.lookup(op.key)
        elif kind == INSERT:
            index.insert(op.key, op.value)
        elif kind == UPDATE:
            index.update(op.key, op.value)
        elif kind == DELETE:
            index.delete(op.key)
        elif kind == SCAN:
            index.range_scan(op.key, op.count)

    # -- protocol hook ----------------------------------------------------------

    def _shape(self, op: Operation, trace: OpTrace, phases: Dict[str, float]) -> None:
        """Default: reads are lock-free; writes lock the leaf they touch
        for the modify (collision+SMO+stats) phases."""
        read_ns = (
            phases.get(PHASE_TRAVERSE, 0.0)
            + phases.get(PHASE_SEARCH, 0.0)
            + phases.get(PHASE_OTHER, 0.0)
        )
        modify_ns = (
            phases.get(PHASE_COLLISION, 0.0)
            + phases.get(PHASE_SMO, 0.0)
            + phases.get(PHASE_STATS, 0.0)
        )
        trace.free_ns = read_ns
        if op.op in (INSERT, UPDATE, DELETE) and modify_ns >= 0:
            trace.sections.append((self._leaf_resource(op), modify_ns + _LOCK_OVERHEAD_NS))
        else:
            trace.free_ns += modify_ns

    #: Coarse leaves (hundreds of keys) are banded into sub-resources:
    #: the simulated dataset is ~10^4× smaller than the paper's 200M
    #: keys, so one simulated leaf stands for many real leaves; banding
    #: restores the paper-scale probability that two threads collide on
    #: the same lock.  ART keeps node granularity (its nodes are already
    #: fine-grained, and the paper's dense-node contention effect on
    #: easy data depends on it).
    _LOCK_BANDS = 8

    def _leaf_resource(self, op: Operation) -> Hashable:
        path = self.index.last_op.path
        leaf = path[-1] if path else 0
        if self._LOCK_BANDS > 1:
            return (self.name, leaf, (op.key >> 3) % self._LOCK_BANDS)
        return (self.name, leaf)


# ---------------------------------------------------------------------------
# Learned indexes
# ---------------------------------------------------------------------------

class ALEXPlus(ConcurrencyAdapter):
    """ALEX+ — APEX's protocol on DRAM (Section 3.1, Appendix A)."""

    is_learned = True

    def __init__(self, lock_granularity: str = "node", **alex_kwargs: Any) -> None:
        if lock_granularity not in ("node", "record"):
            raise ValueError("lock_granularity must be 'node' or 'record'")
        alex_kwargs.setdefault("max_data_keys", 512)  # the 512KB node cap
        super().__init__(ALEX(**alex_kwargs), "ALEX+")
        self.lock_granularity = lock_granularity

    def _shape(self, op: Operation, trace: OpTrace, phases: Dict[str, float]) -> None:
        super()._shape(op, trace, phases)
        if self.lock_granularity == "record" and trace.sections:
            # Per-256-record locks: finer resource, but exponential search
            # can cross lock boundaries in either direction, forcing
            # release-and-restart to stay deadlock-free (Appendix A).
            resource, hold = trace.sections[0]
            record_band = (op.key >> 4) & 0x3
            trace.sections[0] = ((resource, record_band), hold + _RESTART_OVERHEAD_NS)


class LIPPPlus(ConcurrencyAdapter):
    """LIPP+ — item-level optimistic locks + per-path atomic statistics."""

    is_learned = True

    def __init__(self, **lipp_kwargs: Any) -> None:
        super().__init__(LIPP(**lipp_kwargs), "LIPP+")

    def _shape(self, op: Operation, trace: OpTrace, phases: Dict[str, float]) -> None:
        read_ns = (
            phases.get(PHASE_TRAVERSE, 0.0)
            + phases.get(PHASE_SEARCH, 0.0)
            + phases.get(PHASE_OTHER, 0.0)
        )
        trace.free_ns = read_ns
        modify_ns = phases.get(PHASE_COLLISION, 0.0) + phases.get(PHASE_SMO, 0.0)
        if op.op in (INSERT, DELETE):
            # Item-level lock: the slot, not the node — rarely contended.
            path = self.index.last_op.path
            leaf = path[-1] if path else 0
            # Item-level: one lock per slot — effectively thousands of
            # independent resources, so writer-writer conflicts are rare.
            trace.sections.append(((self.name, leaf, op.key & 0x3FF),
                                   modify_ns + _LOCK_OVERHEAD_NS))
            # The unified-node design's tax: statistics are atomically
            # updated in EVERY node on the path — the root's cache line
            # is shared by all writer threads.
            for node_id in path:
                trace.atomics.append((self.name, "stats", node_id))
        elif op.op == UPDATE:
            # Payload updates touch no statistics (Appendix E: this is
            # why LIPP+ scales again under YCSB).
            trace.sections.append(((self.name, "item", op.key & 0xFF),
                                   modify_ns + _LOCK_OVERHEAD_NS))
        else:
            trace.free_ns += modify_ns
        # Stats phase time stays on the thread (it did the work), on top
        # of the atomics' ping-pong cost added by the simulator.
        trace.free_ns += phases.get(PHASE_STATS, 0.0)


class XIndexAdapter(ConcurrencyAdapter):
    """XIndex — RCU reads/writes, background merges on shared cores."""

    is_learned = True
    supported_ops = (LOOKUP, INSERT, UPDATE, SCAN)

    #: The pinned background thread wakes periodically (RCU grace-period
    #: checks, merge polling) even when no merge is due: each wake
    #: context-switches the foreground op and repollutes its cache.
    _CS_PERIOD = 151
    _CS_STALL_NS = 8000.0

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(XIndex(**kwargs), "XIndex")
        self._pending_stall_ns = 0.0
        self._op_counter = 0

    def _shape(self, op: Operation, trace: OpTrace, phases: Dict[str, float]) -> None:
        smo_ns = phases.get(PHASE_SMO, 0.0)
        other_ns = sum(phases.values()) - smo_ns
        # Writers append to the group delta under a short lock; readers
        # proceed under RCU without blocking.
        if op.op in (INSERT, UPDATE):
            trace.free_ns = other_ns - phases.get(PHASE_COLLISION, 0.0)
            trace.sections.append(
                (self._leaf_resource(op),
                 phases.get(PHASE_COLLISION, 0.0) + _LOCK_OVERHEAD_NS)
            )
        else:
            trace.free_ns = other_ns
        # The background merge thread shares the operation cores (the
        # paper pins it there for a fair CPU budget): merge work stalls
        # whichever op runs next on the core — lookups included.  This
        # is XIndex's tail-latency signature (Figures 10-11).
        if smo_ns > 0:
            self._pending_stall_ns += smo_ns
        elif self._pending_stall_ns > 0:
            trace.free_ns += self._pending_stall_ns
            self._pending_stall_ns = 0.0
        self._op_counter += 1
        if self._op_counter % self._CS_PERIOD == 0:
            trace.free_ns += self._CS_STALL_NS


class FINEdexAdapter(ConcurrencyAdapter):
    """FINEdex — per-record-bin locks, segment-level retrain locks."""

    is_learned = True
    supported_ops = (LOOKUP, INSERT, UPDATE, SCAN)

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(FINEdex(**kwargs), "FINEdex")

    def _shape(self, op: Operation, trace: OpTrace, phases: Dict[str, float]) -> None:
        read_ns = (
            phases.get(PHASE_TRAVERSE, 0.0)
            + phases.get(PHASE_SEARCH, 0.0)
            + phases.get(PHASE_OTHER, 0.0)
        )
        trace.free_ns = read_ns
        if op.op in (INSERT, UPDATE):
            # Bin lock: contention only when two threads hit the same
            # record's bin — the "fine-grained" in FINEdex.
            path = self.index.last_op.path
            seg = path[-1] if path else 0
            trace.sections.append(
                ((self.name, seg, op.key & 0x3F),
                 phases.get(PHASE_COLLISION, 0.0) + _LOCK_OVERHEAD_NS)
            )
            smo_ns = phases.get(PHASE_SMO, 0.0)
            if smo_ns > 0:  # local retrain locks the whole segment
                trace.sections.append(((self.name, "seg", seg), smo_ns))
        else:
            trace.free_ns += phases.get(PHASE_COLLISION, 0.0) + phases.get(PHASE_SMO, 0.0)
        trace.free_ns += phases.get(PHASE_STATS, 0.0)


# ---------------------------------------------------------------------------
# Traditional indexes
# ---------------------------------------------------------------------------

class ARTOLC(ConcurrencyAdapter):
    """ART with optimistic lock coupling + epoch-based reclamation."""

    _LOCK_BANDS = 1  # node-granularity locks (see base class note)

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(ART(**kwargs), "ART-OLC")


class BTreeOLC(ConcurrencyAdapter):
    """B+-tree with optimistic lock coupling (leaf side-links added)."""

    supported_ops = (LOOKUP, INSERT, UPDATE, SCAN)  # no upstream delete

    def __init__(self, **kwargs: Any) -> None:
        kwargs.setdefault("fanout", 64)
        super().__init__(BPlusTree(**kwargs), "B+TreeOLC")

    def _shape(self, op: Operation, trace: OpTrace, phases: Dict[str, float]) -> None:
        super()._shape(op, trace, phases)
        # A split lock-couples into the parent as well.
        if op.op == INSERT and self.index.last_op.smo:
            path = self.index.last_op.path
            if len(path) >= 2:
                trace.sections.append(((self.name, path[-2]), _LOCK_OVERHEAD_NS * 2))


class HOTROWEX(ConcurrencyAdapter):
    """HOT with Read-Optimised Write EXclusion."""

    supported_ops = (LOOKUP, INSERT, UPDATE, SCAN)

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(HOT(**kwargs), "HOT-ROWEX")


class MasstreeAdapter(ConcurrencyAdapter):
    """Masstree — border locks, version bumps, heavy write path."""

    supported_ops = (LOOKUP, INSERT, UPDATE, SCAN)

    #: Extra cache-line traffic per write: version word + permutation
    #: writeback + slab allocation — the write amplification that,
    #: combined with its CC, exhausts cross-socket bandwidth (Fig. 6).
    _WRITE_CC_BYTES = 448.0

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(Masstree(**kwargs), "Masstree")

    def _shape(self, op: Operation, trace: OpTrace, phases: Dict[str, float]) -> None:
        super()._shape(op, trace, phases)
        if op.op in (INSERT, UPDATE):
            trace.bytes += self._WRITE_CC_BYTES
            path = self.index.last_op.path
            trace.atomics.append((self.name, "version", path[-1] if path else 0))


class WormholeAdapter(ConcurrencyAdapter):
    """Wormhole — per-leaf locks + ONE lock for the whole meta layer."""

    supported_ops = (LOOKUP, INSERT, UPDATE, SCAN)

    #: MetaTrieHT updates insert anchors for every discriminating prefix
    #: length and may relocate hash entries; the measured split cost
    #: underestimates the serialized section, so it is scaled up.
    _META_HOLD_FACTOR = 4.0

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(Wormhole(**kwargs), "Wormhole")

    def _shape(self, op: Operation, trace: OpTrace, phases: Dict[str, float]) -> None:
        read_ns = (
            phases.get(PHASE_TRAVERSE, 0.0)
            + phases.get(PHASE_SEARCH, 0.0)
            + phases.get(PHASE_OTHER, 0.0)
        )
        trace.free_ns = read_ns
        if op.op in (INSERT, UPDATE):
            trace.sections.append(
                (self._leaf_resource(op),
                 phases.get(PHASE_COLLISION, 0.0) + _LOCK_OVERHEAD_NS)
            )
            smo_ns = phases.get(PHASE_SMO, 0.0)
            if smo_ns > 0:
                # The single inner-layer lock: every split serialises
                # against every other split in the whole index.
                trace.sections.append(
                    ((self.name, "META"), smo_ns * self._META_HOLD_FACTOR)
                )
        else:
            trace.free_ns += phases.get(PHASE_COLLISION, 0.0) + phases.get(PHASE_SMO, 0.0)


class PGMAdapter(ConcurrencyAdapter):
    """PGM-Index parallelised naively (global lock on merges).

    Not evaluated concurrently by the paper; provided for completeness
    (Figure 16 uses XIndex/FINEdex as the only concurrent learned
    indexes)."""

    is_learned = True
    supported_ops = (LOOKUP, INSERT, UPDATE, DELETE, SCAN)

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(PGMIndex(**kwargs), "PGM")

    def _shape(self, op: Operation, trace: OpTrace, phases: Dict[str, float]) -> None:
        smo_ns = phases.get(PHASE_SMO, 0.0)
        trace.free_ns = sum(phases.values()) - smo_ns
        if op.op in (INSERT, UPDATE, DELETE):
            trace.sections.append(((self.name, "buffer"), _LOCK_OVERHEAD_NS))
            if smo_ns > 0:
                trace.sections.append(((self.name, "MERGE"), smo_ns))


# Bind each concurrent variant to its base index's registry entry; the
# MT_* catalogs below (and any future concurrent runner) are derived
# views over the registry, not hand-maintained dicts.
from repro.core.registry import REGISTRY  # noqa: E402  (after adapter defs)

for _base, _cname, _factory, _evaluated in (
    ("ALEX", "ALEX+", ALEXPlus, True),
    ("LIPP", "LIPP+", LIPPPlus, True),
    ("XIndex", "XIndex", XIndexAdapter, True),
    ("FINEdex", "FINEdex", FINEdexAdapter, True),
    ("ART", "ART-OLC", ARTOLC, True),
    ("B+tree", "B+TreeOLC", BTreeOLC, True),
    ("HOT", "HOT-ROWEX", HOTROWEX, True),
    ("Masstree", "Masstree", MasstreeAdapter, True),
    ("Wormhole", "Wormhole", WormholeAdapter, True),
    # Not evaluated concurrently by the paper (see PGMAdapter docstring).
    ("PGM", "PGM", PGMAdapter, False),
):
    if REGISTRY.get(_base).concurrent_factory is None:
        REGISTRY.bind_concurrent(_base, _cname, _factory, evaluated=_evaluated)

#: Adapter factories for the multi-threaded experiments (Section 4.2).
MT_LEARNED: Dict[str, Callable[[], ConcurrencyAdapter]] = (
    REGISTRY.concurrent_factories(learned=True)
)

MT_TRADITIONAL: Dict[str, Callable[[], ConcurrencyAdapter]] = (
    REGISTRY.concurrent_factories(learned=False)
)
