"""Abstract execution traces for the simulated-multicore substrate.

CPython's GIL makes real multi-threaded throughput measurements
meaningless, so the multicore experiments (Figures 4–6, 10–11, 16, A,
G) run on a discrete-event simulator instead.  Each concurrent-index
adapter executes every operation on the *real* single-threaded index
(correctness and per-op work are genuine) and distils it into an
:class:`OpTrace` describing what a real thread would have done to
shared resources:

* ``free_ns``     — work done without holding any lock (optimistic
  traversal, model evaluation, last-mile search),
* ``sections``    — exclusive critical sections ``(resource, hold_ns)``
  (e.g. ALEX+'s per-data-node lock held while shifting keys),
* ``atomics``     — atomic read-modify-writes on shared cache lines
  (e.g. LIPP+'s per-node statistics counters: the root's line is
  touched by *every* insert — the Figure-5 scalability killer),
* ``bytes``       — DRAM traffic demanded (drives bandwidth saturation
  and the NUMA effects of Figure 6),
* ``mem_fraction``— the share of ``free_ns`` that is memory-latency
  bound (pointer chases), which is what NUMA remote-access latency
  inflates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

from repro.core.cost import (
    ALLOC_NODE,
    CACHE_PROBE,
    HASH,
    KEY_SHIFT,
    NODE_HOP,
    SCAN_ENTRY,
    SLOT_INIT,
    TRAIN_KEY,
)

#: DRAM bytes implied by one unit of each cost kind (reads and writes
#: both consume bandwidth; cache-resident work consumes none).
BYTES_PER_UNIT: Dict[str, float] = {
    NODE_HOP: 64.0,       # one cache line fetched
    CACHE_PROBE: 64.0,
    KEY_SHIFT: 32.0,      # key+payload read + write back
    SLOT_INIT: 16.0,
    ALLOC_NODE: 128.0,    # header init + allocator metadata
    TRAIN_KEY: 16.0,
    SCAN_ENTRY: 16.0,
    HASH: 64.0,
}

#: Virtual-ns cost of an *uncontended* atomic RMW.
ATOMIC_BASE_NS = 20.0
#: Extra ns per additional thread sharing the cache line (ping-pong).
ATOMIC_PINGPONG_NS = 35.0


@dataclass
class OpTrace:
    """One operation's abstract resource usage."""

    op: str
    free_ns: float = 0.0
    #: Exclusive critical sections, acquired in order.
    sections: List[Tuple[Hashable, float]] = field(default_factory=list)
    #: Cache lines hit with an atomic RMW.
    atomics: List[Hashable] = field(default_factory=list)
    #: DRAM traffic (bytes).
    bytes: float = 0.0
    #: Fraction of free_ns + section time that is memory-latency bound.
    mem_fraction: float = 0.5


def bytes_from_counts(counts: Dict[Tuple[str, str], float]) -> float:
    """DRAM bytes implied by a :class:`CostDelta`'s raw counters."""
    total = 0.0
    for (_, kind), units in counts.items():
        total += BYTES_PER_UNIT.get(kind, 0.0) * units
    return total


def mem_fraction_from_counts(
    counts: Dict[Tuple[str, str], float], weights: Dict[str, float]
) -> float:
    """Share of virtual time spent on memory-latency-bound kinds."""
    mem = 0.0
    total = 0.0
    for (_, kind), units in counts.items():
        ns = weights.get(kind, 0.0) * units
        total += ns
        if kind in (NODE_HOP, CACHE_PROBE, HASH):
            mem += ns
    return mem / total if total > 0 else 0.5
