"""Discrete-event T-core replay of operation traces.

The simulator stands in for the paper's quad-socket 96-core Xeon (see
DESIGN.md's substitution table).  Threads draw operations from a shared
queue; each operation's :class:`~repro.concurrency.trace.OpTrace` is
replayed against:

* **exclusive resources** — a critical section waits until the
  resource's previous holder releases it (lock contention),
* **shared cache lines** — an atomic RMW costs more for every other
  thread that recently touched the line (cache-line ping-pong; this is
  what flattens LIPP+'s insert scalability at the root),
* **memory bandwidth** — aggregate DRAM traffic beyond the socket's
  capacity stretches the run (ALEX+'s saturation at 24 threads),
* **NUMA** — with more than one socket, the interleave policy sends
  ``(S-1)/S`` of accesses remote, inflating memory-bound latency and
  capping cross-socket traffic by the interconnect.

Hyper-threads run at a fraction of a physical core's speed, matching
the grey regions of Figure 5.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.concurrency.trace import ATOMIC_BASE_NS, ATOMIC_PINGPONG_NS, OpTrace


@dataclass(frozen=True)
class Topology:
    """Hardware model: defaults mirror the paper's testbed (per socket:
    24 cores, 2-way SMT; four sockets total)."""

    sockets: int = 1
    cores_per_socket: int = 24
    smt: int = 2
    #: Per-socket DRAM bandwidth, bytes per virtual second.  Calibrated
    #: so a write-heavy ALEX+ saturates at ~24 threads (the paper's
    #: profiling observation in Section 4.3).
    socket_bandwidth: float = 30e9
    #: Effective aggregate bandwidth multiplier per socket count.  Two
    #: sockets share a single interconnect link, so interleaved traffic
    #: gains almost nothing (the Figure-6 ALEX+ dip); three and four
    #: sockets add links (3 and 6 respectively) and recover.
    numa_bandwidth_scale: Tuple[float, ...] = (1.0, 1.02, 2.2, 2.9)
    #: Latency multiplier applied to the remote share of memory time.
    remote_latency_factor: float = 1.6
    #: A hyper-thread contributes this fraction of a physical core.
    smt_speed: float = 0.40

    def physical_threads(self) -> int:
        return self.sockets * self.cores_per_socket

    def max_threads(self) -> int:
        return self.physical_threads() * self.smt

    def thread_speed(self, thread_index: int) -> float:
        """Relative speed of the ``thread_index``-th thread (physical
        cores first, then hyper-threads)."""
        if thread_index < self.physical_threads():
            return 1.0
        return self.smt_speed

    def bandwidth_capacity(self) -> float:
        scale = self.numa_bandwidth_scale[
            min(self.sockets, len(self.numa_bandwidth_scale)) - 1
        ]
        return self.socket_bandwidth * scale

    def remote_fraction(self) -> float:
        """Interleave policy: accesses land uniformly across sockets."""
        return (self.sockets - 1) / self.sockets if self.sockets > 1 else 0.0


@dataclass
class SimResult:
    """Outcome of one simulated multi-threaded run."""

    index_name: str
    workload_name: str
    threads: int
    n_ops: int
    makespan_ns: float = 0.0
    #: Virtual ns each op spent (sampled), for tail latency figures.
    lookup_latencies: List[float] = field(default_factory=list)
    write_latencies: List[float] = field(default_factory=list)
    lock_wait_ns: float = 0.0
    atomic_ns: float = 0.0
    bytes_total: float = 0.0
    bandwidth_limited: bool = False

    @property
    def throughput_mops(self) -> float:
        if self.makespan_ns <= 0:
            return 0.0
        return self.n_ops / (self.makespan_ns / 1e9) / 1e6


class MulticoreSimulator:
    """Replays adapter traces on ``threads`` virtual cores."""

    def __init__(self, topology: Optional[Topology] = None) -> None:
        self.topology = topology if topology is not None else Topology()

    def run(
        self,
        adapter,
        operations,
        threads: int,
        sample_every: int = 101,
    ) -> SimResult:
        """Execute ``operations`` on the adapter and replay on ``threads``.

        The adapter must already be bulk loaded.  Operations are pulled
        from a shared queue by whichever virtual thread is free first —
        the same execution model as the paper's benchmark driver.
        """
        traces = self.record(adapter, operations)
        return self.replay(adapter.name, traces, threads, sample_every)

    @staticmethod
    def record(adapter, operations) -> List[OpTrace]:
        """Execute ops once on the real index, collecting their traces.

        Recorded traces can be replayed at many thread counts (the
        Figure 5/6 sweeps) without re-executing the index."""
        return [adapter.run_op(op) for op in operations]

    def replay(
        self,
        index_name: str,
        traces: List[OpTrace],
        threads: int,
        sample_every: int = 101,
        span_sink: Optional[List[Tuple[int, float, float, str]]] = None,
    ) -> SimResult:
        """Replay recorded traces on ``threads`` virtual cores.

        ``span_sink``, if given, receives one ``(tid, start_ns, end_ns,
        op)`` tuple per operation — the per-thread execution lanes.
        Feed them to :func:`repro.core.telemetry.chrome_trace_from_spans`
        to inspect lock waits and thread skew in Perfetto.  When the run
        is bandwidth-limited the spans are stretched with the makespan.
        """
        topo = self.topology
        if threads < 1 or threads > topo.max_threads():
            raise ValueError(
                f"threads must be in [1, {topo.max_threads()}] for this topology"
            )
        remote_frac = topo.remote_fraction()
        remote_mult = 1.0 + remote_frac * (topo.remote_latency_factor - 1.0)

        # Thread-ready heap: (time, thread_id).
        ready = [(0.0, t) for t in range(threads)]
        heapq.heapify(ready)
        busy_until: Dict[Hashable, float] = {}
        line_sharers: Dict[Hashable, set] = {}
        result = SimResult(
            index_name=index_name,
            workload_name="",
            threads=threads,
            n_ops=0,
        )
        for i, trace in enumerate(traces):
            now, tid = heapq.heappop(ready)
            speed = topo.thread_speed(tid)
            start = now
            t = now
            # Lock-free work (NUMA-inflated on its memory share).
            free = trace.free_ns * (
                1.0 - trace.mem_fraction + trace.mem_fraction * remote_mult
            )
            t += free / speed
            # Atomic RMWs: ping-pong grows with the number of threads
            # that share the line.
            for line in trace.atomics:
                sharers = line_sharers.setdefault(line, set())
                sharers.add(tid)
                n_shar = min(len(sharers), threads)
                cost = ATOMIC_BASE_NS + ATOMIC_PINGPONG_NS * max(0, n_shar - 1)
                t += cost / speed
                result.atomic_ns += cost
            # Exclusive critical sections, in order.
            for resource, hold_ns in trace.sections:
                avail = busy_until.get(resource, 0.0)
                wait = max(0.0, avail - t)
                result.lock_wait_ns += wait
                t = max(t, avail)
                hold = hold_ns * (
                    1.0 - trace.mem_fraction + trace.mem_fraction * remote_mult
                )
                t += hold / speed
                busy_until[resource] = t
            result.bytes_total += trace.bytes
            latency = t - start
            if span_sink is not None:
                span_sink.append((tid, start, t, trace.op))
            if i % sample_every == 0:
                if trace.op == "lookup":
                    result.lookup_latencies.append(latency)
                else:
                    result.write_latencies.append(latency)
            result.n_ops += 1
            heapq.heappush(ready, (t, tid))
        makespan = max(t for t, _ in ready)
        # Memory-bandwidth ceiling: if aggregate traffic demands more
        # than the sockets can deliver, the run stretches accordingly.
        capacity = topo.bandwidth_capacity()
        if makespan > 0:
            demand = result.bytes_total / (makespan / 1e9)
            if demand > capacity:
                stretch = demand / capacity
                makespan *= stretch
                result.bandwidth_limited = True
                result.lookup_latencies = [x * stretch for x in result.lookup_latencies]
                result.write_latencies = [x * stretch for x in result.write_latencies]
                if span_sink is not None:
                    span_sink[:] = [(tid, s * stretch, e * stretch, op)
                                    for tid, s, e, op in span_sink]
        result.makespan_ns = makespan
        return result
