"""GRE — a benchmarking suite for updatable learned indexes.

Reproduction of *"Are Updatable Learned Indexes Ready?"* (Wongkham,
Lu, Liu, Zhong, Lo, Wang — PVLDB 15(11), 2022).

Public API highlights::

    from repro import ALEX, LIPP, PGMIndex, BPlusTree, ART
    from repro import mixed_workload, execute
    from repro.core.hardness import global_hardness, local_hardness
    from repro.datasets import registry

    keys = registry.get("genome").generate(100_000)
    idx = ALEX()
    result = execute(idx, mixed_workload(keys, write_frac=0.5))
    print(result.throughput_mops, result.memory.total)
"""

from repro.core.bench_history import append_history, check_history
from repro.core.cost import CostMeter
from repro.core.events import EventBus
from repro.core.hardness import (
    global_hardness,
    local_hardness,
    mse_hardness,
    optimal_pla,
    pla_hardness,
)
from repro.core.heatmap import Heatmap, compute_heatmap
from repro.core.instance import IndexInstance
from repro.core.migrate import MigrationReport, run_migration
from repro.core.opstream import (
    DifferentialObserver,
    OpStream,
    OracleReport,
    run_oracle,
)
from repro.core.registry import REGISTRY, IndexRegistry, IndexSpec
from repro.core.slo import ControlTower, SLOTarget, SLOTracker
from repro.core.runner import (
    ExecutionEngine,
    ExecutionObserver,
    OpEvent,
    RunResult,
    execute,
)
from repro.core.telemetry import (
    CostProfiler,
    MetricsCollector,
    MetricsRegistry,
    Telemetry,
    TraceRecorder,
)
from repro.core.validate import ValidationObserver, Violation, debug_validate
from repro.core.workloads import (
    Workload,
    churn_workload,
    deletion_workload,
    mixed_workload,
    scan_workload,
    shift_workload,
    ycsb_workload,
)
from repro.indexes.multiplex import MultiplexIndex
from repro.indexes.alex import ALEX
from repro.indexes.art import ART
from repro.indexes.base import MemoryBreakdown, OrderedIndex
from repro.indexes.btree import BPlusTree
from repro.indexes.finedex import FINEdex
from repro.indexes.fiting_tree import FITingTree
from repro.indexes.hot import HOT
from repro.indexes.lipp import LIPP
from repro.indexes.masstree import Masstree
from repro.indexes.pgm import PGMIndex
from repro.indexes.rmi import RMI
from repro.indexes.wormhole import Wormhole
from repro.indexes.xindex import XIndex

__version__ = "1.2.0"

#: Single-threaded index families as evaluated in Section 4.1 — derived
#: views over the capability registry (see repro.core.registry).
LEARNED_INDEXES = REGISTRY.factories(tag="core", learned=True)
TRADITIONAL_INDEXES = REGISTRY.factories(tag="core", learned=False)

__all__ = [
    "ALEX", "ART", "BPlusTree", "FINEdex", "FITingTree", "HOT", "LIPP",
    "Masstree", "PGMIndex", "RMI", "Wormhole", "XIndex",
    "ControlTower", "CostMeter", "CostProfiler", "DifferentialObserver",
    "EventBus", "ExecutionEngine",
    "ExecutionObserver", "Heatmap", "IndexInstance", "IndexRegistry",
    "IndexSpec", "MemoryBreakdown", "MetricsCollector", "MetricsRegistry",
    "MigrationReport", "MultiplexIndex", "OpEvent",
    "SLOTarget", "SLOTracker", "append_history", "check_history",
    "OpStream", "OracleReport", "OrderedIndex", "REGISTRY", "RunResult",
    "Telemetry", "TraceRecorder", "ValidationObserver", "Violation",
    "Workload", "churn_workload", "compute_heatmap", "debug_validate",
    "deletion_workload", "execute", "run_migration", "run_oracle",
    "global_hardness", "local_hardness", "mixed_workload", "mse_hardness",
    "optimal_pla", "pla_hardness", "scan_workload", "shift_workload",
    "ycsb_workload", "LEARNED_INDEXES", "TRADITIONAL_INDEXES",
]
