"""Data × workload throughput heatmaps (Figures 2, 4, 7, 14, 16).

Each cell compares the *best* learned index against the *best*
traditional index on one (dataset, workload) pair.  Following the
paper's convention the cell value is a signed ratio:

* negative (rendered ``L``) — a learned index wins by ``|value|×``,
* positive (rendered ``T``) — a traditional index wins by ``value×``.

Grid execution rides the sweep engine (:mod:`repro.core.sweep`):
:func:`sweep_heatmap` expands (datasets × workloads × indexes) into
independent tasks, runs them across processes with content-addressed
caching, and aggregates winners; :func:`compute_heatmap` keeps the
historical callable-based interface over the same aggregation for
callers that hold concrete keys and factories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.runner import execute
from repro.core.sweep import (
    DatasetSpec,
    SweepCache,
    SweepReport,
    WorkloadSpec,
    plan_grid,
    run_sweep,
)
from repro.core.workloads import Workload
from repro.indexes.base import OrderedIndex

IndexFactory = Callable[[], OrderedIndex]


@dataclass
class HeatmapCell:
    dataset: str
    workload: str
    best_learned: str
    best_traditional: str
    learned_mops: float
    traditional_mops: float

    @property
    def ratio(self) -> float:
        """Signed winner ratio (negative = learned index wins)."""
        if self.learned_mops >= self.traditional_mops:
            if self.traditional_mops <= 0:
                return -float("inf")
            return -self.learned_mops / self.traditional_mops
        if self.learned_mops <= 0:
            return float("inf")
        return self.traditional_mops / self.learned_mops

    @property
    def learned_wins(self) -> bool:
        return self.learned_mops >= self.traditional_mops


@dataclass
class Heatmap:
    """Grid of cells, indexed [dataset][workload]."""

    datasets: List[str]
    workloads: List[str]
    cells: Dict[Tuple[str, str], HeatmapCell] = field(default_factory=dict)

    def cell(self, dataset: str, workload: str) -> HeatmapCell:
        return self.cells[(dataset, workload)]

    def learned_win_fraction(self) -> float:
        """Fraction of the data-workload space won by learned indexes
        (the paper's Message 1: >80% single-threaded)."""
        wins = sum(1 for c in self.cells.values() if c.learned_wins)
        return wins / max(len(self.cells), 1)

    def winners(self) -> Dict[Tuple[str, str], str]:
        """Per-cell winning index name (Figure 4's annotation)."""
        return {
            key: c.best_learned if c.learned_wins else c.best_traditional
            for key, c in self.cells.items()
        }

    def render(self) -> str:
        """ASCII rendering in the paper's layout (rows = datasets)."""
        w = max((len(x) for x in self.workloads), default=0) + 2
        lines = []
        header = " " * 10 + "".join(f"{x:>{w}}" for x in self.workloads)
        lines.append(header)
        for ds in self.datasets:
            row = f"{ds:>9} "
            for wl in self.workloads:
                c = self.cells.get((ds, wl))
                if c is None:
                    row += " " * (w - 4) + "  - "
                    continue
                tag = "L" if c.learned_wins else "T"
                row += f"{tag}{abs(c.ratio):>{w - 2}.2f} "
            lines.append(row)
        lines.append("")
        lines.append("L = best learned index wins, T = best traditional wins;")
        lines.append("value = winner's throughput / loser's throughput.")
        return "\n".join(lines)


def heatmap_from_throughputs(
    datasets: Sequence[str],
    workloads: Sequence[str],
    throughputs: Dict[Tuple[str, str, str], float],
    learned_names: Sequence[str],
    traditional_names: Sequence[str],
    on_cell: Optional[Callable[[HeatmapCell], None]] = None,
) -> Heatmap:
    """Aggregate per-(dataset, workload, index) throughputs into a heatmap.

    Winner selection matches the historical loop: candidates are tried
    in the given name order and ties keep the earlier index.  Cells
    with no measured candidates are left out of the grid (rendered
    ``-``).
    """
    hm = Heatmap(datasets=list(datasets), workloads=list(workloads))
    for ds in datasets:
        for wl in workloads:
            best_l = _best(throughputs, ds, wl, learned_names)
            best_t = _best(throughputs, ds, wl, traditional_names)
            if best_l is None and best_t is None:
                continue
            cell = HeatmapCell(
                dataset=ds,
                workload=wl,
                best_learned=best_l[0] if best_l else "",
                best_traditional=best_t[0] if best_t else "",
                learned_mops=best_l[1] if best_l else -1.0,
                traditional_mops=best_t[1] if best_t else -1.0,
            )
            hm.cells[(ds, wl)] = cell
            if on_cell is not None:
                on_cell(cell)
    return hm


def _best(
    throughputs: Dict[Tuple[str, str, str], float],
    dataset: str,
    workload: str,
    names: Sequence[str],
) -> Optional[Tuple[str, float]]:
    best_name, best_mops = "", -1.0
    found = False
    for name in names:
        mops = throughputs.get((dataset, workload, name))
        if mops is None:
            continue
        found = True
        if mops > best_mops:
            best_name, best_mops = name, mops
    return (best_name, best_mops) if found else None


def compute_heatmap(
    dataset_keys: Dict[str, Sequence[int]],
    workload_builder: Callable[[Sequence[int], str], Workload],
    workload_names: Sequence[str],
    learned: Dict[str, IndexFactory],
    traditional: Dict[str, IndexFactory],
    on_cell: Optional[Callable[[HeatmapCell], None]] = None,
) -> Heatmap:
    """Run every index on every (dataset, workload) cell, serially.

    ``workload_builder(keys, workload_name)`` constructs each workload;
    factories build fresh index instances per run.  This is the
    callable-based interface — keys and factories are concrete values,
    so cells execute in-process.  For parallel, cached grids expressed
    by spec, use :func:`sweep_heatmap`.
    """
    throughputs: Dict[Tuple[str, str, str], float] = {}
    for ds_name, keys in dataset_keys.items():
        for wl_name in workload_names:
            workload = workload_builder(keys, wl_name)
            for idx_name, factory in {**learned, **traditional}.items():
                result = execute(factory(), workload)
                throughputs[(ds_name, wl_name, idx_name)] = result.throughput_mops
    return heatmap_from_throughputs(
        list(dataset_keys), list(workload_names), throughputs,
        learned_names=list(learned), traditional_names=list(traditional),
        on_cell=on_cell,
    )


def sweep_heatmap(
    datasets: Sequence[DatasetSpec],
    workloads: Sequence[WorkloadSpec],
    learned_names: Sequence[str],
    traditional_names: Sequence[str],
    jobs: Optional[int] = None,
    cache: Optional[SweepCache] = None,
    mode: str = "single",
    threads: int = 1,
    sockets: int = 1,
    on_cell: Optional[Callable[[HeatmapCell], None]] = None,
) -> Tuple[Heatmap, SweepReport]:
    """The heatmap grid on the sweep engine: parallel, cached, by spec.

    Expands (datasets × workloads × learned+traditional) into
    :class:`~repro.core.sweep.SweepTask`s, executes them via
    :func:`~repro.core.sweep.run_sweep` and aggregates winners.  With
    ``mode="multicore"`` the names must be concurrent-variant names and
    each cell replays on ``threads`` simulated cores (Figure 4).
    """
    names = [*learned_names, *traditional_names]
    tasks = plan_grid(datasets, workloads, names,
                      mode=mode, threads=threads, sockets=sockets)
    report = run_sweep(tasks, jobs=jobs, cache=cache)
    throughputs = {
        (c.task.dataset.name, c.task.workload.label, c.task.index): c.throughput_mops
        for c in report.cells
    }
    hm = heatmap_from_throughputs(
        [d.name for d in datasets], [w.label for w in workloads], throughputs,
        learned_names=learned_names, traditional_names=traditional_names,
        on_cell=on_cell,
    )
    return hm, report
