"""Data × workload throughput heatmaps (Figures 2, 4, 7, 14, 16).

Each cell compares the *best* learned index against the *best*
traditional index on one (dataset, workload) pair.  Following the
paper's convention the cell value is a signed ratio:

* negative (rendered ``L``) — a learned index wins by ``|value|×``,
* positive (rendered ``T``) — a traditional index wins by ``value×``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.core.runner import execute
from repro.core.workloads import Workload
from repro.indexes.base import OrderedIndex

IndexFactory = Callable[[], OrderedIndex]


@dataclass
class HeatmapCell:
    dataset: str
    workload: str
    best_learned: str
    best_traditional: str
    learned_mops: float
    traditional_mops: float

    @property
    def ratio(self) -> float:
        """Signed winner ratio (negative = learned index wins)."""
        if self.learned_mops >= self.traditional_mops:
            if self.traditional_mops <= 0:
                return -float("inf")
            return -self.learned_mops / self.traditional_mops
        if self.learned_mops <= 0:
            return float("inf")
        return self.traditional_mops / self.learned_mops

    @property
    def learned_wins(self) -> bool:
        return self.learned_mops >= self.traditional_mops


@dataclass
class Heatmap:
    """Grid of cells, indexed [dataset][workload]."""

    datasets: List[str]
    workloads: List[str]
    cells: Dict[Tuple[str, str], HeatmapCell] = field(default_factory=dict)

    def cell(self, dataset: str, workload: str) -> HeatmapCell:
        return self.cells[(dataset, workload)]

    def learned_win_fraction(self) -> float:
        """Fraction of the data-workload space won by learned indexes
        (the paper's Message 1: >80% single-threaded)."""
        wins = sum(1 for c in self.cells.values() if c.learned_wins)
        return wins / max(len(self.cells), 1)

    def render(self) -> str:
        """ASCII rendering in the paper's layout (rows = datasets)."""
        w = max(len(x) for x in self.workloads) + 2
        lines = []
        header = " " * 10 + "".join(f"{x:>{w}}" for x in self.workloads)
        lines.append(header)
        for ds in self.datasets:
            row = f"{ds:>9} "
            for wl in self.workloads:
                c = self.cells.get((ds, wl))
                if c is None:
                    row += " " * (w - 4) + "  - "
                    continue
                tag = "L" if c.learned_wins else "T"
                row += f"{tag}{abs(c.ratio):>{w - 2}.2f} "
            lines.append(row)
        lines.append("")
        lines.append("L = best learned index wins, T = best traditional wins;")
        lines.append("value = winner's throughput / loser's throughput.")
        return "\n".join(lines)


def compute_heatmap(
    dataset_keys: Dict[str, Sequence[int]],
    workload_builder: Callable[[Sequence[int], str], Workload],
    workload_names: Sequence[str],
    learned: Dict[str, IndexFactory],
    traditional: Dict[str, IndexFactory],
    on_cell: Callable[[HeatmapCell], None] = None,
) -> Heatmap:
    """Run every index on every (dataset, workload) cell.

    ``workload_builder(keys, workload_name)`` constructs each workload;
    factories build fresh index instances per run.
    """
    hm = Heatmap(datasets=list(dataset_keys), workloads=list(workload_names))
    for ds_name, keys in dataset_keys.items():
        for wl_name in workload_names:
            workload = workload_builder(keys, wl_name)
            best_l = _best(learned, workload)
            best_t = _best(traditional, workload)
            cell = HeatmapCell(
                dataset=ds_name,
                workload=wl_name,
                best_learned=best_l[0],
                best_traditional=best_t[0],
                learned_mops=best_l[1],
                traditional_mops=best_t[1],
            )
            hm.cells[(ds_name, wl_name)] = cell
            if on_cell is not None:
                on_cell(cell)
    return hm


def _best(factories: Dict[str, IndexFactory], workload: Workload) -> Tuple[str, float]:
    best_name, best_mops = "", -1.0
    for name, factory in factories.items():
        index = factory()
        result = execute(index, workload)
        if result.throughput_mops > best_mops:
            best_name, best_mops = name, result.throughput_mops
    return best_name, best_mops
