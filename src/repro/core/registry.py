"""The index capability registry — single source of truth for catalogs.

The paper's harness (GRE) drives *any* index through *any* workload; its
C++ artifact keeps one "competitor" registry for that.  This module is
our equivalent: every index is registered exactly once as an
:class:`IndexSpec` recording its factory, whether it is learned, which
operations it supports, and (when one exists) its concurrent variant.

Every legacy catalog is a *view* over this registry:

* ``repro.LEARNED_INDEXES`` / ``repro.TRADITIONAL_INDEXES`` — the
  Section-4.1 families (``tag="core"``),
* ``repro.cli._ALL_INDEXES`` — everything the CLI exposes
  (``tag="cli"``),
* ``benchmarks.common.ST_LEARNED`` / ``ST_TRADITIONAL`` — the heatmap
  contenders (``tag="heatmap"``; PGM is excluded there, see the note in
  ``benchmarks/common.py``),
* ``repro.concurrency.adapters.MT_LEARNED`` / ``MT_TRADITIONAL`` — the
  concurrent variants bound via :meth:`IndexRegistry.bind_concurrent`.

Registering a new index is one call::

    from repro.core.registry import REGISTRY, IndexSpec

    REGISTRY.register(IndexSpec(
        name="MyIndex", factory=MyIndex, is_learned=True,
        supports_delete=False, supports_range=True,
        tags=frozenset({"cli"}),
    ))

and it appears in every derived catalog whose tags it carries.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterator, List, Optional

from repro.indexes.alex import ALEX
from repro.indexes.art import ART
from repro.indexes.base import OrderedIndex
from repro.indexes.btree import BPlusTree
from repro.indexes.finedex import FINEdex
from repro.indexes.fiting_tree import FITingTree
from repro.indexes.hot import HOT
from repro.indexes.lipp import LIPP
from repro.indexes.masstree import Masstree
from repro.indexes.pgm import PGMIndex
from repro.indexes.rmi import RMI
from repro.indexes.wormhole import Wormhole
from repro.indexes.xindex import XIndex

#: Known view tags (anything else is allowed but not consumed here).
TAG_CORE = "core"        # the paper's Section-4.1 index families
TAG_CLI = "cli"          # exposed through the command-line catalog
TAG_HEATMAP = "heatmap"  # single-threaded heatmap contenders


@dataclass(frozen=True)
class IndexSpec:
    """One registered index and its capabilities."""

    name: str
    factory: Callable[..., OrderedIndex]
    is_learned: bool
    supports_insert: bool = True
    supports_delete: bool = True
    supports_range: bool = True
    supports_duplicates: bool = False
    #: Whether the index implements a numpy-vectorized ``_lookup_batch``
    #: fast path (the ``*_many`` APIs work on every index regardless —
    #: the default is a scalar loop; this flag marks where batching is
    #: actually faster).
    supports_batch: bool = False
    #: Whether the index can take part in live migration
    #: (:mod:`repro.core.migrate`): migrating *from* needs ``range_scan``
    #: for the backfill snapshot cursor, migrating *to* needs inserts —
    #: so the flag requires both.
    supports_migration: bool = False
    #: Whether the index can serve as the per-shard engine of a
    #: :class:`~repro.core.shard.ShardedIndex`: shard split/merge is a
    #: live migration over the shard's range, so the requirements match
    #: ``supports_migration`` — ``range_scan`` for the backfill cursor
    #: plus inserts for the migration targets.
    supports_sharding: bool = False
    tags: frozenset = field(default_factory=frozenset)
    #: Concurrent variant (Section 4.2), bound by the adapters module.
    concurrent_name: Optional[str] = None
    concurrent_factory: Optional[Callable[..., object]] = None
    #: Whether the paper evaluates the concurrent variant (PGM's naive
    #: adapter exists for completeness but is not part of Figure 4/5).
    concurrent_evaluated: bool = True

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags


class IndexRegistry:
    """Ordered catalog of :class:`IndexSpec` entries keyed by name."""

    def __init__(self) -> None:
        self._specs: Dict[str, IndexSpec] = {}

    # -- registration ----------------------------------------------------------

    def register(self, spec: IndexSpec) -> IndexSpec:
        """Add ``spec``; duplicate names are a programming error."""
        if spec.name in self._specs:
            raise ValueError(f"index {spec.name!r} is already registered")
        self._specs[spec.name] = spec
        return spec

    def bind_concurrent(
        self,
        base_name: str,
        concurrent_name: str,
        factory: Callable[..., object],
        evaluated: bool = True,
    ) -> IndexSpec:
        """Attach a concurrent-variant factory to a registered index."""
        spec = self.get(base_name)
        if spec.concurrent_factory is not None and spec.concurrent_factory is not factory:
            raise ValueError(
                f"{base_name!r} already has concurrent variant "
                f"{spec.concurrent_name!r}"
            )
        bound = replace(
            spec,
            concurrent_name=concurrent_name,
            concurrent_factory=factory,
            concurrent_evaluated=evaluated,
        )
        self._specs[base_name] = bound
        return bound

    # -- access ----------------------------------------------------------------

    def get(self, name: str) -> IndexSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(
                f"unknown index {name!r}; registered: {sorted(self._specs)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[IndexSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def create(self, name: str, **kwargs) -> OrderedIndex:
        """Instantiate a registered index."""
        return self.get(name).factory(**kwargs)

    # -- filtered views ---------------------------------------------------------

    def specs(
        self,
        tag: Optional[str] = None,
        learned: Optional[bool] = None,
    ) -> List[IndexSpec]:
        """Specs in registration order, optionally filtered."""
        out = []
        for spec in self._specs.values():
            if tag is not None and tag not in spec.tags:
                continue
            if learned is not None and spec.is_learned != learned:
                continue
            out.append(spec)
        return out

    def names(
        self,
        tag: Optional[str] = None,
        learned: Optional[bool] = None,
    ) -> List[str]:
        return [s.name for s in self.specs(tag=tag, learned=learned)]

    def factories(
        self,
        tag: Optional[str] = None,
        learned: Optional[bool] = None,
    ) -> Dict[str, Callable[..., OrderedIndex]]:
        """``{name: factory}`` view — what the legacy catalogs hold."""
        return {s.name: s.factory for s in self.specs(tag=tag, learned=learned)}

    # -- concurrent views --------------------------------------------------------

    def concurrent_specs(
        self,
        learned: Optional[bool] = None,
        evaluated: bool = True,
    ) -> List[IndexSpec]:
        """Specs with a bound concurrent variant, in registration order."""
        # The adapters module performs the binding at import time; pull
        # it in lazily so the base package stays cheap to import.
        import repro.concurrency.adapters  # noqa: F401

        out = []
        for spec in self._specs.values():
            if spec.concurrent_factory is None:
                continue
            if evaluated and not spec.concurrent_evaluated:
                continue
            if learned is not None and spec.is_learned != learned:
                continue
            out.append(spec)
        return out

    def concurrent_factories(
        self,
        learned: Optional[bool] = None,
        evaluated: bool = True,
    ) -> Dict[str, Callable[..., object]]:
        """``{concurrent_name: adapter_factory}`` view (MT catalogs)."""
        return {
            s.concurrent_name: s.concurrent_factory
            for s in self.concurrent_specs(learned=learned, evaluated=evaluated)
        }


def _populate(reg: IndexRegistry) -> IndexRegistry:
    """Register the suite's indexes (registration order fixes view order)."""
    core_cli_hm = frozenset({TAG_CORE, TAG_CLI, TAG_HEATMAP})

    def add(name: str, factory: Callable[..., OrderedIndex], tags: frozenset,
            **caps) -> None:
        reg.register(IndexSpec(
            name=name,
            factory=factory,
            is_learned=factory.is_learned,
            supports_delete=factory.supports_delete,
            supports_range=factory.supports_range,
            supports_migration=(caps.get("supports_insert", True)
                                and factory.supports_range),
            supports_sharding=(caps.get("supports_insert", True)
                               and factory.supports_range),
            tags=tags,
            **caps,
        ))

    # Learned (Section 4.1 order: ALEX, LIPP, PGM, XIndex, FINEdex).
    add("ALEX", ALEX, core_cli_hm, supports_duplicates=True,  # via duplicate_mode
        supports_batch=True)
    add("LIPP", LIPP, core_cli_hm, supports_batch=True)
    add("PGM", PGMIndex, frozenset({TAG_CORE, TAG_CLI}),  # heatmap excludes PGM
        supports_batch=True)
    add("XIndex", XIndex, core_cli_hm, supports_batch=True)
    add("FINEdex", FINEdex, core_cli_hm, supports_batch=True)
    add("FITing-Tree", FITingTree, frozenset({TAG_CLI}), supports_batch=True)
    # Read-only baseline; no update catalogs, inserts raise.
    add("RMI", RMI, frozenset(), supports_insert=False, supports_batch=True)
    # Traditional.
    add("B+tree", BPlusTree, core_cli_hm)
    add("ART", ART, core_cli_hm)
    add("HOT", HOT, core_cli_hm)
    add("Masstree", Masstree, frozenset())  # concurrent-only in the paper
    add("Wormhole", Wormhole, frozenset())  # concurrent-only in the paper
    return reg


#: The process-wide registry every catalog derives from.
REGISTRY: IndexRegistry = _populate(IndexRegistry())
