"""SLO tracking over the event bus: windows, budgets, burn rates, alerts.

The paper's verdicts hinge on *tail* behavior under churn — SMO storms
and p99/p999 excursions, not means.  This module turns the raw signals
into operator-grade state:

* :class:`SLOTracker` — an execution observer computing windowed
  p50/p99/p999 **virtual-clock** latency per op kind, checking each
  window against per-kind :class:`SLOTarget` thresholds, tracking the
  error budget (the ``1 - objective`` fraction of ops allowed over
  threshold) and its **burn rate** (violations consumed vs budget
  granted, per window: burn > 1 means the budget is being spent faster
  than it accrues), and escalating SMO storms with the same
  median-baseline rule as
  :meth:`~repro.core.telemetry.MetricsCollector.smo_storms`.
* :class:`ControlTower` — a bus subscriber folding the whole event
  stream (engine windows, instance lifecycle, migration progress, SLO
  windows, alerts) into one live table per source: state, ops,
  throughput, p99, backfill progress, rejections, alerts.  ``repro
  top`` renders it; ``--once --json`` scripts it.

Like every observer in this codebase, the tracker only *reads* the
cost meter — latencies are consecutive ``meter.total_time()`` deltas —
so attaching it changes no result and no fingerprint.

Targets may be given explicitly or **auto-calibrated**: with no
targets, the first closed window sets each op kind's threshold to
``calibration_factor`` × its observed p99 (the calibration window
itself is never judged).  That makes ``repro top`` useful on any
index/workload pair with zero configuration while staying honest —
alerts then mean "latency degraded versus this run's own start".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.events import (
    KIND_ADMISSION_REJECT,
    KIND_ALERT,
    KIND_BACKFILL_CHUNK,
    KIND_CACHE_HIT,
    KIND_CUTOVER,
    KIND_JOB,
    KIND_OP_WINDOW,
    KIND_PHASE,
    KIND_SLO_WINDOW,
    KIND_SMO,
    KIND_STATE,
    KIND_SWEEP_TASK,
    EventBus,
)
from repro.core.report import table
from repro.core.runner import ExecutionObserver, LatencyStats, OpEvent

__all__ = ["Alert", "ControlTower", "SLOTarget", "SLOTracker",
           "cluster_view", "render_cluster_view"]

SEVERITY_WARNING = "warning"
SEVERITY_CRITICAL = "critical"

ALERT_BURN_RATE = "burn_rate"
ALERT_SMO_STORM = "smo_storm"


@dataclass(frozen=True)
class SLOTarget:
    """One op kind's latency objective.

    ``objective`` is the fraction of ops that must complete under
    ``threshold_ns`` — e.g. 0.99 grants an error budget of 1% of ops
    per window.
    """

    op_kind: str
    threshold_ns: float
    objective: float = 0.99

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.threshold_ns <= 0:
            raise ValueError("threshold_ns must be positive")


@dataclass
class Alert:
    """One fired alert; also published to the bus as an ``alert`` event."""

    kind: str  # ALERT_BURN_RATE | ALERT_SMO_STORM
    severity: str  # SEVERITY_WARNING | SEVERITY_CRITICAL
    source: str
    t_ns: float
    message: str
    details: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.severity}] {self.source}: {self.message}"


class SLOTracker(ExecutionObserver):
    """Windowed SLO evaluation of one run's op stream.

    Attach to a run (``observers=[tracker]`` or via ``repro run
    --events``); every ``window_ops`` operations it closes a window,
    computes per-op-kind latency percentiles, judges them against the
    targets, and raises :class:`Alert`\\ s:

    * ``burn_rate`` — a window consumed its error budget faster than
      granted (burn > 1 warns; burn ≥ ``burn_critical`` is critical).
    * ``smo_storm`` — the window's SMO rate exceeds
      ``max(storm_min_rate, storm_factor × median prior rate)`` (the
      PR-3 detector, streamed); ``storm_escalate`` consecutive hot
      windows escalate the storm to critical.

    With a ``bus``, every closed window publishes ``slo_window`` events
    and every alert publishes an ``alert`` event.
    """

    def __init__(
        self,
        targets: Iterable[SLOTarget] = (),
        window_ops: int = 256,
        bus: Optional[EventBus] = None,
        calibration_factor: float = 4.0,
        burn_critical: float = 4.0,
        storm_factor: float = 3.0,
        storm_min_rate: float = 0.05,
        storm_escalate: int = 3,
    ) -> None:
        if window_ops < 1:
            raise ValueError("window_ops must be >= 1")
        self.targets: Dict[str, SLOTarget] = {t.op_kind: t for t in targets}
        self.window_ops = window_ops
        self.bus = bus
        self.calibration_factor = calibration_factor
        self.burn_critical = burn_critical
        self.storm_factor = storm_factor
        self.storm_min_rate = storm_min_rate
        self.storm_escalate = storm_escalate
        #: Targets were inferred from the first window, not configured.
        self.auto_calibrated = not self.targets
        self._calibrated = bool(self.targets)

        self.windows: List[dict] = []
        self.alerts: List[Alert] = []
        self.violations: Dict[str, int] = {}
        self.judged_ops: Dict[str, int] = {}

        self._meter = None
        self._source = ""
        self._last_ns = 0.0
        self._win_start_ns = 0.0
        self._win_ops = 0
        self._win_smos = 0
        self._win_samples: Dict[str, List[float]] = {}
        self._smo_rates: List[float] = []
        self._hot_run = 0

    # -- observer hooks --------------------------------------------------------

    def on_phase(self, phase: str, index, workload) -> None:
        self._meter = index.meter
        self._source = getattr(index, "name", type(index).__name__)
        if phase == "measure":
            self._last_ns = self._meter.total_time()
            self._win_start_ns = self._last_ns
        elif phase == "done" and self._win_ops:
            self._close_window()

    def on_op(self, event: OpEvent, latency) -> None:
        # Latency is the op's full virtual cost — the delta between
        # consecutive clock readings — regardless of engine sampling,
        # so SLO windows see every op, not the ~1% sampled subset.
        now = self._meter.total_time()
        self._win_samples.setdefault(event.op.op, []).append(now - self._last_ns)
        self._last_ns = now
        self._win_ops += 1
        if self._win_ops >= self.window_ops:
            self._close_window()

    def on_smo(self, event: OpEvent) -> None:
        self._win_smos += 1

    # -- windows ---------------------------------------------------------------

    def _alert(self, kind: str, severity: str, t_ns: float, message: str,
               **details) -> None:
        alert = Alert(kind=kind, severity=severity, source=self._source,
                      t_ns=t_ns, message=message, details=details)
        self.alerts.append(alert)
        if self.bus is not None:
            self.bus.publish(KIND_ALERT, source=self._source, t_ns=t_ns,
                             alert=kind, severity=severity, message=message,
                             **details)

    def _close_window(self) -> None:
        now = self._meter.total_time()
        window = {"t_ns": now, "window_start_ns": self._win_start_ns,
                  "ops": self._win_ops, "smos": self._win_smos,
                  "source": self._source, "ops_kinds": {}}
        calibrating = not self._calibrated
        for kind, samples in sorted(self._win_samples.items()):
            stats = LatencyStats.from_samples(samples)
            entry = {"count": stats.count, "p50": stats.p50,
                     "p99": stats.p99, "p999": stats.p999}
            if calibrating:
                self.targets[kind] = SLOTarget(
                    op_kind=kind,
                    threshold_ns=max(stats.p99, 1.0) * self.calibration_factor)
            target = self.targets.get(kind)
            if target is not None and not calibrating:
                violations = sum(1 for s in samples if s > target.threshold_ns)
                budget = (1.0 - target.objective) * len(samples)
                burn = (violations / budget if budget > 0
                        else (float("inf") if violations else 0.0))
                self.violations[kind] = self.violations.get(kind, 0) + violations
                self.judged_ops[kind] = self.judged_ops.get(kind, 0) + len(samples)
                entry.update(threshold_ns=target.threshold_ns,
                             violations=violations, burn_rate=burn)
                if burn > 1.0:
                    severity = (SEVERITY_CRITICAL if burn >= self.burn_critical
                                else SEVERITY_WARNING)
                    self._alert(
                        ALERT_BURN_RATE, severity, now,
                        f"{kind} burned {burn:.1f}x its error budget "
                        f"({violations}/{len(samples)} ops over "
                        f"{target.threshold_ns:.0f} ns)",
                        op=kind, burn_rate=burn, violations=violations,
                        window_ops=len(samples),
                        threshold_ns=target.threshold_ns)
            window["ops_kinds"][kind] = entry
            if self.bus is not None:
                self.bus.publish(KIND_SLO_WINDOW, source=self._source,
                                 t_ns=now, op=kind, **entry)
        if calibrating:
            self._calibrated = True

        # SMO-storm escalation: the PR-3 median-baseline rule, streamed
        # over the windows closed so far (>= 3 priors before judging, so
        # early windows can't self-trigger).
        rate = self._win_smos / self._win_ops if self._win_ops else 0.0
        if len(self._smo_rates) >= 3:
            baseline = sorted(self._smo_rates)[len(self._smo_rates) // 2]
            threshold = max(self.storm_min_rate, self.storm_factor * baseline)
            if rate > threshold:
                self._hot_run += 1
                if self._hot_run == 1:
                    self._alert(
                        ALERT_SMO_STORM, SEVERITY_WARNING, now,
                        f"SMO storm: {rate:.0%} of ops triggered SMOs "
                        f"(baseline {baseline:.1%})",
                        rate=rate, baseline=baseline, threshold=threshold)
                elif self._hot_run == self.storm_escalate:
                    self._alert(
                        ALERT_SMO_STORM, SEVERITY_CRITICAL, now,
                        f"SMO storm sustained {self._hot_run} windows "
                        f"({rate:.0%} of ops)",
                        rate=rate, baseline=baseline,
                        hot_windows=self._hot_run)
            else:
                self._hot_run = 0
        self._smo_rates.append(rate)

        self.windows.append(window)
        self._win_start_ns = now
        self._win_ops = 0
        self._win_smos = 0
        self._win_samples = {}

    # -- reporting -------------------------------------------------------------

    def budget_used(self, op_kind: str) -> float:
        """Fraction of the cumulative error budget consumed (1.0 = spent)."""
        target = self.targets.get(op_kind)
        judged = self.judged_ops.get(op_kind, 0)
        if target is None or judged == 0:
            return 0.0
        budget = (1.0 - target.objective) * judged
        if budget <= 0:
            return float("inf") if self.violations.get(op_kind) else 0.0
        return self.violations.get(op_kind, 0) / budget

    def summary(self) -> dict:
        return {
            "source": self._source,
            "windows": len(self.windows),
            "auto_calibrated": self.auto_calibrated,
            "targets": {
                k: {"threshold_ns": t.threshold_ns, "objective": t.objective}
                for k, t in sorted(self.targets.items())
            },
            "op_kinds": {
                k: {"judged_ops": self.judged_ops.get(k, 0),
                    "violations": self.violations.get(k, 0),
                    "budget_used": self.budget_used(k)}
                for k in sorted(self.targets)
            },
            "alerts": [
                {"kind": a.kind, "severity": a.severity, "source": a.source,
                 "t_ns": a.t_ns, "message": a.message, "details": a.details}
                for a in self.alerts
            ],
        }


# ---------------------------------------------------------------------------
# Cluster view: many per-shard trackers folded into one summary
# ---------------------------------------------------------------------------

def cluster_view(trackers: Dict[str, "SLOTracker"],
                 op_kind: str = "lookup") -> dict:
    """Aggregate per-shard SLO trackers into one cluster summary.

    ``trackers`` maps shard name to its :class:`SLOTracker` (live or
    already closed).  The view reports, per shard, the latest window's
    ``op_kind`` p99, cumulative error-budget burn, and alert counts —
    plus the cluster's worst shard by p99, which is what a routing tier
    pages on (the cluster is only as healthy as its hottest shard).
    """
    shards: Dict[str, dict] = {}
    worst: Optional[tuple] = None
    total_alerts = 0
    for name in sorted(trackers):
        tracker = trackers[name]
        p99 = None
        for window in reversed(tracker.windows):
            entry = window["ops_kinds"].get(op_kind)
            if entry is not None:
                p99 = entry["p99"]
                break
        severities = [a.severity for a in tracker.alerts]
        worst_severity = (SEVERITY_CRITICAL if SEVERITY_CRITICAL in severities
                          else (severities[0] if severities else ""))
        total_alerts += len(severities)
        shards[name] = {
            "p99_ns": p99,
            "windows": len(tracker.windows),
            "budget_used": tracker.budget_used(op_kind),
            "alerts": len(severities),
            "worst_severity": worst_severity,
        }
        if p99 is not None and (worst is None or p99 > worst[1]):
            worst = (name, p99)
    return {
        "op_kind": op_kind,
        "shards": shards,
        "worst_shard": worst[0] if worst else None,
        "worst_p99_ns": worst[1] if worst else None,
        "total_alerts": total_alerts,
    }


def render_cluster_view(view: dict, title: str = "shard cluster") -> str:
    """ASCII table for a :func:`cluster_view` summary."""
    rows = []
    for name, row in view["shards"].items():
        alerts = (f"{row['alerts']} ({row['worst_severity']})"
                  if row["alerts"] else "-")
        rows.append([
            name,
            row["windows"],
            f"{row['p99_ns']:.0f}" if row["p99_ns"] is not None else "-",
            f"{row['budget_used']:.2f}",
            alerts,
        ])
    out = table(["Shard", "Windows", "p99 ns", "Budget burn", "Alerts"],
                rows, title=title)
    worst = view["worst_shard"]
    if worst is not None:
        out += (f"\nworst shard: {worst} "
                f"(p99 {view['worst_p99_ns']:.0f} ns, "
                f"{view['op_kind']} windows)")
    return out


# ---------------------------------------------------------------------------
# Control tower: the live status surface behind `repro top`
# ---------------------------------------------------------------------------

def _new_row(source: str) -> dict:
    return {
        "source": source, "state": "-", "workload": "", "ops": 0,
        "ops_per_vsec": 0.0, "p99_ns": None, "smos": 0, "rejected": 0,
        "backfill_stage": "", "backfill_done": 0, "backfill_total": 0,
        "cutover_seq": None, "alerts": [], "worst_severity": "",
        "last_t_ns": 0.0, "lifecycle": False,
        "job": "", "job_eta_ns": None, "queue_depth": 0,
    }


class ControlTower:
    """Folds the event stream into one status row per source.

    Feed it live (``bus.subscribe(tower.consume)``) or post-hoc
    (:meth:`from_records` over a saved event log); either way
    :meth:`render` is the ``repro top`` table and :meth:`to_json` the
    scripting surface.
    """

    def __init__(self) -> None:
        self.rows: Dict[str, dict] = {}
        self.sweep = {"tasks": 0, "cache_hits": 0}
        self.consumed = 0

    @classmethod
    def from_records(cls, records: Iterable[dict]) -> "ControlTower":
        tower = cls()
        for rec in records:
            tower.consume(rec)
        return tower

    def _row(self, source: str) -> dict:
        row = self.rows.get(source)
        if row is None:
            row = self.rows[source] = _new_row(source)
        return row

    def consume(self, event: dict) -> None:
        kind = event.get("kind")
        source = event.get("source", "")
        self.consumed += 1
        if kind == KIND_SWEEP_TASK:
            self.sweep["tasks"] += 1
            return
        if kind == KIND_CACHE_HIT:
            self.sweep["cache_hits"] += 1
            return
        row = self._row(source)
        row["last_t_ns"] = max(row["last_t_ns"], event.get("t_ns", 0.0))
        if kind == KIND_STATE:
            row["state"] = event.get("to", row["state"])
            row["lifecycle"] = True
        elif kind == KIND_PHASE:
            row["workload"] = event.get("workload", "") or row["workload"]
            # Engine phases stand in for state until real lifecycle
            # events (instance state machine) claim the row.
            if not row["lifecycle"]:
                row["state"] = event.get("phase", row["state"])
        elif kind == KIND_OP_WINDOW:
            row["ops"] += event.get("ops", 0)
            row["ops_per_vsec"] = event.get("ops_per_vsec", 0.0)
        elif kind == KIND_SLO_WINDOW:
            if event.get("op") == "lookup" or row["p99_ns"] is None:
                row["p99_ns"] = event.get("p99")
        elif kind == KIND_SMO:
            row["smos"] += 1
        elif kind == KIND_ADMISSION_REJECT:
            row["rejected"] += 1
        elif kind == KIND_BACKFILL_CHUNK:
            row["backfill_stage"] = event.get("stage", "")
            row["backfill_done"] = event.get("done", 0)
            row["backfill_total"] = event.get("total", 0)
        elif kind == KIND_CUTOVER:
            row["cutover_seq"] = event.get("op_seq")
            row["state"] = "serving"
        elif kind == KIND_JOB:
            status = event.get("status", "")
            row["job"] = f"{event.get('job_kind', '?')} {status}"
            row["job_eta_ns"] = event.get("eta_ns")
            row["queue_depth"] = event.get("queue_depth", row["queue_depth"])
            if status in ("done", "failed", "aborted", "rejected"):
                row["job_eta_ns"] = None
        elif kind == KIND_ALERT:
            row["alerts"].append(
                f"[{event.get('severity', '?')}] {event.get('message', '')}")
            if (event.get("severity") == SEVERITY_CRITICAL
                    or not row["worst_severity"]):
                row["worst_severity"] = event.get("severity", "")

    # -- output ----------------------------------------------------------------

    @staticmethod
    def _backfill_cell(row: dict) -> str:
        if not row["backfill_total"]:
            return "-"
        frac = row["backfill_done"] / row["backfill_total"]
        return f"{row['backfill_stage']} {frac:.0%}"

    def render(self, title: str = "repro top") -> str:
        rows = []
        for source in sorted(self.rows):
            row = self.rows[source]
            alerts = (f"{len(row['alerts'])} ({row['worst_severity']})"
                      if row["alerts"] else "-")
            rows.append([
                source, row["state"], row["ops"],
                f"{row['ops_per_vsec'] / 1e6:.2f}M" if row["ops_per_vsec"] else "-",
                f"{row['p99_ns']:.0f}" if row["p99_ns"] is not None else "-",
                self._backfill_cell(row), row["job"] or "-",
                row["smos"], row["rejected"],
                alerts,
            ])
        out = table(
            ["Instance", "State", "Ops", "Ops/vs", "p99 ns", "Backfill",
             "Job", "SMOs", "Rej", "Alerts"],
            rows, title=title)
        lines = [out]
        if self.sweep["tasks"] or self.sweep["cache_hits"]:
            lines.append(f"sweep: {self.sweep['tasks']} tasks, "
                         f"{self.sweep['cache_hits']} cache hits")
        alert_lines = []
        for source in sorted(self.rows):
            alert_lines.extend(f"  {a}" for a in self.rows[source]["alerts"])
        if alert_lines:
            lines.append("alerts:")
            lines.extend(alert_lines)
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "instances": {s: dict(r) for s, r in sorted(self.rows.items())},
            "sweep": dict(self.sweep),
            "consumed": self.consumed,
        }
