"""Operational event bus: one stream correlating every subsystem.

Telemetry (PR 3) records what *one run* did; the instance layer (PR 7)
records what *one instance* did.  Nothing correlated them: a migration
interleaves engine ops, backfill chunks, admission decisions and a
cutover, and a sweep adds worker tasks and cache hits on top.  The
:class:`EventBus` is the missing spine — a thread-safe, bounded,
subscribable stream of typed events that the engine, instances, the
migration control plane and the sweep scheduler all publish into, and
that :mod:`repro.core.slo` folds into live SLO state and alerts.

Design rules, in order:

* **Zero cost-meter impact.**  Emitters only *read* virtual clocks
  (``meter.total_time()``), never charge them, so a run with a bus
  attached produces bit-identical results and fingerprints to a bare
  run — the same contract telemetry and the instance wrapper honor
  (tests/test_events.py pins it across the whole registry).
* **Flat, versioned records.**  Every event is one flat dict —
  ``{"kind", "source", "t_ns", "seq", ...payload}`` — persisted through
  the results layer (:func:`~repro.core.results.save_jsonl`), so event
  logs carry ``schema_version`` and load/validate like every other
  artifact.
* **Bounded memory.**  The buffer is a ring (``capacity`` events);
  ``published`` keeps the true total so overflow is observable
  (``dropped``), never silent.
* **Callbacks outside the lock.**  Subscribers (the SLO tracker, a
  live ``repro top`` renderer) run unlocked: a slow subscriber delays
  its publisher but can never deadlock another thread's publish.

Import layering matches :mod:`repro.core.telemetry`: this module
imports from :mod:`repro.core.runner`; the runner accepts a ``bus``
duck-typed and never imports back.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.core.results import save_jsonl
from repro.core.runner import ExecutionObserver, OpEvent

__all__ = [
    "EVENT_KINDS",
    "EventBus",
    "KIND_ADMISSION_REJECT",
    "KIND_ALERT",
    "KIND_BACKFILL_CHUNK",
    "KIND_CACHE_HIT",
    "KIND_CUTOVER",
    "KIND_JOB",
    "KIND_OP_WINDOW",
    "KIND_PHASE",
    "KIND_SLO_WINDOW",
    "KIND_SMO",
    "KIND_STATE",
    "KIND_SWEEP_TASK",
    "validate_bus_events",
]

#: Typed event kinds.  One vocabulary for the whole system: the engine
#: publishes phase/op-window/SMO, instances publish state/admission,
#: migration publishes backfill/cutover, the sweep publishes
#: task/cache-hit, and the SLO layer publishes windows/alerts back
#: into the same stream.
KIND_PHASE = "phase"
KIND_OP_WINDOW = "op_window"
KIND_SMO = "smo"
KIND_STATE = "state"
KIND_BACKFILL_CHUNK = "backfill_chunk"
KIND_CUTOVER = "cutover"
KIND_ADMISSION_REJECT = "admission_reject"
KIND_SWEEP_TASK = "sweep_task"
KIND_CACHE_HIT = "cache_hit"
KIND_SLO_WINDOW = "slo_window"
KIND_ALERT = "alert"
#: Background-job lifecycle/progress from the index server: submission
#: (with queue depth), running, per-step progress (chunks pumped,
#: verified fraction, virtual-clock ETA) and the terminal state.
KIND_JOB = "job"

EVENT_KINDS = frozenset({
    KIND_PHASE, KIND_OP_WINDOW, KIND_SMO, KIND_STATE, KIND_BACKFILL_CHUNK,
    KIND_CUTOVER, KIND_ADMISSION_REJECT, KIND_SWEEP_TASK, KIND_CACHE_HIT,
    KIND_SLO_WINDOW, KIND_ALERT, KIND_JOB,
})

Subscriber = Callable[[dict], None]


class EventBus:
    """Thread-safe bounded pub/sub stream of operational events.

    ``capacity`` bounds the ring buffer; ``published`` counts every
    event ever accepted, so ``dropped`` is always exact.  Subscribers
    are invoked synchronously in subscription order, outside the
    buffer lock, with the event dict (treat it as read-only).
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._buffer: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._subscribers: List[tuple] = []  # (callback, kinds-or-None)
        self.published = 0

    # -- publishing -----------------------------------------------------------

    def publish(self, kind: str, source: str = "", t_ns: float = 0.0,
                **payload) -> dict:
        """Append one event and fan it out to matching subscribers.

        ``kind`` must be one of :data:`EVENT_KINDS` — an open vocabulary
        would silently fork the schema.  ``t_ns`` is the publisher's
        virtual clock reading (0.0 when no clock applies, e.g. sweep
        scheduling).  Returns the event dict.
        """
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {kind!r}; known: {sorted(EVENT_KINDS)}")
        with self._lock:
            seq = self.published
            self.published += 1
            event = {"kind": kind, "source": source, "t_ns": t_ns,
                     "seq": seq, **payload}
            self._buffer.append(event)
            subscribers = list(self._subscribers)
        for callback, kinds in subscribers:
            if kinds is None or kind in kinds:
                callback(event)
        return event

    # -- subscription ----------------------------------------------------------

    def subscribe(self, callback: Subscriber,
                  kinds: Optional[Iterable[str]] = None) -> Subscriber:
        """Register ``callback`` for every event (or only ``kinds``)."""
        kindset = None if kinds is None else frozenset(kinds)
        if kindset is not None:
            unknown = kindset - EVENT_KINDS
            if unknown:
                raise ValueError(f"unknown event kinds {sorted(unknown)}")
        with self._lock:
            self._subscribers.append((callback, kindset))
        return callback

    def unsubscribe(self, callback: Subscriber) -> None:
        with self._lock:
            self._subscribers = [(cb, ks) for cb, ks in self._subscribers
                                 if cb is not callback]

    # -- reading ---------------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events pushed out of the ring by overflow."""
        with self._lock:
            return self.published - len(self._buffer)

    def events(self, kind: Optional[str] = None,
               source: Optional[str] = None) -> List[dict]:
        """Buffered events, oldest first, optionally filtered."""
        with self._lock:
            out = list(self._buffer)
        if kind is not None:
            out = [e for e in out if e["kind"] == kind]
        if source is not None:
            out = [e for e in out if e["source"] == source]
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)

    def save(self, path: str, append: bool = False) -> int:
        """Persist the buffered events as versioned JSON-lines."""
        return save_jsonl(self.events(), path,
                          tags={"artifact": "events"}, append=append)

    # -- emitters --------------------------------------------------------------

    def engine_observer(self, window_ops: int = 256) -> "EngineBusEmitter":
        """An :class:`~repro.core.runner.ExecutionObserver` publishing
        this run's phase/op-window/SMO events into the bus."""
        return EngineBusEmitter(self, window_ops=window_ops)

    def attach_instance(self, instance: Any) -> Any:
        """Republish an :class:`~repro.core.instance.IndexInstance`'s
        lifecycle events (state changes, backfill progress, admission
        rejections) into the bus.  Returns the instance."""
        instance.attach_bus(self)
        return instance


class EngineBusEmitter(ExecutionObserver):
    """Publishes one run's engine stream into a bus.

    Per-op events would dwarf everything else in the ring, so ops are
    coalesced into windows of ``window_ops`` (per-kind counts, ok
    counts, the window's virtual duration and rolling throughput);
    phases and SMOs are rare and publish individually.  Only reads the
    meter — never charges it.
    """

    def __init__(self, bus: EventBus, window_ops: int = 256) -> None:
        if window_ops < 1:
            raise ValueError("window_ops must be >= 1")
        self.bus = bus
        self.window_ops = window_ops
        self._meter = None
        self._source = ""
        self._win_start_ns = 0.0
        self._win_ops = 0
        self._win_ok = 0
        self._win_counts: Dict[str, int] = {}

    def _now(self) -> float:
        return self._meter.total_time() if self._meter is not None else 0.0

    def on_phase(self, phase: str, index, workload) -> None:
        self._meter = index.meter
        self._source = getattr(index, "name", type(index).__name__)
        if phase == "measure":
            self._win_start_ns = self._now()
        elif phase == "done" and self._win_ops:
            self._close_window()
        self.bus.publish(
            KIND_PHASE, source=self._source, t_ns=self._now(),
            phase=phase, workload=getattr(workload, "name", ""))

    def on_op(self, event: OpEvent, latency) -> None:
        kind = event.op.op
        self._win_counts[kind] = self._win_counts.get(kind, 0) + 1
        self._win_ops += 1
        if event.ok:
            self._win_ok += 1
        if self._win_ops >= self.window_ops:
            self._close_window()

    def on_smo(self, event: OpEvent) -> None:
        record = event.record
        self.bus.publish(
            KIND_SMO, source=self._source, t_ns=self._now(),
            op_seq=event.seq, op=event.op.op,
            nodes_created=getattr(record, "nodes_created", 0),
            keys_shifted=getattr(record, "keys_shifted", 0))

    def _close_window(self) -> None:
        now = self._now()
        dur = now - self._win_start_ns
        ops_per_vsec = (self._win_ops / (dur / 1e9)) if dur > 0 else 0.0
        self.bus.publish(
            KIND_OP_WINDOW, source=self._source, t_ns=now,
            window_start_ns=self._win_start_ns, ops=self._win_ops,
            ok=self._win_ok, op_counts=dict(self._win_counts),
            ops_per_vsec=ops_per_vsec)
        self._win_start_ns = now
        self._win_ops = 0
        self._win_ok = 0
        self._win_counts = {}


def validate_bus_events(records: Iterable[dict]) -> int:
    """Validate persisted bus events; returns the count or raises."""
    n = 0
    last_seq = -1
    for i, rec in enumerate(records):
        for field in ("kind", "source", "t_ns", "seq"):
            if field not in rec:
                raise ValueError(f"event {i}: missing field {field!r}")
        if rec["kind"] not in EVENT_KINDS:
            raise ValueError(f"event {i}: unknown kind {rec['kind']!r}")
        if not isinstance(rec["seq"], int) or rec["seq"] <= last_seq:
            raise ValueError(
                f"event {i}: seq {rec['seq']!r} not strictly increasing")
        last_seq = rec["seq"]
        n += 1
    return n
