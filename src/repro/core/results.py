"""Versioned result artifacts and regression comparison.

A benchmarking suite is only useful if runs can be compared over time.
This module is the results artifact layer: every persisted record wraps
:meth:`~repro.core.runner.RunResult.to_dict` with a ``schema_version``
field so future readers can evolve the format without guessing::

    save_jsonl([result], "results.jsonl", tags={"commit": "abc123"})
    records = load_jsonl("results.jsonl")
    regressions = compare(old_records, new_records, threshold=0.10)

The CLI (``run --out``, ``compare-runs``) and CI pipelines gate on
:func:`compare`'s output.  :class:`ResultStore` remains the append-only
store built on the same record format.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.core.runner import InsertStats, LatencyStats, RunResult
from repro.indexes.base import MemoryBreakdown

#: Version stamped into every persisted record.  Bump when the record
#: layout changes incompatibly; ``load_jsonl`` rejects newer versions.
SCHEMA_VERSION = 1


def result_record(
    result: Union[RunResult, dict],
    tags: Optional[Dict[str, str]] = None,
) -> dict:
    """A persistable, versioned record for one run."""
    record = dict(result.to_dict() if isinstance(result, RunResult) else result)
    record["schema_version"] = SCHEMA_VERSION
    if tags:
        record["tags"] = dict(tags)
    return record


def full_record(
    result: RunResult,
    tags: Optional[Dict[str, str]] = None,
) -> dict:
    """A *lossless* versioned record for one run.

    :func:`result_record` is the compact artifact the CLI and CI
    consume; it drops the latency moments (variance, max) and the raw
    insert-stat sums.  The sweep engine's cache and worker transport
    need the full :class:`RunResult` back, so this record adds the
    missing fields.  :func:`result_from_record` inverts it exactly —
    JSON round-trips Python floats bit-for-bit, which is what makes
    cached and cross-process results byte-identical to in-process ones.
    """
    record = result_record(result, tags)
    record["lookup_latency"].update(
        variance=result.lookup_latency.variance, max=result.lookup_latency.max)
    record["write_latency"].update(
        variance=result.write_latency.variance, max=result.write_latency.max)
    ist = result.insert_stats
    record["insert_stats_raw"] = {
        "inserts": ist.inserts,
        "nodes_traversed": ist.nodes_traversed,
        "keys_shifted": ist.keys_shifted,
        "nodes_created": ist.nodes_created,
        "smo_count": ist.smo_count,
    }
    return record


def _latency_from_dict(d: Optional[dict]) -> LatencyStats:
    d = d or {}
    return LatencyStats(
        count=d.get("count", 0),
        mean=d.get("mean", 0.0),
        p50=d.get("p50", 0.0),
        p99=d.get("p99", 0.0),
        p999=d.get("p999", 0.0),
        variance=d.get("variance", 0.0),
        max=d.get("max", 0.0),
    )


def result_from_record(record: dict) -> RunResult:
    """Rebuild a :class:`RunResult` from a :func:`full_record` dict.

    Records written by :func:`result_record` load too; the fields the
    compact format drops come back zeroed.
    """
    raw = record.get("insert_stats_raw") or {}
    mem = record.get("memory_bytes") or {}
    return RunResult(
        index_name=record.get("index", "?"),
        workload_name=record.get("workload", "?"),
        n_ops=record.get("n_ops", 0),
        virtual_ns=record.get("virtual_ns", 0.0),
        wall_seconds=record.get("wall_seconds", 0.0),
        phase_ns=dict(record.get("phase_ns") or {}),
        lookup_latency=_latency_from_dict(record.get("lookup_latency")),
        write_latency=_latency_from_dict(record.get("write_latency")),
        insert_stats=InsertStats(
            inserts=raw.get("inserts", 0),
            nodes_traversed=raw.get("nodes_traversed", 0.0),
            keys_shifted=raw.get("keys_shifted", 0.0),
            nodes_created=raw.get("nodes_created", 0.0),
            smo_count=raw.get("smo_count", 0),
        ),
        memory=MemoryBreakdown(
            inner=mem.get("inner", 0),
            leaf=mem.get("leaf", 0),
            metadata=mem.get("metadata", 0),
        ),
        scanned_entries=record.get("scanned_entries", 0),
    )


def save_jsonl(
    results: Iterable[Union[RunResult, dict]],
    path: str,
    tags: Optional[Dict[str, str]] = None,
    append: bool = False,
) -> int:
    """Write versioned records to a JSON-lines file; returns the count."""
    n = 0
    with open(path, "a" if append else "w") as f:
        for result in results:
            f.write(json.dumps(result_record(result, tags)) + "\n")
            n += 1
    return n


def load_jsonl(path: str) -> List[dict]:
    """All records from ``path``; a missing file reads as empty.

    Records written before versioning (no ``schema_version`` field) are
    accepted as version 0; records from a *newer* schema raise, since
    silently misreading them is worse than failing.
    """
    if not os.path.exists(path):
        return []
    records = []
    with open(path) as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: corrupt result record: {exc}"
                ) from exc
            version = record.get("schema_version", 0)
            if not isinstance(version, int) or version > SCHEMA_VERSION:
                raise ValueError(
                    f"{path}:{line_no}: schema_version {version!r} is newer "
                    f"than supported ({SCHEMA_VERSION}); upgrade repro"
                )
            records.append(record)
    return records


class ResultStore:
    """Append-only JSON-lines store of benchmark results."""

    def __init__(self, path: str) -> None:
        self.path = path

    def append(self, result: RunResult, tags: Optional[Dict[str, str]] = None) -> None:
        save_jsonl([result], self.path, tags=tags, append=True)

    def load(self) -> List[dict]:
        """All records; missing file reads as empty."""
        return load_jsonl(self.path)

    def latest(self, index: str, workload: str) -> Optional[dict]:
        """Most recent record for an (index, workload) pair."""
        hit = None
        for record in self.load():
            if record.get("index") == index and record.get("workload") == workload:
                hit = record
        return hit


@dataclass(frozen=True)
class Regression:
    index: str
    workload: str
    metric: str
    before: float
    after: float

    @property
    def change(self) -> float:
        if self.before == 0:
            return 0.0
        return (self.after - self.before) / self.before

    def __str__(self) -> str:
        return (f"{self.index}/{self.workload} {self.metric}: "
                f"{self.before:.3g} -> {self.after:.3g} ({self.change:+.1%})")


def _key(record: dict) -> Tuple[str, str]:
    return record.get("index", "?"), record.get("workload", "?")


def compare(
    baseline: Iterable[dict],
    current: Iterable[dict],
    threshold: float = 0.10,
) -> List[Regression]:
    """Regressions in ``current`` relative to ``baseline``.

    Flags throughput drops and p99.9 latency increases beyond
    ``threshold``.  Pairs present in only one set are ignored (they are
    additions/removals, not regressions).
    """
    base = { _key(r): r for r in baseline }
    out: List[Regression] = []
    for record in current:
        before = base.get(_key(record))
        if before is None:
            continue
        b_tp = before.get("throughput_mops", 0.0)
        c_tp = record.get("throughput_mops", 0.0)
        if b_tp > 0 and (b_tp - c_tp) / b_tp > threshold:
            out.append(Regression(*_key(record), "throughput_mops", b_tp, c_tp))
        for side in ("lookup_latency", "write_latency"):
            b_lat = (before.get(side) or {}).get("p999", 0.0)
            c_lat = (record.get(side) or {}).get("p999", 0.0)
            if b_lat > 0 and (c_lat - b_lat) / b_lat > threshold:
                out.append(Regression(*_key(record), f"{side}.p999", b_lat, c_lat))
    out.sort(key=lambda r: -abs(r.change))
    return out
