"""Versioned result artifacts and regression comparison.

A benchmarking suite is only useful if runs can be compared over time.
This module is the results artifact layer: every persisted record wraps
:meth:`~repro.core.runner.RunResult.to_dict` with a ``schema_version``
field so future readers can evolve the format without guessing::

    save_jsonl([result], "results.jsonl", tags={"commit": "abc123"})
    records = load_jsonl("results.jsonl")
    regressions = compare(old_records, new_records, threshold=0.10)

The CLI (``run --out``, ``compare-runs``) and CI pipelines gate on
:func:`compare`'s output.  :class:`ResultStore` remains the append-only
store built on the same record format.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.core.runner import RunResult

#: Version stamped into every persisted record.  Bump when the record
#: layout changes incompatibly; ``load_jsonl`` rejects newer versions.
SCHEMA_VERSION = 1


def result_record(
    result: Union[RunResult, dict],
    tags: Optional[Dict[str, str]] = None,
) -> dict:
    """A persistable, versioned record for one run."""
    record = dict(result.to_dict() if isinstance(result, RunResult) else result)
    record["schema_version"] = SCHEMA_VERSION
    if tags:
        record["tags"] = dict(tags)
    return record


def save_jsonl(
    results: Iterable[Union[RunResult, dict]],
    path: str,
    tags: Optional[Dict[str, str]] = None,
    append: bool = False,
) -> int:
    """Write versioned records to a JSON-lines file; returns the count."""
    n = 0
    with open(path, "a" if append else "w") as f:
        for result in results:
            f.write(json.dumps(result_record(result, tags)) + "\n")
            n += 1
    return n


def load_jsonl(path: str) -> List[dict]:
    """All records from ``path``; a missing file reads as empty.

    Records written before versioning (no ``schema_version`` field) are
    accepted as version 0; records from a *newer* schema raise, since
    silently misreading them is worse than failing.
    """
    if not os.path.exists(path):
        return []
    records = []
    with open(path) as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: corrupt result record: {exc}"
                ) from exc
            version = record.get("schema_version", 0)
            if not isinstance(version, int) or version > SCHEMA_VERSION:
                raise ValueError(
                    f"{path}:{line_no}: schema_version {version!r} is newer "
                    f"than supported ({SCHEMA_VERSION}); upgrade repro"
                )
            records.append(record)
    return records


class ResultStore:
    """Append-only JSON-lines store of benchmark results."""

    def __init__(self, path: str) -> None:
        self.path = path

    def append(self, result: RunResult, tags: Optional[Dict[str, str]] = None) -> None:
        save_jsonl([result], self.path, tags=tags, append=True)

    def load(self) -> List[dict]:
        """All records; missing file reads as empty."""
        return load_jsonl(self.path)

    def latest(self, index: str, workload: str) -> Optional[dict]:
        """Most recent record for an (index, workload) pair."""
        hit = None
        for record in self.load():
            if record.get("index") == index and record.get("workload") == workload:
                hit = record
        return hit


@dataclass(frozen=True)
class Regression:
    index: str
    workload: str
    metric: str
    before: float
    after: float

    @property
    def change(self) -> float:
        if self.before == 0:
            return 0.0
        return (self.after - self.before) / self.before

    def __str__(self) -> str:
        return (f"{self.index}/{self.workload} {self.metric}: "
                f"{self.before:.3g} -> {self.after:.3g} ({self.change:+.1%})")


def _key(record: dict) -> Tuple[str, str]:
    return record.get("index", "?"), record.get("workload", "?")


def compare(
    baseline: Iterable[dict],
    current: Iterable[dict],
    threshold: float = 0.10,
) -> List[Regression]:
    """Regressions in ``current`` relative to ``baseline``.

    Flags throughput drops and p99.9 latency increases beyond
    ``threshold``.  Pairs present in only one set are ignored (they are
    additions/removals, not regressions).
    """
    base = { _key(r): r for r in baseline }
    out: List[Regression] = []
    for record in current:
        before = base.get(_key(record))
        if before is None:
            continue
        b_tp = before.get("throughput_mops", 0.0)
        c_tp = record.get("throughput_mops", 0.0)
        if b_tp > 0 and (b_tp - c_tp) / b_tp > threshold:
            out.append(Regression(*_key(record), "throughput_mops", b_tp, c_tp))
        for side in ("lookup_latency", "write_latency"):
            b_lat = (before.get(side) or {}).get("p999", 0.0)
            c_lat = (record.get(side) or {}).get("p999", 0.0)
            if b_lat > 0 and (c_lat - b_lat) / b_lat > threshold:
                out.append(Regression(*_key(record), f"{side}.p999", b_lat, c_lat))
    out.sort(key=lambda r: -abs(r.change))
    return out
