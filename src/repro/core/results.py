"""Result persistence and regression comparison.

A benchmarking suite is only useful if runs can be compared over time.
This module appends :class:`~repro.core.runner.RunResult` summaries to
a JSON-lines file and diffs two result sets::

    store = ResultStore("results.jsonl")
    store.append(result, tags={"commit": "abc123"})
    ...
    regressions = compare(old_results, new_results, threshold=0.10)

The CLI and CI pipelines can gate on :func:`compare`'s output.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.runner import RunResult


class ResultStore:
    """Append-only JSON-lines store of benchmark results."""

    def __init__(self, path: str) -> None:
        self.path = path

    def append(self, result: RunResult, tags: Optional[Dict[str, str]] = None) -> None:
        record = result.to_dict()
        if tags:
            record["tags"] = dict(tags)
        with open(self.path, "a") as f:
            f.write(json.dumps(record) + "\n")

    def load(self) -> List[dict]:
        """All records; missing file reads as empty."""
        if not os.path.exists(self.path):
            return []
        records = []
        with open(self.path) as f:
            for line_no, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{self.path}:{line_no}: corrupt result record: {exc}"
                    ) from exc
        return records

    def latest(self, index: str, workload: str) -> Optional[dict]:
        """Most recent record for an (index, workload) pair."""
        hit = None
        for record in self.load():
            if record.get("index") == index and record.get("workload") == workload:
                hit = record
        return hit


@dataclass(frozen=True)
class Regression:
    index: str
    workload: str
    metric: str
    before: float
    after: float

    @property
    def change(self) -> float:
        if self.before == 0:
            return 0.0
        return (self.after - self.before) / self.before

    def __str__(self) -> str:
        return (f"{self.index}/{self.workload} {self.metric}: "
                f"{self.before:.3g} -> {self.after:.3g} ({self.change:+.1%})")


def _key(record: dict) -> Tuple[str, str]:
    return record.get("index", "?"), record.get("workload", "?")


def compare(
    baseline: Iterable[dict],
    current: Iterable[dict],
    threshold: float = 0.10,
) -> List[Regression]:
    """Regressions in ``current`` relative to ``baseline``.

    Flags throughput drops and p99.9 latency increases beyond
    ``threshold``.  Pairs present in only one set are ignored (they are
    additions/removals, not regressions).
    """
    base = { _key(r): r for r in baseline }
    out: List[Regression] = []
    for record in current:
        before = base.get(_key(record))
        if before is None:
            continue
        b_tp = before.get("throughput_mops", 0.0)
        c_tp = record.get("throughput_mops", 0.0)
        if b_tp > 0 and (b_tp - c_tp) / b_tp > threshold:
            out.append(Regression(*_key(record), "throughput_mops", b_tp, c_tp))
        for side in ("lookup_latency", "write_latency"):
            b_lat = (before.get(side) or {}).get("p999", 0.0)
            c_lat = (record.get(side) or {}).get("p999", 0.0)
            if b_lat > 0 and (c_lat - b_lat) / b_lat > threshold:
                out.append(Regression(*_key(record), f"{side}.p999", b_lat, c_lat))
    out.sort(key=lambda r: -abs(r.change))
    return out
