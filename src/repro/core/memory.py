"""End-to-end memory measurement (Section 5, Figure 8).

The paper's point: prior work excluded the leaf layer, but once updates
force explicit key storage the leaf layer dominates.  These helpers run
the paper's measurement protocol — bulk load half the keys, insert the
rest individually (the write-only workload), then report the whole
index including leaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence

from repro.core.workloads import mixed_workload
from repro.core.runner import execute
from repro.indexes.base import MemoryBreakdown, OrderedIndex


@dataclass
class MemoryReport:
    index_name: str
    n_keys: int
    breakdown: MemoryBreakdown

    @property
    def bytes_per_key(self) -> float:
        return self.breakdown.total / max(self.n_keys, 1)

    @property
    def inner_fraction(self) -> float:
        total = self.breakdown.total
        return self.breakdown.inner / total if total else 0.0


def measure_after_write_only(
    factory: Callable[[], OrderedIndex],
    keys: Sequence[int],
    seed: int = 0,
) -> MemoryReport:
    """Figure 8's protocol: bulk half, insert the rest, then measure."""
    workload = mixed_workload(keys, write_frac=1.0, seed=seed)
    index = factory()
    result = execute(index, workload)
    return MemoryReport(
        index_name=index.name,
        n_keys=len(index),
        breakdown=result.memory,
    )


def space_saving_ratio(reports: Dict[str, MemoryReport],
                       learned_names: Sequence[str],
                       traditional_names: Sequence[str]) -> float:
    """Message 9's headline number: size of the *largest traditional*
    index divided by the *smallest learned* index (3.2x in the paper)."""
    smallest_learned = min(reports[n].breakdown.total for n in learned_names)
    largest_traditional = max(reports[n].breakdown.total for n in traditional_names)
    return largest_traditional / max(smallest_learned, 1)
