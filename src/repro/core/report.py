"""Plain-text tables and series used by every benchmark's output."""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence


def format_bytes(n: float) -> str:
    """Human-readable byte count."""
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024.0:
            return f"{n:.1f}{unit}"
        n /= 1024.0
    return f"{n:.1f}TB"


def format_number(x: Any) -> str:
    if isinstance(x, float):
        if x == 0:
            return "0"
        if abs(x) >= 1000 or abs(x) < 0.01:
            return f"{x:.3g}"
        return f"{x:.2f}"
    return str(x)


def table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
          title: Optional[str] = None) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[format_number(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def series(name: str, xs: Sequence[Any], ys: Sequence[Any]) -> str:
    """Render one plot series as `name: (x, y) (x, y) ...`."""
    pairs = " ".join(f"({format_number(x)}, {format_number(y)})" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def bar(value: float, maximum: float, width: int = 40) -> str:
    """A proportional ASCII bar for quick visual comparison."""
    if maximum <= 0:
        return ""
    filled = int(round(width * min(value / maximum, 1.0)))
    return "#" * filled + "." * (width - filled)


def ascii_chart(
    series_map: "dict[str, Sequence[float]]",
    xs: Sequence[Any],
    height: int = 12,
    title: Optional[str] = None,
) -> str:
    """Multi-series ASCII line chart (the GRE visualization scripts).

    Each series gets a letter marker; y is auto-scaled to the data.
    """
    if not series_map or not xs:
        return "(no data)"
    names = list(series_map)
    markers = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    y_max = max(max(ys) for ys in series_map.values())
    y_max = y_max if y_max > 0 else 1.0
    n_cols = len(xs)
    col_width = max(6, max(len(str(x)) for x in xs) + 2)
    grid = [[" "] * (n_cols * col_width) for _ in range(height)]
    for si, name in enumerate(names):
        ys = series_map[name]
        for ci, y in enumerate(ys):
            row = height - 1 - int(round((height - 1) * min(y / y_max, 1.0)))
            col = ci * col_width + col_width // 2
            cell = grid[row][col]
            grid[row][col] = "*" if cell not in (" ", "*") else markers[si % 26]
    lines: List[str] = []
    if title:
        lines.append(title)
    label_w = 10
    for ri, row in enumerate(grid):
        y_val = y_max * (height - 1 - ri) / (height - 1)
        lines.append(f"{y_val:>{label_w - 2}.1f} |" + "".join(row))
    lines.append(" " * label_w + "-" * (n_cols * col_width))
    x_axis = " " * label_w
    for x in xs:
        x_axis += str(x).center(col_width)
    lines.append(x_axis)
    legend = "  ".join(
        f"{markers[i % 26]}={name}" for i, name in enumerate(names)
    )
    lines.append(" " * label_w + legend + "   (* = overlap)")
    return "\n".join(lines)
