"""Index health diagnostics — why is my index slow on this data?

The paper's analysis constantly reaches inside the indexes (fill
factors, search distances, chain depths, run profiles).  This module
packages those probes as a user-facing API::

    from repro.core.diagnostics import diagnose
    report = diagnose(index, sample_keys)
    print(report.render())

Each index family gets the probes that matter for it; unknown indexes
fall back to generic operation sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.cost import PHASE_SMO
from repro.core.report import table
from repro.indexes.alex import ALEX
from repro.indexes.base import OrderedIndex
from repro.indexes.lipp import LIPP, _CHILD
from repro.indexes.pgm import PGMIndex


@dataclass
class DiagnosticReport:
    """Structured index health summary."""

    index_name: str
    n_keys: int
    #: Generic probe results (avg path length, search distance, ...).
    metrics: Dict[str, float] = field(default_factory=dict)
    #: Human-readable findings, worst first.
    findings: List[str] = field(default_factory=list)

    def render(self) -> str:
        rows = sorted(self.metrics.items())
        out = [table(["Metric", "Value"], rows,
                     title=f"Diagnosis: {self.index_name} ({self.n_keys} keys)")]
        if self.findings:
            out.append("\nFindings:")
            out.extend(f"  - {f}" for f in self.findings)
        return "\n".join(out)


def _sample_ops(index: OrderedIndex, sample_keys: Sequence[int]) -> Dict[str, float]:
    """Probe lookups: average traversal depth and last-mile distance."""
    if not sample_keys:
        return {}
    depth = 0.0
    dist = 0.0
    hits = 0
    for k in sample_keys:
        if index.lookup(k) is not None:
            hits += 1
        depth += index.last_op.nodes_traversed
        dist += index.last_op.search_distance
    n = len(sample_keys)
    return {
        "avg_path_nodes": depth / n,
        "avg_search_probes": dist / n,
        "sample_hit_rate": hits / n,
    }


def diagnose(
    index: OrderedIndex,
    sample_keys: Sequence[int] = (),
    telemetry=None,
    slo=None,
) -> DiagnosticReport:
    """Inspect an index's structural health.

    ``sample_keys`` (optional) drive the generic lookup probes; pass a
    few hundred keys you expect to be present.  ``telemetry`` (optional)
    is a :class:`repro.core.telemetry.Telemetry` bundle that observed a
    run on this index — its SMO-storm windows and cost-phase breakdown
    become behavioral findings alongside the structural ones.  ``slo``
    (optional) is a :class:`repro.core.slo.SLOTracker` that observed
    the same run — every alert it fired (budget burn, SMO-storm
    escalation) is cited as a finding, with per-op-kind error-budget
    consumption in the metrics.
    """
    report = DiagnosticReport(index_name=index.name, n_keys=len(index))
    report.metrics.update(_sample_ops(index, sample_keys))
    mem = index.memory_usage()
    if len(index):
        report.metrics["bytes_per_key"] = mem.total / len(index)

    if isinstance(index, ALEX):
        _diagnose_alex(index, report)
    elif isinstance(index, LIPP):
        _diagnose_lipp(index, report)
    elif isinstance(index, PGMIndex):
        _diagnose_pgm(index, report)
    _generic_findings(report)
    if telemetry is not None:
        _telemetry_findings(report, telemetry)
    if slo is not None:
        _slo_findings(report, slo)
    return report


def _diagnose_alex(index: ALEX, report: DiagnosticReport) -> None:
    nodes = index.data_nodes()
    if not nodes:
        return
    densities = [n.density() for n in nodes if n.capacity]
    report.metrics["data_nodes"] = len(nodes)
    report.metrics["avg_density"] = sum(densities) / len(densities)
    report.metrics["min_density"] = min(densities)
    report.metrics["max_density"] = max(densities)
    report.metrics["smo_count"] = index.smo_count
    report.metrics["expand_count"] = index.expand_count
    report.metrics["split_count"] = index.split_count
    inserts = sum(n.inserts_since_build for n in nodes)
    shifts = sum(n.shifts_since_build for n in nodes)
    if inserts:
        per_insert = shifts / inserts
        report.metrics["shifts_per_recent_insert"] = per_insert
        if per_insert > 16:
            report.findings.append(
                f"high write amplification ({per_insert:.1f} shifts/insert): "
                "the data is locally hard for ALEX's models — consider a "
                "lower fill factor or LIPP/ART (paper Table 3)"
            )
    if max(densities) > 0.9:
        report.findings.append(
            "data nodes near capacity: SMO storm imminent on further inserts"
        )


def _diagnose_lipp(index: LIPP, report: DiagnosticReport) -> None:
    report.metrics["nodes"] = index.node_count()
    report.metrics["max_depth"] = index.max_depth()
    report.metrics["chain_count"] = index.chain_count
    report.metrics["rebuild_count"] = index.rebuild_count
    root = index._root
    child_slots = sum(1 for s in range(root.capacity) if root.tags[s] == _CHILD)
    report.metrics["root_child_fraction"] = child_slots / max(root.capacity, 1)
    if index.max_depth() > 6:
        report.findings.append(
            f"deep chains (depth {index.max_depth()}): collision-heavy "
            "region — LIPP will spend traversal time there until the "
            "subtree rebuild triggers fire"
        )
    if report.metrics.get("bytes_per_key", 0) > 60:
        report.findings.append(
            f"{report.metrics['bytes_per_key']:.0f} B/key: LIPP's space-for-"
            "speed trade in action (paper Figure 8: 4-5x ALEX)"
        )


def _diagnose_pgm(index: PGMIndex, report: DiagnosticReport) -> None:
    live = [s for s in index.run_sizes() if s]
    report.metrics["live_runs"] = len(live)
    report.metrics["buffered_keys"] = len(index._buffer)
    report.metrics["merge_count"] = index.merge_count
    if len(live) > 6:
        report.findings.append(
            f"{len(live)} live runs: every lookup probes up to all of "
            "them — the LSM read penalty the paper's Figure 2 notes"
        )


def _telemetry_findings(report: DiagnosticReport, telemetry) -> None:
    """Behavioral findings from a recorded run (storms, phase shares)."""
    metrics = getattr(telemetry, "metrics", None)
    if metrics is not None and metrics.series:
        storms = metrics.smo_storms()
        report.metrics["smo_storms"] = len(storms)
        if storms:
            worst = max(storms, key=lambda s: s.rate)
            report.findings.append(
                f"{len(storms)} SMO storm(s) during the recorded run; worst "
                f"at virtual {worst.start_ns / 1e6:.2f}-{worst.end_ns / 1e6:.2f} ms "
                f"({worst.rate:.0%} of ops triggered SMOs) — the bursts "
                "behind insert tail latency (paper Figure 10)"
            )
        growth = metrics.memory_growth()
        if growth > 1.5:
            report.metrics["memory_growth"] = growth
            report.findings.append(
                f"memory grew {growth:.1f}x across the run: structural "
                "expansion is outpacing the key volume"
            )
    profiler = getattr(telemetry, "profiler", None)
    if profiler is not None and profiler.cells:
        total = profiler.total_ns()
        by_phase = profiler.time_by_phase()
        smo_share = by_phase.get(PHASE_SMO, 0.0) / total if total else 0.0
        report.metrics["smo_phase_share"] = smo_share
        if smo_share > 0.3:
            report.findings.append(
                f"SMO work is {smo_share:.0%} of measured virtual time: "
                "structural maintenance out-bleeds the model speedup "
                "(the paper's Figure-3 observation)"
            )
        if total:
            op, phase, kind, _, ns = profiler.rows()[0]
            report.findings.append(
                f"hottest cost cell: {op}/{phase}/{kind} at {ns / total:.0%} "
                "of measured virtual time"
            )


def _slo_findings(report: DiagnosticReport, slo) -> None:
    """Cite the alerts an SLO tracker fired during the recorded run."""
    alerts = getattr(slo, "alerts", None) or []
    report.metrics["slo_alerts"] = len(alerts)
    for kind in sorted(getattr(slo, "targets", {})):
        used = slo.budget_used(kind)
        if used > 0:
            report.metrics[f"error_budget_used.{kind}"] = used
    critical = [a for a in alerts if a.severity == "critical"]
    if critical:
        report.findings.append(
            f"{len(critical)} critical SLO alert(s) fired — tail latency "
            "or SMO churn breached objectives during the run")
    for alert in alerts[:5]:
        report.findings.append(f"SLO alert {alert}")
    if len(alerts) > 5:
        report.findings.append(f"... and {len(alerts) - 5} more SLO alert(s)")


def _generic_findings(report: DiagnosticReport) -> None:
    probes = report.metrics.get("avg_search_probes")
    if probes is not None and probes > 12:
        report.findings.append(
            f"long last-mile searches ({probes:.1f} probes avg): models "
            "misfit the data (high local hardness)"
        )
