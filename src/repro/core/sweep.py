"""Parallel sweep engine with content-addressed result caching.

The paper's headline artifacts (Figures 2, 4, 7, 14, 16; Table 3) are
data × workload × index grids: hundreds of *independent* benchmark
cells.  GRE's C++ harness treats such a grid as an embarrassingly
parallel job farm; this module is our equivalent, built from three
parts:

* a **planner** that expands a grid spec into :class:`SweepTask`s —
  each task names its dataset, workload and index *by spec*, never by
  value, so tasks are tiny, picklable and content-addressable;
* a **scheduler** (:func:`run_sweep`) that executes tasks across a
  ``ProcessPoolExecutor`` (``--jobs N`` / ``REPRO_JOBS``), with a
  serial in-process fallback that produces *identical* results — the
  virtual cost-model clock makes "identical" checkable bit for bit
  (:func:`result_fingerprint`);
* a **content-addressed cache** (:class:`SweepCache`) keyed on the
  SHA-256 of the task spec plus the cost-model and result-schema
  versions, so re-running a sweep only executes changed cells and a
  killed sweep resumes where it stopped.

Workers rebuild datasets and workloads from their specs; dataset
generation is memoized process-wide (``repro.datasets.registry``) and
built workloads are memoized per worker, so a worker pays each
(dataset, workload) construction once no matter how many indexes run
on it.  Results travel back — and persist — as the lossless versioned
records of :mod:`repro.core.results`.

Determinism is the contract: a parallel sweep returns cells byte-equal
to the serial path in every field except ``wall_seconds`` (the one
wall-clock sanity value), which :func:`result_fingerprint` excludes.

Telemetry observers (PR 3) still attach per task via
``observer_factory``; observers live in the calling process, so a
sweep with observers runs in-process (the cache makes re-running an
already-swept grid under telemetry cheap: every unobserved cell is a
hit, and only the cells you re-execute pay).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core import cost, results
from repro.core.results import full_record, result_from_record
from repro.core.runner import ExecutionObserver, LatencyStats, RunResult, execute
from repro.core.workloads import (
    MIX_FRACTIONS,
    MIX_NAMES,
    Workload,
    deletion_workload,
    mixed_workload,
    scan_workload,
    ycsb_workload,
)
from repro.datasets import registry as dataset_registry

#: Execution modes.  ``single`` drives :func:`repro.core.runner.execute`;
#: ``multicore`` drives a concurrent adapter through the DES simulator.
MODE_SINGLE = "single"
MODE_MULTICORE = "multicore"

#: Bump to invalidate every cache entry when the sweep engine itself
#: changes what a cell record contains.
CACHE_FORMAT = 1

_MIX_BY_NAME = dict(zip(MIX_NAMES, MIX_FRACTIONS))
_MIX_BY_FRAC = dict(zip(MIX_FRACTIONS, MIX_NAMES))


# ---------------------------------------------------------------------------
# Specs: everything a worker needs, by value-free description
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DatasetSpec:
    """A dataset by name, size and seed — resolved in the worker."""

    name: str
    n: int
    seed: int = 0

    def keys(self) -> List[int]:
        return dataset_registry.get(self.name).generate(self.n, seed=self.seed)

    def to_dict(self) -> dict:
        return {"name": self.name, "n": self.n, "seed": self.seed}


@dataclass(frozen=True)
class WorkloadSpec:
    """A workload builder invocation, as data.

    ``kind`` picks the builder in :mod:`repro.core.workloads`;
    ``params`` is a sorted tuple of ``(key, value)`` pairs so specs are
    hashable (worker-side memoization) and canonically serializable
    (cache keys).
    """

    kind: str
    params: Tuple[Tuple[str, Union[int, float, str]], ...]

    # -- constructors -----------------------------------------------------------

    @classmethod
    def _make(cls, kind: str, **params) -> "WorkloadSpec":
        return cls(kind=kind, params=tuple(sorted(params.items())))

    @classmethod
    def mixed(cls, write_frac: float, n_ops: Optional[int] = None,
              seed: int = 0) -> "WorkloadSpec":
        return cls._make("mixed", write_frac=write_frac,
                         n_ops=-1 if n_ops is None else n_ops, seed=seed)

    @classmethod
    def deletion(cls, delete_frac: float, n_ops: Optional[int] = None,
                 seed: int = 0) -> "WorkloadSpec":
        return cls._make("delete", delete_frac=delete_frac,
                         n_ops=-1 if n_ops is None else n_ops, seed=seed)

    @classmethod
    def scan(cls, scan_size: int, n_scans: int, seed: int = 0) -> "WorkloadSpec":
        return cls._make("scan", scan_size=scan_size, n_scans=n_scans, seed=seed)

    @classmethod
    def ycsb(cls, variant: str, n_ops: int, theta: float = 0.99,
             seed: int = 0) -> "WorkloadSpec":
        return cls._make("ycsb", variant=variant.upper(), n_ops=n_ops,
                         theta=theta, seed=seed)

    @classmethod
    def from_name(cls, name: str, n_ops: int, seed: int = 0) -> "WorkloadSpec":
        """Parse the CLI's workload vocabulary into a spec.

        Accepts the five mix names, ``ycsb-a`` … ``ycsb-f``, ``delete``
        and ``scan[:SIZE]`` — the same grammar as ``repro run``.
        """
        if name in _MIX_BY_NAME:
            return cls.mixed(_MIX_BY_NAME[name], n_ops=n_ops, seed=seed)
        if name.startswith("ycsb-"):
            return cls.ycsb(name[-1], n_ops=n_ops, seed=seed)
        if name.startswith("delete"):
            return cls.deletion(0.5, n_ops=n_ops, seed=seed)
        if name.startswith("scan"):
            size = int(name.split(":")[1]) if ":" in name else 100
            return cls.scan(size, max(20, n_ops // size), seed=seed)
        raise ValueError(
            f"unknown workload {name!r}; use one of {MIX_NAMES}, "
            "ycsb-a..f, delete, scan[:SIZE]"
        )

    # -- accessors --------------------------------------------------------------

    @property
    def params_dict(self) -> Dict[str, Union[int, float, str]]:
        return dict(self.params)

    @property
    def label(self) -> str:
        """The name the built :class:`Workload` will carry."""
        p = self.params_dict
        if self.kind == "mixed":
            frac = p["write_frac"]
            return _MIX_BY_FRAC.get(frac, f"{frac:.0%}-write")
        if self.kind == "delete":
            return f"{p['delete_frac']:.0%}-delete"
        if self.kind == "scan":
            return f"scan-{p['scan_size']}"
        if self.kind == "ycsb":
            return f"ycsb-{p['variant']}"
        return self.kind

    def build(self, keys: Sequence[int]) -> Workload:
        """Construct the workload over concrete keys."""
        p = self.params_dict
        n_ops = p.get("n_ops", -1)
        n_ops = None if n_ops == -1 else n_ops
        if self.kind == "mixed":
            return mixed_workload(keys, p["write_frac"], n_ops=n_ops, seed=p["seed"])
        if self.kind == "delete":
            return deletion_workload(keys, p["delete_frac"], n_ops=n_ops, seed=p["seed"])
        if self.kind == "scan":
            return scan_workload(keys, p["scan_size"], p["n_scans"], seed=p["seed"])
        if self.kind == "ycsb":
            return ycsb_workload(keys, p["variant"], n_ops=n_ops,
                                 theta=p["theta"], seed=p["seed"])
        raise ValueError(f"unknown workload kind {self.kind!r}")

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": self.params_dict}


@dataclass(frozen=True)
class SweepTask:
    """One independent cell of a sweep grid."""

    dataset: DatasetSpec
    workload: WorkloadSpec
    index: str
    mode: str = MODE_SINGLE
    threads: int = 1
    sockets: int = 1
    sample_every: int = 101

    def __post_init__(self) -> None:
        # threads/sockets only exist in multicore mode; canonicalize them
        # away in single mode so they can never split the cache address
        # of an identical run.
        if self.mode == MODE_SINGLE:
            object.__setattr__(self, "threads", 1)
            object.__setattr__(self, "sockets", 1)

    def describe(self) -> str:
        tag = "" if self.mode == MODE_SINGLE else f" x{self.threads}t"
        return f"{self.index} on {self.dataset.name}/{self.workload.label}{tag}"


def plan_grid(
    datasets: Sequence[DatasetSpec],
    workloads: Sequence[WorkloadSpec],
    indexes: Sequence[str],
    mode: str = MODE_SINGLE,
    threads: int = 1,
    sockets: int = 1,
    sample_every: int = 101,
) -> List[SweepTask]:
    """Expand a grid spec into tasks, row-major (dataset, workload, index)."""
    return [
        SweepTask(dataset=ds, workload=wl, index=name, mode=mode,
                  threads=threads, sockets=sockets, sample_every=sample_every)
        for ds in datasets
        for wl in workloads
        for name in indexes
    ]


# ---------------------------------------------------------------------------
# Content addressing
# ---------------------------------------------------------------------------

def _canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def cache_key(task: SweepTask) -> str:
    """SHA-256 content address of a task's *result*.

    The key covers everything the result depends on: the full task spec
    plus the cost-model and result-schema versions (read at call time,
    so bumping either constant invalidates every prior entry).
    """
    payload = {
        "format": CACHE_FORMAT,
        "dataset": task.dataset.to_dict(),
        "workload": task.workload.to_dict(),
        "index": task.index,
        "mode": task.mode,
        "threads": task.threads,
        "sockets": task.sockets,
        "sample_every": task.sample_every,
        "cost_model_version": cost.COST_MODEL_VERSION,
        "schema_version": results.SCHEMA_VERSION,
    }
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


def result_fingerprint(record: dict) -> str:
    """SHA-256 of a cell record's *deterministic* content.

    Excludes ``wall_seconds`` (interpreter wall clock — the only
    non-virtual measurement in a record) and ``tags``.  Serial and
    parallel execution of the same task must produce equal
    fingerprints; tests and the CI sweep-smoke job gate on this.
    """
    cleaned = {k: v for k, v in record.items()
               if k not in ("wall_seconds", "tags")}
    return hashlib.sha256(_canonical(cleaned).encode()).hexdigest()


class SweepCache:
    """Content-addressed on-disk store of cell records.

    One JSON file per key under ``root``.  Writes are atomic
    (tempfile + rename) so a killed sweep never leaves a torn entry;
    unreadable entries read as misses and are re-executed.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def get(self, key: str) -> Optional[dict]:
        try:
            with open(self._path(key)) as f:
                record = json.load(f)
        except (OSError, json.JSONDecodeError):
            return None
        return record if isinstance(record, dict) else None

    def put(self, key: str, record: dict) -> None:
        path = self._path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as f:
            json.dump(record, f)
        os.replace(tmp, path)

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.root) if name.endswith(".json"))


def default_cache_dir() -> str:
    """``REPRO_CACHE_DIR`` or ``.repro-cache/sweep`` under the cwd."""
    return os.environ.get("REPRO_CACHE_DIR") or os.path.join(".repro-cache", "sweep")


# ---------------------------------------------------------------------------
# Worker-side execution
# ---------------------------------------------------------------------------

@lru_cache(maxsize=32)
def _workload_for(dataset: DatasetSpec, workload: WorkloadSpec) -> Workload:
    """Per-process workload memo: a worker builds each (dataset,
    workload) pair once however many indexes sweep over it."""
    return workload.build(dataset.keys())


def _execute_single(task: SweepTask,
                    observers: Sequence[ExecutionObserver] = ()) -> dict:
    from repro.core.registry import REGISTRY

    wl = _workload_for(task.dataset, task.workload)
    index = REGISTRY.create(task.index)
    r = execute(index, wl, sample_every=task.sample_every, observers=observers)
    return full_record(r)


def _execute_multicore(task: SweepTask) -> dict:
    from repro.concurrency.simcore import MulticoreSimulator, Topology
    from repro.core.registry import REGISTRY

    factories = REGISTRY.concurrent_factories(evaluated=False)
    try:
        factory = factories[task.index]
    except KeyError:
        raise KeyError(
            f"unknown concurrent index {task.index!r}; "
            f"registered: {sorted(factories)}"
        ) from None
    wl = _workload_for(task.dataset, task.workload)
    adapter = factory()
    adapter.bulk_load(wl.bulk_items)
    sim = MulticoreSimulator(Topology(sockets=task.sockets))
    s = sim.run(adapter, wl.operations, threads=task.threads,
                sample_every=task.sample_every)

    def latency(samples) -> dict:
        st = LatencyStats.from_samples(samples)
        return {"p50": st.p50, "p99": st.p99, "p999": st.p999,
                "mean": st.mean, "count": st.count,
                "variance": st.variance, "max": st.max}

    return {
        "schema_version": results.SCHEMA_VERSION,
        "kind": MODE_MULTICORE,
        "index": s.index_name,
        "workload": wl.name,
        "threads": s.threads,
        "sockets": task.sockets,
        "n_ops": s.n_ops,
        "makespan_ns": s.makespan_ns,
        "throughput_mops": s.throughput_mops,
        "lock_wait_ns": s.lock_wait_ns,
        "atomic_ns": s.atomic_ns,
        "bytes_total": s.bytes_total,
        "bandwidth_limited": s.bandwidth_limited,
        "lookup_latency": latency(s.lookup_latencies),
        "write_latency": latency(s.write_latencies),
    }


def _execute_task(task: SweepTask) -> dict:
    """Run one cell and return its lossless record (worker entry point)."""
    if task.mode == MODE_MULTICORE:
        return _execute_multicore(task)
    return _execute_single(task)


# ---------------------------------------------------------------------------
# Scheduler
# ---------------------------------------------------------------------------

@dataclass
class CellResult:
    """One completed cell: its task, lossless record and provenance."""

    task: SweepTask
    record: dict
    cached: bool
    key: str

    @property
    def throughput_mops(self) -> float:
        return float(self.record.get("throughput_mops", 0.0))

    @property
    def fingerprint(self) -> str:
        return result_fingerprint(self.record)

    def run_result(self) -> RunResult:
        """The reconstructed :class:`RunResult` (single-threaded cells)."""
        if self.record.get("kind") == MODE_MULTICORE:
            raise ValueError("multicore cells carry SimResult records, "
                             "not RunResults")
        return result_from_record(self.record)


@dataclass
class SweepReport:
    """Everything one sweep invocation produced."""

    cells: List[CellResult]
    jobs: int
    wall_seconds: float

    #: Cells served from the cache vs executed this run.
    cache_hits: int = 0
    executed: int = 0
    used_processes: bool = False
    pool_error: Optional[str] = None
    cache_dir: Optional[str] = None

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / max(len(self.cells), 1)

    @property
    def cells_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.cells) / self.wall_seconds

    def to_dict(self, include_cells: bool = True) -> dict:
        out = {
            "jobs": self.jobs,
            "n_cells": len(self.cells),
            "wall_seconds": self.wall_seconds,
            "cells_per_sec": self.cells_per_sec,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "executed": self.executed,
            "used_processes": self.used_processes,
            "cache_dir": self.cache_dir,
        }
        if include_cells:
            out["cells"] = [
                {
                    "dataset": c.task.dataset.name,
                    "workload": c.task.workload.label,
                    "index": c.task.index,
                    "throughput_mops": c.throughput_mops,
                    "cached": c.cached,
                    "fingerprint": c.fingerprint,
                }
                for c in self.cells
            ]
        return out

    def records(self) -> List[dict]:
        """Cell records in task order (``save_jsonl`` input)."""
        return [c.record for c in self.cells]


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit arg > ``REPRO_JOBS`` > 1.

    ``0`` (either source) means "one worker per CPU".
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an integer, got {env!r}") from None
    if jobs == 0:
        return os.cpu_count() or 1
    return max(jobs, 1)


ObserverFactory = Callable[[SweepTask], Sequence[ExecutionObserver]]
OnResult = Callable[[CellResult], None]


def run_sweep(
    tasks: Iterable[SweepTask],
    jobs: Optional[int] = None,
    cache: Optional[SweepCache] = None,
    on_result: Optional[OnResult] = None,
    observer_factory: Optional[ObserverFactory] = None,
    bus=None,
) -> SweepReport:
    """Execute every task, in parallel where possible, and return all cells.

    * ``jobs``: worker processes (see :func:`resolve_jobs`); ``1`` runs
      serially in-process with byte-identical results.
    * ``cache``: a :class:`SweepCache`; hits skip execution entirely and
      every fresh result is persisted as it completes, so an
      interrupted sweep resumes from its last finished cell.
    * ``on_result``: progress callback, invoked once per cell as it
      resolves (cache hits first, then executions in completion order).
    * ``observer_factory``: per-task telemetry/observer attachment
      (single-threaded cells).  Observers must see the run from the
      calling process, so providing a factory forces in-process
      execution of the cells that actually run.
    * ``bus``: an :class:`~repro.core.events.EventBus` (duck-typed);
      each resolved cell publishes a ``sweep_task`` (executed) or
      ``cache_hit`` (served from cache) event, so a live control tower
      can watch sweep workers alongside engine and migration traffic.

    Returns cells in task order regardless of completion order.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    t0 = time.perf_counter()

    user_on_result = on_result

    def announce(cell: CellResult) -> None:
        if bus is not None:
            bus.publish(
                "cache_hit" if cell.cached else "sweep_task",
                source=cell.task.index,
                dataset=cell.task.dataset.name,
                workload=cell.task.workload.label,
                mode=cell.task.mode,
                throughput_mops=cell.throughput_mops,
                key=cell.key)
        if user_on_result is not None:
            user_on_result(cell)

    on_result = announce if (bus is not None or user_on_result is not None) else None
    cells: List[Optional[CellResult]] = [None] * len(tasks)
    pending: List[Tuple[int, SweepTask, str]] = []
    hits = 0

    for i, task in enumerate(tasks):
        key = cache_key(task)
        record = cache.get(key) if cache is not None else None
        if record is not None:
            cells[i] = CellResult(task=task, record=record, cached=True, key=key)
            hits += 1
            if on_result is not None:
                on_result(cells[i])
        else:
            pending.append((i, task, key))

    used_processes = False
    pool_error: Optional[str] = None
    in_process = jobs <= 1 or len(pending) <= 1 or observer_factory is not None

    if not in_process:
        try:
            with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                futures = {
                    pool.submit(_execute_task, task): (i, task, key)
                    for i, task, key in pending
                }
                not_done = set(futures)
                while not_done:
                    done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                    for fut in done:
                        i, task, key = futures[fut]
                        record = fut.result()
                        cell = CellResult(task=task, record=record,
                                          cached=False, key=key)
                        cells[i] = cell
                        if cache is not None:
                            cache.put(key, record)
                        if on_result is not None:
                            on_result(cell)
            used_processes = True
            pending = []
        except (OSError, PermissionError) as exc:
            # Sandboxes and exotic platforms may refuse to fork; the
            # sweep still completes, just serially.
            pool_error = f"{type(exc).__name__}: {exc}"
            pending = [(i, t, k) for i, t, k in pending if cells[i] is None]

    for i, task, key in pending:
        observers: Sequence[ExecutionObserver] = ()
        if observer_factory is not None and task.mode == MODE_SINGLE:
            observers = observer_factory(task) or ()
        if task.mode == MODE_SINGLE:
            record = _execute_single(task, observers=observers)
        else:
            record = _execute_multicore(task)
        cell = CellResult(task=task, record=record, cached=False, key=key)
        cells[i] = cell
        if cache is not None:
            cache.put(key, record)
        if on_result is not None:
            on_result(cell)

    done_cells = [c for c in cells if c is not None]
    return SweepReport(
        cells=done_cells,
        jobs=jobs,
        wall_seconds=time.perf_counter() - t0,
        cache_hits=hits,
        executed=len(done_cells) - hits,
        used_processes=used_processes,
        pool_error=pool_error,
        cache_dir=cache.root if cache is not None else None,
    )
