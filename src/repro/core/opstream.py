"""Recorded operation streams, the differential oracle, and the fuzzer.

An :class:`OpStream` is the unit of reproducibility for correctness
testing: a bulk-load key set plus an explicit operation list, small
enough to commit to the repository and deterministic enough to replay
bit-for-bit.  Three layers build on it:

* **Record/replay** — streams serialize to versioned JSON-lines via the
  results artifact layer (:mod:`repro.core.results`), so a failing
  fuzz run becomes a file under ``tests/corpus/`` that the test suite
  replays forever after.
* **Differential oracle** — :func:`run_oracle` executes a stream
  against an index *and* a trivially-correct reference model (a dict
  plus a sorted key list), comparing every lookup payload, write
  outcome and scan result via the engine's :class:`OpEvent.result`
  hook, while a :class:`~repro.core.validate.ValidationObserver`
  re-checks structural invariants after every SMO.
* **Fuzzing** — :func:`fuzz_index` generates seeded random streams
  shaped by an index's registered capabilities, and
  :func:`shrink_stream` reduces any failure to a minimal stream by
  greedy chunk deletion (ddmin-style) over the op list and the bulk
  keys.

The oracle treats the reference model as ground truth: when outcomes
diverge, the model keeps its own state so one wrong answer surfaces as
one mismatch instead of corrupting every comparison after it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.instance import IndexInstance
from repro.core.registry import REGISTRY, IndexSpec
from repro.core.results import load_jsonl, save_jsonl
from repro.core.runner import ExecutionEngine
from repro.core.validate import TimedViolation, ValidationObserver
from repro.core.workloads import (
    DELETE,
    INSERT,
    LOOKUP,
    SCAN,
    UPDATE,
    Operation,
    Workload,
    payload,
)

#: Format tag stamped into every stream header record.
STREAM_FORMAT = "opstream-1"


# ---------------------------------------------------------------------------
# The stream
# ---------------------------------------------------------------------------

@dataclass
class OpStream:
    """A replayable correctness scenario: bulk keys + operation list."""

    index_name: str
    seed: int
    bulk_keys: List[int]
    ops: List[Operation]
    name: str = ""

    def __post_init__(self) -> None:
        self.bulk_keys = sorted(set(self.bulk_keys))

    @property
    def label(self) -> str:
        return self.name or f"{self.index_name}-seed{self.seed}"

    def to_workload(self) -> Workload:
        """The stream as an engine-runnable workload.

        Bulk payloads are :func:`~repro.core.workloads.payload`\\ (key),
        the same derivation the generator uses, so a stream file only
        needs to store keys for the bulk set.
        """
        return Workload(
            name=self.label,
            bulk_items=[(k, payload(k)) for k in self.bulk_keys],
            operations=list(self.ops),
        )

    # -- persistence ---------------------------------------------------------

    def save(self, path: str) -> None:
        """Write the stream as versioned JSON-lines (header + one
        record per operation)."""
        header = {
            "kind": "opstream-header",
            "format": STREAM_FORMAT,
            "index": self.index_name,
            "seed": self.seed,
            "name": self.name,
            "bulk_keys": list(self.bulk_keys),
        }
        ops = [
            {"kind": "op", "op": op.op, "key": op.key,
             "value": op.value, "count": op.count}
            for op in self.ops
        ]
        save_jsonl([header, *ops], path)

    @classmethod
    def load(cls, path: str) -> "OpStream":
        """Load a stream saved by :meth:`save`.

        Raises ``ValueError`` on a missing/foreign file; newer
        ``schema_version`` records are rejected by the results layer.
        """
        records = load_jsonl(path)
        if not records or records[0].get("kind") != "opstream-header":
            raise ValueError(f"{path!r} is not an opstream file")
        header = records[0]
        if header.get("format") != STREAM_FORMAT:
            raise ValueError(
                f"{path!r}: unsupported stream format {header.get('format')!r}")
        ops = [
            Operation(r["op"], r["key"], r.get("value"), r.get("count", 0))
            for r in records[1:]
            if r.get("kind") == "op"
        ]
        return cls(
            index_name=header["index"],
            seed=header.get("seed", 0),
            bulk_keys=list(header.get("bulk_keys", [])),
            ops=ops,
            name=header.get("name", ""),
        )


# ---------------------------------------------------------------------------
# Differential oracle
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Mismatch:
    """One divergence between the index and the reference model."""

    seq: int
    op: str
    key: int
    expected: str
    got: str

    def __str__(self) -> str:
        return (f"op #{self.seq} {self.op}({self.key}): "
                f"expected {self.expected}, got {self.got}")


class DifferentialObserver:
    """Engine observer comparing every op against a reference model.

    The model is a dict plus a sorted key list — slow and obviously
    correct.  It consumes :class:`~repro.core.runner.OpEvent.result`,
    so payload-level lookup bugs and wrong scan rows are caught, not
    just hit/miss flags.  The model advances by *its own* semantics, so
    a single divergence yields a single mismatch.
    """

    def __init__(self, limit: int = 50) -> None:
        self.limit = limit
        self.mismatches: List[Mismatch] = []
        self._model: Dict[int, Any] = {}
        self._keys: List[int] = []

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def _flag(self, event: Any, expected: str, got: str) -> None:
        if len(self.mismatches) >= self.limit:
            return
        self.mismatches.append(Mismatch(
            seq=event.seq, op=event.op.op, key=event.op.key,
            expected=expected, got=got))

    # -- ExecutionObserver protocol -----------------------------------------

    def on_phase(self, phase: str, index: Any, workload: Any) -> None:
        if phase == "measure":
            self._model = dict(workload.bulk_items)
            self._keys = sorted(self._model)

    def on_op(self, event: Any, latency: Optional[float]) -> None:
        import bisect

        op = event.op
        kind = op.op
        model, keys = self._model, self._keys
        if kind == LOOKUP:
            expected = model.get(op.key)
            if event.result != expected:
                self._flag(event, repr(expected), repr(event.result))
        elif kind == INSERT:
            should = op.key not in model
            if bool(event.ok) != should:
                self._flag(event, f"insert ok={should}", f"ok={event.ok}")
            if should:
                model[op.key] = op.value
                bisect.insort(keys, op.key)
        elif kind == UPDATE:
            should = op.key in model
            if bool(event.ok) != should:
                self._flag(event, f"update ok={should}", f"ok={event.ok}")
            if should:
                model[op.key] = op.value
        elif kind == DELETE:
            should = op.key in model
            if bool(event.ok) != should:
                self._flag(event, f"delete ok={should}", f"ok={event.ok}")
            if should:
                del model[op.key]
                keys.pop(bisect.bisect_left(keys, op.key))
        elif kind == SCAN:
            lo = bisect.bisect_left(keys, op.key)
            want = [(k, model[k]) for k in keys[lo:lo + op.count]]
            got = [tuple(row) for row in (event.result or [])]
            if got != want:
                self._flag(
                    event,
                    f"{len(want)} rows from {want[0][0] if want else '-'}",
                    f"{len(got)} rows"
                    + ("" if got == want[:len(got)] else " (content differs)"),
                )

    def on_smo(self, event: Any) -> None:
        pass


@dataclass
class OracleReport:
    """Everything one oracle run found."""

    stream: OpStream
    violations: List[TimedViolation] = field(default_factory=list)
    mismatches: List[Mismatch] = field(default_factory=list)
    crash: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not (self.violations or self.mismatches or self.crash)

    @property
    def failure_kind(self) -> Optional[str]:
        if self.crash:
            return "crash"
        if self.violations:
            return "violation"
        if self.mismatches:
            return "mismatch"
        return None

    def describe(self, limit: int = 5) -> str:
        if self.ok:
            return (f"{self.stream.label}: ok "
                    f"({len(self.stream.ops)} ops, "
                    f"{len(self.stream.bulk_keys)} bulk keys)")
        lines = [f"{self.stream.label}: FAIL ({self.failure_kind}, "
                 f"{len(self.stream.ops)} ops, "
                 f"{len(self.stream.bulk_keys)} bulk keys)"]
        if self.crash:
            lines.append(f"  crash: {self.crash}")
        lines += [f"  {v}" for v in self.violations[:limit]]
        lines += [f"  {m}" for m in self.mismatches[:limit]]
        hidden = (len(self.violations) + len(self.mismatches)) - 2 * limit
        if hidden > 0:
            lines.append(f"  ... and more")
        return "\n".join(lines)


def run_oracle(
    factory: Callable[[], Any],
    stream: OpStream,
    limit: int = 50,
) -> OracleReport:
    """Replay ``stream`` on ``factory()`` under full instrumentation.

    Structural invariants are re-validated after bulk load, after every
    SMO, and at end of run; every op outcome is differenced against the
    reference model.  An exception anywhere in the run is captured as a
    crash failure rather than propagated — a fuzzer input that raises
    is a finding, not a test-harness error.
    """
    validator = ValidationObserver(limit=limit)
    differ = DifferentialObserver(limit=limit)
    engine = ExecutionEngine(observers=[validator, differ])
    report = OracleReport(stream=stream)
    try:
        # Route through the instance layer like every other run; the
        # instance's telemetry (op counts, SMO recency) then describes
        # the replay for free and crashes leave its state inspectable.
        engine.run(IndexInstance.wrap(factory()), stream.to_workload())
    except Exception as exc:  # noqa: BLE001 — crashes are findings
        report.crash = f"{type(exc).__name__}: {exc}"
    report.violations = list(validator.violations)
    report.mismatches = list(differ.mismatches)
    return report


# ---------------------------------------------------------------------------
# Stream generation
# ---------------------------------------------------------------------------

#: Small-node configurations so a few hundred ops cross many SMO
#: boundaries (split/expand/retrain/compact), keyed by registry name.
#: Fuzzing a production-sized node layout would need millions of ops to
#: exercise the same code paths.
STRESS_FACTORIES: Dict[str, Callable[[], Any]] = {
    "ALEX": lambda: REGISTRY.create("ALEX", target_leaf_keys=64, max_data_keys=512),
    "PGM": lambda: REGISTRY.create("PGM", check_duplicates=True, buffer_size=32),
    "XIndex": lambda: REGISTRY.create("XIndex", delta_size=16, target_group_keys=64),
    "FINEdex": lambda: REGISTRY.create("FINEdex", bin_capacity=4),
    "FITing-Tree": lambda: REGISTRY.create("FITing-Tree", buffer_size=4),
    "B+tree": lambda: REGISTRY.create("B+tree", fanout=8),
}


def stress_factory(name: str) -> Callable[[], Any]:
    """The SMO-dense factory for ``name`` (registry default otherwise)."""
    if name in STRESS_FACTORIES:
        return STRESS_FACTORIES[name]
    return REGISTRY.get(name).factory


def fuzzable_specs() -> List[IndexSpec]:
    """Registry specs the fuzzer can drive (needs a working insert)."""
    return [spec for spec in REGISTRY if spec.supports_insert]


def generate_stream(
    spec: IndexSpec,
    seed: int,
    n_ops: int = 500,
    n_bulk: int = 256,
    key_space: int = 1 << 40,
) -> OpStream:
    """A seeded random stream shaped by ``spec``'s capabilities.

    Deletes/scans are only emitted when the spec supports them; inserts
    draw fresh keys from ``key_space`` with occasional duplicate-insert
    attempts to exercise the reject path; lookups and deletes mix
    present and absent keys.  Identical ``(spec.name, seed, sizes)``
    always produce the identical stream.
    """
    rng = random.Random(f"opstream-{spec.name}-{seed}-{n_ops}-{n_bulk}")
    present = set()
    while len(present) < n_bulk:
        present.add(rng.randrange(1, key_space))
    bulk = sorted(present)

    def fresh_key() -> int:
        while True:
            k = rng.randrange(1, key_space)
            if k not in present:
                return k

    def any_key() -> int:
        # Mostly keys that exist; sometimes a random (usually absent) one.
        if present and rng.random() < 0.8:
            return rng.choice(tuple(present))
        return rng.randrange(1, key_space)

    p_insert = 0.35
    p_delete = 0.15 if spec.supports_delete else 0.0
    p_update = 0.10
    p_scan = 0.10 if spec.supports_range else 0.0
    ops: List[Operation] = []
    for _ in range(n_ops):
        r = rng.random()
        if r < p_insert:
            if rng.random() < 0.1 and present:  # duplicate-insert attempt
                k = rng.choice(tuple(present))
                ops.append(Operation(INSERT, k, payload(k)))
            else:
                k = fresh_key()
                present.add(k)
                ops.append(Operation(INSERT, k, payload(k)))
        elif r < p_insert + p_delete:
            k = any_key()
            present.discard(k)
            ops.append(Operation(DELETE, k))
        elif r < p_insert + p_delete + p_update:
            k = any_key()
            ops.append(Operation(UPDATE, k, payload(k) ^ 0x5A5A5A5A))
        elif r < p_insert + p_delete + p_update + p_scan:
            ops.append(Operation(SCAN, any_key(), count=rng.randint(1, 48)))
        else:
            ops.append(Operation(LOOKUP, any_key()))
    return OpStream(index_name=spec.name, seed=seed, bulk_keys=bulk, ops=ops)


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------

def shrink_stream(
    factory: Callable[[], Any],
    stream: OpStream,
    max_runs: int = 400,
) -> OpStream:
    """Greedy ddmin-style reduction of a failing stream.

    Repeatedly deletes chunks (halving the chunk size) from the op
    list, then from the bulk key set, keeping any candidate that still
    fails the oracle.  Bounded by ``max_runs`` oracle replays so a
    pathological input cannot stall the fuzzer.  If ``stream`` does not
    actually fail, it is returned unchanged.
    """
    runs = 0

    def fails(candidate: OpStream) -> bool:
        nonlocal runs
        if runs >= max_runs:
            return False
        runs += 1
        return not run_oracle(factory, candidate).ok

    if not fails(stream):
        return stream

    def rebuild(bulk: List[int], ops: List[Operation]) -> OpStream:
        return OpStream(index_name=stream.index_name, seed=stream.seed,
                        bulk_keys=list(bulk), ops=list(ops),
                        name=stream.name)

    bulk, ops = list(stream.bulk_keys), list(stream.ops)

    def reduce(items: List, make: Callable[[List], OpStream]) -> List:
        chunk = max(len(items) // 2, 1)
        while chunk >= 1:
            i = 0
            while i < len(items) and runs < max_runs:
                candidate = items[:i] + items[i + chunk:]
                if candidate != items and fails(make(candidate)):
                    items = candidate
                else:
                    i += chunk
            if chunk == 1:
                break
            chunk //= 2
        return items

    ops = reduce(ops, lambda o: rebuild(bulk, o))
    bulk = reduce(bulk, lambda b: rebuild(b, ops))
    return rebuild(bulk, ops)


# ---------------------------------------------------------------------------
# The fuzzer
# ---------------------------------------------------------------------------

@dataclass
class FuzzFailure:
    """A reproduced failure: the shrunk stream plus its oracle report."""

    index_name: str
    stream: OpStream
    report: OracleReport
    original_ops: int

    def describe(self) -> str:
        return (f"{self.index_name}: shrunk {self.original_ops} ops -> "
                f"{len(self.stream.ops)} ops / "
                f"{len(self.stream.bulk_keys)} bulk keys\n"
                + self.report.describe())


def fuzz_index(
    spec: IndexSpec,
    budget: int = 2000,
    seed: int = 0,
    factory: Optional[Callable[[], Any]] = None,
    round_ops: int = 500,
) -> Optional[FuzzFailure]:
    """Fuzz one index for ``budget`` total operations.

    The budget splits into rounds of ``round_ops`` operations, each a
    fresh seeded stream with a varied bulk size (SMO behaviour differs
    sharply between a near-empty and a well-filled structure).  The
    first failing round is shrunk and returned; ``None`` means the
    budget ran clean.
    """
    factory = factory or stress_factory(spec.name)
    bulk_sizes = (256, 16, 512)
    spent = 0
    round_no = 0
    while spent < budget:
        n_ops = min(round_ops, budget - spent)
        stream = generate_stream(
            spec,
            seed=seed * 10_000 + round_no,
            n_ops=n_ops,
            n_bulk=bulk_sizes[round_no % len(bulk_sizes)],
        )
        report = run_oracle(factory, stream)
        if not report.ok:
            shrunk = shrink_stream(factory, stream)
            return FuzzFailure(
                index_name=spec.name,
                stream=shrunk,
                report=run_oracle(factory, shrunk),
                original_ops=len(stream.ops),
            )
        spent += n_ops
        round_no += 1
    return None


def fuzz_all(
    budget: int = 2000,
    seed: int = 0,
) -> Iterator[Tuple[IndexSpec, Optional[FuzzFailure]]]:
    """Fuzz every fuzzable registry index, yielding per-index outcomes."""
    for spec in fuzzable_specs():
        yield spec, fuzz_index(spec, budget=budget, seed=seed)


# ---------------------------------------------------------------------------
# Corpus replay
# ---------------------------------------------------------------------------

def replay_file(path: str) -> OracleReport:
    """Replay one saved stream under the full oracle.

    The factory is resolved from the stream's recorded index name via
    :func:`stress_factory`, so corpus files exercise the same small-node
    configurations the fuzzer found them with.
    """
    stream = OpStream.load(path)
    return run_oracle(stress_factory(stream.index_name), stream)
