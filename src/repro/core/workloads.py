"""Workload construction (Section 3.3, Section 4.4, Section 6, Appendix E).

A :class:`Workload` is a bulk-load set plus a deterministic operation
stream.  Builders mirror the paper's definitions, scaled by ``n``:

* :func:`mixed_workload` — the five insert mixes (Read-Only 0% …
  Write-Only 100% writes).  Writes insert the not-yet-loaded half of
  the dataset in shuffled order; reads look up uniformly random keys
  among those currently present.
* :func:`deletion_workload` — Figure 7's 0%…100% delete mixes.
* :func:`shift_workload` — Figure 12's distribution shift: bulk from
  dataset X, insert keys from dataset Y rescaled into X's domain,
  look up keys of X.
* :func:`scan_workload` — Figure 13's fixed-size range queries.
* :func:`ycsb_workload` — YCSB A/B/C with scrambled-Zipfian key choice
  (updates only, no inserts — the reason LIPP+ scales again in
  Figure G).
* :func:`moving_hotspot_workload` — a zipfian hot range drifting across
  the keyspace (the sharded-serving rebalance replay).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.datasets.zipfian import ScrambledZipfian, ZipfianGenerator

LOOKUP = "lookup"
INSERT = "insert"
UPDATE = "update"
DELETE = "delete"
SCAN = "scan"


def payload(key: int) -> int:
    """Deterministic 8-byte payload for a key (checkable in tests)."""
    return (key * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF


@dataclass
class Operation:
    op: str
    key: int
    value: Any = None
    count: int = 0  # scan length


@dataclass
class Workload:
    """Bulk items + operation stream, both deterministic."""

    name: str
    bulk_items: List[Tuple[int, Any]]
    operations: List[Operation]
    #: Fraction of ops that mutate (for reports).
    write_fraction: float = 0.0

    def __post_init__(self) -> None:
        for i in range(1, len(self.bulk_items)):
            if self.bulk_items[i - 1][0] > self.bulk_items[i][0]:
                raise ValueError("bulk_items must be sorted")

    @property
    def n_ops(self) -> int:
        return len(self.operations)


def _items(keys: Sequence[int]) -> List[Tuple[int, Any]]:
    return [(k, payload(k)) for k in keys]


def mixed_workload(
    keys: Sequence[int],
    write_frac: float,
    n_ops: Optional[int] = None,
    seed: int = 0,
) -> Workload:
    """The paper's insert-mix workloads over one dataset's keys.

    ``write_frac`` 0.0 bulk-loads everything and issues only lookups;
    otherwise half the (shuffled) keys are bulk loaded and writes insert
    the remaining keys until they run out.
    """
    if not 0.0 <= write_frac <= 1.0:
        raise ValueError("write_frac must be in [0, 1]")
    rng = random.Random(f"mixed-{write_frac}-{seed}")
    keys = list(keys)
    rng.shuffle(keys)
    if write_frac == 0.0:
        loaded = sorted(keys)
        pending: List[int] = []
    else:
        half = len(keys) // 2
        loaded = sorted(keys[:half])
        pending = keys[half:]
    if n_ops is None:
        n_ops = len(keys)
    if write_frac == 1.0:
        # The paper's Write-Only issues insertions only: never pad the
        # stream with lookups once the pending keys run out.
        n_ops = min(n_ops, len(pending))
    ops: List[Operation] = []
    present = [k for k, _ in _items(loaded)]
    pi = 0
    for _ in range(n_ops):
        if pending and pi < len(pending) and rng.random() < write_frac:
            k = pending[pi]
            pi += 1
            ops.append(Operation(INSERT, k, payload(k)))
        else:
            k = present[rng.randrange(len(present))]
            ops.append(Operation(LOOKUP, k))
    name = {0.0: "read-only", 0.2: "read-intensive", 0.5: "balanced",
            0.8: "write-heavy", 1.0: "write-only"}.get(write_frac, f"{write_frac:.0%}-write")
    return Workload(name, _items(loaded), ops, write_fraction=write_frac)


def deletion_workload(
    keys: Sequence[int],
    delete_frac: float,
    n_ops: Optional[int] = None,
    seed: int = 0,
) -> Workload:
    """Figure 7: bulk-load everything, delete until half is gone."""
    if not 0.0 <= delete_frac <= 1.0:
        raise ValueError("delete_frac must be in [0, 1]")
    rng = random.Random(f"del-{delete_frac}-{seed}")
    keys = list(keys)
    loaded = sorted(keys)
    doomed = list(keys)
    rng.shuffle(doomed)
    doomed = doomed[: len(keys) // 2]
    if n_ops is None:
        n_ops = len(keys)
    ops: List[Operation] = []
    di = 0
    for _ in range(n_ops):
        if di < len(doomed) and rng.random() < delete_frac:
            ops.append(Operation(DELETE, doomed[di]))
            di += 1
        else:
            ops.append(Operation(LOOKUP, keys[rng.randrange(len(keys))]))
    return Workload(f"{delete_frac:.0%}-delete", _items(loaded), ops,
                    write_fraction=delete_frac)


def shift_workload(
    bulk_keys: Sequence[int],
    insert_keys: Sequence[int],
    n_ops: Optional[int] = None,
    seed: int = 0,
    name: str = "shift",
) -> Workload:
    """Figure 12: bulk X, balanced lookups-on-X / inserts-from-Y.

    ``insert_keys`` are linearly rescaled into the bulk keys' domain
    ("keys of both datasets are scaled to the same domain").
    """
    rng = random.Random(f"shift-{seed}")
    bulk = sorted(set(bulk_keys))
    lo, hi = bulk[0], bulk[-1]
    src_lo, src_hi = min(insert_keys), max(insert_keys)
    span_src = max(src_hi - src_lo, 1)
    scaled = []
    present = set(bulk)
    for k in insert_keys:
        s = lo + (k - src_lo) * (hi - lo) // span_src
        while s in present:  # keep keys unique after rescaling
            s += 1
        present.add(s)
        scaled.append(s)
    rng.shuffle(scaled)
    if n_ops is None:
        n_ops = 2 * len(scaled)
    ops: List[Operation] = []
    si = 0
    for _ in range(n_ops):
        if si < len(scaled) and rng.random() < 0.5:
            k = scaled[si]
            si += 1
            ops.append(Operation(INSERT, k, payload(k)))
        else:
            ops.append(Operation(LOOKUP, bulk[rng.randrange(len(bulk))]))
    return Workload(name, _items(bulk), ops, write_fraction=0.5)


def scan_workload(
    keys: Sequence[int],
    scan_size: int,
    n_scans: int,
    seed: int = 0,
) -> Workload:
    """Figure 13: fixed-size range queries from random start keys."""
    if scan_size < 1:
        raise ValueError("scan_size must be >= 1")
    rng = random.Random(f"scan-{scan_size}-{seed}")
    keys = sorted(keys)
    ops = [
        Operation(SCAN, keys[rng.randrange(len(keys))], count=scan_size)
        for _ in range(n_scans)
    ]
    return Workload(f"scan-{scan_size}", _items(keys), ops)


def churn_workload(
    keys: Sequence[int],
    write_frac: float = 0.5,
    n_ops: Optional[int] = None,
    theta: float = 0.99,
    seed: int = 0,
) -> Workload:
    """Zipfian live churn: hot-key lookups under a steady insert stream.

    The migration benchmark's stand-in for production traffic: half the
    (shuffled) keys bulk load, inserts drain the other half in shuffled
    order, and every lookup picks a scrambled-Zipfian *hot* key among
    the bulk-loaded set — so reads hammer a skewed working set while
    the key space keeps growing under the index being migrated.
    Deterministic per (``write_frac``, ``seed``) like every builder.
    """
    if not 0.0 < write_frac < 1.0:
        raise ValueError("churn needs both reads and writes: "
                         "write_frac must be in (0, 1)")
    rng = random.Random(f"churn-{write_frac}-{seed}")
    keys = list(keys)
    rng.shuffle(keys)
    half = len(keys) // 2
    loaded = sorted(keys[:half])
    pending = keys[half:]
    chooser = ScrambledZipfian(loaded, theta=theta, seed=seed)
    if n_ops is None:
        n_ops = len(keys)
    ops: List[Operation] = []
    pi = 0
    for _ in range(n_ops):
        if pi < len(pending) and rng.random() < write_frac:
            k = pending[pi]
            pi += 1
            ops.append(Operation(INSERT, k, payload(k)))
        else:
            ops.append(Operation(LOOKUP, chooser.next_key()))
    return Workload("zipf-churn", _items(loaded), ops,
                    write_fraction=write_frac)


def ycsb_workload(
    keys: Sequence[int],
    variant: str,
    n_ops: int,
    theta: float = 0.99,
    seed: int = 0,
) -> Workload:
    """The six core YCSB workloads with zipfian key choice.

    The paper evaluates A/B/C (Appendix E); D/E/F are provided for
    completeness with YCSB's standard definitions:

    * **A** — update heavy: 50% lookups, 50% updates,
    * **B** — read heavy: 95% lookups, 5% updates,
    * **C** — read only,
    * **D** — read latest: 95% lookups biased to recent inserts,
      5% inserts of new (larger) keys,
    * **E** — short ranges: 95% scans (zipfian-length, mean ~50),
      5% inserts,
    * **F** — read-modify-write: 50% lookups, 50% lookup+update pairs.
    """
    if variant not in "ABCDEF" or len(variant) != 1:
        raise ValueError("variant must be one of A..F")
    rng = random.Random(f"ycsb-{variant}-{seed}")
    keys = sorted(keys)
    chooser = ScrambledZipfian(keys, theta=theta, seed=seed)
    ops: List[Operation] = []
    if variant in "ABC":
        update_frac = {"A": 0.5, "B": 0.05, "C": 0.0}[variant]
        for _ in range(n_ops):
            k = chooser.next_key()
            if rng.random() < update_frac:
                ops.append(Operation(UPDATE, k, payload(k) ^ 0xFF))
            else:
                ops.append(Operation(LOOKUP, k))
        return Workload(f"ycsb-{variant}", _items(keys), ops,
                        write_fraction=update_frac)
    if variant == "D":
        # Read-latest: new keys append past the current maximum; reads
        # prefer the most recent inserts (zipfian over recency).
        recent: List[int] = list(keys[-100:])
        next_key = keys[-1]
        zipf = ZipfianGenerator(100, theta=theta, seed=seed)
        for _ in range(n_ops):
            if rng.random() < 0.05:
                next_key += rng.randint(1, 1000)
                recent.append(next_key)
                if len(recent) > 100:
                    recent.pop(0)
                ops.append(Operation(INSERT, next_key, payload(next_key)))
            else:
                rank = zipf.next_rank()  # 0 = hottest = most recent
                ops.append(Operation(LOOKUP, recent[-1 - min(rank, len(recent) - 1)]))
        return Workload("ycsb-D", _items(keys), ops, write_fraction=0.05)
    if variant == "E":
        next_key = keys[-1]
        for _ in range(n_ops):
            if rng.random() < 0.05:
                next_key += rng.randint(1, 1000)
                ops.append(Operation(INSERT, next_key, payload(next_key)))
            else:
                start = chooser.next_key()
                length = max(1, min(100, int(rng.expovariate(1 / 50.0))))
                ops.append(Operation(SCAN, start, count=length))
        return Workload("ycsb-E", _items(keys), ops, write_fraction=0.05)
    # F: read-modify-write — modelled as lookup followed by update; the
    # op stream carries the update, the runner's update path reads first.
    for _ in range(n_ops):
        k = chooser.next_key()
        if rng.random() < 0.5:
            ops.append(Operation(LOOKUP, k))
        else:
            ops.append(Operation(UPDATE, k, payload(k) ^ 0xF0F0))
    return Workload("ycsb-F", _items(keys), ops, write_fraction=0.5)


def moving_hotspot_workload(
    keys: Sequence[int],
    n_ops: Optional[int] = None,
    phases: int = 4,
    hot_frac: float = 0.05,
    hot_ratio: float = 0.85,
    insert_frac: float = 0.25,
    warm_frac: float = 0.15,
    theta: float = 0.99,
    seed: int = 0,
) -> Workload:
    """A zipfian hot key range that drifts across the keyspace over time.

    The sharded-serving rebalance replay: all ``keys`` bulk load, then

    * a **warm** segment (``warm_frac`` of the ops) of uniform lookups —
      the pre-skew baseline the rebalance benchmark compares against,
    * ``phases`` hot segments.  Each phase pins a hot window of
      ``hot_frac`` of the key range; the window's left edge drifts from
      the bottom of the keyspace to the top across phases.  Within a
      phase, ``hot_ratio`` of ops hit the window — scrambled-zipfian
      lookups over its keys, with ``insert_frac`` of the hot ops
      inserting *fresh* keys sampled inside the window (hot shards grow,
      which is what makes splitting them worthwhile) — and the rest are
      uniform background lookups,
    * a tail of uniform lookups padding the stream to exactly ``n_ops``
      (the post-rebalance cooldown the benchmark measures recovery on).

    Deterministic per (``phases``, ``hot_frac``, ``seed``).
    """
    if phases < 1:
        raise ValueError("phases must be >= 1")
    if not 0.0 < hot_frac <= 1.0:
        raise ValueError("hot_frac must be in (0, 1]")
    if not 0.0 <= warm_frac < 1.0:
        raise ValueError("warm_frac must be in [0, 1)")
    rng = random.Random(f"hotspot-{phases}-{hot_frac}-{seed}")
    loaded = sorted(keys)
    if len(loaded) < 2:
        raise ValueError("need at least 2 keys")
    if n_ops is None:
        n_ops = 2 * len(loaded)
    present = set(loaded)
    ops: List[Operation] = []

    def uniform_lookup() -> Operation:
        return Operation(LOOKUP, loaded[rng.randrange(len(loaded))])

    warm_ops = int(n_ops * warm_frac)
    ops.extend(uniform_lookup() for _ in range(warm_ops))

    width = max(int(len(loaded) * hot_frac), 2)
    phase_ops = (n_ops - warm_ops) // (phases + 1)  # leave a cooldown tail
    for p in range(phases):
        start = round(p * (len(loaded) - width) / max(phases - 1, 1))
        window = loaded[start:start + width]
        lo, hi = window[0], window[-1]
        chooser = ScrambledZipfian(window, theta=theta,
                                   seed=seed * 1000003 + p)
        for _ in range(phase_ops):
            if rng.random() >= hot_ratio:
                ops.append(uniform_lookup())
            elif rng.random() < insert_frac:
                k = rng.randint(lo, hi)
                while k in present:
                    k += 1
                present.add(k)
                ops.append(Operation(INSERT, k, payload(k)))
            else:
                ops.append(Operation(LOOKUP, chooser.next_key()))
    while len(ops) < n_ops:
        ops.append(uniform_lookup())
    write_fraction = (sum(1 for op in ops if op.op == INSERT)
                      / max(len(ops), 1))
    return Workload("moving-hotspot", _items(loaded), ops,
                    write_fraction=write_fraction)


#: The paper's five insert mixes, in heatmap order.
MIX_FRACTIONS = (0.0, 0.2, 0.5, 0.8, 1.0)
MIX_NAMES = ("read-only", "read-intensive", "balanced", "write-heavy", "write-only")


def save_workload(workload: Workload, path: str) -> None:
    """Persist a workload to a JSON file (exact-replay reproducibility).

    Payloads must be JSON-serializable; the builders in this module
    only produce integers.
    """
    import json

    record = {
        "format": "gre-workload-1",
        "name": workload.name,
        "write_fraction": workload.write_fraction,
        "bulk_items": [[k, v] for k, v in workload.bulk_items],
        "operations": [
            [op.op, op.key, op.value, op.count] for op in workload.operations
        ],
    }
    with open(path, "w") as f:
        json.dump(record, f)


def load_workload(path: str) -> Workload:
    """Load a workload saved by :func:`save_workload`."""
    import json

    with open(path) as f:
        record = json.load(f)
    if record.get("format") != "gre-workload-1":
        raise ValueError(f"{path!r} is not a GRE workload file")
    return Workload(
        name=record["name"],
        bulk_items=[(k, v) for k, v in record["bulk_items"]],
        operations=[
            Operation(op, key, value, count)
            for op, key, value, count in record["operations"]
        ],
        write_fraction=record["write_fraction"],
    )
