"""Abstract cost accounting for index operations.

The paper measures micro-architectural effects (cache misses, key shifts,
SMO time, statistics maintenance) with hardware counters on a 96-core
Xeon.  A pure-Python reproduction cannot observe those effects through
wall-clock time: interpreter overhead dominates and the GIL removes all
real parallelism.  Instead, every index in this repository *meters* its
work in abstract cost units (node hops, key comparisons, key shifts,
model evaluations, ...).  A single weight table converts units into
virtual nanoseconds calibrated against published DRAM/cache latencies,
which makes throughput ratios, latency breakdowns (Figure 3) and the
multicore trace replay deterministic and reproducible.

Wall-clock numbers are still reported by the benchmark harness for
sanity, but every figure in EXPERIMENTS.md is computed on this clock.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

# ---------------------------------------------------------------------------
# Cost kinds
# ---------------------------------------------------------------------------

#: Pointer chase to a different node; on real hardware this is usually an
#: LLC/DRAM miss, the dominant cost of tree traversal.
NODE_HOP = "node_hop"
#: Probe of one slot within the current node (same cache lines, cheap).
SLOT_PROBE = "slot_probe"
#: One key comparison during binary/exponential/linear search.
KEY_COMPARE = "key_compare"
#: Moving one key+payload pair inside a node (ALEX gap shifting, B+-tree
#: insertion into a sorted array, delta compaction).
KEY_SHIFT = "key_shift"
#: Evaluating one linear model (multiply-add + clamp).
MODEL_EVAL = "model_eval"
#: Allocating one node (header + slot array); charged once per node.
ALLOC_NODE = "alloc_node"
#: Zero-fill / copy cost per slot when building or resizing a node.
SLOT_INIT = "slot_init"
#: Updating SMO-decision statistics (counters, error accumulators).
STATS_UPDATE = "stats_update"
#: Atomic read-modify-write on a potentially shared cache line.  Only
#: concurrent adapters charge this; single-threaded runs never do.
ATOMIC_RMW = "atomic_rmw"
#: A data-dependent branch that real hardware is likely to mispredict
#: (e.g. LIPP's "is this slot a child or a record?" test during scans).
BRANCH = "branch"
#: Copying one entry out during a range scan.
SCAN_ENTRY = "scan_entry"
#: Retraining one linear model over n keys: charged per key.
TRAIN_KEY = "train_key"
#: Hashing one key (Wormhole meta-trie, hash tables).
HASH = "hash"
#: One uncached random access inside a large array (binary-search probe
#: landing on a cold cache line).  Cheaper than a full pointer chase
#: (``NODE_HOP``) because data arrays enjoy some locality/prefetch.
CACHE_PROBE = "cache_probe"

#: Version of the cost model: the set of cost kinds, the default
#: weights, and the charging conventions in the index implementations.
#: Bump whenever any of those change — virtual-clock results produced
#: under different cost models are not comparable, and the sweep cache
#: (:mod:`repro.core.sweep`) folds this number into every cache key so
#: stale cells can never be served after a recalibration.
COST_MODEL_VERSION = 1

#: Virtual nanoseconds per unit.  Loosely calibrated: a DRAM miss is
#: ~100ns, L1 arithmetic a few ns, an allocation ~150ns amortized.
DEFAULT_WEIGHTS: Dict[str, float] = {
    NODE_HOP: 100.0,
    SLOT_PROBE: 6.0,
    KEY_COMPARE: 5.0,
    KEY_SHIFT: 10.0,
    MODEL_EVAL: 8.0,
    ALLOC_NODE: 150.0,
    SLOT_INIT: 0.8,
    STATS_UPDATE: 12.0,
    ATOMIC_RMW: 50.0,
    BRANCH: 3.0,
    SCAN_ENTRY: 2.0,
    TRAIN_KEY: 4.0,
    HASH: 15.0,
    CACHE_PROBE: 60.0,
}


def charge_binary_search(meter, probes: float) -> None:
    """Meter a binary search of ``probes`` steps over a *cold* array.

    The last ~3 halvings land inside an already-fetched neighbourhood
    (a couple of cache lines); every earlier probe touches a new line.
    Model-accurate searches (short windows) therefore stay near-free —
    the whole premise of learned indexes — while wide windows pay.
    """
    meter.charge(KEY_COMPARE, probes)
    if probes > 3:
        meter.charge(CACHE_PROBE, probes - 3)


def charge_local_search(meter, probes: float, distance: int) -> None:
    """Meter an exponential/hint-based search.

    Unlike a cold binary search, the probed region is *contiguous around
    the hint*: a distance-d search touches ~d/8 cache lines regardless
    of how many probe steps the doubling took.  This is why accurate
    models make ALEX lookups cheap and why last-mile search cost grows
    with data hardness.
    """
    meter.charge(KEY_COMPARE, probes)
    lines = max(0, (abs(distance) - 4) // 8)
    if lines:
        meter.charge(CACHE_PROBE, min(lines, 64.0))

# Phases used for the Figure-3 style insert breakdown.  ``PHASE_TRAVERSE``
# is the "lookup is the first step of an insert" part; the rest are the
# "what else out-bleeds the speed gain" parts.
PHASE_TRAVERSE = "traverse"
PHASE_SEARCH = "last_mile"
PHASE_COLLISION = "collision"
PHASE_SMO = "smo"
PHASE_STATS = "stats"
PHASE_OTHER = "other"

ALL_PHASES = (
    PHASE_TRAVERSE,
    PHASE_SEARCH,
    PHASE_COLLISION,
    PHASE_SMO,
    PHASE_STATS,
    PHASE_OTHER,
)


class CostMeter:
    """Accumulates abstract work, attributed to the active phase.

    Indexes charge units as they work::

        with meter.phase(PHASE_TRAVERSE):
            meter.charge(NODE_HOP)

    The meter supports cheap snapshot/diff so the benchmark runner can
    attribute cost to individual operations.

    **Thread-safety contract:** a ``CostMeter`` is *single-writer*.
    ``charge`` is an unlocked read-modify-write and the phase stack is
    shared mutable state, so two threads charging the same meter lose
    updates and can corrupt phase attribution; readers iterating
    ``_counts`` while a writer inserts a new (phase, kind) key raise
    ``RuntimeError``.  Every engine/sweep/migration path honors this by
    construction (one thread per meter).  Anything that serves one index
    from several threads — the :mod:`repro.core.server` request loop and
    its background job worker — must wrap the meter in
    :class:`SyncedMeter` first.
    """

    __slots__ = ("weights", "_counts", "_phase_stack")

    def __init__(self, weights: Optional[Dict[str, float]] = None) -> None:
        self.weights = dict(DEFAULT_WEIGHTS if weights is None else weights)
        self._counts: Dict[Tuple[str, str], float] = {}
        self._phase_stack: List[str] = [PHASE_OTHER]

    # -- charging -----------------------------------------------------------

    def charge(self, kind: str, n: float = 1.0) -> None:
        """Add ``n`` units of ``kind`` to the current phase."""
        key = (self._phase_stack[-1], kind)
        self._counts[key] = self._counts.get(key, 0.0) + n

    def charge_phased(self, phase: str, kind: str, n: float = 1.0) -> None:
        """Add ``n`` units of ``kind`` to an explicit ``phase``.

        Equivalent to charging inside ``with meter.phase(phase):`` but
        without touching the phase stack — used by the batch playback in
        :mod:`repro.indexes.batching` to replay per-op charge logs in
        exactly the order the scalar path would have produced them.
        """
        key = (phase, kind)
        self._counts[key] = self._counts.get(key, 0.0) + n

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute all charges inside the block to phase ``name``."""
        self._phase_stack.append(name)
        try:
            yield
        finally:
            self._phase_stack.pop()

    @property
    def current_phase(self) -> str:
        return self._phase_stack[-1]

    # -- reading ------------------------------------------------------------

    def total_units(self, kind: str) -> float:
        """Total units of ``kind`` across all phases."""
        return sum(v for (_, k), v in self._counts.items() if k == kind)

    def total_time(self) -> float:
        """Total virtual nanoseconds accumulated."""
        return sum(self.weights.get(k, 0.0) * v for (_, k), v in self._counts.items())

    def time_by_phase(self) -> Dict[str, float]:
        """Virtual nanoseconds attributed to each phase."""
        out: Dict[str, float] = {}
        for (phase, kind), v in self._counts.items():
            out[phase] = out.get(phase, 0.0) + self.weights.get(kind, 0.0) * v
        return out

    def snapshot(self) -> Dict[Tuple[str, str], float]:
        """A copy of the raw counters, for later :meth:`diff`."""
        return dict(self._counts)

    def diff(self, before: Dict[Tuple[str, str], float]) -> "CostDelta":
        """Cost accumulated since ``before`` was snapshotted."""
        delta: Dict[Tuple[str, str], float] = {}
        for key, v in self._counts.items():
            d = v - before.get(key, 0.0)
            if d:
                delta[key] = d
        return CostDelta(delta, self.weights)

    def reset(self) -> None:
        self._counts.clear()
        self._phase_stack[:] = [PHASE_OTHER]


@dataclass
class CostDelta:
    """Cost attributed to a span of operations (usually one op)."""

    counts: Dict[Tuple[str, str], float]
    weights: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_WEIGHTS))

    def total_time(self) -> float:
        return sum(self.weights.get(k, 0.0) * v for (_, k), v in self.counts.items())

    def time_by_phase(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for (phase, kind), v in self.counts.items():
            out[phase] = out.get(phase, 0.0) + self.weights.get(kind, 0.0) * v
        return out

    def units(self, kind: str) -> float:
        return sum(v for (_, k), v in self.counts.items() if k == kind)


class NullMeter(CostMeter):
    """A meter that drops all charges; used when metering is off."""

    def charge(self, kind: str, n: float = 1.0) -> None:  # noqa: D102
        pass

    def charge_phased(self, phase: str, kind: str, n: float = 1.0) -> None:  # noqa: D102
        pass


class SyncedMeter(CostMeter):
    """A :class:`CostMeter` safe to charge and read from many threads.

    Two changes over the base meter, matching its two hazards:

    * every mutation and every read of the counter table happens under
      one mutex, so concurrent charges never lose updates and readers
      (``total_time`` — the virtual clock the bus emitters sample —
      stays monotone) never trip over a dict resize, and
    * the phase stack is **thread-local**: each thread's ``phase()``
      context attributes its own charges without another thread's nest
      level bleeding in.

    Charging takes one extra lock round-trip, which is why the base
    meter stays unlocked for the (overwhelmingly common)
    single-threaded engine paths and this subclass is opt-in for the
    server (:meth:`adopt` preserves already-accumulated charges and the
    calibrated weights).
    """

    __slots__ = ("_mutex", "_local")

    def __init__(self, weights: Optional[Dict[str, float]] = None) -> None:
        super().__init__(weights)
        self._mutex = threading.RLock()
        self._local = threading.local()

    @classmethod
    def adopt(cls, meter: CostMeter) -> "SyncedMeter":
        """A synced meter continuing ``meter``'s weights and charges."""
        if isinstance(meter, cls):
            return meter
        out = cls(meter.weights)
        out._counts.update(meter._counts)
        return out

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = [PHASE_OTHER]
        return stack

    # -- charging (locked, thread-local phase) -------------------------------

    def charge(self, kind: str, n: float = 1.0) -> None:
        key = (self._stack()[-1], kind)
        with self._mutex:
            self._counts[key] = self._counts.get(key, 0.0) + n

    def charge_phased(self, phase: str, kind: str, n: float = 1.0) -> None:
        key = (phase, kind)
        with self._mutex:
            self._counts[key] = self._counts.get(key, 0.0) + n

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        stack = self._stack()
        stack.append(name)
        try:
            yield
        finally:
            stack.pop()

    @property
    def current_phase(self) -> str:
        return self._stack()[-1]

    # -- reading (locked) ----------------------------------------------------

    def total_units(self, kind: str) -> float:
        with self._mutex:
            return super().total_units(kind)

    def total_time(self) -> float:
        with self._mutex:
            return super().total_time()

    def time_by_phase(self) -> Dict[str, float]:
        with self._mutex:
            return super().time_by_phase()

    def snapshot(self) -> Dict[Tuple[str, str], float]:
        with self._mutex:
            return dict(self._counts)

    def diff(self, before: Dict[Tuple[str, str], float]) -> "CostDelta":
        with self._mutex:
            return super().diff(before)

    def reset(self) -> None:
        with self._mutex:
            self._counts.clear()
        self._local = threading.local()
