"""Zero-downtime live migration between registry indexes.

The control plane over :class:`~repro.indexes.multiplex.MultiplexIndex`
(the data plane) and :class:`~repro.core.instance.IndexInstance` (the
lifecycle layer).  :func:`run_migration` answers the paper's question
*online*: having decided a different index now suits the workload, swap
to it under live traffic —

1. build source and destination instances from the registry; bulk load
   the source (``LOADING -> SERVING``); check both sides'
   ``supports_migration`` capability,
2. put the source in ``MIGRATING`` and route the client stream through
   a multiplexer: reads served by the source at unchanged cost, writes
   duplicated, the destination backfilled and then value-verified in
   chunks interleaved with traffic (work charged to the destination's
   meter — migration overhead is a measured, reported quantity),
3. every client op is also fed to a PR-5
   :class:`~repro.core.opstream.DifferentialObserver`, so the stream's
   *client-visible* semantics are oracle-checked across the cutover
   boundary itself,
4. on a fully verified destination the multiplexer cuts over atomically
   between two ops (``DRAINING -> RETIRED`` for the source, the
   destination starts ``SERVING``); on divergence the migration aborts,
   the source rolls back to ``SERVING`` untouched, and the applied
   client ops are replayed against a fresh destination and ddmin-shrunk
   with :func:`~repro.core.opstream.shrink_stream` into a minimal repro
   stream.

Admission is checked per op against the serving instance; with the
multiplexed design no state ever refuses a read, and the report's
``rejected_ops`` / ``cutover_stall_ops`` fields prove the "zero
downtime" claim as measured facts rather than assertions.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.instance import (
    DRAINING,
    MIGRATING,
    RETIRED,
    SERVING,
    AdmissionError,
    IndexInstance,
)
from repro.core.opstream import (
    DifferentialObserver,
    Mismatch,
    OpStream,
    shrink_stream,
)
from repro.core.registry import REGISTRY, IndexSpec
from repro.core.runner import OpEvent
from repro.core.workloads import (
    DELETE,
    INSERT,
    LOOKUP,
    SCAN,
    UPDATE,
    Operation,
    Workload,
)
from repro.indexes.multiplex import DONE, FAILED, MultiplexIndex

__all__ = ["MigrationReport", "apply_op", "resolve_index_name",
           "run_migration"]


def resolve_index_name(name: str) -> str:
    """Registry name for ``name``, tolerating loose spellings.

    ``btree`` -> ``B+tree``, ``alex`` -> ``ALEX``, ``fitingtree`` ->
    ``FITing-Tree``: comparison is case-insensitive over alphanumerics
    only, so the CLI accepts what people actually type.
    """
    if name in REGISTRY:
        return name

    def fold(s: str) -> str:
        return re.sub(r"[^a-z0-9]", "", s.lower())

    folded = {fold(spec.name): spec.name for spec in REGISTRY}
    try:
        return folded[fold(name)]
    except KeyError:
        raise KeyError(
            f"unknown index {name!r}; registered: "
            f"{sorted(s.name for s in REGISTRY)}") from None


@dataclass
class MigrationReport:
    """Everything one migration run produced, measured."""

    src: str
    dst: str
    n_ops: int
    #: Cutover happened: the destination is serving.
    completed: bool = False
    #: Divergence detected; the source rolled back to SERVING.
    aborted: bool = False
    reads: int = 0
    writes: int = 0
    scans: int = 0
    #: Ops refused by the serving instance's admission policy — the
    #: zero-downtime claim is this staying 0.
    rejected_ops: int = 0
    #: Ops deferred around the cutover swap — 0 by construction.
    cutover_stall_ops: int = 0
    #: Client-op sequence number after which the destination served.
    cutover_seq: Optional[int] = None
    #: Ops served by the source after a divergence abort (rollback proof).
    post_abort_ops: int = 0
    backfill_keys: int = 0
    backfill_chunks: int = 0
    verify_keys: int = 0
    reverify_keys: int = 0
    dual_writes: int = 0
    #: Fraction of destination keys value-compared before cutover
    #: (1.0 on every completed migration, by construction).
    verified_fraction: float = 0.0
    divergences: List[str] = field(default_factory=list)
    #: Client-stream mismatches against the differential-oracle model
    #: (must be empty: migration may never change visible semantics).
    oracle_mismatches: List[Mismatch] = field(default_factory=list)
    #: Virtual ns of client-visible work (the serving index's meter).
    client_ns: float = 0.0
    #: Virtual ns of migration work (backfill/verify/dual writes),
    #: charged to the destination's meter while it was the shadow.
    overhead_ns: float = 0.0
    wall_seconds: float = 0.0
    src_state: str = ""
    dst_state: str = ""
    #: ddmin-shrunk repro for the divergence, if one replayed on a
    #: fresh destination (lying-secondary bugs do).
    repro: Optional[OpStream] = None
    repro_path: str = ""

    @property
    def divergence_count(self) -> int:
        return len(self.divergences)

    @property
    def zero_downtime(self) -> bool:
        return self.rejected_ops == 0 and self.cutover_stall_ops == 0

    @property
    def backfill_keys_per_vsec(self) -> float:
        """Backfill throughput on the overhead meter's virtual clock."""
        if self.overhead_ns <= 0:
            return 0.0
        return self.backfill_keys / (self.overhead_ns / 1e9)

    @property
    def ok(self) -> bool:
        return (self.completed and self.zero_downtime
                and not self.divergences and not self.oracle_mismatches)

    def to_dict(self) -> Dict[str, object]:
        return {
            "src": self.src,
            "dst": self.dst,
            "n_ops": self.n_ops,
            "completed": self.completed,
            "aborted": self.aborted,
            "ok": self.ok,
            "zero_downtime": self.zero_downtime,
            "reads": self.reads,
            "writes": self.writes,
            "scans": self.scans,
            "rejected_ops": self.rejected_ops,
            "cutover_stall_ops": self.cutover_stall_ops,
            "cutover_seq": self.cutover_seq,
            "post_abort_ops": self.post_abort_ops,
            "backfill_keys": self.backfill_keys,
            "backfill_chunks": self.backfill_chunks,
            "backfill_keys_per_vsec": self.backfill_keys_per_vsec,
            "verify_keys": self.verify_keys,
            "reverify_keys": self.reverify_keys,
            "verified_fraction": self.verified_fraction,
            "dual_writes": self.dual_writes,
            "divergence_count": self.divergence_count,
            "divergences": list(self.divergences),
            "oracle_mismatches": [str(m) for m in self.oracle_mismatches],
            "client_ns": self.client_ns,
            "overhead_ns": self.overhead_ns,
            "wall_seconds": self.wall_seconds,
            "src_state": self.src_state,
            "dst_state": self.dst_state,
            "repro_ops": len(self.repro.ops) if self.repro else None,
            "repro_path": self.repro_path or None,
        }

    def describe(self) -> str:
        if self.completed:
            head = (f"{self.src} -> {self.dst}: migrated after op "
                    f"#{self.cutover_seq} of {self.n_ops}")
        elif self.aborted:
            head = (f"{self.src} -> {self.dst}: ABORTED "
                    f"({self.divergence_count} divergences), "
                    f"source rolled back to serving")
        else:
            head = f"{self.src} -> {self.dst}: incomplete"
        lines = [
            head,
            f"  backfill: {self.backfill_keys} keys in "
            f"{self.backfill_chunks} chunks "
            f"({self.backfill_keys_per_vsec / 1e6:.2f} Mkeys/vsec)",
            f"  verified: {self.verify_keys} swept + {self.reverify_keys} "
            f"re-checked ({self.verified_fraction:.0%} of keys), "
            f"{self.dual_writes} dual writes",
            f"  downtime: {self.rejected_ops} rejected, "
            f"{self.cutover_stall_ops} stalled",
            f"  overhead: {self.overhead_ns / 1e6:.2f} virtual ms "
            f"(client {self.client_ns / 1e6:.2f} ms)",
        ]
        for d in self.divergences[:5]:
            lines.append(f"  divergence: {d}")
        for m in self.oracle_mismatches[:5]:
            lines.append(f"  oracle: {m}")
        if self.repro is not None:
            lines.append(
                f"  repro: {len(self.repro.ops)} ops / "
                f"{len(self.repro.bulk_keys)} bulk keys"
                + (f" -> {self.repro_path}" if self.repro_path else ""))
        return "\n".join(lines)


def _check_spec(spec: IndexSpec, role: str) -> None:
    if not spec.supports_migration:
        raise ValueError(
            f"{spec.name} cannot be a migration {role}: needs inserts "
            "(shadow writes) and range scans (backfill snapshot cursor)")


def apply_op(index: Any, op: Operation) -> Tuple[bool, int, object]:
    """Engine-handler semantics for one op against any index-like.

    ``index`` is anything honoring the ``OrderedIndex`` op surface — a
    bare index, a :class:`MultiplexIndex`, a sharded tier.  Returns
    ``(ok, scanned, result)`` exactly as the execution engine's
    dispatch table would, so journal replays and migrations compare
    bit-for-bit against engine runs.  Shared by the migration control
    plane and the :mod:`repro.core.server` foreground path.
    """
    kind = op.op
    if kind == LOOKUP:
        value = index.lookup(op.key)
        return value is not None, 0, value
    if kind == INSERT:
        return bool(index.insert(op.key, op.value)), 0, None
    if kind == UPDATE:
        return bool(index.update(op.key, op.value)), 0, None
    if kind == DELETE:
        return bool(index.delete(op.key)), 0, None
    if kind == SCAN:
        rows = index.range_scan(op.key, op.count)
        return True, len(rows), rows
    raise ValueError(f"unknown op {kind!r}")


#: Backward-compatible alias (pre-PR-10 private name).
_apply = apply_op


def run_migration(
    src: str,
    dst: str,
    workload: Workload,
    chunk: int = 128,
    pump_per_op: int = 1,
    src_factory: Optional[Callable[[], Any]] = None,
    dst_factory: Optional[Callable[[], Any]] = None,
    shrink: bool = True,
    oracle_limit: int = 50,
    seed: int = 0,
    bus=None,
    bus_window: int = 256,
) -> MigrationReport:
    """Migrate ``src`` -> ``dst`` under ``workload``'s live stream.

    ``src``/``dst`` are registry names (loose spellings accepted).
    Factories can be overridden for tests (small-node configs, fault
    injection).  Returns a :class:`MigrationReport`; never raises for
    divergence — a failed migration *is* a result (abort + rollback +
    shrunk repro), matching the fuzzer's findings-not-errors stance.

    ``bus`` (an :class:`~repro.core.events.EventBus`, duck-typed)
    receives the migration's full event stream: instance state changes,
    backfill/verify chunks and admission rejections (via the attached
    instances), plus ``op_window`` throughput windows every
    ``bus_window`` applied ops and one ``cutover`` event.  Both
    instances get a live ``status_probe`` into the multiplexer, so
    ``IndexInstance.status()`` reports the in-flight backfill cursor
    and dirty-set size.  All of it reads the meters without charging —
    the report is identical with or without a bus.
    """
    src = resolve_index_name(src)
    dst = resolve_index_name(dst)
    src_spec, dst_spec = REGISTRY.get(src), REGISTRY.get(dst)
    _check_spec(src_spec, "source")
    _check_spec(dst_spec, "destination")
    make_src = src_factory or src_spec.factory
    make_dst = dst_factory or dst_spec.factory

    report = MigrationReport(src=src, dst=dst, n_ops=workload.n_ops)
    wall0 = time.perf_counter()

    source = IndexInstance(make_src(), name=f"{src}@0", spec=src_spec)
    target = IndexInstance(make_dst(), name=f"{dst}@1", spec=dst_spec)
    if bus is not None:
        source.attach_bus(bus)
        target.attach_bus(bus)
    source.bulk_load(workload.bulk_items)

    mux = MultiplexIndex(source.index, target.index, chunk=chunk,
                         pump_per_op=pump_per_op, auto_cutover=True)
    mux.progress_sink = lambda stage, done, total: target.note_backfill(
        done, total, stage=stage)
    # Live status: either instance's status() now snapshots the pump.
    source.status_probe = mux.status
    target.status_probe = mux.status
    source.advance(MIGRATING, f"multiplexing to {target.name}")

    differ = DifferentialObserver(limit=oracle_limit)
    differ.on_phase("measure", None, workload)

    serving = source
    applied: List[Operation] = []
    abort_seq: Optional[int] = None
    win_meter = None
    win_start = 0.0
    win_ops = 0
    for seq, op in enumerate(workload.operations):
        try:
            serving.admit(op.op)
        except AdmissionError:
            report.rejected_ops += 1
            continue
        client_meter = mux.meter
        shadow = mux.secondary
        client0 = client_meter.total_time()
        shadow0 = shadow.meter.total_time() if shadow is not None else 0.0
        ok, scanned, result = apply_op(mux, op)
        report.client_ns += client_meter.total_time() - client0
        if shadow is not None:
            report.overhead_ns += shadow.meter.total_time() - shadow0
        if op.op == LOOKUP:
            report.reads += 1
        elif op.op == SCAN:
            report.scans += 1
        else:
            report.writes += 1
        applied.append(op)
        if bus is not None:
            # Throughput windows on the *client* meter.  The meter
            # swaps identity at cutover; restart the window there so a
            # duration never spans two clocks.
            if win_meter is not client_meter:
                win_meter = client_meter
                win_start = client0
                win_ops = 0
            win_ops += 1
            if win_ops >= bus_window:
                now = client_meter.total_time()
                dur = now - win_start
                bus.publish(
                    "op_window", source=serving.name, t_ns=now,
                    window_start_ns=win_start, ops=win_ops,
                    ops_per_vsec=(win_ops / (dur / 1e9)) if dur > 0 else 0.0)
                win_start = now
                win_ops = 0
        event = OpEvent(seq=seq, op=op, record=None, ok=ok,
                        scanned=scanned, result=result)
        differ.on_op(event, None)
        if abort_seq is not None:
            report.post_abort_ops += 1
            continue
        if mux.phase == FAILED:
            # Divergence: drop the shadow, roll the source back to
            # plain service, and keep driving the stream through it to
            # prove rollback left it serving.
            abort_seq = seq
            mux.abort()
            source.advance(SERVING, "migration aborted: divergence")
            target.advance(RETIRED, "diverged from primary")
        elif mux.phase == DONE and report.cutover_seq is None:
            report.cutover_seq = seq
            serving = target
            if bus is not None:
                bus.publish("cutover", source=target.name,
                            t_ns=mux.meter.total_time(), op_seq=seq,
                            src=source.name, dst=target.name)
            target.advance(SERVING, f"cutover at op #{seq}")
            source.advance(DRAINING, "replaced by target")
            source.advance(RETIRED, "drained")

    # Traffic ended before the pump finished: drain the remaining
    # backfill/verify chunks (still overhead-metered) and cut over.
    while abort_seq is None and mux.phase not in (DONE, FAILED):
        shadow = mux.secondary
        shadow0 = shadow.meter.total_time() if shadow is not None else 0.0
        mux.pump()
        if shadow is not None:
            report.overhead_ns += shadow.meter.total_time() - shadow0
    if abort_seq is None:
        if mux.phase == DONE:
            if report.cutover_seq is None:
                report.cutover_seq = len(applied)
                if bus is not None:
                    bus.publish("cutover", source=target.name,
                                t_ns=mux.meter.total_time(),
                                op_seq=len(applied), src=source.name,
                                dst=target.name)
                target.advance(SERVING, "cutover after stream end")
                source.advance(DRAINING, "replaced by target")
                source.advance(RETIRED, "drained")
        elif mux.phase == FAILED:
            abort_seq = len(applied)
            mux.abort()
            source.advance(SERVING, "migration aborted: divergence")
            target.advance(RETIRED, "diverged from primary")

    report.completed = mux.phase == DONE
    report.aborted = abort_seq is not None
    report.backfill_keys = mux.backfill_keys
    report.backfill_chunks = mux.backfill_chunks
    report.verify_keys = mux.verify_keys
    report.reverify_keys = mux.reverify_keys
    report.dual_writes = mux.dual_writes
    report.cutover_stall_ops = mux.cutover_stall_ops
    report.divergences = [d.describe() for d in mux.divergences]
    report.oracle_mismatches = list(differ.mismatches)
    total = max(len(mux.primary), 1)
    report.verified_fraction = (1.0 if report.completed
                                else min(1.0, mux.verify_keys / total))
    report.src_state = source.state
    report.dst_state = target.state

    if report.aborted and shrink:
        # Replay the applied prefix on a *fresh* destination alone: a
        # buggy destination reproduces and ddmin shrinks it; an
        # environmental divergence leaves the stream unshrunk (honest).
        stream = OpStream(
            index_name=dst, seed=seed,
            bulk_keys=[k for k, _ in workload.bulk_items],
            ops=applied[:abort_seq + 1],
            name=f"migrate-{src}-to-{dst}-divergence")
        report.repro = shrink_stream(make_dst, stream)

    report.wall_seconds = time.perf_counter() - wall0
    return report
