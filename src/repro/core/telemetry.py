"""Telemetry over the execution engine: traces, time-series, profiles.

The paper's most useful evidence is *time-resolved* — the Figure-3
per-phase insert breakdown, the SMO storms behind insert tail latency,
XIndex's background-merge stalls — but a :class:`~repro.core.runner.RunResult`
only reports end-of-run aggregates.  This module turns the engine's
observer hooks plus the deterministic virtual clock
(:class:`~repro.core.cost.CostMeter`) into three measurement layers:

* :class:`TraceRecorder` — per-operation spans and SMO instant-events on
  the virtual clock, exportable as Chrome trace-event JSON (loadable in
  Perfetto / ``chrome://tracing``) or as a JSON-lines event log through
  the versioned-results machinery (:mod:`repro.core.results`).
* :class:`MetricsRegistry` / :class:`MetricsCollector` — counters,
  gauges and log2-bucket histograms, plus windowed time-series of
  rolling throughput, rolling SMO rate (with storm detection) and
  periodic ``memory_usage()`` samples.
* :class:`CostProfiler` — virtual time attributed to
  (op kind x cost phase x cost kind) via ``CostMeter.snapshot()/diff()``,
  rendered as a flame-table; its per-phase totals reconcile exactly with
  ``CostMeter.time_by_phase()``.

A :class:`Telemetry` bundle groups any subset of the three so callers
can say ``execute(idx, wl, telemetry=Telemetry.full())``.  Everything is
deterministic: two runs of the same workload produce identical traces.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.cost import ALL_PHASES
from repro.core.report import table
from repro.core.runner import ExecutionObserver, OpEvent

#: Version stamped into trace/metric telemetry records (independent of
#: the RunResult schema; bump on incompatible event-layout changes).
TELEMETRY_SCHEMA_VERSION = 1

#: Event kinds in the JSONL event log.
EVENT_SPAN = "span"
EVENT_INSTANT = "instant"
EVENT_PHASE = "phase"
EVENT_KINDS = (EVENT_SPAN, EVENT_INSTANT, EVENT_PHASE)

#: Metric names emitted by :class:`MetricsCollector` windows.
METRIC_THROUGHPUT = "throughput_mops"
METRIC_SMO_RATE = "smo_rate"
METRIC_MEMORY = "memory_bytes"
METRIC_NAMES = (METRIC_THROUGHPUT, METRIC_SMO_RATE, METRIC_MEMORY)


# ---------------------------------------------------------------------------
# Trace recording
# ---------------------------------------------------------------------------

class TraceRecorder(ExecutionObserver):
    """Records per-operation spans and SMO instants on the virtual clock.

    Timestamps are the index meter's cumulative virtual nanoseconds at
    the moment each event ends; a span covers ``[ts_ns, ts_ns + dur_ns)``
    where ``dur_ns`` is the operation's full virtual cost (every op is
    timed, not just the engine's ~1% latency samples).

    ``events`` is a list of plain dicts ready for
    :func:`repro.core.results.save_jsonl`; :meth:`to_chrome` converts
    them to the Chrome trace-event format for Perfetto.
    """

    def __init__(self, max_events: int = 1_000_000) -> None:
        self.events: List[dict] = []
        self.dropped = 0
        self.max_events = max_events
        self.index_name = ""
        self.workload_name = ""
        self._meter = None
        self._last_ns = 0.0

    # -- observer hooks -----------------------------------------------------

    def on_phase(self, phase, index, workload) -> None:
        self._meter = index.meter
        self.index_name = index.name
        self.workload_name = workload.name
        now = self._meter.total_time()
        if phase == "measure":
            self._last_ns = now
        self._emit({
            "kind": EVENT_PHASE, "name": phase, "ts_ns": now,
        })

    def on_op(self, event: OpEvent, latency: Optional[float]) -> None:
        now = self._meter.total_time()
        rec = {
            "kind": EVENT_SPAN,
            "name": event.op.op,
            "ts_ns": self._last_ns,
            "dur_ns": now - self._last_ns,
            "seq": event.seq,
            "key": event.op.key,
            "ok": event.ok,
        }
        if event.scanned:
            rec["scanned"] = event.scanned
        r = event.record
        if r is not None and (r.keys_shifted or r.nodes_created or r.smo):
            rec["keys_shifted"] = r.keys_shifted
            rec["nodes_created"] = r.nodes_created
        self._last_ns = now
        self._emit(rec)

    def on_smo(self, event: OpEvent) -> None:
        r = event.record
        self._emit({
            "kind": EVENT_INSTANT,
            "name": "smo",
            "ts_ns": self._meter.total_time(),
            "seq": event.seq,
            "key": event.op.key,
            "keys_shifted": r.keys_shifted if r else 0,
            "nodes_created": r.nodes_created if r else 0,
        })

    def _emit(self, rec: dict) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(rec)

    # -- export -------------------------------------------------------------

    def spans(self) -> List[dict]:
        return [e for e in self.events if e["kind"] == EVENT_SPAN]

    def to_chrome(self) -> dict:
        """The recorded run as a Chrome trace-event JSON object."""
        title = f"{self.index_name} / {self.workload_name}"
        return events_to_chrome(self.events, title, dropped=self.dropped)

    def save_chrome(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.to_chrome(), f)


def _us(ns: float) -> float:
    """Chrome trace timestamps are microseconds."""
    return ns / 1000.0


def events_to_chrome(events: Iterable[dict], title: str,
                     dropped: int = 0) -> dict:
    """Convert JSONL telemetry events to the Chrome trace-event format.

    Single-run events all land on pid 1 / tid 1; use
    :func:`chrome_trace_from_spans` for multi-thread lanes.
    """
    out: List[dict] = [
        {"ph": "M", "name": "process_name", "pid": 1, "tid": 1,
         "args": {"name": title}},
        {"ph": "M", "name": "thread_name", "pid": 1, "tid": 1,
         "args": {"name": "virtual-clock"}},
    ]
    for e in events:
        kind = e.get("kind")
        if kind == EVENT_SPAN:
            args = {k: e[k] for k in
                    ("seq", "key", "ok", "scanned", "keys_shifted",
                     "nodes_created") if k in e}
            out.append({
                "ph": "X", "name": e["name"], "cat": "op", "pid": 1,
                "tid": 1, "ts": _us(e["ts_ns"]), "dur": _us(e["dur_ns"]),
                "args": args,
            })
        elif kind == EVENT_INSTANT:
            args = {k: e[k] for k in
                    ("seq", "key", "keys_shifted", "nodes_created") if k in e}
            out.append({
                "ph": "i", "name": e["name"], "cat": "smo", "pid": 1,
                "tid": 1, "ts": _us(e["ts_ns"]), "s": "t", "args": args,
            })
        elif kind == EVENT_PHASE:
            out.append({
                "ph": "i", "name": f"phase:{e['name']}", "cat": "phase",
                "pid": 1, "tid": 1, "ts": _us(e["ts_ns"]), "s": "p",
                "args": {},
            })
    return {
        "traceEvents": out,
        "displayTimeUnit": "ns",
        "otherData": {
            "clock": "virtual-ns",
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "dropped_events": dropped,
        },
    }


def chrome_trace_from_spans(
    spans: Sequence[Tuple[int, float, float, str]],
    title: str,
) -> dict:
    """Per-thread lanes from simulator spans ``(tid, start_ns, end_ns, op)``.

    Feed :meth:`repro.concurrency.simcore.MulticoreSimulator.replay` a
    ``span_sink`` list and pass it here to see lock waits and thread
    skew as Perfetto lanes.
    """
    tids = sorted({tid for tid, _, _, _ in spans})
    out: List[dict] = [
        {"ph": "M", "name": "process_name", "pid": 1, "tid": tids[0] if tids else 0,
         "args": {"name": title}},
    ]
    for tid in tids:
        out.append({"ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
                    "args": {"name": f"vthread-{tid}"}})
    for tid, start, end, op in spans:
        out.append({
            "ph": "X", "name": op, "cat": "op", "pid": 1, "tid": tid,
            "ts": _us(start), "dur": _us(end - start), "args": {},
        })
    return {
        "traceEvents": out,
        "displayTimeUnit": "ns",
        "otherData": {"clock": "virtual-ns",
                      "schema_version": TELEMETRY_SCHEMA_VERSION},
    }


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n


class Gauge:
    """Last-write-wins value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = v


class Histogram:
    """Power-of-two bucketed distribution.

    ``observe(x)`` lands in the bucket whose upper bound is the smallest
    power of two >= x (bucket key is the exponent, so bucket ``e`` holds
    values in ``(2^(e-1), 2^e]``; zero and negatives land in bucket 0).
    """

    __slots__ = ("buckets", "count", "sum")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.sum = 0.0

    def observe(self, x: float) -> None:
        if x <= 0:
            e = 0
        else:
            _, e = math.frexp(x)  # 2**(e-1) <= x < 2**e
            if x == 2.0 ** (e - 1):
                e -= 1
        self.buckets[e] = self.buckets.get(e, 0) + 1
        self.count += 1
        self.sum += x


class MetricsRegistry:
    """Named metric instruments, created on first use.

    A single namespace per run; :meth:`snapshot` returns a
    JSON-serializable view used in metric artifacts and tests.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        return self._histograms.setdefault(name, Histogram())

    def snapshot(self) -> dict:
        out: Dict[str, dict] = {}
        for name, c in self._counters.items():
            out[name] = {"type": "counter", "value": c.value}
        for name, g in self._gauges.items():
            out[name] = {"type": "gauge", "value": g.value}
        for name, h in self._histograms.items():
            out[name] = {"type": "histogram", "count": h.count,
                         "sum": h.sum,
                         "buckets": {str(k): v for k, v in
                                     sorted(h.buckets.items())}}
        return out


@dataclass
class SmoStorm:
    """A burst of structural modifications (consecutive hot windows)."""

    start_ns: float
    end_ns: float
    rate: float  # SMOs per op across the storm's windows
    ops: int = 0


class MetricsCollector(ExecutionObserver):
    """Windowed time-series over a run, backed by a :class:`MetricsRegistry`.

    Every ``window_ops`` operations the collector closes a window and
    emits one sample per metric at the current virtual timestamp:
    rolling throughput (Mops on the virtual clock), rolling SMO rate
    (SMOs per op) and the index's analytic ``memory_usage()`` total.
    ``series`` holds the samples as dicts ready for ``save_jsonl``.

    **Thread-safety: none — single-engine-thread only.**  The window
    counters are unlocked read-modify-write state, exactly like the base
    :class:`~repro.core.cost.CostMeter` (see its docstring); a collector
    observes one engine loop.  The multi-threaded serving tier does not
    attach one: :class:`~repro.core.server.IndexServer` wraps each
    instance's meter in :class:`~repro.core.cost.SyncedMeter` and keeps
    its own per-instance counters under locks instead
    (``tests/test_server.py`` hammers that path from two threads).
    """

    def __init__(self, window_ops: int = 256) -> None:
        if window_ops < 1:
            raise ValueError("window_ops must be >= 1")
        self.window_ops = window_ops
        self.registry = MetricsRegistry()
        self.series: List[dict] = []
        self._index = None
        self._meter = None
        self._win_start_ns = 0.0
        self._win_ops = 0
        self._win_smos = 0

    # -- observer hooks -----------------------------------------------------

    def on_phase(self, phase, index, workload) -> None:
        self._index = index
        self._meter = index.meter
        if phase == "measure":
            self._win_start_ns = self._meter.total_time()
            self.registry.gauge(METRIC_MEMORY).set(index.memory_usage().total)
        elif phase == "done" and self._win_ops:
            self._close_window()

    def on_op(self, event: OpEvent, latency: Optional[float]) -> None:
        reg = self.registry
        reg.counter("ops_total").inc()
        reg.counter(f"ops.{event.op.op}").inc()
        if not event.ok:
            reg.counter("ops_failed").inc()
        if latency is not None:
            reg.histogram("op_latency_ns").observe(latency)
        self._win_ops += 1
        if self._win_ops >= self.window_ops:
            self._close_window()

    def on_smo(self, event: OpEvent) -> None:
        self.registry.counter("smo_total").inc()
        self._win_smos += 1

    def _close_window(self) -> None:
        now = self._meter.total_time()
        dur = now - self._win_start_ns
        mops = (self._win_ops / dur) * 1e3 if dur > 0 else 0.0
        mem = self._index.memory_usage().total
        self.registry.gauge(METRIC_MEMORY).set(mem)
        for metric, value in (
            (METRIC_THROUGHPUT, mops),
            (METRIC_SMO_RATE, self._win_smos / self._win_ops),
            (METRIC_MEMORY, mem),
        ):
            self.series.append({
                "kind": "metric", "metric": metric, "t_ns": now,
                "window_start_ns": self._win_start_ns, "value": value,
                "window_ops": self._win_ops,
            })
        self._win_start_ns = now
        self._win_ops = 0
        self._win_smos = 0

    # -- analysis -----------------------------------------------------------

    def samples(self, metric: str) -> List[dict]:
        return [s for s in self.series if s["metric"] == metric]

    def smo_storms(self, factor: float = 3.0,
                   min_rate: float = 0.05) -> List[SmoStorm]:
        """Windows whose SMO rate spikes above the run's baseline.

        A window is *hot* when its rate exceeds both ``min_rate`` and
        ``factor`` x the *median* window rate (the median, unlike the
        mean, stays a calm baseline even when storms dominate total
        SMO count); consecutive hot windows merge into one storm.
        These are the bursts behind the paper's insert tail-latency
        observations (Figure 10).
        """
        samples = self.samples(METRIC_SMO_RATE)
        if not samples:
            return []
        rates = sorted(s["value"] for s in samples)
        median = rates[len(rates) // 2]
        threshold = max(min_rate, factor * median)
        storms: List[SmoStorm] = []
        for s in samples:
            if s["value"] <= threshold:
                continue
            if storms and storms[-1].end_ns == s["window_start_ns"]:
                prev = storms[-1]
                total = prev.ops + s["window_ops"]
                prev.rate = (prev.rate * prev.ops
                             + s["value"] * s["window_ops"]) / total
                prev.ops = total
                prev.end_ns = s["t_ns"]
            else:
                storms.append(SmoStorm(start_ns=s["window_start_ns"],
                                       end_ns=s["t_ns"], rate=s["value"],
                                       ops=s["window_ops"]))
        return storms

    def memory_growth(self) -> float:
        """Last / first memory sample (1.0 = flat)."""
        mems = self.samples(METRIC_MEMORY)
        if len(mems) < 2 or mems[0]["value"] <= 0:
            return 1.0
        return mems[-1]["value"] / mems[0]["value"]


# ---------------------------------------------------------------------------
# Cost-attribution profiling
# ---------------------------------------------------------------------------

class CostProfiler(ExecutionObserver):
    """Attributes virtual time to (op kind x cost phase x cost kind).

    The profiler snapshots the index's meter around every operation and
    folds each :meth:`~repro.core.cost.CostMeter.diff` into a cell keyed
    by the executing op kind.  Because every charge the meter sees lands
    in exactly one cell, the profile's per-phase totals reconcile with
    ``CostMeter.time_by_phase()`` to float precision.
    """

    def __init__(self) -> None:
        #: (op_kind, phase, cost_kind) -> units
        self.cells: Dict[Tuple[str, str, str], float] = {}
        self.weights: Dict[str, float] = {}
        self._meter = None
        self._snap: Dict[Tuple[str, str], float] = {}

    def on_phase(self, phase, index, workload) -> None:
        self._meter = index.meter
        self.weights = dict(index.meter.weights)
        if phase == "measure":
            self._snap = self._meter.snapshot()

    def on_op(self, event: OpEvent, latency: Optional[float]) -> None:
        delta = self._meter.diff(self._snap)
        if delta.counts:
            op_kind = event.op.op
            for (phase, kind), units in delta.counts.items():
                key = (op_kind, phase, kind)
                self.cells[key] = self.cells.get(key, 0.0) + units
            self._snap = self._meter.snapshot()

    # -- aggregation --------------------------------------------------------

    def _ns(self, kind: str, units: float) -> float:
        return self.weights.get(kind, 0.0) * units

    def total_ns(self) -> float:
        return sum(self._ns(kind, u)
                   for (_, _, kind), u in self.cells.items())

    def time_by_phase(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for (_, phase, kind), u in self.cells.items():
            out[phase] = out.get(phase, 0.0) + self._ns(kind, u)
        return out

    def time_by_op(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for (op, _, kind), u in self.cells.items():
            out[op] = out.get(op, 0.0) + self._ns(kind, u)
        return out

    def time_by_kind(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for (_, _, kind), u in self.cells.items():
            out[kind] = out.get(kind, 0.0) + self._ns(kind, u)
        return out

    def rows(self) -> List[Tuple[str, str, str, float, float]]:
        """Flame-table rows (op, phase, kind, units, ns), hottest first."""
        out = [(op, phase, kind, u, self._ns(kind, u))
               for (op, phase, kind), u in self.cells.items()]
        out.sort(key=lambda r: -r[4])
        return out

    def render(self, top: int = 20) -> str:
        """The flame-table report: hottest cells, then per-phase totals."""
        total = self.total_ns()
        rows = []
        for op, phase, kind, units, ns in self.rows()[:top]:
            share = ns / total if total > 0 else 0.0
            rows.append([op, phase, kind, f"{units:.0f}", f"{ns:.0f}",
                         f"{share:.1%}"])
        out = [table(["Op", "Phase", "Cost kind", "Units", "Virtual ns", "Share"],
                     rows, title="Cost profile (hottest cells)")]
        by_phase = self.time_by_phase()
        phase_rows = [[p, f"{by_phase.get(p, 0.0):.0f}",
                       f"{(by_phase.get(p, 0.0) / total if total else 0):.1%}"]
                      for p in ALL_PHASES if by_phase.get(p)]
        out.append("")
        out.append(table(["Phase", "Virtual ns", "Share"], phase_rows,
                         title="Per-phase totals"))
        by_op = self.time_by_op()
        op_rows = [[o, f"{ns:.0f}",
                    f"{(ns / total if total else 0):.1%}"]
                   for o, ns in sorted(by_op.items(), key=lambda kv: -kv[1])]
        out.append("")
        out.append(table(["Op", "Virtual ns", "Share"], op_rows,
                         title="Per-op totals"))
        return "\n".join(out)


# ---------------------------------------------------------------------------
# Bundle
# ---------------------------------------------------------------------------

@dataclass
class Telemetry:
    """Any subset of the three telemetry layers, attachable in one arg."""

    trace: Optional[TraceRecorder] = None
    metrics: Optional[MetricsCollector] = None
    profiler: Optional[CostProfiler] = None

    @classmethod
    def full(cls, window_ops: int = 256,
             max_events: int = 1_000_000) -> "Telemetry":
        return cls(trace=TraceRecorder(max_events=max_events),
                   metrics=MetricsCollector(window_ops=window_ops),
                   profiler=CostProfiler())

    def observers(self) -> List[ExecutionObserver]:
        return [o for o in (self.trace, self.metrics, self.profiler)
                if o is not None]


# ---------------------------------------------------------------------------
# Schema validation (CI gates on these)
# ---------------------------------------------------------------------------

def validate_chrome_trace(obj: dict) -> int:
    """Validate a Chrome trace-event JSON object; returns the event count.

    Checks the subset of the format Perfetto needs: a ``traceEvents``
    list whose entries carry ``ph``/``name``, complete events ("X") with
    numeric ``ts``/``dur``, instants ("i") with a scope.  Raises
    ``ValueError`` on the first violation.
    """
    if not isinstance(obj, dict) or not isinstance(obj.get("traceEvents"), list):
        raise ValueError("trace must be an object with a traceEvents list")
    n = 0
    for i, e in enumerate(obj["traceEvents"]):
        if not isinstance(e, dict) or "ph" not in e or "name" not in e:
            raise ValueError(f"traceEvents[{i}]: missing ph/name")
        ph = e["ph"]
        if ph == "X":
            if not isinstance(e.get("ts"), (int, float)) or \
               not isinstance(e.get("dur"), (int, float)):
                raise ValueError(f"traceEvents[{i}]: X event needs numeric ts/dur")
            if e["dur"] < 0:
                raise ValueError(f"traceEvents[{i}]: negative duration")
        elif ph == "i":
            if not isinstance(e.get("ts"), (int, float)) or "s" not in e:
                raise ValueError(f"traceEvents[{i}]: i event needs ts and scope")
        elif ph != "M":
            raise ValueError(f"traceEvents[{i}]: unknown phase {ph!r}")
        n += 1
    return n


def validate_event_records(records: Iterable[dict]) -> int:
    """Validate JSONL trace-event records (post ``load_jsonl``)."""
    n = 0
    for i, r in enumerate(records):
        kind = r.get("kind")
        if kind not in EVENT_KINDS:
            raise ValueError(f"record {i}: unknown event kind {kind!r}")
        if not isinstance(r.get("ts_ns"), (int, float)):
            raise ValueError(f"record {i}: missing numeric ts_ns")
        if kind == EVENT_SPAN and not isinstance(r.get("dur_ns"), (int, float)):
            raise ValueError(f"record {i}: span without numeric dur_ns")
        n += 1
    return n


def validate_metric_records(records: Iterable[dict]) -> int:
    """Validate JSONL metric samples (post ``load_jsonl``)."""
    n = 0
    for i, r in enumerate(records):
        if r.get("kind") != "metric":
            raise ValueError(f"record {i}: not a metric record")
        if r.get("metric") not in METRIC_NAMES:
            raise ValueError(f"record {i}: unknown metric {r.get('metric')!r}")
        if not isinstance(r.get("t_ns"), (int, float)) or \
           not isinstance(r.get("value"), (int, float)):
            raise ValueError(f"record {i}: missing numeric t_ns/value")
        n += 1
    return n
